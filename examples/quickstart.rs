//! Quickstart: compile one PolyBench kernel end to end with HIDA and print the
//! quality-of-results report plus a snippet of the generated HLS C++.
//!
//! Run with `cargo run --example quickstart`.

use hida::{Compiler, PolybenchKernel, Workload};

fn main() {
    let result = Compiler::polybench_defaults()
        .compile(Workload::Polybench(PolybenchKernel::TwoMm))
        .expect("compilation should succeed");

    println!("== HIDA quickstart: 2mm on ZU3EG ==");
    println!("compile time        : {:.3} s", result.compile_seconds);
    println!(
        "dataflow nodes      : {}",
        result.schedule.nodes(&result.ctx).len()
    );
    println!(
        "throughput          : {:.1} samples/s",
        result.estimate.throughput()
    );
    println!(
        "sequential baseline : {:.1} samples/s ({:.2}x slower)",
        result.estimate_sequential.throughput(),
        result.estimate.speedup_over(&result.estimate_sequential)
    );
    println!(
        "resources           : {} DSP, {} BRAM-18K, {} LUT",
        result.estimate.resources.dsp,
        result.estimate.resources.bram_18k,
        result.estimate.resources.lut
    );
    println!("\n== First lines of the generated HLS C++ ==");
    for line in result.hls_cpp.lines().take(20) {
        println!("{line}");
    }
}
