//! Compile a ResNet-18 accelerator (the paper's flagship DNN workload) and compare
//! the HIDA design against the ScaleHLS-style baseline: throughput, DSP efficiency
//! and on-chip memory, demonstrating the effect of shortcut-path balancing and
//! connection-aware parallelization.
//!
//! Run with `cargo run --release --example resnet_accelerator`.

use hida::estimator::dataflow::DataflowEstimator;
use hida::ir::Context;
use hida::{Compiler, FpgaDevice, Model, Workload};

fn main() {
    let device = FpgaDevice::vu9p_slr();

    println!("== Compiling ResNet-18 with HIDA (VU9P SLR) ==");
    let hida = Compiler::dnn_defaults()
        .compile(Workload::Model(Model::ResNet18))
        .expect("hida compilation");
    println!("compile time   : {:.1} s", hida.compile_seconds);
    println!("dataflow nodes : {}", hida.schedule.nodes(&hida.ctx).len());
    println!(
        "throughput     : {:.2} images/s",
        hida.estimate.throughput()
    );
    println!(
        "DSP efficiency : {:.1}%",
        100.0 * hida.estimate.dsp_efficiency()
    );
    println!(
        "resources      : {} DSP, {} BRAM-18K",
        hida.estimate.resources.dsp, hida.estimate.resources.bram_18k
    );

    println!("\n== ScaleHLS-style baseline ==");
    let mut ctx = Context::new();
    let module = ctx.create_module("scalehls");
    let func = hida::frontend::nn::build_model(&mut ctx, module, Model::ResNet18);
    let schedule = hida::baselines::scalehls::compile(&mut ctx, func, &device, 64)
        .expect("scalehls compilation");
    let scale = DataflowEstimator::new(device).estimate_schedule(&ctx, schedule, true);
    println!("throughput     : {:.2} images/s", scale.throughput());
    println!("DSP efficiency : {:.1}%", 100.0 * scale.dsp_efficiency());
    println!(
        "resources      : {} DSP, {} BRAM-18K",
        scale.resources.dsp, scale.resources.bram_18k
    );

    println!(
        "\nHIDA vs ScaleHLS: {:.2}x throughput, {:.1}x less BRAM",
        hida.estimate.speedup_over(&scale),
        scale.resources.bram_18k.max(1) as f64 / hida.estimate.resources.bram_18k.max(1) as f64
    );
}
