//! Build a custom multi-stage kernel directly against the IR API (the "HLS C++
//! input" path of Figure 3), run it through HIDA-OPT, check its functional
//! behaviour with the dataflow interpreter, and emit HLS C++.
//!
//! The kernel is a two-stage pipeline: `B[i] = A[i] * 3` followed by
//! `C[i] = B[i] + 1`, which HIDA turns into two dataflow nodes communicating
//! through a ping-pong buffer.
//!
//! Run with `cargo run --example custom_kernel`.

use hida::dialects::{arith, loops, memory};
use hida::ir::{Context, OpBuilder, Type};
use hida::sim::functional::{interpret_schedule, Memory};
use hida::{Compiler, FpgaDevice, HidaOptions};

fn main() {
    const N: i64 = 256;
    let mut ctx = Context::new();
    let module = ctx.create_module("custom");
    let func =
        OpBuilder::at_end_of(&mut ctx, module).create_func("scale_then_offset", vec![], vec![]);
    let body = ctx.body_block(func);

    // Arrays A, B, C.
    let (a, b, c) = {
        let mut bld = OpBuilder::at_block_end(&mut ctx, body);
        let a = memory::build_alloc(&mut bld, Type::memref(vec![N], Type::f32()), "A");
        let b = memory::build_alloc(&mut bld, Type::memref(vec![N], Type::f32()), "B");
        let c = memory::build_alloc(&mut bld, Type::memref(vec![N], Type::f32()), "C");
        (a, b, c)
    };
    // Stage 1: B[i] = A[i] * 3.
    let (_, ivs, inner) = loops::build_loop_nest(&mut ctx, body, &[(0, N, "i")]);
    {
        let mut bld = OpBuilder::at_block_end(&mut ctx, inner);
        let x = memory::build_load(&mut bld, a, &[ivs[0]]);
        let three = bld.create_constant_float(3.0, Type::f32());
        let scaled = arith::build_binary(&mut bld, arith::MULF, x, three);
        memory::build_store(&mut bld, scaled, b, &[ivs[0]]);
    }
    // Stage 2: C[i] = B[i] + 1.
    let (_, ivs, inner) = loops::build_loop_nest(&mut ctx, body, &[(0, N, "i")]);
    {
        let mut bld = OpBuilder::at_block_end(&mut ctx, inner);
        let x = memory::build_load(&mut bld, b, &[ivs[0]]);
        let one = bld.create_constant_float(1.0, Type::f32());
        let sum = arith::build_binary(&mut bld, arith::ADDF, x, one);
        memory::build_store(&mut bld, sum, c, &[ivs[0]]);
    }

    // Compile with HIDA.
    let compiler = Compiler::new(HidaOptions {
        max_parallel_factor: 8,
        tile_size: None,
        device: FpgaDevice::zu3eg(),
        ..HidaOptions::polybench()
    });
    let result = compiler
        .compile_func(ctx, module, func)
        .expect("compilation");

    println!("== Custom two-stage kernel ==");
    println!(
        "dataflow nodes : {}",
        result.schedule.nodes(&result.ctx).len()
    );
    println!(
        "throughput     : {:.1} samples/s",
        result.estimate.throughput()
    );

    // Functional check with the interpreter: every C element must be 0*3+1 = 1.
    let mut memory_state = Memory::new();
    interpret_schedule(&result.ctx, result.schedule, &mut memory_state);
    let c_buffer = result
        .schedule
        .internal_buffers(&result.ctx)
        .into_iter()
        .find(|buf| buf.name(&result.ctx) == "C")
        .expect("C buffer");
    let contents = memory_state.contents(c_buffer.value(&result.ctx)).unwrap();
    assert!(contents.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    println!("functional check: C[0..{N}] == 1.0  ✓");

    println!("\n== Generated HLS C++ (top function) ==");
    for line in result
        .hls_cpp
        .lines()
        .skip_while(|l| !l.contains("_top()"))
        .take(15)
    {
        println!("{line}");
    }
}
