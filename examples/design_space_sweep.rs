//! Sweep the HIDA design space knobs (parallel factor and parallelization mode) on
//! MobileNet-V1 and print a small table — a miniature of the Figure 10/11 ablations
//! that a user would run when sizing an accelerator for their own device.
//!
//! Run with `cargo run --release --example design_space_sweep`.

use hida::{Compiler, HidaOptions, Model, ParallelMode, Workload};

fn main() {
    println!("== MobileNet-V1 design space sweep (VU9P SLR) ==");
    println!(
        "{:<8} {:<6} {:>10} {:>10} {:>14}",
        "mode", "pf", "DSP", "BRAM", "images/s"
    );
    for mode in [ParallelMode::IaCa, ParallelMode::Naive] {
        for pf in [8_i64, 32, 128] {
            let options = HidaOptions {
                max_parallel_factor: pf,
                mode,
                ..HidaOptions::dnn()
            };
            let result = Compiler::new(options)
                .compile(Workload::Model(Model::MobileNetV1))
                .expect("compilation");
            println!(
                "{:<8} {:<6} {:>10} {:>10} {:>14.2}",
                mode.label(),
                pf,
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
        }
    }
    println!("\nIA+CA keeps resources proportional to the budget; Naive over-provisions");
    println!("every layer and loses efficiency — the Figure 11 effect.");
}
