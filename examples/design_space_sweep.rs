//! Sweep the HIDA design space knobs (parallel factor and parallelization mode) on
//! MobileNet-V1 and print a small table — a miniature of the Figure 10/11 ablations
//! that a user would run when sizing an accelerator for their own device.
//!
//! The design points are independent compilations, so they go through the
//! sweep engine: they compile concurrently (budgeted by [`hida::JobBudget`])
//! and share per-node QoR estimates through the content-addressed
//! cross-compilation cache — the results are byte-identical to compiling each
//! point alone, just sooner.
//!
//! Run with `cargo run --release --example design_space_sweep`.

use hida::{HidaOptions, Model, ParallelMode, SweepEngine, SweepPoint, Workload};

fn main() {
    let modes = [ParallelMode::IaCa, ParallelMode::Naive];
    let factors = [8_i64, 32, 128];
    let mut points = Vec::new();
    for mode in modes {
        for pf in factors {
            let options = HidaOptions {
                max_parallel_factor: pf,
                mode,
                ..HidaOptions::dnn()
            };
            points.push(SweepPoint::new(
                format!("{}-pf{pf}", mode.label()),
                Workload::Model(Model::MobileNetV1),
                options,
            ));
        }
    }
    let outcome = SweepEngine::new().run(&points);

    println!("== MobileNet-V1 design space sweep (VU9P SLR) ==");
    println!(
        "{:<8} {:<6} {:>10} {:>10} {:>14}",
        "mode", "pf", "DSP", "BRAM", "images/s"
    );
    let mut results = outcome.points.iter();
    for mode in modes {
        for pf in factors {
            let point = results.next().expect("one outcome per point");
            let result = point.result.as_ref().expect("compilation");
            println!(
                "{:<8} {:<6} {:>10} {:>10} {:>14.2}",
                mode.label(),
                pf,
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
        }
    }
    if let Some(cache) = &outcome.shared_cache {
        println!(
            "\n{} points in {:.3}s ({} concurrent x {} jobs), estimate cache {cache}",
            outcome.points.len(),
            outcome.wall_seconds,
            outcome.budget.pool_jobs,
            outcome.budget.point_jobs
        );
    }
    println!("\nIA+CA keeps resources proportional to the budget; Naive over-provisions");
    println!("every layer and loses efficiency — the Figure 11 effect.");
}
