#!/usr/bin/env bash
# Staged tier-1 verification plus lint gate. Run from the repository root.
#
#   ./ci.sh            run every stage (the full pre-merge gate)
#   ./ci.sh <stage>    run one stage: build | test | determinism | cache | persist | dse | fuzz | chaos
#
# Mirrors .github/workflows/ci.yml, where each CI job runs exactly one
# `./ci.sh <stage>` — keeping local runs and CI the same by construction.
set -euo pipefail

# Compile the workspace and enforce the static gates: clippy, rustfmt, rustdoc.
run_build() {
  echo "==> [build] cargo build --release"
  cargo build --release

  echo "==> [build] cargo build --examples (not covered by plain cargo build)"
  cargo build --examples

  echo "==> [build] cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "==> [build] cargo fmt --all -- --check"
  cargo fmt --all -- --check

  echo "==> [build] cargo doc --no-deps (warnings are errors)"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet
}

# Unit, integration, doc and bench-harness tests.
run_test() {
  echo "==> [test] cargo test -q"
  cargo test -q

  echo "==> [test] cargo test --benches -q -- --test (bench smoke run, 1 iteration each)"
  cargo test --benches -q -- --test

  echo "==> [test] cargo test --doc (build + run the documentation examples)"
  cargo test --doc -q

  echo "==> [test] bench_ir smoke: every IR micro-bench once, harness must stay alive"
  local bench_ir_json
  bench_ir_json=$(mktemp /tmp/BENCH_ir.XXXXXX.json)
  cargo run --release -q -p hida-bench --bin bench_ir -- \
    --smoke --json "${bench_ir_json}"
  cat "${bench_ir_json}"
  rm -f "${bench_ir_json}"
  if [[ -f BENCH_ir.json ]]; then
    echo "checked-in BENCH_ir.json:"
    cat BENCH_ir.json
  fi
}

# Parallel execution must be invisible in the output. `--no-timing` suppresses
# every timing- or machine-dependent line at the source, so the outputs are
# compared byte for byte with no grep filtering.
run_determinism() {
  echo "==> [determinism] hida-opt CLI ablation matrix on TwoMm (one pipeline string per variant)"
  local ablations=(
    "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
    "construct,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
    "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance"
    "construct,fusion,lower,tiling{factor=4},parallelize"
    "construct,lower,parallelize{max-factor=8,mode=Naive,device=zu3eg}"
    "construct,lower,profile,parallelize{max-factor=8,device=zu3eg}"
  )
  local pipeline
  for pipeline in "${ablations[@]}"; do
    echo "    -> ${pipeline}"
    cargo run --release -q -p hida --bin hida-opt -- \
      --workload two_mm --pipeline "${pipeline}" > /dev/null
  done

  echo "==> [determinism] --jobs 1 vs --jobs 4: --no-timing output must be byte-identical"
  local jobs1 jobs4
  jobs1=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --jobs 1 --no-timing)
  jobs4=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --jobs 4 --no-timing)
  if [[ "${jobs1}" != "${jobs4}" ]]; then
    echo "--jobs 1 and --jobs 4 outputs diverged"
    diff <(echo "${jobs1}") <(echo "${jobs4}") || true
    exit 1
  fi

  echo "==> [determinism] hida-opt --sweep: --jobs 1 vs --jobs 4 must be byte-identical"
  local sweep_variants sweep1 sweep4
  sweep_variants=$(mktemp /tmp/sweep_variants.XXXXXX.txt)
  cat > "${sweep_variants}" <<'EOF'
construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize{max-factor=8,device=zu3eg}
construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize{max-factor=16,device=zu3eg}
construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize{max-factor=8,device=zu3eg}
construct,lower,parallelize{max-factor=8,mode=Naive,device=zu3eg}
EOF
  sweep1=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${sweep_variants}" --jobs 1 --no-timing)
  sweep4=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${sweep_variants}" --jobs 4 --no-timing)
  if [[ "${sweep1}" != "${sweep4}" ]]; then
    echo "--sweep outputs diverged between --jobs 1 and --jobs 4"
    diff <(echo "${sweep1}") <(echo "${sweep4}") || true
    exit 1
  fi

  # The duplicated variant must hit the cross-compilation cache.
  local sweep_stats
  sweep_stats=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${sweep_variants}" --jobs 1 --stats-json 2> /dev/null)
  if ! echo "${sweep_stats}" | grep -qE '"shared_cache_totals":\{"hits":[1-9]'; then
    echo "hida-opt --sweep reported no cross-compilation cache hits"
    echo "${sweep_stats}"
    exit 1
  fi
  rm -f "${sweep_variants}"
}

# In-process caches must actually fire: the per-pass analysis cache and the
# cross-compilation estimate cache of a pooled sweep.
run_cache() {
  echo "==> [cache] analysis cache effectiveness (same ablation twice; both runs must report hits)"
  local attempt out
  for attempt in 1 2; do
    out=$(cargo run --release -q -p hida --bin hida-opt -- \
      --workload two_mm --stats-json)
    if ! echo "${out}" | grep -q '"hits":[1-9]'; then
      echo "run ${attempt}: no analysis cache hits reported"
      echo "${out}" | tail -n 1
      exit 1
    fi
  done

  echo "==> [cache] sweep smoke: reduced-grid fig10 (pooled vs sequential loop)"
  local sweep_json
  sweep_json=$(mktemp /tmp/BENCH_sweep.XXXXXX.json)
  cargo run --release -q -p hida-bench --bin fig10_ablation -- \
    --jobs 4 --sweep-json "${sweep_json}" > /dev/null
  if ! grep -q '"qor_identical": true' "${sweep_json}"; then
    echo "pooled sweep QoR diverged from the sequential loop"
    cat "${sweep_json}"
    exit 1
  fi
  # Cross-point cache hits are asserted on a pool-of-1 engine run: with points
  # compiling strictly in order the hit count is deterministic (concurrent
  # points may legitimately race compute-before-publish on a shared entry).
  cargo run --release -q -p hida-bench --bin fig10_ablation -- \
    --jobs 1 --sweep-json "${sweep_json}" > /dev/null
  if ! grep -qE '"shared_cache": \{"hits": [1-9]' "${sweep_json}"; then
    echo "no cross-compilation estimate cache hits reported"
    cat "${sweep_json}"
    exit 1
  fi
  rm -f "${sweep_json}"
}

# The persistent estimate store must carry estimates across *processes*: a
# second fig10 run pointed at the same --cache-dir reports nonzero persistent
# hits and byte-identical QoR, and a corrupted entry degrades to misses
# without failing the run.
run_persist() {
  echo "==> [persist] fig10 twice, two processes sharing one --cache-dir"
  local cache_dir cold_json warm_json cold_txt warm_txt
  cache_dir=$(mktemp -d /tmp/hida_ci_store.XXXXXX)
  cold_json=$(mktemp /tmp/BENCH_sweep_cold.XXXXXX.json)
  warm_json=$(mktemp /tmp/BENCH_sweep_warm.XXXXXX.json)
  cold_txt=$(mktemp /tmp/fig10_cold.XXXXXX.txt)
  warm_txt=$(mktemp /tmp/fig10_warm.XXXXXX.txt)

  cargo run --release -q -p hida-bench --bin fig10_ablation -- \
    --jobs 2 --cache-dir "${cache_dir}" --cache-limit-mb 64 \
    --sweep-json "${cold_json}" > "${cold_txt}"
  if ! grep -qE '"persistent_cache": \{"hits": 0, "misses": [1-9][0-9]*, "writes": [1-9]' "${cold_json}"; then
    echo "cold run did not populate the persistent store"
    cat "${cold_json}"
    exit 1
  fi

  cargo run --release -q -p hida-bench --bin fig10_ablation -- \
    --jobs 2 --cache-dir "${cache_dir}" --cache-limit-mb 64 \
    --sweep-json "${warm_json}" > "${warm_txt}"
  if ! grep -qE '"persistent_cache": \{"hits": [1-9]' "${warm_json}"; then
    echo "warm run reported no persistent store hits (no cross-process reuse)"
    cat "${warm_json}"
    exit 1
  fi

  # The per-point QoR table (parallel_factor, tile, dsp, bram, throughput
  # lines) must be byte-identical between the cold and warm process.
  if ! diff <(grep -E '^[0-9]+, ' "${cold_txt}") <(grep -E '^[0-9]+, ' "${warm_txt}"); then
    echo "warm-process QoR diverged from the cold process"
    exit 1
  fi

  echo "==> [persist] a corrupted store entry must degrade to misses, not fail the run"
  local entry corrupt_json
  entry=$(find "${cache_dir}" -name '*.est' | sort | head -n 1)
  if [[ -z "${entry}" ]]; then
    echo "no store entries found under ${cache_dir}"
    exit 1
  fi
  printf 'vandalized' > "${entry}"
  corrupt_json=$(mktemp /tmp/BENCH_sweep_corrupt.XXXXXX.json)
  cargo run --release -q -p hida-bench --bin fig10_ablation -- \
    --jobs 2 --cache-dir "${cache_dir}" --cache-limit-mb 64 \
    --sweep-json "${corrupt_json}" > /dev/null
  if ! grep -qE '"corrupt": [1-9]' "${corrupt_json}"; then
    echo "corrupted entry was not detected"
    cat "${corrupt_json}"
    exit 1
  fi
  if ! grep -q '"qor_identical": true' "${corrupt_json}"; then
    echo "corrupted store changed sweep results"
    cat "${corrupt_json}"
    exit 1
  fi

  rm -rf "${cache_dir}"
  rm -f "${cold_json}" "${warm_json}" "${cold_txt}" "${warm_txt}" "${corrupt_json}"
}

# The adaptive design-space explorer must recover the exhaustive frontier
# with strictly fewer compilations, and its --no-timing report must be
# byte-identical across job counts for a fixed seed.
run_dse() {
  echo "==> [dse] dse_frontier: explorer vs exhaustive fig10 reduced grid"
  local dse_json
  dse_json=$(mktemp /tmp/BENCH_dse.XXXXXX.json)
  # The binary itself exits nonzero unless coverage is 1.0 with savings;
  # grep the report anyway so a silent schema drift also fails the gate.
  cargo run --release -q -p hida-bench --bin dse_frontier -- \
    --jobs 4 --json "${dse_json}" > /dev/null
  if ! grep -q '"frontier_coverage": 1.000' "${dse_json}"; then
    echo "explorer missed part of the exhaustive Pareto frontier"
    cat "${dse_json}"
    exit 1
  fi
  if ! grep -qE '"compiles_saved": [1-9]' "${dse_json}"; then
    echo "explorer compiled the whole grid — surrogate pruning never fired"
    cat "${dse_json}"
    exit 1
  fi
  rm -f "${dse_json}"

  echo "==> [dse] hida-opt --explore: --jobs 1 vs --jobs 4 must be byte-identical"
  local explore_variants explore1 explore4
  explore_variants=$(mktemp /tmp/explore_variants.XXXXXX.txt)
  cat > "${explore_variants}" <<'EOF'
explore{seed=7,extras=1}
construct,lower,tiling{factor=2},parallelize{max-factor=1,device=zu3eg}
construct,lower,tiling{factor=2},parallelize{max-factor=4,device=zu3eg}
construct,lower,tiling{factor=2},parallelize{max-factor=16,device=zu3eg}
construct,lower,tiling{factor=8},parallelize{max-factor=1,device=zu3eg}
construct,lower,tiling{factor=8},parallelize{max-factor=4,device=zu3eg}
construct,lower,tiling{factor=8},parallelize{max-factor=16,device=zu3eg}
EOF
  explore1=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --explore "${explore_variants}" --jobs 1 --no-timing)
  explore4=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --explore "${explore_variants}" --jobs 4 --no-timing)
  if [[ "${explore1}" != "${explore4}" ]]; then
    echo "--explore outputs diverged between --jobs 1 and --jobs 4"
    diff <(echo "${explore1}") <(echo "${explore4}") || true
    exit 1
  fi
  rm -f "${explore_variants}"
}

# Differential fuzzing: seeded random affine dataflow workloads pushed through
# random registry pipelines, each case checked against the functional
# interpreter (semantics oracle), the estimator/simulator interval model, and
# the textual round-trip invariant. Failures dump the offending `.hir`.
run_fuzz() {
  echo "==> [fuzz] hida-fuzz differential driver (200 cases, fixed seed)"
  cargo run --release -q -p hida-fuzz -- \
    --cases 200 --seed 20240815 --dump-dir target/fuzz-failures

  echo "==> [fuzz] golden file: --input examples/two_mm.hir must re-emit byte-identically"
  local reemit
  reemit=$(mktemp /tmp/two_mm_reemit.XXXXXX.hir)
  cargo run --release -q -p hida --bin hida-opt -- \
    --input examples/two_mm.hir --no-timing --emit-ir "${reemit}" > /dev/null
  if ! diff examples/two_mm.hir "${reemit}"; then
    echo "examples/two_mm.hir did not survive a parse/re-emit round trip"
    exit 1
  fi
  rm -f "${reemit}"
}

# Fault-isolated compilation: a seeded fault plan must fail exactly the
# planned points with structured reasons, surviving points must be
# byte-identical to a fault-free run at any job count, transient faults must
# converge under --retries, and a stalled point must hit --deadline-ms
# instead of hanging the sweep (60s hard guard).
run_chaos() {
  echo "==> [chaos] seeded fault plan over a 4-point TwoMm sweep"
  local variants clean chaos1 chaos4 status
  variants=$(mktemp /tmp/chaos_variants.XXXXXX.txt)
  cat > "${variants}" <<'EOF'
construct,lower,tiling{factor=2},parallelize{max-factor=2,device=zu3eg}
construct,lower,tiling{factor=2},parallelize{max-factor=4,device=zu3eg}
construct,lower,tiling{factor=4},parallelize{max-factor=2,device=zu3eg}
construct,lower,tiling{factor=4},parallelize{max-factor=4,device=zu3eg}
EOF
  clean=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${variants}" --jobs 1 --no-timing)

  local plan="seed=7,pass-panic=1,store-read=1"
  set +e
  chaos1=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${variants}" --jobs 1 --no-timing \
    --inject-faults "${plan}" 2> /dev/null)
  status=$?
  set -e
  if [[ ${status} -eq 0 ]]; then
    echo "a sweep with injected faults exited zero"
    exit 1
  fi
  if ! echo "${chaos1}" | grep -q '^FAILED: 2 of 4 sweep points'; then
    echo "expected exactly the 2 injected faults to fail"
    echo "${chaos1}"
    exit 1
  fi
  if ! echo "${chaos1}" | grep -q 'Panicked' || ! echo "${chaos1}" | grep -q 'StoreDegraded'; then
    echo "failures are missing their structured reasons"
    echo "${chaos1}"
    exit 1
  fi

  echo "==> [chaos] the same plan at --jobs 4 must fail the same points, byte-identically"
  set +e
  chaos4=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${variants}" --jobs 4 --no-timing \
    --inject-faults "${plan}" 2> /dev/null)
  status=$?
  set -e
  if [[ ${status} -eq 0 ]]; then
    echo "the --jobs 4 chaos sweep exited zero"
    exit 1
  fi
  if [[ "${chaos1}" != "${chaos4}" ]]; then
    echo "chaos outputs diverged between --jobs 1 and --jobs 4"
    diff <(echo "${chaos1}") <(echo "${chaos4}") || true
    exit 1
  fi

  echo "==> [chaos] surviving points must be byte-identical to the fault-free run"
  local failed
  failed=$(echo "${chaos1}" | sed -n 's/^FAILED: [0-9]* of [0-9]* sweep points (\(.*\))$/\1/p')
  # Paragraph-mode filter: drop the failed points' report blocks and the
  # FAILED summary, leaving the header and the survivors.
  filter_failed() {
    awk -v RS= -v ORS='\n\n' -v failed="$1" '
      BEGIN { n = split(failed, f, /, /) }
      {
        skip = ($0 ~ /^FAILED:/)
        for (i = 1; i <= n; i++) if ($0 ~ "^point " substr(f[i], 2) ":") skip = 1
        if (!skip) print
      }'
  }
  if ! diff <(echo "${chaos1}" | filter_failed "${failed}") \
            <(echo "${clean}" | filter_failed "${failed}"); then
    echo "surviving points diverged from the fault-free run"
    exit 1
  fi

  echo "==> [chaos] a transient fault must converge under --retries 1"
  set +e
  cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${variants}" --jobs 2 --no-timing \
    --inject-faults "seed=3,pass-panic=1,transient" --retries 1 > /dev/null 2>&1
  status=$?
  set -e
  if [[ ${status} -ne 0 ]]; then
    echo "a transient fault did not converge under --retries 1"
    exit 1
  fi

  echo "==> [chaos] a stalled point must hit --deadline-ms (60s no-hang guard)"
  local timed
  set +e
  timed=$(timeout 60 cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --sweep "${variants}" --jobs 2 --no-timing \
    --inject-faults "seed=5,stall=1,stall-ms=400" --deadline-ms 50 2> /dev/null)
  status=$?
  set -e
  if [[ ${status} -eq 124 ]]; then
    echo "the stalled sweep hung past the 60s guard"
    exit 1
  fi
  if [[ ${status} -eq 0 ]]; then
    echo "the timed-out point did not fail the sweep"
    exit 1
  fi
  if ! echo "${timed}" | grep -q 'TimedOut'; then
    echo "the stalled point is missing its TimedOut reason"
    echo "${timed}"
    exit 1
  fi
  rm -f "${variants}"

  echo "==> [chaos] hida-fuzz --chaos (60 cases: every injected fault must be isolated)"
  cargo run --release -q -p hida-fuzz -- \
    --cases 60 --seed 20240815 --chaos --dump-dir target/fuzz-failures
}

stage="${1:-all}"
case "${stage}" in
  build) run_build ;;
  test) run_test ;;
  determinism) run_determinism ;;
  cache) run_cache ;;
  persist) run_persist ;;
  dse) run_dse ;;
  fuzz) run_fuzz ;;
  chaos) run_chaos ;;
  all)
    run_build
    run_test
    run_determinism
    run_cache
    run_persist
    run_dse
    run_fuzz
    run_chaos
    ;;
  *)
    echo "unknown stage '${stage}' (expected build | test | determinism | cache | persist | dse | fuzz | chaos | all)"
    exit 2
    ;;
esac

echo "CI OK (${stage})"
