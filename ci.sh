#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from the repository root.
# Mirrors .github/workflows/ci.yml so local runs match CI.
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --examples (not covered by plain cargo build)"
cargo build --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --benches -q -- --test (bench smoke run, 1 iteration each)"
cargo test --benches -q -- --test

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo test --doc (build + run the documentation examples)"
cargo test --doc -q

echo "==> hida-opt CLI ablation matrix on TwoMm (one pipeline string per variant)"
ablations=(
  "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
  "construct,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
  "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance"
  "construct,fusion,lower,tiling{factor=4},parallelize"
  "construct,lower,parallelize{max-factor=8,mode=Naive,device=zu3eg}"
  "construct,lower,profile,parallelize{max-factor=8,device=zu3eg}"
)
for pipeline in "${ablations[@]}"; do
  echo "    -> ${pipeline}"
  cargo run --release -q -p hida-opt --bin hida-opt -- \
    --workload two_mm --pipeline "${pipeline}" > /dev/null
done

echo "==> parallel determinism: --jobs 1 and --jobs 4 schedules/QoR must match"
strip_timing() { grep -v '^jobs:' | grep -vE ' us, ops |cache|workers'; }
jobs1=$(cargo run --release -q -p hida-opt --bin hida-opt -- \
  --workload two_mm --jobs 1 | strip_timing)
jobs4=$(cargo run --release -q -p hida-opt --bin hida-opt -- \
  --workload two_mm --jobs 4 | strip_timing)
if [[ "${jobs1}" != "${jobs4}" ]]; then
  echo "--jobs 1 and --jobs 4 outputs diverged"
  diff <(echo "${jobs1}") <(echo "${jobs4}") || true
  exit 1
fi

echo "==> analysis cache effectiveness (same ablation twice; both runs must report hits)"
for attempt in 1 2; do
  out=$(cargo run --release -q -p hida-opt --bin hida-opt -- \
    --workload two_mm --stats-json)
  if ! echo "${out}" | grep -q '"hits":[1-9]'; then
    echo "run ${attempt}: no analysis cache hits reported"
    echo "${out}" | tail -n 1
    exit 1
  fi
done

echo "CI OK"
