#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from the repository root.
# Mirrors .github/workflows/ci.yml so local runs match CI.
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --examples (not covered by plain cargo build)"
cargo build --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --benches -q -- --test (bench smoke run, 1 iteration each)"
cargo test --benches -q -- --test

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo test --doc (build + run the documentation examples)"
cargo test --doc -q

echo "==> hida-opt CLI ablation matrix on TwoMm (one pipeline string per variant)"
ablations=(
  "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
  "construct,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
  "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance"
  "construct,fusion,lower,tiling{factor=4},parallelize"
  "construct,lower,parallelize{max-factor=8,mode=Naive,device=zu3eg}"
  "construct,lower,profile,parallelize{max-factor=8,device=zu3eg}"
)
for pipeline in "${ablations[@]}"; do
  echo "    -> ${pipeline}"
  cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --pipeline "${pipeline}" > /dev/null
done

echo "==> parallel determinism: --jobs 1 and --jobs 4 schedules/QoR must match"
strip_timing() { grep -v '^jobs:' | grep -vE ' us, ops |cache|workers'; }
jobs1=$(cargo run --release -q -p hida --bin hida-opt -- \
  --workload two_mm --jobs 1 | strip_timing)
jobs4=$(cargo run --release -q -p hida --bin hida-opt -- \
  --workload two_mm --jobs 4 | strip_timing)
if [[ "${jobs1}" != "${jobs4}" ]]; then
  echo "--jobs 1 and --jobs 4 outputs diverged"
  diff <(echo "${jobs1}") <(echo "${jobs4}") || true
  exit 1
fi

echo "==> bench_ir smoke: every IR micro-bench once, harness must stay alive"
bench_ir_json=$(mktemp /tmp/BENCH_ir.XXXXXX.json)
cargo run --release -q -p hida-bench --bin bench_ir -- \
  --smoke --json "${bench_ir_json}"
cat "${bench_ir_json}"
rm -f "${bench_ir_json}"
if [[ -f BENCH_ir.json ]]; then
  echo "checked-in BENCH_ir.json:"
  cat BENCH_ir.json
fi

echo "==> analysis cache effectiveness (same ablation twice; both runs must report hits)"
for attempt in 1 2; do
  out=$(cargo run --release -q -p hida --bin hida-opt -- \
    --workload two_mm --stats-json)
  if ! echo "${out}" | grep -q '"hits":[1-9]'; then
    echo "run ${attempt}: no analysis cache hits reported"
    echo "${out}" | tail -n 1
    exit 1
  fi
done

echo "==> sweep smoke: reduced-grid fig10 (pooled vs sequential loop)"
sweep_json=$(mktemp /tmp/BENCH_sweep.XXXXXX.json)
cargo run --release -q -p hida-bench --bin fig10_ablation -- \
  --jobs 4 --sweep-json "${sweep_json}" > /dev/null
if ! grep -q '"qor_identical": true' "${sweep_json}"; then
  echo "pooled sweep QoR diverged from the sequential loop"
  cat "${sweep_json}"
  exit 1
fi
# Cross-point cache hits are asserted on a pool-of-1 engine run: with points
# compiling strictly in order the hit count is deterministic (concurrent
# points may legitimately race compute-before-publish on a shared entry).
cargo run --release -q -p hida-bench --bin fig10_ablation -- \
  --jobs 1 --sweep-json "${sweep_json}" > /dev/null
if ! grep -qE '"shared_cache": \{"hits": [1-9]' "${sweep_json}"; then
  echo "no cross-compilation estimate cache hits reported"
  cat "${sweep_json}"
  exit 1
fi
rm -f "${sweep_json}"

echo "==> hida-opt --sweep determinism: --jobs 1 and --jobs 4 QoR must match"
sweep_variants=$(mktemp /tmp/sweep_variants.XXXXXX.txt)
cat > "${sweep_variants}" <<'EOF'
construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize{max-factor=8,device=zu3eg}
construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize{max-factor=16,device=zu3eg}
construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize{max-factor=8,device=zu3eg}
construct,lower,parallelize{max-factor=8,mode=Naive,device=zu3eg}
EOF
strip_sweep_timing() { grep -vE '^jobs:|time:|cache|wall-clock'; }
sweep1=$(cargo run --release -q -p hida --bin hida-opt -- \
  --workload two_mm --sweep "${sweep_variants}" --jobs 1 | strip_sweep_timing)
sweep4=$(cargo run --release -q -p hida --bin hida-opt -- \
  --workload two_mm --sweep "${sweep_variants}" --jobs 4 | strip_sweep_timing)
if [[ "${sweep1}" != "${sweep4}" ]]; then
  echo "--sweep outputs diverged between --jobs 1 and --jobs 4"
  diff <(echo "${sweep1}") <(echo "${sweep4}") || true
  exit 1
fi
# The duplicated variant must hit the cross-compilation cache.
sweep_stats=$(cargo run --release -q -p hida --bin hida-opt -- \
  --workload two_mm --sweep "${sweep_variants}" --jobs 1 --stats-json 2> /dev/null)
if ! echo "${sweep_stats}" | grep -qE '"shared_cache_totals":\{"hits":[1-9]'; then
  echo "hida-opt --sweep reported no cross-compilation cache hits"
  echo "${sweep_stats}"
  exit 1
fi
rm -f "${sweep_variants}"

echo "CI OK"
