#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from the repository root.
# Mirrors .github/workflows/ci.yml so local runs match CI.
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --benches -q -- --test (bench smoke run, 1 iteration each)"
cargo test --benches -q -- --test

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> hida-opt CLI ablation matrix on TwoMm (one pipeline string per variant)"
ablations=(
  "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
  "construct,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
  "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance"
  "construct,fusion,lower,tiling{factor=4},parallelize"
  "construct,lower,parallelize{max-factor=8,mode=Naive,device=zu3eg}"
)
for pipeline in "${ablations[@]}"; do
  echo "    -> ${pipeline}"
  cargo run --release -q -p hida-opt --bin hida-opt -- \
    --workload two_mm --pipeline "${pipeline}" > /dev/null
done

echo "CI OK"
