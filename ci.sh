#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from the repository root.
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --benches -q -- --test (bench smoke run, 1 iteration each)"
cargo test --benches -q -- --test

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
