//! Criterion bench behind Table 8: HIDA compile-and-estimate time for DNN models.
//! The full Table 8 data is produced by the `table8_dnn` binary; the bench tracks the
//! compile-time scalability claim (the paper reports ~109 s average with Vitis HLS in
//! the loop; our flow is estimator-based and therefore much faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hida::{Compiler, Model, Workload};

fn bench_dnn_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8_dnn_compile");
    group.sample_size(10);
    for model in [Model::LeNet, Model::Mlp, Model::MobileNetV1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &model,
            |b, &m| {
                b.iter(|| {
                    Compiler::dnn_defaults()
                        .compile(Workload::Model(m))
                        .unwrap()
                        .estimate
                        .dsp_efficiency()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dnn_compile);
criterion_main!(benches);
