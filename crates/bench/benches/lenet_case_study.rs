//! Criterion bench behind Figure 1 / Table 2: the LeNet case study. Measures the
//! time to evaluate one manual design point (what the exhaustive search pays per
//! point) against the time for a full automated HIDA compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use hida::baselines::manual::{lenet_design_point, LenetConfig};
use hida::{Compiler, FpgaDevice, Model, Workload};

fn bench_lenet(c: &mut Criterion) {
    let device = FpgaDevice::pynq_z2();
    let mut group = c.benchmark_group("fig1_lenet_case_study");
    group.sample_size(10);
    group.bench_function("manual_design_point", |b| {
        b.iter(|| {
            lenet_design_point(LenetConfig::expert(), &device)
                .unwrap()
                .throughput()
        })
    });
    group.bench_function("hida_automated_compile", |b| {
        b.iter(|| {
            Compiler::dnn_defaults()
                .compile(Workload::Model(Model::LeNet))
                .unwrap()
                .estimate
                .throughput()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lenet);
criterion_main!(benches);
