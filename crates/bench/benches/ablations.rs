//! Ablation benches for the design choices called out in DESIGN.md §6:
//! task fusion on/off, structural balancing on/off, and the IA/CA parallelization
//! modes of Figure 11, all measured on a mid-size workload so relative effects are
//! visible in the criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hida::{Compiler, HidaOptions, Model, ParallelMode, PolybenchKernel, Workload};

fn throughput_with(options: HidaOptions, workload: Workload) -> f64 {
    Compiler::new(options)
        .compile(workload)
        .map(|r| r.estimate.throughput())
        .unwrap_or(0.0)
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("fusion_on", |b| {
        b.iter(|| {
            throughput_with(
                HidaOptions {
                    enable_fusion: true,
                    ..HidaOptions::dnn()
                },
                Workload::Model(Model::LeNet),
            )
        })
    });
    group.bench_function("fusion_off", |b| {
        b.iter(|| {
            throughput_with(
                HidaOptions {
                    enable_fusion: false,
                    ..HidaOptions::dnn()
                },
                Workload::Model(Model::LeNet),
            )
        })
    });
    group.bench_function("balancing_on", |b| {
        b.iter(|| {
            throughput_with(
                HidaOptions {
                    enable_balancing: true,
                    ..HidaOptions::polybench()
                },
                Workload::PolybenchSized(PolybenchKernel::ThreeMm, 32),
            )
        })
    });
    group.bench_function("balancing_off", |b| {
        b.iter(|| {
            throughput_with(
                HidaOptions {
                    enable_balancing: false,
                    ..HidaOptions::polybench()
                },
                Workload::PolybenchSized(PolybenchKernel::ThreeMm, 32),
            )
        })
    });
    for mode in [ParallelMode::IaCa, ParallelMode::Naive] {
        group.bench_with_input(
            BenchmarkId::new("parallel_mode", mode.label()),
            &mode,
            |b, &m| {
                b.iter(|| {
                    throughput_with(
                        HidaOptions {
                            mode: m,
                            ..HidaOptions::dnn()
                        },
                        Workload::Model(Model::LeNet),
                    )
                })
            },
        );
    }
    group.finish();

    // One-shot printed comparison used by EXPERIMENTS.md.
    let iaca = throughput_with(
        HidaOptions {
            mode: ParallelMode::IaCa,
            max_parallel_factor: 64,
            ..HidaOptions::dnn()
        },
        Workload::Model(Model::LeNet),
    );
    let naive = throughput_with(
        HidaOptions {
            mode: ParallelMode::Naive,
            max_parallel_factor: 64,
            ..HidaOptions::dnn()
        },
        Workload::Model(Model::LeNet),
    );
    println!("LeNet @pf=64: IA+CA {iaca:.1} samples/s vs Naive {naive:.1} samples/s");
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
