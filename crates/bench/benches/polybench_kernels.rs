//! Criterion bench behind Table 7: HIDA compile-and-estimate time per PolyBench
//! kernel, plus the throughput ratio over the Vitis-only baseline printed once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hida::ir::Context;
use hida::{Compiler, FpgaDevice, PolybenchKernel, Workload};

fn bench_polybench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7_polybench_compile");
    group.sample_size(10);
    for kernel in [
        PolybenchKernel::TwoMm,
        PolybenchKernel::Atax,
        PolybenchKernel::Mvt,
        PolybenchKernel::Gesummv,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &k| {
                b.iter(|| {
                    Compiler::polybench_defaults()
                        .compile(Workload::PolybenchSized(k, 32))
                        .unwrap()
                        .estimate
                        .throughput()
                });
            },
        );
    }
    group.finish();

    // One-shot sanity print: HIDA vs Vitis on 2mm (the Table 7 headline comparison).
    let device = FpgaDevice::zu3eg();
    let hida = Compiler::polybench_defaults()
        .compile(Workload::PolybenchSized(PolybenchKernel::TwoMm, 64))
        .unwrap();
    let mut ctx = Context::new();
    let module = ctx.create_module("vitis");
    let func =
        hida::frontend::polybench::build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 64);
    let vitis = hida::baselines::vitis::estimate(&mut ctx, func, &device);
    println!(
        "2mm: HIDA {:.1} samples/s vs Vitis {:.1} samples/s ({:.1}x)",
        hida.estimate.throughput(),
        vitis.throughput(),
        hida.estimate.speedup_over(&vitis)
    );
}

criterion_group!(benches, bench_polybench);
criterion_main!(benches);
