//! Shared helpers for the benchmark harnesses that regenerate every table and figure
//! of the paper's evaluation (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded results).
//!
//! Beyond table printing, this crate hosts the pieces every bench binary now
//! shares instead of re-implementing:
//!
//! * [`variants`] — the pipeline-string builders behind the figure/table
//!   ablations (one source of truth for the swept flows),
//! * [`SweepRunner`] — the harness that drives a list of design points
//!   through the sweep engine ([`hida::SweepEngine`]), compares the pooled
//!   shared-cache run against the sequential share-nothing loop, and emits
//!   the `BENCH_sweep.json` perf-trajectory artifact.

pub mod variants;

mod sweep_runner;
pub use sweep_runner::{SweepComparison, SweepRunner};

use hida::{DesignEstimate, FpgaDevice};

/// One row of a printed comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name (kernel or model).
    pub name: String,
    /// Labelled throughput columns, in samples per second.
    pub columns: Vec<(String, Option<f64>)>,
}

/// Prints a markdown-style table with a throughput column per flow plus speedup
/// ratios of the first column over the others.
pub fn print_throughput_table(title: &str, rows: &[Row]) {
    println!("\n## {title}\n");
    if rows.is_empty() {
        return;
    }
    let headers: Vec<String> = rows[0].columns.iter().map(|(h, _)| h.clone()).collect();
    println!("| workload | {} |", headers.join(" | "));
    println!(
        "|---|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let cells: Vec<String> = row
            .columns
            .iter()
            .map(|(_, v)| match v {
                Some(x) => format!("{x:.2}"),
                None => "-".to_string(),
            })
            .collect();
        println!("| {} | {} |", row.name, cells.join(" | "));
    }
    // Geometric-mean speedups of column 0 over every other column.
    for other in 1..headers.len() {
        let ratios: Vec<f64> = rows
            .iter()
            .filter_map(|r| match (r.columns[0].1, r.columns[other].1) {
                (Some(a), Some(b)) if b > 0.0 => Some(a / b),
                _ => None,
            })
            .collect();
        if !ratios.is_empty() {
            println!(
                "geomean speedup of {} over {}: {:.2}x ({} workloads)",
                headers[0],
                headers[other],
                geomean(&ratios),
                ratios.len()
            );
        }
    }
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Formats a design estimate as one summary line.
pub fn summary_line(label: &str, estimate: &DesignEstimate, device: &FpgaDevice) -> String {
    format!(
        "{label}: {:.2} samples/s, DSP {}({:.0}%), BRAM {}({:.0}%), LUT {}, eff {:.1}%",
        estimate.throughput(),
        estimate.resources.dsp,
        100.0 * estimate.resources.dsp as f64 / device.dsp.max(1) as f64,
        estimate.resources.bram_18k,
        100.0 * estimate.resources.bram_18k as f64 / device.bram_18k.max(1) as f64,
        estimate.resources.lut,
        100.0 * estimate.dsp_efficiency()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn rows_print_without_panicking() {
        print_throughput_table(
            "test",
            &[Row {
                name: "k".into(),
                columns: vec![
                    ("hida".into(), Some(2.0)),
                    ("vitis".into(), Some(1.0)),
                    ("none".into(), None),
                ],
            }],
        );
    }
}
