//! Regenerates Figure 11: IA/CA parallelization ablation on ResNet-18.
//!
//! For each strategy (IA+CA, IA-only, CA-only, Naive) and each maximum parallel
//! factor, reports DSP count, BRAM count and throughput. Pass `--full` for the full
//! factor sweep.
//!
//! The ablation axis is plain pass configuration: every design point runs the
//! declarative pipeline from `Pipeline::from_options`, whose `hida-parallelize`
//! pass instance carries the mode, as the recorded pass statistics show.

use hida::{Compiler, HidaOptions, Model, ParallelMode, Workload};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let parallel_factors: Vec<i64> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![4, 32, 64]
    };
    let modes = [
        ParallelMode::IaCa,
        ParallelMode::IaOnly,
        ParallelMode::CaOnly,
        ParallelMode::Naive,
    ];

    println!("# Figure 11 — ResNet-18 IA/CA ablation (VU9P SLR)");
    println!("mode, parallel_factor, dsp, bram_18k, throughput_samples_per_s");
    for &mode in &modes {
        for &pf in &parallel_factors {
            let options = HidaOptions {
                max_parallel_factor: pf,
                mode,
                ..HidaOptions::dnn()
            };
            let result = Compiler::new(options)
                .compile(Workload::Model(Model::ResNet18))
                .expect("resnet compilation");
            println!(
                "{}, {pf}, {}, {}, {:.3}",
                mode.label(),
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
        }
    }

    // The mode is carried as an option of the hida-parallelize pass instance.
    let sample = Compiler::new(HidaOptions {
        mode: ParallelMode::CaOnly,
        ..HidaOptions::dnn()
    })
    .compile(Workload::Model(Model::LeNet))
    .expect("lenet compilation");
    println!("\n# Pipeline of the CA-only variant");
    for stat in &sample.pass_statistics {
        println!("{stat}");
    }
}
