//! Regenerates Figure 11: IA/CA parallelization ablation on ResNet-18.
//!
//! For each strategy (IA+CA, IA-only, CA-only, Naive) and each maximum parallel
//! factor, reports DSP count, BRAM count and throughput. Pass `--full` for the full
//! factor sweep.
//!
//! The ablation axis is a *pipeline string* built by the shared
//! [`hida_bench::variants::fig11`] helper: each variant is the full DNN flow
//! with the strategy carried in the `parallelize{mode=...}` pass option. The
//! design points fan out through the [`SweepRunner`] pool with cross-
//! compilation estimate sharing; per-point results are identical to the old
//! sequential loop by construction (the fig10 harness and CI enforce it).

use hida::{Compiler, HidaOptions, Model, ParallelMode, SweepPoint, Workload};
use hida_bench::{variants, SweepRunner};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let parallel_factors: Vec<i64> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![4, 32, 64]
    };
    let modes = [
        ParallelMode::IaCa,
        ParallelMode::IaOnly,
        ParallelMode::CaOnly,
        ParallelMode::Naive,
    ];

    let mut runner = SweepRunner::new(if full { "fig11-full" } else { "fig11-reduced" });
    for &mode in &modes {
        for &pf in &parallel_factors {
            runner = runner.point(
                SweepPoint::new(
                    format!("{}-pf{pf}", mode.label()),
                    Workload::Model(Model::ResNet18),
                    HidaOptions::dnn(),
                )
                .with_pipeline(variants::fig11(mode, pf)),
            );
        }
    }
    let outcome = runner.run(hida::ir::default_jobs());

    println!("# Figure 11 — ResNet-18 IA/CA ablation (VU9P SLR)");
    println!("mode, parallel_factor, dsp, bram_18k, throughput_samples_per_s");
    let mut index = 0;
    for &mode in &modes {
        for &pf in &parallel_factors {
            let point = &outcome.points[index];
            index += 1;
            let result = point.result.as_ref().expect("resnet compilation");
            println!(
                "{}, {pf}, {}, {}, {:.3}",
                mode.label(),
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
        }
    }
    if let Some(cache) = &outcome.shared_cache {
        println!(
            "\n# Sweep: {} points in {:.3}s ({} concurrent), estimate cache {cache}",
            outcome.points.len(),
            outcome.wall_seconds,
            outcome.budget.pool_jobs
        );
    }

    // The mode is plain pass configuration inside the pipeline string.
    let sample = variants::fig11(ParallelMode::CaOnly, 256);
    println!("\n# Pipeline of the CA-only variant\n{sample}");
    let result = Compiler::new(HidaOptions::dnn())
        .with_pipeline(sample)
        .compile(Workload::Model(Model::LeNet))
        .expect("lenet compilation");
    for stat in &result.pass_statistics {
        println!("{stat}");
    }
}
