//! Regenerates Figure 11: IA/CA parallelization ablation on ResNet-18.
//!
//! For each strategy (IA+CA, IA-only, CA-only, Naive) and each maximum parallel
//! factor, reports DSP count, BRAM count and throughput. Pass `--full` for the full
//! factor sweep.
//!
//! The ablation axis is a *pipeline string*: each variant is the full DNN flow
//! with the strategy carried in the `parallelize{mode=...}` pass option — the
//! same text the `hida-opt` CLI accepts — as the printed pipeline of the sample
//! variant shows.

use hida::{Compiler, HidaOptions, Model, ParallelMode, Workload};

/// The Figure 11 variant: the full DNN flow with the ablated parallelization
/// mode and the swept parallel factor as pass options.
fn variant(mode: ParallelMode, parallel_factor: i64) -> String {
    format!(
        "construct,fusion,lower,multi-producer-elim,\
         tiling{{factor=16,external-threshold-bytes=65536}},\
         balance{{external-threshold-bytes=65536}},\
         parallelize{{max-factor={parallel_factor},mode={},device=vu9p-slr}}",
        mode.label()
    )
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let parallel_factors: Vec<i64> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![4, 32, 64]
    };
    let modes = [
        ParallelMode::IaCa,
        ParallelMode::IaOnly,
        ParallelMode::CaOnly,
        ParallelMode::Naive,
    ];

    println!("# Figure 11 — ResNet-18 IA/CA ablation (VU9P SLR)");
    println!("mode, parallel_factor, dsp, bram_18k, throughput_samples_per_s");
    for &mode in &modes {
        for &pf in &parallel_factors {
            let result = Compiler::new(HidaOptions::dnn())
                .with_pipeline(variant(mode, pf))
                .compile(Workload::Model(Model::ResNet18))
                .expect("resnet compilation");
            println!(
                "{}, {pf}, {}, {}, {:.3}",
                mode.label(),
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
        }
    }

    // The mode is plain pass configuration inside the pipeline string.
    let sample = variant(ParallelMode::CaOnly, 256);
    println!("\n# Pipeline of the CA-only variant\n{sample}");
    let result = Compiler::new(HidaOptions::dnn())
        .with_pipeline(sample)
        .compile(Workload::Model(Model::LeNet))
        .expect("lenet compilation");
    for stat in &result.pass_statistics {
        println!("{stat}");
    }
}
