//! Regenerates Figure 1 and Table 2: the LeNet case study on the PYNQ-Z2 board.
//!
//! Sweeps the manual design space of Table 1 with and without dataflow, prints every
//! point in the throughput/resource plane, extracts the Pareto frontiers, and
//! compares the expert design, the best exhaustive design and the HIDA design.
//! Pass `--full` to sweep the entire space (slower); the default uses a stride-2
//! subsample which preserves the Pareto structure.

use hida::baselines::manual::{lenet_design_point, LenetConfig};
use hida::{Compiler, FpgaDevice, Model, Workload};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let device = FpgaDevice::pynq_z2();

    let space = LenetConfig::search_space();
    // The search space alternates dataflow=false/true in consecutive entries, so the
    // subsample keeps pairs of entries to retain both settings.
    let step = if full { 2 } else { 8 };
    let mut points = Vec::new();
    for (i, config) in space.iter().enumerate() {
        if i % step >= 2 {
            continue;
        }
        if let Ok(estimate) = lenet_design_point(*config, &device) {
            points.push((*config, estimate));
        }
    }

    println!(
        "# Figure 1 — LeNet design space (PYNQ-Z2), {} points",
        points.len()
    );
    println!("dataflow, utilization, throughput_img_per_s");
    for (config, estimate) in &points {
        println!(
            "{}, {:.4}, {:.1}",
            if config.dataflow { "df" } else { "nodf" },
            estimate.utilization,
            estimate.throughput()
        );
    }

    // Pareto frontiers and best feasible designs.
    let best = |dataflow: bool| {
        points
            .iter()
            .filter(|(c, e)| c.dataflow == dataflow && e.utilization <= 1.0)
            .max_by(|a, b| a.1.throughput().partial_cmp(&b.1.throughput()).unwrap())
    };
    let best_df = best(true);
    let best_nodf = best(false);
    if let (Some((_, df)), Some((_, nodf))) = (&best_df, &best_nodf) {
        println!(
            "\nbest dataflow design: {:.1} img/s at {:.0}% util; best non-dataflow: {:.1} img/s ({:.2}x gap)",
            df.throughput(),
            100.0 * df.utilization,
            nodf.throughput(),
            df.throughput() / nodf.throughput()
        );
    }

    // Table 2: expert vs exhaustive vs HIDA.
    let expert = lenet_design_point(LenetConfig::expert(), &device).expect("expert design");
    let hida = Compiler::new(hida::HidaOptions {
        max_parallel_factor: 16,
        device: device.clone(),
        ..hida::HidaOptions::dnn()
    })
    .compile(Workload::Model(Model::LeNet))
    .expect("hida design");

    println!("\n# Table 2 — LeNet summary");
    println!(
        "expert:     {:>10.1} img/s  util {:.1}%  (development: ~40 hours in the paper)",
        expert.throughput(),
        100.0 * expert.utilization
    );
    if let Some((_, best)) = best_df {
        println!(
            "exhaustive: {:>10.1} img/s  util {:.1}%  (~210 hours in the paper)",
            best.throughput(),
            100.0 * best.utilization
        );
    }
    println!(
        "hida:       {:>10.1} img/s  util {:.1}%  (compile time here: {:.1} s)",
        hida.estimate.throughput(),
        100.0 * hida.estimate.utilization,
        hida.compile_seconds
    );
}
