//! Regenerates Table 8: DNN models compiled with HIDA vs DNNBuilder and ScaleHLS on
//! one VU9P SLR, reporting throughput and DSP efficiency.

use hida::estimator::dataflow::DataflowEstimator;
use hida::ir::Context;
use hida::{Compiler, FpgaDevice, Model, Workload};
use hida_bench::{print_throughput_table, Row};

fn main() {
    let device = FpgaDevice::vu9p_slr();
    // Per-node pass work and estimation parallelize across the machine; the
    // merge order is deterministic, so the reported numbers are unchanged.
    let jobs = hida::ir::default_jobs();
    let estimator = DataflowEstimator::new(device.clone()).with_jobs(jobs);
    let mut throughput_rows = Vec::new();
    let mut efficiency_rows = Vec::new();

    println!("# Table 8 — DNN models on one VU9P SLR");
    for model in Model::table8() {
        let result = Compiler::dnn_defaults()
            .with_jobs(jobs)
            .compile(Workload::Model(model))
            .expect("hida compilation");
        let hida_est = &result.estimate;

        // ScaleHLS baseline (only for the models it supports).
        let scalehls = if hida::baselines::scalehls::supports(model) {
            let mut ctx = Context::new();
            let module = ctx.create_module("scalehls");
            let func = hida::frontend::nn::build_model(&mut ctx, module, model);
            let schedule =
                hida::baselines::scalehls::compile(&mut ctx, func, &device, 64).expect("scalehls");
            Some(estimator.estimate_schedule(&ctx, schedule, true))
        } else {
            None
        };

        // DNNBuilder analytic model (only for the models it supports).
        let dnnbuilder =
            hida::baselines::dnnbuilder::estimate(model, hida_est.macs_per_sample, &device);

        println!(
            "{:<12} compile {:>6.1}s LUT {:<8} DSP {:<5} | hida {:>9.2} sps ({:>5.1}% eff) | dnnbuilder {} | scalehls {}",
            model.name(),
            result.compile_seconds,
            hida_est.resources.lut,
            hida_est.resources.dsp,
            hida_est.throughput(),
            100.0 * hida_est.dsp_efficiency(),
            dnnbuilder
                .as_ref()
                .map(|d| format!("{:.2} sps ({:.1}% eff)", d.throughput(), 100.0 * d.dsp_efficiency()))
                .unwrap_or_else(|| "unsupported".into()),
            scalehls
                .as_ref()
                .map(|d| format!("{:.2} sps ({:.1}% eff)", d.throughput(), 100.0 * d.dsp_efficiency()))
                .unwrap_or_else(|| "unsupported".into()),
        );

        throughput_rows.push(Row {
            name: model.name().to_string(),
            columns: vec![
                ("HIDA".into(), Some(hida_est.throughput())),
                (
                    "DNNBuilder".into(),
                    dnnbuilder.as_ref().map(|d| d.throughput()),
                ),
                ("ScaleHLS".into(), scalehls.as_ref().map(|d| d.throughput())),
            ],
        });
        efficiency_rows.push(Row {
            name: model.name().to_string(),
            columns: vec![
                ("HIDA".into(), Some(hida_est.dsp_efficiency())),
                (
                    "DNNBuilder".into(),
                    dnnbuilder.as_ref().map(|d| d.dsp_efficiency()),
                ),
                (
                    "ScaleHLS".into(),
                    scalehls.as_ref().map(|d| d.dsp_efficiency()),
                ),
            ],
        });
    }
    print_throughput_table("Table 8 throughput (samples/s)", &throughput_rows);
    print_throughput_table("Table 8 DSP efficiency", &efficiency_rows);
}
