//! Regenerates Table 8: DNN models compiled with HIDA vs DNNBuilder and ScaleHLS on
//! one VU9P SLR, reporting throughput and DSP efficiency.
//!
//! The independent HIDA compilations (one per model) fan out through the
//! [`SweepRunner`] pool; layers repeated across models (and within them) share
//! their QoR estimates through the cross-compilation cache. Per-point results
//! are identical to the old sequential loop — the merge order is
//! deterministic and the estimate cache is content-addressed.

use hida::estimator::dataflow::DataflowEstimator;
use hida::ir::Context;
use hida::{FpgaDevice, HidaOptions, Model, SweepPoint, Workload};
use hida_bench::{print_throughput_table, Row, SweepRunner};

fn main() {
    let device = FpgaDevice::vu9p_slr();
    let jobs = hida::ir::default_jobs();
    let estimator = DataflowEstimator::new(device.clone()).with_jobs(jobs);
    let mut throughput_rows = Vec::new();
    let mut efficiency_rows = Vec::new();

    // All HIDA design points at once: one per model, pooled.
    let models = Model::table8();
    let runner =
        SweepRunner::new("table8-dnn").points(models.iter().map(|&model| {
            SweepPoint::new(model.name(), Workload::Model(model), HidaOptions::dnn())
        }));
    let outcome = runner.run(jobs);

    println!("# Table 8 — DNN models on one VU9P SLR");
    for (model, point) in models.iter().zip(&outcome.points) {
        let model = *model;
        let result = point.result.as_ref().expect("hida compilation");
        let hida_est = &result.estimate;

        // ScaleHLS baseline (only for the models it supports).
        let scalehls = if hida::baselines::scalehls::supports(model) {
            let mut ctx = Context::new();
            let module = ctx.create_module("scalehls");
            let func = hida::frontend::nn::build_model(&mut ctx, module, model);
            let schedule =
                hida::baselines::scalehls::compile(&mut ctx, func, &device, 64).expect("scalehls");
            Some(estimator.estimate_schedule(&ctx, schedule, true))
        } else {
            None
        };

        // DNNBuilder analytic model (only for the models it supports).
        let dnnbuilder =
            hida::baselines::dnnbuilder::estimate(model, hida_est.macs_per_sample, &device);

        println!(
            "{:<12} compile {:>6.1}s LUT {:<8} DSP {:<5} | hida {:>9.2} sps ({:>5.1}% eff) | dnnbuilder {} | scalehls {}",
            model.name(),
            point.seconds,
            hida_est.resources.lut,
            hida_est.resources.dsp,
            hida_est.throughput(),
            100.0 * hida_est.dsp_efficiency(),
            dnnbuilder
                .as_ref()
                .map(|d| format!("{:.2} sps ({:.1}% eff)", d.throughput(), 100.0 * d.dsp_efficiency()))
                .unwrap_or_else(|| "unsupported".into()),
            scalehls
                .as_ref()
                .map(|d| format!("{:.2} sps ({:.1}% eff)", d.throughput(), 100.0 * d.dsp_efficiency()))
                .unwrap_or_else(|| "unsupported".into()),
        );

        throughput_rows.push(Row {
            name: model.name().to_string(),
            columns: vec![
                ("HIDA".into(), Some(hida_est.throughput())),
                (
                    "DNNBuilder".into(),
                    dnnbuilder.as_ref().map(|d| d.throughput()),
                ),
                ("ScaleHLS".into(), scalehls.as_ref().map(|d| d.throughput())),
            ],
        });
        efficiency_rows.push(Row {
            name: model.name().to_string(),
            columns: vec![
                ("HIDA".into(), Some(hida_est.dsp_efficiency())),
                (
                    "DNNBuilder".into(),
                    dnnbuilder.as_ref().map(|d| d.dsp_efficiency()),
                ),
                (
                    "ScaleHLS".into(),
                    scalehls.as_ref().map(|d| d.dsp_efficiency()),
                ),
            ],
        });
    }
    print_throughput_table("Table 8 throughput (samples/s)", &throughput_rows);
    print_throughput_table("Table 8 DSP efficiency", &efficiency_rows);
    if let Some(cache) = &outcome.shared_cache {
        println!(
            "\nsweep: {} models in {:.3}s ({} concurrent), estimate cache {cache}",
            outcome.points.len(),
            outcome.wall_seconds,
            outcome.budget.pool_jobs
        );
    }
}
