//! Regenerates Table 7: PolyBench C++ kernels compiled with HIDA vs the ScaleHLS,
//! SOFF and Vitis-only baselines on the ZU3EG device.
//!
//! The independent HIDA compilations (one per kernel) fan out through the
//! [`SweepRunner`] pool with cross-compilation estimate sharing; the analytic
//! baselines then run sequentially against the same estimator.

use hida::estimator::dataflow::DataflowEstimator;
use hida::ir::Context;
use hida::{FpgaDevice, HidaOptions, PolybenchKernel, SweepPoint, Workload};
use hida_bench::{print_throughput_table, Row, SweepRunner};

fn main() {
    let device = FpgaDevice::zu3eg();
    let estimator = DataflowEstimator::new(device.clone());
    let mut rows = Vec::new();

    // All HIDA design points at once: one per kernel, pooled.
    let kernels = PolybenchKernel::all();
    let runner = SweepRunner::new("table7-polybench").points(kernels.iter().map(|&kernel| {
        SweepPoint::new(
            kernel.name(),
            Workload::PolybenchSized(kernel, kernel.default_size()),
            HidaOptions::polybench(),
        )
    }));
    let outcome = runner.run(hida::ir::default_jobs());

    println!("# Table 7 — PolyBench kernels on ZU3EG (throughput in samples/s)");
    for (kernel, point) in kernels.iter().zip(&outcome.points) {
        let kernel = *kernel;
        let n = kernel.default_size();
        let result = point.result.as_ref().expect("hida compilation");
        let hida_est = &result.estimate;

        // ScaleHLS-style baseline.
        let mut ctx = Context::new();
        let module = ctx.create_module("scalehls");
        let func = hida::frontend::polybench::build_kernel(&mut ctx, module, kernel, n);
        let scale_schedule =
            hida::baselines::scalehls::compile(&mut ctx, func, &device, 16).expect("scalehls");
        let scale_est = estimator.estimate_schedule(&ctx, scale_schedule, true);

        // SOFF-style baseline.
        let mut ctx = Context::new();
        let module = ctx.create_module("soff");
        let func = hida::frontend::polybench::build_kernel(&mut ctx, module, kernel, n);
        let soff_est = hida::baselines::soff::estimate(&mut ctx, func, &device);

        // Vitis-only baseline.
        let mut ctx = Context::new();
        let module = ctx.create_module("vitis");
        let func = hida::frontend::polybench::build_kernel(&mut ctx, module, kernel, n);
        let vitis_est = hida::baselines::vitis::estimate(&mut ctx, func, &device);

        println!(
            "{:<12} compile {:.2}s  LUT {:<7} FF {:<7} DSP {:<4} | hida {:>12.2}  scalehls {:>12.2}  soff {:>12.2}  vitis {:>12.2}",
            kernel.name(),
            point.seconds,
            hida_est.resources.lut,
            hida_est.resources.ff,
            hida_est.resources.dsp,
            hida_est.throughput(),
            scale_est.throughput(),
            soff_est.throughput(),
            vitis_est.throughput(),
        );
        rows.push(Row {
            name: kernel.name().to_string(),
            columns: vec![
                ("HIDA".into(), Some(hida_est.throughput())),
                ("ScaleHLS".into(), Some(scale_est.throughput())),
                ("SOFF".into(), Some(soff_est.throughput())),
                ("Vitis".into(), Some(vitis_est.throughput())),
            ],
        });
    }
    print_throughput_table("Table 7 summary", &rows);
    if let Some(cache) = &outcome.shared_cache {
        println!(
            "\nsweep: {} kernels in {:.3}s ({} concurrent), estimate cache {cache}",
            outcome.points.len(),
            outcome.wall_seconds,
            outcome.budget.pool_jobs
        );
    }
}
