//! Regenerates Tables 4, 5 and 6: connection maps, parallelization results and array
//! partition results for the Listing 1 running example.

use hida::dialects::transforms;
use hida::ir::Context;
use hida::opt::{construct, lower, parallelize, ParallelMode};
use hida::FpgaDevice;

fn fmt_perm(perm: &[Option<usize>]) -> String {
    let cells: Vec<String> = perm
        .iter()
        .map(|p| p.map(|i| i.to_string()).unwrap_or_else(|| "∅".into()))
        .collect();
    format!("[{}]", cells.join(", "))
}

fn fmt_scale(scale: &[Option<f64>]) -> String {
    let cells: Vec<String> = scale
        .iter()
        .map(|p| p.map(|s| format!("{s}")).unwrap_or_else(|| "∅".into()))
        .collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let device = FpgaDevice::pynq_z2();

    // Table 4: connection analysis.
    let mut ctx = Context::new();
    let module = ctx.create_module("listing1");
    let l1 = hida::frontend::listing1::build_listing1(&mut ctx, module);
    construct::construct_functional_dataflow(&mut ctx, l1.func).unwrap();
    let schedule = lower::lower_to_structural(&mut ctx, l1.func).unwrap();
    let connections = parallelize::analyze_connections(&ctx, schedule);
    println!("# Table 4 — node connections of Listing 1");
    println!("source -> target | S-to-T perm | T-to-S perm | S-to-T scale | T-to-S scale");
    for c in &connections {
        println!(
            "{} -> {} | {} | {} | {} | {}",
            c.source.name(&ctx),
            c.target.name(&ctx),
            fmt_perm(&c.s_to_t_perm),
            fmt_perm(&c.t_to_s_perm),
            fmt_scale(&c.s_to_t_scale),
            fmt_scale(&c.t_to_s_scale),
        );
    }

    // Tables 5 and 6: parallelization and partitioning per mode, max parallel factor 32.
    for mode in [
        ParallelMode::IaCa,
        ParallelMode::IaOnly,
        ParallelMode::CaOnly,
        ParallelMode::Naive,
    ] {
        let mut ctx = Context::new();
        let module = ctx.create_module("listing1");
        let l1 = hida::frontend::listing1::build_listing1(&mut ctx, module);
        construct::construct_functional_dataflow(&mut ctx, l1.func).unwrap();
        let schedule = lower::lower_to_structural(&mut ctx, l1.func).unwrap();
        parallelize::parallelize_schedule(&mut ctx, schedule, 32, mode, &device).unwrap();

        println!("\n# Table 5 ({}) — node parallelization", mode.label());
        for node in schedule.nodes(&ctx) {
            let rank = hida::dialects::analysis::profile_body(&ctx, node.id())
                .loop_dims
                .len();
            println!(
                "{:<10} intensity {:<8} parallel factor {:<4} unroll {:?}",
                node.name(&ctx),
                ctx.op(node.id()).attr_int("intensity").unwrap_or(0),
                ctx.op(node.id()).attr_int("parallel_factor").unwrap_or(0),
                transforms::unroll_factors_of(&ctx, node.id(), rank),
            );
        }
        println!("# Table 6 ({}) — array partitions", mode.label());
        for buffer in schedule.internal_buffers(&ctx) {
            let p = buffer.partition(&ctx);
            println!(
                "array {:<6} factors {:?} banks {}",
                buffer.name(&ctx),
                p.factors,
                p.bank_count()
            );
        }
    }
}
