//! Regenerates Tables 4, 5 and 6: connection maps, parallelization results and array
//! partition results for the Listing 1 running example.
//!
//! Each table is produced by a *pipeline string* parsed through the pass
//! registry — the same text the `hida-opt` CLI accepts: Table 4 runs
//! `construct,lower` and analyzes the resulting schedule; Tables 5 and 6 append
//! a `parallelize{mode=...}` invocation carrying the ablated parallelization
//! mode. Per-pass statistics of the executed pipelines are printed at the end.

use hida::dialects::transforms;
use hida::ir::Context;
use hida::opt::{parallelize, ParallelMode};
use hida::{registry, PassStatistics, Pipeline};

fn fmt_perm(perm: &[Option<usize>]) -> String {
    let cells: Vec<String> = perm
        .iter()
        .map(|p| p.map(|i| i.to_string()).unwrap_or_else(|| "∅".into()))
        .collect();
    format!("[{}]", cells.join(", "))
}

fn fmt_scale(scale: &[Option<f64>]) -> String {
    let cells: Vec<String> = scale
        .iter()
        .map(|p| p.map(|s| format!("{s}")).unwrap_or_else(|| "∅".into()))
        .collect();
    format!("[{}]", cells.join(", "))
}

/// The construct→lower pipeline shared by every table (Table 4 stops here).
const STRUCTURAL_PIPELINE: &str = "construct,lower";

/// The Table 5/6 pipeline variant: structural lowering plus a parallelization
/// invocation carrying the ablated mode.
fn parallelizing_variant(mode: ParallelMode) -> String {
    format!(
        "{STRUCTURAL_PIPELINE},parallelize{{max-factor=32,mode={},device=pynq-z2}}",
        mode.label()
    )
}

/// Parses one variant through the HIDA pass registry.
fn pipeline_of(text: &str) -> Pipeline {
    Pipeline::parse(&registry(), text).expect("variant pipeline parses")
}

fn listing1_schedule(
    pipeline: &mut Pipeline,
) -> (Context, hida::dataflow_ir::structural::ScheduleOp) {
    let mut ctx = Context::new();
    let module = ctx.create_module("listing1");
    let l1 = hida::frontend::listing1::build_listing1(&mut ctx, module);
    let schedule = pipeline.run(&mut ctx, l1.func).unwrap();
    (ctx, schedule)
}

fn print_statistics(title: &str, statistics: &[PassStatistics]) {
    println!("\n# Pipeline statistics — {title}");
    for stat in statistics {
        println!("{stat}");
    }
}

fn main() {
    // Table 4: connection analysis over the un-parallelized structural dataflow.
    let mut pipeline = pipeline_of(STRUCTURAL_PIPELINE);
    let (ctx, schedule) = listing1_schedule(&mut pipeline);
    // Reuse the analysis cache the pipeline's passes populated: the node
    // profiles behind the connection maps were already computed during lowering.
    let connections = parallelize::analyze_connections(&ctx, pipeline.analyses_mut(), schedule);
    println!("# Table 4 — node connections of Listing 1");
    println!("source -> target | S-to-T perm | T-to-S perm | S-to-T scale | T-to-S scale");
    for c in &connections {
        println!(
            "{} -> {} | {} | {} | {} | {}",
            c.source.name(&ctx),
            c.target.name(&ctx),
            fmt_perm(&c.s_to_t_perm),
            fmt_perm(&c.t_to_s_perm),
            fmt_scale(&c.s_to_t_scale),
            fmt_scale(&c.t_to_s_scale),
        );
    }
    print_statistics("construct→lower", pipeline.statistics());

    // Tables 5 and 6: parallelization and partitioning per mode, max parallel factor 32.
    for mode in [
        ParallelMode::IaCa,
        ParallelMode::IaOnly,
        ParallelMode::CaOnly,
        ParallelMode::Naive,
    ] {
        let variant = parallelizing_variant(mode);
        let mut pipeline = pipeline_of(&variant);
        println!("\n# Variant pipeline ({}): {variant}", mode.label());
        let (ctx, schedule) = listing1_schedule(&mut pipeline);

        println!("\n# Table 5 ({}) — node parallelization", mode.label());
        for node in schedule.nodes(&ctx) {
            let rank = pipeline
                .analyses_mut()
                .get::<hida::dialects::analysis::ComputeProfile>(&ctx, node.id())
                .loop_dims
                .len();
            println!(
                "{:<10} intensity {:<8} parallel factor {:<4} unroll {:?}",
                node.name(&ctx),
                ctx.op(node.id()).attr_int("intensity").unwrap_or(0),
                ctx.op(node.id()).attr_int("parallel_factor").unwrap_or(0),
                transforms::unroll_factors_of(&ctx, node.id(), rank),
            );
        }
        println!("# Table 6 ({}) — array partitions", mode.label());
        for buffer in schedule.internal_buffers(&ctx) {
            let p = buffer.partition(&ctx);
            println!(
                "array {:<6} factors {:?} banks {}",
                buffer.name(&ctx),
                p.factors,
                p.bank_count()
            );
        }
        print_statistics(mode.label(), pipeline.statistics());
    }
}
