//! Adaptive DSE benchmark: Pareto-frontier explorer vs the exhaustive grid.
//!
//! Runs the Figure 10 reduced grid (ResNet-18, parallel factor x tile size)
//! twice: once exhaustively through the sweep engine, and once through the
//! guided [`Explorer`], which pre-scores every candidate with a sound
//! surrogate bound and skips points that are already dominated. The two arms
//! use *separate* fresh estimate caches — sharing one would let the explorer's
//! probes hit the exhaustive arm's results and fake the savings.
//!
//! The report (`BENCH_dse.json`, override with `--json <path>`) extends the
//! `BENCH_sweep.json` schema with the discovered `frontier`, the per-generation
//! explorer counters, `compiles_saved` and `frontier_coverage`: the fraction
//! of the exhaustive grid's Pareto frontier the explorer recovered. The
//! process exits nonzero unless coverage is 1.0 with strictly fewer
//! compilations than the grid — the CI `dse` stage gates on exactly that.
//!
//! `--full` runs the paper's full 9x5 grid; `--budget <n>` caps the explorer's
//! compilations; `--seed <n>` reseeds the lattice walk; `--jobs <n>` caps the
//! total worker-thread budget of both arms.

use hida::sweep::{json_escape, JobBudget, SweepEngine, SweepPoint};
use hida::{
    ExploreConfig, Explorer, Frontier, FrontierPoint, HidaOptions, Model, Objective, Workload,
};
use hida_bench::variants;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let json_path = value_of("--json").unwrap_or_else(|| "BENCH_dse.json".to_string());
    let jobs: usize = match value_of("--jobs") {
        Some(raw) => match raw.parse() {
            Ok(jobs) if jobs >= 1 => jobs,
            _ => {
                eprintln!("error: --jobs: '{raw}' is not a positive integer");
                std::process::exit(2);
            }
        },
        None => hida::ir::default_jobs(),
    };
    let seed: u64 = match value_of("--seed") {
        Some(raw) => match raw.parse() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: --seed: '{raw}' is not an integer");
                std::process::exit(2);
            }
        },
        None => 0,
    };
    let budget: Option<usize> = match value_of("--budget") {
        Some(raw) => match raw.parse() {
            Ok(b) if b >= 1 => Some(b),
            _ => {
                eprintln!("error: --budget: '{raw}' is not a positive integer");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let parallel_factors: Vec<i64> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![1, 8, 64, 256]
    };
    let tile_sizes: Vec<i64> = if full {
        vec![2, 4, 8, 16, 32]
    } else {
        vec![2, 8, 32]
    };
    let mut points = Vec::new();
    for &pf in &parallel_factors {
        for &tile in &tile_sizes {
            points.push(
                SweepPoint::new(
                    format!("pf{pf}-tile{tile}"),
                    Workload::Model(Model::ResNet18),
                    HidaOptions::dnn(),
                )
                .with_pipeline(variants::fig10(pf, tile)),
            );
        }
    }
    let grid = if full {
        "dse-fig10-full"
    } else {
        "dse-fig10-reduced"
    };
    let objectives = vec![Objective::Throughput, Objective::Dsp, Objective::Bram];

    println!("# Adaptive DSE — explorer vs exhaustive Figure 10 grid ({grid})");
    println!("# {} grid points, jobs {jobs}, seed {seed}", points.len());

    // Exhaustive arm: every grid point compiles through the sweep pool with a
    // fresh in-process estimate cache.
    let exhaustive = SweepEngine::new()
        .with_budget(JobBudget::for_points(jobs, points.len()))
        .run(&points);
    if !exhaustive.all_ok() {
        eprintln!(
            "error: exhaustive arm failed points: {}",
            exhaustive.failed_labels().join(", ")
        );
        std::process::exit(1);
    }
    let mut exhaustive_frontier = Frontier::new();
    for point in &exhaustive.points {
        let result = point.result.as_ref().expect("checked all_ok");
        exhaustive_frontier.insert(FrontierPoint {
            label: point.label.clone(),
            pipeline: point.pipeline.clone(),
            objectives: objectives
                .iter()
                .map(|o| o.value(&result.estimate))
                .collect(),
            throughput: result.estimate.throughput(),
            dsp: result.estimate.resources.dsp,
            bram_18k: result.estimate.resources.bram_18k,
            generation: 0,
        });
    }

    // Explorer arm: separate fresh cache, guided walk over the same lattice.
    let config = ExploreConfig {
        budget,
        seed,
        objectives: objectives.clone(),
        ..ExploreConfig::default()
    };
    let explored = match Explorer::new(config).with_total_jobs(jobs).explore(&points) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: explorer: {e}");
            std::process::exit(1);
        }
    };
    if !explored.all_ok() {
        eprintln!(
            "error: explorer arm failed points: {}",
            explored.failed_labels().join(", ")
        );
        std::process::exit(1);
    }

    // Both arms compile the same designs against the same device: any label
    // compiled by both must agree on the objective vector exactly (the sweep
    // engine's results are byte-identical at any job split).
    let qor_identical = explored.points.iter().all(|point| {
        let result = point.result.as_ref().expect("checked all_ok");
        let vector: Vec<i64> = objectives
            .iter()
            .map(|o| o.value(&result.estimate))
            .collect();
        exhaustive
            .points
            .iter()
            .find(|p| p.label == point.label)
            .and_then(|p| p.result.as_ref().ok())
            .is_some_and(|r| {
                let reference: Vec<i64> = objectives.iter().map(|o| o.value(&r.estimate)).collect();
                reference == vector
            })
    });

    let explorer_vectors = explored.frontier.vectors();
    let reference_vectors = exhaustive_frontier.vectors();
    let recovered = reference_vectors
        .iter()
        .filter(|v| explorer_vectors.contains(v))
        .count();
    let coverage = recovered as f64 / reference_vectors.len().max(1) as f64;
    let compiles_saved = explored.compiles_saved();

    println!(
        "\n# Exhaustive frontier ({} of {} points)",
        exhaustive_frontier.len(),
        points.len()
    );
    for p in exhaustive_frontier.points() {
        println!(
            "  {}: throughput {:.3} samples/s, DSP {}, BRAM-18K {}",
            p.label, p.throughput, p.dsp, p.bram_18k
        );
    }
    println!("\n# Explorer");
    for g in &explored.generations {
        println!(
            "generation {}: proposed {}, pruned by surrogate {}, compiled {}, frontier {}",
            g.index, g.proposed, g.pruned, g.compiled, g.frontier_size
        );
    }
    println!(
        "compiled {} of {} candidates ({} saved), frontier {} points, coverage {:.1}%",
        explored.points.len(),
        explored.num_candidates,
        compiles_saved,
        explored.frontier.len(),
        100.0 * coverage
    );
    println!(
        "wall-clock: exhaustive {:.4}s, explorer {:.4}s",
        exhaustive.wall_seconds, explored.wall_seconds
    );

    let frontier_json: Vec<String> = explored
        .frontier
        .points()
        .iter()
        .map(|p| {
            let vector: Vec<String> = p.objectives.iter().map(i64::to_string).collect();
            format!(
                "{{\"label\":\"{}\",\"objectives\":[{}],\"throughput\":{:.3},\
                 \"dsp\":{},\"bram_18k\":{},\"generation\":{}}}",
                json_escape(&p.label),
                vector.join(","),
                p.throughput,
                p.dsp,
                p.bram_18k,
                p.generation
            )
        })
        .collect();
    let generations_json: Vec<String> = explored
        .generations
        .iter()
        .map(|g| {
            format!(
                "{{\"index\":{},\"proposed\":{},\"pruned\":{},\"compiled\":{},\
                 \"failed\":{},\"frontier_size\":{}}}",
                g.index, g.proposed, g.pruned, g.compiled, g.failed, g.frontier_size
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"sweep\": \"{grid}\",\n  \"available_parallelism\": {},\n  \"jobs\": {jobs},\n  \
         \"seed\": {seed},\n  \"num_grid_points\": {},\n  \"exhaustive_seconds\": {:.6},\n  \
         \"explorer_seconds\": {:.6},\n  \"exhaustive_frontier_size\": {},\n  \
         \"compiled_points\": {},\n  \"compiles_saved\": {compiles_saved},\n  \
         \"pruned_by_surrogate\": {},\n  \"frontier_coverage\": {coverage:.3},\n  \
         \"qor_identical\": {qor_identical},\n  \"generations\": [{}],\n  \"frontier\": [{}]\n}}",
        std::thread::available_parallelism().map_or(1, usize::from),
        points.len(),
        exhaustive.wall_seconds,
        explored.wall_seconds,
        exhaustive_frontier.len(),
        explored.points.len(),
        explored.pruned,
        generations_json.join(","),
        frontier_json.join(","),
    );
    match std::fs::write(&json_path, format!("{json}\n")) {
        Ok(()) => println!("dse report written to {json_path}"),
        Err(e) => eprintln!("error: could not write {json_path}: {e}"),
    }

    if coverage < 1.0 {
        eprintln!(
            "error: explorer recovered {recovered} of {} frontier points",
            reference_vectors.len()
        );
        std::process::exit(1);
    }
    if explored.points.len() >= points.len() {
        eprintln!(
            "error: explorer compiled {} of {} grid points — no compilations saved",
            explored.points.len(),
            points.len()
        );
        std::process::exit(1);
    }
    if !qor_identical {
        eprintln!("error: explorer and exhaustive arms disagree on a compiled point's QoR");
        std::process::exit(1);
    }
}
