//! Regenerates Figure 9: on-chip memory (BRAM) utilization of HIDA vs ScaleHLS for
//! the DNN models both flows support.

use hida::estimator::dataflow::DataflowEstimator;
use hida::ir::Context;
use hida::{Compiler, FpgaDevice, Model, Workload};

fn main() {
    let device = FpgaDevice::vu9p_slr();
    let estimator = DataflowEstimator::new(device.clone());
    println!("# Figure 9 — BRAM-18K usage, HIDA vs ScaleHLS");
    println!("model, hida_bram, scalehls_bram, reduction");
    for model in [
        Model::ResNet18,
        Model::Vgg16,
        Model::Mlp,
        Model::MobileNetV1,
    ] {
        if !hida::baselines::scalehls::supports(model) {
            continue;
        }
        let hida_result = Compiler::dnn_defaults()
            .compile(Workload::Model(model))
            .expect("hida");
        let mut ctx = Context::new();
        let module = ctx.create_module("scalehls");
        let func = hida::frontend::nn::build_model(&mut ctx, module, model);
        let schedule =
            hida::baselines::scalehls::compile(&mut ctx, func, &device, 64).expect("scalehls");
        let scale = estimator.estimate_schedule(&ctx, schedule, true);

        let hida_bram = hida_result.estimate.resources.bram_18k.max(1);
        let scale_bram = scale.resources.bram_18k.max(1);
        println!(
            "{}, {}, {}, {:.1}x",
            model.name(),
            hida_bram,
            scale_bram,
            scale_bram as f64 / hida_bram as f64
        );
    }
}
