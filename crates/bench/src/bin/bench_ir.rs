//! IR micro-benchmark harness: raw single-compilation speed of the core hot paths.
//!
//! The sweep engine, the estimator, the fingerprint walk and every pass inherit
//! the cost of `hida_ir_core`'s entity storage, so this binary times exactly
//! those substrate paths in isolation:
//!
//! * `context_build/*` — front-end IR construction (op/value/attr creation and
//!   use-list registration),
//! * `compile_e2e/*` — one full `Compiler::compile` run (the paper's fig. 1
//!   inner loop),
//! * `fingerprint/*` — the structural fingerprint walk over a compiled design,
//! * `print/*` — the textual printer over a compiled design,
//! * `walk/*` — a pre-order traversal collecting every op,
//! * `estimator/*` — a cold QoR estimate of a compiled schedule,
//! * `clone_module/*` — deep-cloning a compiled module subtree.
//!
//! Measurements are written as JSON (`--json <path>`); pass `--baseline
//! <prior.json>` to fold a previous run in as `baseline_ns_per_iter` plus a
//! `speedup` ratio per bench — that merged form is what `BENCH_ir.json`
//! checks in. `--smoke` runs every bench once for CI smoke coverage.
//!
//! Like the rest of the workspace the harness is dependency-free: timing is
//! min-of-samples wall clock (robust against one-off scheduler noise on the
//! shared CI container), JSON is hand-rolled through [`hida::sweep::json_escape`].

use hida::estimator::dataflow::DataflowEstimator;
use hida::ir::fingerprint::structural_fingerprint;
use hida::ir::walk::collect_preorder;
use hida::ir::{printer, Context, OpId};
use hida::{Compiler, FpgaDevice, Model, PolybenchKernel, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark.
struct BenchResult {
    name: String,
    iters: u64,
    samples: u64,
    ns_per_iter: f64,
}

/// Harness configuration: iteration counts collapse to 1 under `--smoke`.
struct Harness {
    smoke: bool,
    results: Vec<BenchResult>,
}

impl Harness {
    fn new(smoke: bool) -> Self {
        Harness {
            smoke,
            results: Vec::new(),
        }
    }

    /// Times `routine` as `iters` iterations per sample over `samples` samples,
    /// recording the fastest sample's mean time per iteration.
    fn bench<O>(&mut self, name: &str, iters: u64, mut routine: impl FnMut() -> O) {
        let (iters, samples) = if self.smoke { (1, 1) } else { (iters, 5) };
        // Warmup: one untimed call so lazy setup (interning, allocator growth)
        // is not billed to the first sample.
        std::hint::black_box(routine());
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(per_iter);
        }
        println!("{name:<28} {best:>14.1} ns/iter  ({iters} iters x {samples} samples)");
        self.results.push(BenchResult {
            name: name.to_string(),
            iters,
            samples,
            ns_per_iter: best,
        });
    }

    fn to_json(&self, baseline: Option<&[(String, f64)]>) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"bench_ir/v1\",\n");
        let _ = writeln!(
            out,
            "  \"mode\": \"{}\",",
            if self.smoke { "smoke" } else { "full" }
        );
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let mut line = format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"samples\": {}, \"ns_per_iter\": {:.1}",
                hida::sweep::json_escape(&r.name),
                r.iters,
                r.samples,
                r.ns_per_iter
            );
            if let Some(base) = baseline {
                if let Some((_, before)) = base.iter().find(|(n, _)| n == &r.name) {
                    let _ = write!(
                        line,
                        ", \"baseline_ns_per_iter\": {:.1}, \"speedup\": {:.2}",
                        before,
                        before / r.ns_per_iter
                    );
                }
            }
            line.push('}');
            if i + 1 < self.results.len() {
                line.push(',');
            }
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Extracts `(name, ns_per_iter)` pairs from a prior `--json` output. The
/// format is the harness's own (one bench object per line), so a line scan is
/// a complete parser.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let Some(ns_at) = line.find("\"ns_per_iter\": ") else {
            continue;
        };
        let ns_text: String = line[ns_at + 15..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(ns) = ns_text.parse::<f64>() {
            out.push((name, ns));
        }
    }
    out
}

fn compiled(workload: Workload) -> (Context, OpId, hida::dataflow_ir::structural::ScheduleOp) {
    let compiler = match workload {
        Workload::Model(_) => Compiler::dnn_defaults(),
        _ => Compiler::polybench_defaults(),
    };
    let result = compiler.compile(workload).expect("workload compiles");
    (result.ctx, result.func, result.schedule)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let json_path = value_of("--json");
    let baseline = value_of("--baseline").map(|path| {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
        parse_baseline(&text)
    });

    let mut h = Harness::new(smoke);

    // --- Context construction (front-end build, no passes). -----------------
    h.bench("context_build/resnet18", 20, || {
        let mut ctx = Context::new();
        let module = ctx.create_module("resnet-18");
        hida::frontend::nn::build_model(&mut ctx, module, Model::ResNet18);
        ctx
    });
    h.bench("context_build/two_mm", 200, || {
        let mut ctx = Context::new();
        let module = ctx.create_module("2mm");
        hida::frontend::polybench::build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 32);
        ctx
    });

    // --- One full compilation (the DSE loop's unit of work). ----------------
    let polybench = Compiler::polybench_defaults();
    h.bench("compile_e2e/two_mm", 20, || {
        polybench
            .compile(Workload::PolybenchSized(PolybenchKernel::TwoMm, 32))
            .expect("two_mm compiles")
    });

    // --- Hot read paths over one compiled design. ---------------------------
    let (lenet_ctx, lenet_func, lenet_schedule) = compiled(Workload::Model(Model::LeNet));
    let module = lenet_ctx.parent_op(lenet_func).unwrap_or(lenet_func);
    h.bench("fingerprint/lenet", 300, || {
        structural_fingerprint(&lenet_ctx, lenet_func)
    });
    h.bench("print/lenet", 300, || printer::print_op(&lenet_ctx, module));
    h.bench("walk/lenet", 2000, || collect_preorder(&lenet_ctx, module));
    h.bench("estimator/lenet", 20, || {
        DataflowEstimator::new(FpgaDevice::vu9p_slr()).estimate_schedule(
            &lenet_ctx,
            lenet_schedule,
            true,
        )
    });

    let (two_mm_ctx, two_mm_func, _) =
        compiled(Workload::PolybenchSized(PolybenchKernel::TwoMm, 32));
    h.bench("fingerprint/two_mm", 2000, || {
        structural_fingerprint(&two_mm_ctx, two_mm_func)
    });

    // --- Whole-module deep clone (speculative DSE points). ------------------
    let mut clone_ctx = lenet_ctx;
    h.bench("clone_module/lenet", 50, || {
        let mut mapping = hida::ir::context::ValueMapping::new();
        clone_ctx.clone_op(module, &mut mapping)
    });

    let json = h.to_json(baseline.as_deref());
    if let Some(path) = json_path {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("--json {path}: {e}"));
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
}
