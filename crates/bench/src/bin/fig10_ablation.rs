//! Regenerates Figure 10: parallel factor and tile size ablation on ResNet-18.
//!
//! Sweeps the maximum parallel factor and the tile size, reporting DSP count, BRAM
//! count and throughput for every combination. Pass `--full` for the paper's full
//! sweep (parallel factor 1-256, tile 2-32); the default uses a reduced grid.
//!
//! Every design point runs through the declarative pass pipeline assembled by
//! `Pipeline::from_options`; the tile-size axis is pure pass configuration (the
//! `hida-tiling` pass instance), and the per-pass compile-time breakdown of the
//! last design point is printed at the end.

use hida::{Compiler, HidaOptions, Model, Workload};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let parallel_factors: Vec<i64> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![1, 8, 64, 256]
    };
    let tile_sizes: Vec<i64> = if full { vec![2, 4, 8, 16, 32] } else { vec![2, 8, 32] };

    println!("# Figure 10 — ResNet-18 parallel factor x tile size ablation (VU9P SLR)");
    println!("parallel_factor, tile_size, dsp, bram_18k, throughput_samples_per_s");
    let mut last_statistics = Vec::new();
    for &pf in &parallel_factors {
        for &tile in &tile_sizes {
            let options = HidaOptions {
                max_parallel_factor: pf,
                tile_size: Some(tile),
                ..HidaOptions::dnn()
            };
            let result = Compiler::new(options)
                .compile(Workload::Model(Model::ResNet18))
                .expect("resnet compilation");
            println!(
                "{pf}, {tile}, {}, {}, {:.3}",
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
            last_statistics = result.pass_statistics;
        }
    }

    println!("\n# Per-pass compile-time breakdown (last design point)");
    for stat in &last_statistics {
        println!("{stat}");
    }
}
