//! Regenerates Figure 10: parallel factor and tile size ablation on ResNet-18.
//!
//! Sweeps the maximum parallel factor and the tile size, reporting DSP count, BRAM
//! count and throughput for every combination. Pass `--full` for the paper's full
//! sweep (parallel factor 1-256, tile 2-32); the default uses a reduced grid.
//!
//! Every ablation variant is a *pipeline string* handed to the pass registry —
//! the same text the `hida-opt` CLI accepts — built by the shared
//! [`hida_bench::variants::fig10`] helper. The design points run through the
//! [`SweepRunner`]: a pooled, estimate-sharing sweep is compared against the
//! sequential share-nothing loop (byte-identical per-point QoR enforced), and
//! the wall-clock/speedup/cache-traffic summary is written to
//! `BENCH_sweep.json` (override with `--sweep-json <path>`). `--jobs <n>` caps
//! the sweep's total worker-thread budget.
//!
//! `--cache-dir <dir>` backs the sweep's estimate cache with the persistent
//! on-disk store: a second invocation pointed at the same directory reuses the
//! first run's per-node estimates (`"persistent_cache"` in the JSON report
//! shows the disk tier's hits/misses), which is how CI proves cross-process
//! reuse. `--cache-limit-mb <n>` caps the store's size.

use hida::{EstimateStore, HidaOptions, Model, SharedEstimateCache, SweepPoint, Workload};
use hida_bench::{variants, SweepRunner};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let json_path = value_of("--sweep-json").unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let jobs: usize = match value_of("--jobs") {
        Some(raw) => match raw.parse() {
            Ok(jobs) if jobs >= 1 => jobs,
            _ => {
                eprintln!("error: --jobs: '{raw}' is not a positive integer");
                std::process::exit(2);
            }
        },
        None if args.iter().any(|a| a == "--jobs") => {
            eprintln!("error: --jobs requires a value");
            std::process::exit(2);
        }
        None => hida::ir::default_jobs(),
    };
    let cache_dir = value_of("--cache-dir");
    let cache_limit_mb: Option<u64> = match value_of("--cache-limit-mb") {
        Some(raw) => match raw.parse() {
            Ok(mb) if mb >= 1 => Some(mb),
            _ => {
                eprintln!("error: --cache-limit-mb: '{raw}' is not a positive integer");
                std::process::exit(2);
            }
        },
        None => None,
    };
    if cache_limit_mb.is_some() && cache_dir.is_none() {
        eprintln!("error: --cache-limit-mb requires --cache-dir");
        std::process::exit(2);
    }
    let cache = cache_dir.map(|dir| {
        let mut store = match EstimateStore::open(&dir) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("error: --cache-dir {dir}: {e}");
                std::process::exit(2);
            }
        };
        if let Some(mb) = cache_limit_mb {
            store = store.with_limit_bytes(mb * 1024 * 1024);
        }
        Arc::new(SharedEstimateCache::with_store(store))
    });

    let parallel_factors: Vec<i64> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![1, 8, 64, 256]
    };
    let tile_sizes: Vec<i64> = if full {
        vec![2, 4, 8, 16, 32]
    } else {
        vec![2, 8, 32]
    };

    let mut runner = SweepRunner::new(if full { "fig10-full" } else { "fig10-reduced" });
    if let Some(cache) = cache {
        runner = runner.with_cache(cache);
    }
    for &pf in &parallel_factors {
        for &tile in &tile_sizes {
            runner = runner.point(
                SweepPoint::new(
                    format!("pf{pf}-tile{tile}"),
                    Workload::Model(Model::ResNet18),
                    HidaOptions::dnn(),
                )
                .with_pipeline(variants::fig10(pf, tile)),
            );
        }
    }

    println!("# Figure 10 — ResNet-18 parallel factor x tile size ablation (VU9P SLR)");
    println!("# variant pipeline: {}", variants::fig10(256, 32));
    let comparison = runner.compare(jobs);

    println!("parallel_factor, tile_size, dsp, bram_18k, throughput_samples_per_s");
    let mut last_statistics = &Vec::new();
    let mut index = 0;
    for &pf in &parallel_factors {
        for &tile in &tile_sizes {
            let point = &comparison.outcome.points[index];
            index += 1;
            let result = point.result.as_ref().expect("resnet compilation");
            println!(
                "{pf}, {tile}, {}, {}, {:.3}",
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
            last_statistics = &result.pass_statistics;
        }
    }

    println!("\n# Per-pass compile-time breakdown (last design point)");
    for stat in last_statistics {
        println!("{stat}");
    }

    comparison.print_summary();
    match comparison.write_json(&json_path) {
        Ok(()) => println!("sweep report written to {json_path}"),
        Err(e) => eprintln!("error: could not write {json_path}: {e}"),
    }
    if !comparison.qor_identical() {
        std::process::exit(1);
    }
}
