//! Regenerates Figure 10: parallel factor and tile size ablation on ResNet-18.
//!
//! Sweeps the maximum parallel factor and the tile size, reporting DSP count, BRAM
//! count and throughput for every combination. Pass `--full` for the paper's full
//! sweep (parallel factor 1-256, tile 2-32); the default uses a reduced grid.
//!
//! Every ablation variant is a *pipeline string* handed to the pass registry —
//! the same text the `hida-opt` CLI accepts — so each design point documents its
//! exact flow. The per-pass compile-time breakdown of the last design point is
//! printed at the end.

use hida::{Compiler, HidaOptions, Model, Workload};

/// The Figure 10 variant: the full HIDA flow with the swept tile size and
/// parallel factor as pass options.
fn variant(parallel_factor: i64, tile_size: i64) -> String {
    format!(
        "construct,fusion,lower,multi-producer-elim,\
         tiling{{factor={tile_size},external-threshold-bytes=65536}},\
         balance{{external-threshold-bytes=65536}},\
         parallelize{{max-factor={parallel_factor},mode=IA+CA,device=vu9p-slr}}"
    )
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let parallel_factors: Vec<i64> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![1, 8, 64, 256]
    };
    let tile_sizes: Vec<i64> = if full {
        vec![2, 4, 8, 16, 32]
    } else {
        vec![2, 8, 32]
    };

    println!("# Figure 10 — ResNet-18 parallel factor x tile size ablation (VU9P SLR)");
    println!("# variant pipeline: {}", variant(256, 32));
    println!("parallel_factor, tile_size, dsp, bram_18k, throughput_samples_per_s");
    let mut last_statistics = Vec::new();
    for &pf in &parallel_factors {
        for &tile in &tile_sizes {
            let result = Compiler::new(HidaOptions::dnn())
                .with_pipeline(variant(pf, tile))
                .with_jobs(hida::ir::default_jobs())
                .compile(Workload::Model(Model::ResNet18))
                .expect("resnet compilation");
            println!(
                "{pf}, {tile}, {}, {}, {:.3}",
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result.estimate.throughput()
            );
            last_statistics = result.pass_statistics;
        }
    }

    println!("\n# Per-pass compile-time breakdown (last design point)");
    for stat in &last_statistics {
        println!("{stat}");
    }
}
