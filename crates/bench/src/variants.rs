//! Pipeline-string builders shared by the benchmark binaries.
//!
//! Every ablation variant of the paper's evaluation is a *textual pipeline* —
//! the same string the `hida-opt` CLI accepts — so each design point documents
//! its exact flow. The builders here are the single source of those strings;
//! the fig10/fig11 binaries (and any future sweep) parameterize them instead
//! of formatting their own copies.

use hida::ParallelMode;

/// Byte threshold above which tiled buffers spill to external memory in the
/// DNN ablations (64 KiB, matching `HidaOptions::dnn`).
pub const DNN_EXTERNAL_THRESHOLD_BYTES: i64 = 65536;

/// The full DNN ablation flow on one VU9P SLR with every swept knob exposed:
/// tile size, maximum parallel factor and parallelization mode.
pub fn dnn_ablation(tile_size: i64, parallel_factor: i64, mode: ParallelMode) -> String {
    format!(
        "construct,fusion,lower,multi-producer-elim,\
         tiling{{factor={tile_size},external-threshold-bytes={threshold}}},\
         balance{{external-threshold-bytes={threshold}}},\
         parallelize{{max-factor={parallel_factor},mode={mode},device=vu9p-slr}}",
        threshold = DNN_EXTERNAL_THRESHOLD_BYTES,
        mode = mode.label()
    )
}

/// The Figure 10 variant: the full HIDA flow with the swept tile size and
/// parallel factor as pass options.
pub fn fig10(parallel_factor: i64, tile_size: i64) -> String {
    dnn_ablation(tile_size, parallel_factor, ParallelMode::IaCa)
}

/// The Figure 11 variant: the full DNN flow with the ablated parallelization
/// mode and the swept parallel factor as pass options (tile size fixed at 16,
/// the Table 8 setting).
pub fn fig11(mode: ParallelMode, parallel_factor: i64) -> String {
    dnn_ablation(16, parallel_factor, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida::{registry, Pipeline};

    #[test]
    fn variants_parse_through_the_registry() {
        for text in [
            fig10(256, 32),
            fig11(ParallelMode::CaOnly, 64),
            dnn_ablation(8, 16, ParallelMode::Naive),
        ] {
            let pipeline = Pipeline::parse(&registry(), &text)
                .unwrap_or_else(|e| panic!("variant '{text}' must parse: {e}"));
            assert!(!pipeline.is_empty());
            // The rendered form is itself a valid pipeline (round-trip).
            Pipeline::parse(&registry(), &pipeline.to_text())
                .unwrap_or_else(|e| panic!("rendered variant must re-parse: {e}"));
        }
    }

    #[test]
    fn fig10_and_fig11_share_the_dnn_skeleton() {
        assert_eq!(fig10(64, 16), fig11(ParallelMode::IaCa, 64));
        assert!(fig10(1, 2).contains("tiling{factor=2"));
        assert!(fig11(ParallelMode::Naive, 8).contains("mode=Naive"));
    }
}
