//! Sweep harness shared by the benchmark binaries.
//!
//! [`SweepRunner`] collects the design points of one figure/table sweep and
//! drives them through the sweep engine ([`hida::SweepEngine`]). Its
//! [`SweepRunner::compare`] mode additionally replays the points through
//! today's baseline — a sequential, share-nothing loop — verifies that every
//! design point's QoR, emitted C++ and printed IR are **byte-identical**
//! across the two runs, and summarizes wall-clock, speedup and cross-
//! compilation cache traffic as the `BENCH_sweep.json` perf-trajectory
//! artifact CI records.

use hida::ir::printer::print_op;
use hida::sweep::json_escape;
use hida::{
    CompilationResult, JobBudget, SharedEstimateCache, SweepEngine, SweepOutcome, SweepPoint,
    SweepPointOutcome,
};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// A named list of design points plus the machinery to run and report them.
#[derive(Debug, Default)]
pub struct SweepRunner {
    name: String,
    points: Vec<SweepPoint>,
    cache: Option<Arc<SharedEstimateCache>>,
}

impl SweepRunner {
    /// Creates an empty sweep called `name` (e.g. `"fig10-reduced"`).
    pub fn new(name: impl Into<String>) -> Self {
        SweepRunner {
            name: name.into(),
            points: Vec::new(),
            cache: None,
        }
    }

    /// Uses `cache` for the pooled arm instead of a fresh per-run cache
    /// (builder style). Hand in a cache created with
    /// [`hida::SharedEstimateCache::with_store`] to persist estimates across
    /// bench *processes*: the comparison then reports the disk tier's traffic
    /// in `BENCH_sweep.json`, and a warm re-run of the same binary serves its
    /// estimates from the store. The sequential baseline arm never sees the
    /// cache — it stays the share-nothing loop the pooled results are
    /// verified against.
    pub fn with_cache(mut self, cache: Arc<SharedEstimateCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Appends a design point (builder style).
    pub fn point(mut self, point: SweepPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Appends many design points (builder style).
    pub fn points(mut self, points: impl IntoIterator<Item = SweepPoint>) -> Self {
        self.points.extend(points);
        self
    }

    /// The sweep's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of collected design points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points were collected.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Runs the sweep pooled with estimate sharing, splitting `total_jobs`
    /// threads over the points ([`JobBudget::for_points`]).
    pub fn run(&self, total_jobs: usize) -> SweepOutcome {
        let mut engine =
            SweepEngine::new().with_budget(JobBudget::for_points(total_jobs, self.points.len()));
        if let Some(cache) = &self.cache {
            engine = engine.with_cache(cache.clone());
        }
        engine.run(&self.points)
    }

    /// Runs the sweep twice and verifies per-point byte-identity of the
    /// results. The baseline arm is the pre-sweep bench loop: points one
    /// after another, share-nothing, with the *same* `total_jobs` thread
    /// budget spent on per-point (node-level) parallelism — so the recorded
    /// speedup isolates what sweep-level pooling and the cross-compilation
    /// cache add, rather than re-counting per-point threads that already
    /// existed.
    pub fn compare(&self, total_jobs: usize) -> SweepComparison {
        let baseline_budget = JobBudget {
            pool_jobs: 1,
            point_jobs: total_jobs.max(1),
        };
        // Untimed warm-up: pay the one-off process costs (lazy allocations,
        // cold code paths) before either timed arm, so neither is biased.
        if let Some(first) = self.points.first() {
            SweepEngine::new()
                .with_budget(baseline_budget)
                .with_shared_estimates(false)
                .run(std::slice::from_ref(first));
        }
        let sequential = SweepEngine::new()
            .with_budget(baseline_budget)
            .with_shared_estimates(false)
            .run(&self.points);
        let parallel = self.run(total_jobs);
        let mut mismatches = Vec::new();
        for (seq, par) in sequential.points.iter().zip(&parallel.points) {
            if let Some(diff) = point_difference(seq, par) {
                mismatches.push(format!("{}: {}", seq.label, diff));
            }
        }
        SweepComparison {
            name: self.name.clone(),
            sequential_seconds: sequential.wall_seconds,
            outcome: parallel,
            mismatches,
        }
    }
}

/// Returns a description of the first way two outcomes of the same design
/// point differ, or `None` when they are byte-identical.
fn point_difference(seq: &SweepPointOutcome, par: &SweepPointOutcome) -> Option<String> {
    match (&seq.result, &par.result) {
        (Ok(a), Ok(b)) => compilation_difference(a, b),
        (Err(a), Err(b)) if a.to_string() == b.to_string() => None,
        (Err(_), Err(_)) => Some("error messages differ".to_string()),
        (Ok(_), Err(e)) => Some(format!("parallel run failed: {e}")),
        (Err(e), Ok(_)) => Some(format!("sequential run failed: {e}")),
    }
}

fn compilation_difference(a: &CompilationResult, b: &CompilationResult) -> Option<String> {
    if a.estimate != b.estimate {
        return Some("dataflow QoR estimates differ".to_string());
    }
    if a.estimate_sequential != b.estimate_sequential {
        return Some("sequential QoR estimates differ".to_string());
    }
    if a.hls_cpp != b.hls_cpp {
        return Some("emitted HLS C++ differs".to_string());
    }
    if print_op(&a.ctx, a.func) != print_op(&b.ctx, b.func) {
        return Some("printed IR differs".to_string());
    }
    None
}

/// The result of [`SweepRunner::compare`]: the pooled outcome, the sequential
/// baseline's wall-clock, and the byte-identity verdict.
#[derive(Debug)]
pub struct SweepComparison {
    /// The sweep's name.
    pub name: String,
    /// Wall-clock seconds of the sequential share-nothing loop.
    pub sequential_seconds: f64,
    /// The pooled, estimate-sharing run.
    pub outcome: SweepOutcome,
    /// Human-readable descriptions of per-point result differences (empty
    /// when the pooled run is byte-identical to the sequential loop).
    pub mismatches: Vec<String>,
}

impl SweepComparison {
    /// True when every design point's QoR, emitted C++ and printed IR matched
    /// between the sequential and pooled runs.
    pub fn qor_identical(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Wall-clock speedup of the pooled run over the sequential loop.
    pub fn speedup(&self) -> f64 {
        self.sequential_seconds / self.outcome.wall_seconds.max(f64::MIN_POSITIVE)
    }

    /// Prints the comparison summary to stdout.
    pub fn print_summary(&self) {
        let budget = self.outcome.budget;
        println!(
            "\n# Sweep '{}' ({} points)",
            self.name,
            self.outcome.points.len()
        );
        println!(
            "budget: {} concurrent points x {} jobs each (machine parallelism {})",
            budget.pool_jobs,
            budget.point_jobs,
            hida::ir::default_jobs()
        );
        println!(
            "wall-clock: sequential loop {:.3}s, pooled sweep {:.3}s -> {:.2}x speedup",
            self.sequential_seconds,
            self.outcome.wall_seconds,
            self.speedup()
        );
        if let Some(cache) = &self.outcome.shared_cache {
            println!("cross-compilation estimate cache: {cache}");
        }
        if let Some(persistent) = &self.outcome.persistent_cache {
            println!("persistent estimate store: {persistent}");
        }
        if self.qor_identical() {
            println!("per-point QoR: byte-identical to the sequential loop");
        } else {
            println!("per-point QoR MISMATCHES:");
            for m in &self.mismatches {
                println!("  {m}");
            }
        }
    }

    /// Renders the comparison as the `BENCH_sweep.json` artifact.
    pub fn to_json(&self) -> String {
        let budget = self.outcome.budget;
        let cache = self.outcome.shared_cache.unwrap_or_default();
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"sweep\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(
            out,
            "  \"available_parallelism\": {},",
            hida::ir::default_jobs()
        );
        let _ = writeln!(out, "  \"pool_jobs\": {},", budget.pool_jobs);
        let _ = writeln!(out, "  \"point_jobs\": {},", budget.point_jobs);
        let _ = writeln!(out, "  \"num_points\": {},", self.outcome.points.len());
        let _ = writeln!(
            out,
            "  \"sequential_seconds\": {:.6},",
            self.sequential_seconds
        );
        let _ = writeln!(
            out,
            "  \"parallel_seconds\": {:.6},",
            self.outcome.wall_seconds
        );
        let _ = writeln!(out, "  \"speedup\": {:.3},", self.speedup());
        let _ = writeln!(out, "  \"qor_identical\": {},", self.qor_identical());
        let _ = writeln!(
            out,
            "  \"shared_cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.3}}},",
            cache.hits,
            cache.misses,
            cache.entries,
            cache.hit_rate()
        );
        // Nonzero persistent hits mean this process was served estimates
        // written by an earlier one — the cold-vs-warm evidence the persist
        // CI stage greps for.
        match &self.outcome.persistent_cache {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "  \"persistent_cache\": {{\"hits\": {}, \"misses\": {}, \"writes\": {}, \
                     \"evictions\": {}, \"corrupt\": {}, \"write_errors\": {}, \
                     \"read_errors\": {}}},",
                    p.hits,
                    p.misses,
                    p.writes,
                    p.evictions,
                    p.corrupt,
                    p.write_errors,
                    p.read_errors
                );
            }
            None => out.push_str("  \"persistent_cache\": null,\n"),
        }
        out.push_str("  \"points\": [\n");
        for (i, point) in self.outcome.points.iter().enumerate() {
            let comma = if i + 1 < self.outcome.points.len() {
                ","
            } else {
                ""
            };
            match &point.result {
                Ok(result) => {
                    let _ = writeln!(
                        out,
                        "    {{\"label\": \"{}\", \"seconds\": {:.6}, \"throughput\": {:.3}, \
                         \"dsp\": {}, \"bram_18k\": {}, \"shared_hits\": {}, \"shared_misses\": {}}}{comma}",
                        json_escape(&point.label),
                        point.seconds,
                        result.estimate.throughput(),
                        result.estimate.resources.dsp,
                        result.estimate.resources.bram_18k,
                        result.shared_estimator_cache.map_or(0, |c| c.hits),
                        result.shared_estimator_cache.map_or(0, |c| c.misses),
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "    {{\"label\": \"{}\", \"seconds\": {:.6}, \"error\": \"{}\"}}{comma}",
                        json_escape(&point.label),
                        point.seconds,
                        json_escape(&e.to_string()),
                    );
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`SweepComparison::to_json`] to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida::{HidaOptions, PolybenchKernel, Workload};

    #[test]
    fn two_point_comparison_is_identical_and_reports_cache_traffic() {
        let options = HidaOptions::polybench();
        let runner = SweepRunner::new("test-sweep")
            .point(SweepPoint::new(
                "a",
                Workload::PolybenchSized(PolybenchKernel::TwoMm, 32),
                options.clone(),
            ))
            .point(SweepPoint::new(
                "b",
                Workload::PolybenchSized(PolybenchKernel::TwoMm, 32),
                options,
            ));
        assert_eq!(runner.len(), 2);
        let comparison = runner.compare(2);
        assert!(comparison.qor_identical(), "{:?}", comparison.mismatches);
        assert!(comparison.outcome.all_ok());
        // Identical design points: the second one's estimates are shared.
        let cache = comparison.outcome.shared_cache.unwrap();
        assert!(cache.hits > 0, "{cache:?}");
        let json = comparison.to_json();
        assert!(json.contains("\"qor_identical\": true"), "{json}");
        assert!(json.contains("\"sweep\": \"test-sweep\""), "{json}");
        comparison.print_summary();
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
