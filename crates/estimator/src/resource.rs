//! DSP / BRAM / LUT / FF resource model.
//!
//! Compute resources scale with the per-iteration operation mix times the total
//! unroll factor; memory resources scale with buffer capacity, partition bank count
//! and ping-pong depth. The model also charges DSPs for address generation when
//! small tiles force fine-grained external-memory access — the effect the paper's
//! Figure 10 ablation highlights ("small tile can drastically increase DSP
//! utilization").

use crate::device::FpgaDevice;
use hida_dialects::hls::MemoryKind;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Aggregate FPGA resource usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resources {
    /// DSP blocks.
    pub dsp: i64,
    /// 18 Kb block RAMs.
    pub bram_18k: i64,
    /// Lookup tables.
    pub lut: i64,
    /// Flip-flops.
    pub ff: i64,
}

impl Resources {
    /// Resource vector with all entries zero.
    pub fn zero() -> Self {
        Resources::default()
    }

    /// Creates a resource vector from raw counts.
    pub fn new(dsp: i64, bram_18k: i64, lut: i64, ff: i64) -> Self {
        Resources {
            dsp,
            bram_18k,
            lut,
            ff,
        }
    }

    /// Utilization of the dominant resource on `device`, in `[0, +inf)`
    /// (`max(BRAM%, DSP%, LUT%)` as used in Figure 1).
    pub fn utilization(&self, device: &FpgaDevice) -> f64 {
        let dsp = self.dsp as f64 / device.dsp.max(1) as f64;
        let bram = self.bram_18k as f64 / device.bram_18k.max(1) as f64;
        let lut = self.lut as f64 / device.lut.max(1) as f64;
        dsp.max(bram).max(lut)
    }

    /// Returns true when every resource fits on `device`.
    pub fn fits(&self, device: &FpgaDevice) -> bool {
        self.dsp <= device.dsp
            && self.bram_18k <= device.bram_18k
            && self.lut <= device.lut
            && self.ff <= device.ff
    }

    /// Scales every entry by an integer factor (e.g. replicating a compute unit).
    pub fn scaled(&self, factor: i64) -> Resources {
        Resources {
            dsp: self.dsp * factor,
            bram_18k: self.bram_18k * factor,
            lut: self.lut * factor,
            ff: self.ff * factor,
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            dsp: self.dsp + rhs.dsp,
            bram_18k: self.bram_18k + rhs.bram_18k,
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::zero(), |a, b| a + b)
    }
}

/// Cost of one scalar operation of the given class and element bit width.
///
/// The table follows typical Vitis HLS characterization: 8/16-bit multiplies fit one
/// DSP, 32-bit integer multiplies need two, single-precision floating point
/// multiply/add units need three/two DSPs plus several hundred LUTs.
pub fn op_cost(class: hida_dialects::arith::OpClass, is_float: bool, bits: u32) -> Resources {
    use hida_dialects::arith::OpClass;
    match class {
        OpClass::MulLike => {
            if is_float {
                if bits <= 32 {
                    Resources::new(3, 0, 350, 300)
                } else {
                    Resources::new(8, 0, 800, 700)
                }
            } else if bits <= 18 {
                Resources::new(1, 0, 60, 50)
            } else {
                Resources::new(2, 0, 120, 100)
            }
        }
        OpClass::AddLike => {
            if is_float {
                Resources::new(2, 0, 400, 350)
            } else {
                Resources::new(0, 0, bits.max(8) as i64, bits.max(8) as i64)
            }
        }
        OpClass::DivLike => {
            if is_float {
                Resources::new(0, 0, 3_000, 2_800)
            } else {
                Resources::new(0, 0, 1_200, 1_100)
            }
        }
        OpClass::Memory | OpClass::Other => Resources::new(0, 0, 20, 20),
    }
}

/// Compute resources of one node given its per-iteration op mix, element properties
/// and total unroll factor (the number of parallel compute lanes).
#[allow(clippy::too_many_arguments)]
pub fn compute_resources(
    muls_per_iter: i64,
    adds_per_iter: i64,
    divs_per_iter: i64,
    mem_per_iter: i64,
    is_float: bool,
    bits: u32,
    unroll: i64,
    address_gen_dsp_per_access: i64,
) -> Resources {
    use hida_dialects::arith::OpClass;
    let unroll = unroll.max(1);
    let mut r = Resources::zero();
    r += op_cost(OpClass::MulLike, is_float, bits).scaled(muls_per_iter * unroll);
    r += op_cost(OpClass::AddLike, is_float, bits).scaled(adds_per_iter * unroll);
    r += op_cost(OpClass::DivLike, is_float, bits).scaled(divs_per_iter * unroll);
    r += op_cost(OpClass::Memory, is_float, bits).scaled(mem_per_iter * unroll);
    // Address generation: fine-grained external access burns DSPs on index math.
    r.dsp += address_gen_dsp_per_access * mem_per_iter.min(4) * unroll.min(8);
    // Control overhead per parallel lane.
    r.lut += 90 * unroll;
    r.ff += 110 * unroll;
    r
}

/// Memory resources of one buffer.
///
/// * `elements` — scalar elements per stage,
/// * `bits` — element bit width,
/// * `banks` — array-partition bank count,
/// * `depth` — ping-pong stages,
/// * `kind` — physical placement.
///
/// External buffers consume no on-chip memory. Small on-chip buffers (≤ 1024 bits
/// per bank) are implemented in LUTRAM. Every BRAM bank costs at least one 18 Kb
/// block even when mostly empty — which is why, as §7.3 observes, shrinking tiles
/// below the BRAM granularity does not reduce memory utilization.
pub fn buffer_resources(
    elements: i64,
    bits: u32,
    banks: i64,
    depth: i64,
    kind: MemoryKind,
) -> Resources {
    let banks = banks.max(1);
    let depth = depth.max(1);
    match kind {
        MemoryKind::External => Resources::zero(),
        MemoryKind::Lutram => {
            let total_bits = elements * bits as i64 * depth;
            Resources::new(0, 0, (total_bits / 6).max(8), (total_bits / 12).max(4))
        }
        MemoryKind::Bram | MemoryKind::Uram => {
            let bits_per_bank_stage = (elements.max(1) * bits as i64 + banks - 1) / banks;
            if bits_per_bank_stage <= 1024 && banks * depth <= 64 {
                // Small banks fall back to distributed RAM.
                let total_bits = elements * bits as i64 * depth;
                return Resources::new(0, 0, (total_bits / 6).max(8), (total_bits / 12).max(4));
            }
            let bram_per_bank = (bits_per_bank_stage + 18 * 1024 - 1) / (18 * 1024);
            Resources::new(
                0,
                bram_per_bank.max(1) * banks * depth,
                30 * banks,
                20 * banks,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dialects::arith::OpClass;

    #[test]
    fn resource_arithmetic_and_utilization() {
        let a = Resources::new(10, 20, 1_000, 2_000);
        let b = Resources::new(5, 2, 100, 200);
        let sum = a + b;
        assert_eq!(sum, Resources::new(15, 22, 1_100, 2_200));
        assert_eq!(a.scaled(2), Resources::new(20, 40, 2_000, 4_000));
        let total: Resources = vec![a, b].into_iter().sum();
        assert_eq!(total, sum);

        let device = FpgaDevice::zu3eg();
        assert!(a.fits(&device));
        assert!(a.utilization(&device) > 0.0 && a.utilization(&device) < 1.0);
        let huge = Resources::new(10_000, 0, 0, 0);
        assert!(!huge.fits(&device));
        assert!(huge.utilization(&device) > 1.0);
    }

    #[test]
    fn op_costs_rank_sensibly() {
        let int8_mul = op_cost(OpClass::MulLike, false, 8);
        let int32_mul = op_cost(OpClass::MulLike, false, 32);
        let f32_mul = op_cost(OpClass::MulLike, true, 32);
        assert!(int8_mul.dsp <= int32_mul.dsp);
        assert!(int32_mul.dsp <= f32_mul.dsp);
        let int_add = op_cost(OpClass::AddLike, false, 32);
        assert_eq!(int_add.dsp, 0);
        assert!(op_cost(OpClass::DivLike, true, 32).lut > f32_mul.lut);
    }

    #[test]
    fn compute_resources_scale_with_unroll() {
        let base = compute_resources(1, 1, 0, 2, false, 8, 1, 0);
        let unrolled = compute_resources(1, 1, 0, 2, false, 8, 16, 0);
        assert_eq!(unrolled.dsp, base.dsp * 16);
        assert!(unrolled.lut > base.lut * 10);
    }

    #[test]
    fn address_generation_charges_dsp() {
        let without = compute_resources(1, 1, 0, 2, false, 8, 4, 0);
        let with = compute_resources(1, 1, 0, 2, false, 8, 4, 3);
        assert!(with.dsp > without.dsp);
    }

    #[test]
    fn buffer_resources_follow_bank_granularity() {
        // 64x64 int8 buffer, 1 bank, single stage: 4 KiB -> 2 BRAM18K.
        let single = buffer_resources(4096, 8, 1, 1, MemoryKind::Bram);
        assert_eq!(single.bram_18k, 2);
        // Partitioned into 8 banks: each bank holds 512 bytes -> still 1 BRAM each.
        let banked = buffer_resources(4096, 8, 8, 1, MemoryKind::Bram);
        assert_eq!(banked.bram_18k, 8);
        // Ping-pong doubles the count.
        let pingpong = buffer_resources(4096, 8, 8, 2, MemoryKind::Bram);
        assert_eq!(pingpong.bram_18k, 16);
        // External buffers consume nothing on chip.
        assert_eq!(
            buffer_resources(1 << 20, 8, 1, 2, MemoryKind::External),
            Resources::zero()
        );
        // Tiny buffers use LUTRAM, not BRAM.
        let tiny = buffer_resources(16, 8, 1, 2, MemoryKind::Bram);
        assert_eq!(tiny.bram_18k, 0);
        assert!(tiny.lut > 0);
    }

    #[test]
    fn shrinking_buffers_below_bram_granularity_does_not_free_brams() {
        // The Figure 10 observation: once a tile fits one BRAM, smaller tiles keep
        // using one BRAM per bank.
        let med = buffer_resources(2048, 8, 4, 2, MemoryKind::Bram);
        let small = buffer_resources(1024, 8, 4, 2, MemoryKind::Bram);
        assert_eq!(med.bram_18k, small.bram_18k);
    }
}
