//! Schedule-level dataflow throughput estimation.
//!
//! A well-formed HIDA dataflow executes its nodes in a coarse-grained pipeline: with
//! ping-pong buffers between stages, a new data frame can enter the design every
//! `max_i(latency_i)` cycles (the critical node determines the achievable rate,
//! paper §1). Unbalanced data paths stall the producer (Figure 8) unless buffers on
//! the short path are deep enough; with dataflow disabled, the design degenerates to
//! sequential execution and the interval equals the sum of node latencies.

use crate::device::FpgaDevice;
use crate::latency::{buffer_info, estimate_body, NodeEstimate};
use crate::report::DesignEstimate;
use crate::resource::Resources;
use crate::shared_cache::{
    device_fingerprint, estimate_key, SharedCacheStats, SharedEstimateCache,
};
use hida_dataflow_ir::graph::DataflowGraph;
use hida_dataflow_ir::structural::ScheduleOp;
use hida_ir_core::analysis::{AnalysisCacheStats, AnalysisManager};
use hida_ir_core::par::run_batch;
use hida_ir_core::Fingerprint;
use hida_ir_core::{Context, OpId, ParallelStats};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Estimates complete designs (schedules or plain functions) on a target device.
///
/// Per-node estimates and the schedule's dataflow graph are memoized through an
/// internal [`AnalysisManager`]: repeated estimations of an unchanged design
/// (e.g. the dataflow and sequential variants of the same schedule, or QoR
/// queries inside a design-space sweep iteration) recompute nothing. The cache
/// is keyed by context identity and mutation generation, so estimating a design
/// after an IR edit transparently recomputes exactly the stale nodes.
///
/// The interior cache makes the estimator `Send` but **not `Sync`**: share-
/// nothing parallel sweeps should give each worker its own [`Clone`] (clones
/// start with a cold cache and the same device). Independently of that,
/// [`DataflowEstimator::with_jobs`] parallelizes *within* one estimation: the
/// per-node half of a schedule estimate (the expensive part) fans out to a
/// work-stealing pool over the shared read-only IR, and the computed estimates
/// seed the memoization cache before the (sequential) schedule-level timing
/// model reads them back.
///
/// For design-space sweeps, [`DataflowEstimator::with_shared_cache`] attaches
/// a content-addressed [`SharedEstimateCache`]: local misses consult the
/// shared cache under the node's [structural
/// fingerprint](crate::shared_cache::estimate_fingerprint) before computing,
/// so structurally identical nodes are estimated once *across* independent
/// compilations.
pub struct DataflowEstimator {
    device: FpgaDevice,
    analyses: RefCell<AnalysisManager>,
    jobs: usize,
    parallel: RefCell<ParallelStats>,
    /// Cross-compilation estimate cache, when one is attached, plus the
    /// precomputed fingerprint of this estimator's full device description
    /// (part of every cache key).
    shared: Option<(Arc<SharedEstimateCache>, Fingerprint)>,
    /// This estimator's own traffic against the shared cache.
    shared_traffic: RefCell<SharedCacheStats>,
}

impl Clone for DataflowEstimator {
    fn clone(&self) -> Self {
        // The per-context cache is an implementation detail; clones start with
        // a cold local cache but keep sharing the cross-compilation cache.
        let mut clone = DataflowEstimator::new(self.device.clone()).with_jobs(self.jobs);
        clone.shared = self.shared.clone();
        clone
    }
}

impl fmt::Debug for DataflowEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataflowEstimator")
            .field("device", &self.device)
            .field("cache", &self.analyses.borrow().stats())
            .field("jobs", &self.jobs)
            .field("shared", &self.shared.as_ref().map(|(c, _)| c.stats()))
            .finish()
    }
}

impl DataflowEstimator {
    /// Creates a sequential (one-job) estimator for the given device.
    pub fn new(device: FpgaDevice) -> Self {
        DataflowEstimator {
            device,
            analyses: RefCell::new(AnalysisManager::new()),
            jobs: 1,
            parallel: RefCell::new(ParallelStats::default()),
            shared: None,
            shared_traffic: RefCell::new(SharedCacheStats::default()),
        }
    }

    /// Sets the worker-thread count for per-node estimation inside
    /// [`DataflowEstimator::estimate_schedule`]. `1` (the default) keeps the
    /// estimator fully sequential; estimates are identical either way because
    /// each node's model is a pure function of the IR and the device.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attaches a cross-compilation [`SharedEstimateCache`]: when the local
    /// per-context memoization misses, the node's content fingerprint is
    /// looked up in (and computed results are published to) the shared cache,
    /// so structurally identical nodes are estimated only once across a whole
    /// design-space sweep. Estimates are unchanged by sharing — the cache key
    /// captures every input of the per-node model.
    pub fn with_shared_cache(mut self, cache: Arc<SharedEstimateCache>) -> Self {
        self.shared = Some((cache, device_fingerprint(&self.device)));
        self
    }

    /// The attached cross-compilation cache, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedEstimateCache>> {
        self.shared.as_ref().map(|(cache, _)| cache)
    }

    /// This estimator's own hit/miss traffic against the attached shared
    /// cache (all-zero when none is attached). The cache's
    /// [`SharedEstimateCache::stats`] aggregates over every attached
    /// estimator instead.
    pub fn shared_cache_stats(&self) -> SharedCacheStats {
        let mut stats = *self.shared_traffic.borrow();
        if let Some((cache, _)) = &self.shared {
            stats.entries = cache.len() as u64;
        }
        stats
    }

    /// Accumulated worker/steal counters of the parallel per-node estimation
    /// batches this estimator ran (all-zero when sequential).
    pub fn parallel_stats(&self) -> ParallelStats {
        self.parallel.borrow().clone()
    }

    /// The target device.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Cache traffic of the estimator's internal analysis manager.
    pub fn cache_stats(&self) -> AnalysisCacheStats {
        self.analyses.borrow().stats().clone()
    }

    /// Drops every memoized estimate.
    pub fn clear_cache(&self) {
        self.analyses.borrow_mut().invalidate_all();
    }

    /// Estimates one node of a schedule (memoized per IR generation).
    pub fn estimate_node(
        &self,
        ctx: &Context,
        node: hida_dataflow_ir::structural::NodeOp,
    ) -> NodeEstimate {
        self.body_estimate(ctx, node.id())
    }

    /// Memoized [`estimate_body`]: the device is fixed per estimator, so the
    /// (type, op) cache key is unambiguous within one instance. With a shared
    /// cache attached, local misses consult it by content fingerprint before
    /// computing.
    fn body_estimate(&self, ctx: &Context, op: OpId) -> NodeEstimate {
        let locally_cached = self
            .analyses
            .borrow()
            .cached_any::<NodeEstimate>(ctx, op)
            .is_some();
        if locally_cached || self.shared.is_none() {
            return self
                .analyses
                .borrow_mut()
                .get_with(ctx, op, "node-estimate", |ctx, op| {
                    estimate_body(ctx, op, &self.device)
                });
        }
        let (estimate, was_hit) = self.shared_lookup_or_compute(ctx, op);
        self.record_shared_traffic(was_hit, 1);
        self.analyses
            .borrow_mut()
            .get_with(ctx, op, "node-estimate", move |_, _| estimate)
    }

    /// Consults the attached shared cache for `op`'s estimate, computing and
    /// publishing it on a miss. Returns the estimate and whether it was a hit.
    fn shared_lookup_or_compute(&self, ctx: &Context, op: OpId) -> (NodeEstimate, bool) {
        let (cache, device_key) = self.shared.as_ref().expect("caller checked a cache exists");
        shared_lookup_or_compute(cache, *device_key, ctx, op, &self.device)
    }

    /// Folds `count` lookups (hits when `hit`, misses otherwise) into this
    /// estimator's local view of the shared-cache traffic.
    fn record_shared_traffic(&self, hit: bool, count: u64) {
        let mut traffic = self.shared_traffic.borrow_mut();
        if hit {
            traffic.hits += count;
        } else {
            traffic.misses += count;
        }
    }

    /// The parallel half of a schedule estimate: computes every *missing*
    /// per-node estimate on the work-stealing pool (read-only over the shared
    /// IR) and seeds the memoization cache, so the subsequent sequential
    /// queries are pure hits. A no-op under one job or when at most one node
    /// needs computing.
    fn warm_node_estimates(&self, ctx: &Context, nodes: &[hida_dataflow_ir::structural::NodeOp]) {
        if self.jobs <= 1 {
            return;
        }
        let missing: Vec<OpId> = nodes
            .iter()
            .map(|n| n.id())
            .filter(|&op| {
                self.analyses
                    .borrow()
                    .cached_any::<NodeEstimate>(ctx, op)
                    .is_none()
            })
            .collect();
        if missing.len() <= 1 {
            return;
        }
        let device = &self.device;
        let shared = self.shared.clone();
        let (estimates, stats) = run_batch(self.jobs, &missing, |&op| match &shared {
            // Workers publish computed estimates immediately, so duplicate
            // nodes later in the same batch already hit the shared cache.
            Some((cache, device_key)) => {
                let (estimate, hit) = shared_lookup_or_compute(cache, *device_key, ctx, op, device);
                (estimate, Some(hit))
            }
            None => (estimate_body(ctx, op, device), None),
        });
        self.parallel.borrow_mut().accumulate(&stats);
        let mut analyses = self.analyses.borrow_mut();
        for (&op, (estimate, shared_hit)) in missing.iter().zip(estimates) {
            if let Some(hit) = shared_hit {
                self.record_shared_traffic(hit, 1);
            }
            analyses.get_with(ctx, op, "node-estimate", move |_, _| estimate);
        }
    }

    fn graph(&self, ctx: &Context, schedule: ScheduleOp) -> DataflowGraph {
        self.analyses
            .borrow_mut()
            .get::<DataflowGraph>(ctx, schedule.id())
    }

    /// Estimates a structural dataflow schedule.
    ///
    /// When `dataflow_enabled` is false the nodes execute sequentially (the paper's
    /// "w/o df" configurations); otherwise the schedule is a coarse-grained pipeline.
    pub fn estimate_schedule(
        &self,
        ctx: &Context,
        schedule: ScheduleOp,
        dataflow_enabled: bool,
    ) -> DesignEstimate {
        let nodes = schedule.nodes(ctx);
        self.warm_node_estimates(ctx, &nodes);
        let node_estimates: Vec<NodeEstimate> = nodes
            .iter()
            .map(|&n| {
                // Per-node cancellation checkpoint: estimation is infallible,
                // so a hit deadline unwinds cooperatively and is classified at
                // the nearest isolation layer (pass manager or sweep engine).
                hida_ir_core::fault::checkpoint_or_unwind("estimator/node-loop");
                self.body_estimate(ctx, n.id())
            })
            .collect();

        // Buffer resources: every buffer declared in the schedule.
        let mut buffer_res = Resources::zero();
        let mut buffer_count = 0_i64;
        for buf in schedule.internal_buffers(ctx) {
            let info = buffer_info(ctx, buf.value(ctx));
            buffer_res += info.resources();
            buffer_count += 1;
        }
        // memref.allocs nested anywhere inside the schedule (baseline flows keep
        // full intermediate arrays on chip this way).
        for op in ctx.collect_ops(schedule.id(), hida_dialects::memory::ALLOC) {
            let value = ctx.op(op).results[0];
            let info = buffer_info(ctx, value);
            buffer_res += info.resources();
            buffer_count += 1;
        }

        let compute_res: Resources = node_estimates.iter().map(|e| e.resources).sum();
        let total_res = compute_res + buffer_res;
        let total_macs: i64 = node_estimates.iter().map(|e| e.macs).sum();

        let (mut interval, mut latency) = if dataflow_enabled {
            self.pipeline_timing(ctx, schedule, &nodes, &node_estimates)
        } else {
            let total: i64 = node_estimates.iter().map(|e| e.latency_cycles).sum();
            (total.max(1), total.max(1))
        };
        // Over-subscribed designs cannot sustain their nominal parallelism: a design
        // demanding more BRAM/DSP/LUT than the device provides must serialise or
        // time-multiplex the excess, so the achieved rate degrades proportionally to
        // the over-subscription (this is what limits ScaleHLS-style all-on-chip
        // designs and the Naive parallelization mode at large parallel factors).
        let over = total_res.utilization(&self.device);
        if over > 1.0 {
            interval = (interval as f64 * over).ceil() as i64;
            latency = (latency as f64 * over).ceil() as i64;
        }

        DesignEstimate {
            name: schedule_name(ctx, schedule.id()),
            interval_cycles: interval,
            latency_cycles: latency,
            resources: total_res,
            macs_per_sample: total_macs,
            node_estimates,
            buffer_count,
            clock_mhz: self.device.clock_mhz,
            utilization: total_res.utilization(&self.device),
        }
    }

    /// Estimates a plain function body (no dataflow structure), e.g. the Vitis-only
    /// baseline or a single fused task.
    pub fn estimate_function(&self, ctx: &Context, func: OpId) -> DesignEstimate {
        let est = self.body_estimate(ctx, func);
        let mut buffer_res = Resources::zero();
        let mut buffer_count = 0;
        for op in ctx.collect_ops(func, hida_dialects::memory::ALLOC) {
            let value = ctx.op(op).results[0];
            buffer_res += buffer_info(ctx, value).resources();
            buffer_count += 1;
        }
        for op in ctx.collect_ops(func, hida_dataflow_ir::op_names::BUFFER) {
            let value = ctx.op(op).results[0];
            buffer_res += buffer_info(ctx, value).resources();
            buffer_count += 1;
        }
        let total_res = est.resources + buffer_res;
        let over = total_res.utilization(&self.device).max(1.0);
        let cycles = (est.latency_cycles as f64 * over).ceil() as i64;
        DesignEstimate {
            name: est.name.clone(),
            interval_cycles: cycles,
            latency_cycles: cycles,
            resources: total_res,
            macs_per_sample: est.macs,
            node_estimates: vec![est],
            buffer_count,
            clock_mhz: self.device.clock_mhz,
            utilization: total_res.utilization(&self.device),
        }
    }

    /// Computes the pipeline interval and end-to-end latency of a dataflow schedule,
    /// accounting for unbalanced-path stalls.
    fn pipeline_timing(
        &self,
        ctx: &Context,
        schedule: ScheduleOp,
        nodes: &[hida_dataflow_ir::structural::NodeOp],
        estimates: &[NodeEstimate],
    ) -> (i64, i64) {
        if nodes.is_empty() {
            return (1, 1);
        }
        let latency_of: HashMap<_, i64> = nodes
            .iter()
            .zip(estimates)
            .map(|(&n, e)| (n, e.latency_cycles))
            .collect();

        let graph = self.graph(ctx, schedule);

        // Stall factors from unbalanced reconvergent paths: the producer of a short
        // path cannot issue a new frame until the long path drains, unless the buffer
        // on the short edge holds enough in-flight frames.
        let mut stall: HashMap<_, i64> = nodes.iter().map(|&n| (n, 1_i64)).collect();
        for (edge, imbalance) in graph.unbalanced_edges() {
            let required_depth = imbalance as i64 + 1;
            let actual_depth = buffer_info(ctx, edge.buffer).depth.max(1);
            if actual_depth < required_depth {
                let factor = (required_depth + actual_depth - 1) / actual_depth;
                let entry = stall.entry(edge.producer).or_insert(1);
                *entry = (*entry).max(factor);
            }
        }

        let interval = nodes
            .iter()
            .map(|n| latency_of[n] * stall[n])
            .max()
            .unwrap_or(1)
            .max(1);

        // End-to-end latency: longest-latency path through the dataflow graph.
        let mut path_latency: HashMap<_, i64> = HashMap::new();
        for &node in nodes {
            let best_pred = graph
                .predecessors(node)
                .iter()
                .filter_map(|p| path_latency.get(p).copied())
                .max()
                .unwrap_or(0);
            path_latency.insert(node, best_pred + latency_of[&node]);
        }
        let latency = path_latency.values().copied().max().unwrap_or(1).max(1);
        (interval, latency)
    }
}

/// Shared-cache lookup with compute-and-publish on miss; a free function so
/// worker threads can run it without touching the estimator's `RefCell`s.
/// Returns the estimate and whether it was served from the cache.
fn shared_lookup_or_compute(
    cache: &SharedEstimateCache,
    device_key: Fingerprint,
    ctx: &Context,
    op: OpId,
    device: &FpgaDevice,
) -> (NodeEstimate, bool) {
    let key = estimate_key(ctx, op, device_key);
    if let Some(mut estimate) = cache.lookup(key) {
        // The key deliberately ignores name attributes (so structurally
        // repeated nodes share an entry); the display name is re-derived from
        // the local IR, exactly as `estimate_body` would have.
        estimate.name = crate::latency::node_name(ctx, op);
        return (estimate, true);
    }
    let estimate = estimate_body(ctx, op, device);
    cache.publish(key, estimate.clone());
    (estimate, false)
}

fn schedule_name(ctx: &Context, op: OpId) -> String {
    ctx.op(op)
        .attr_str("schedule_name")
        .map(str::to_string)
        .unwrap_or_else(|| format!("schedule{}", op.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dataflow_ir::structural::{build_buffer, build_node, build_schedule, NodeOp};
    use hida_dialects::analysis::MemEffect;
    use hida_dialects::arith;
    use hida_dialects::loops::build_loop_nest;
    use hida_dialects::memory::{build_load, build_store};
    use hida_ir_core::{OpBuilder, Type, ValueId};

    /// Adds a simple compute body (elementwise copy with one multiply) to a node,
    /// iterating `n` elements of its first two args.
    fn fill_node_body(ctx: &mut Context, node: NodeOp, n: i64) {
        let body = node.body(ctx);
        let args = node.body_args(ctx);
        let (_l, ivs, inner) = build_loop_nest(ctx, body, &[(0, n, "i")]);
        let mut b = OpBuilder::at_block_end(ctx, inner);
        let x = build_load(&mut b, args[0], &[ivs[0]]);
        let y = arith::build_binary(&mut b, arith::MULF, x, x);
        build_store(&mut b, y, args[1], &[ivs[0]]);
    }

    /// Two-node pipeline: n0 writes buf, n1 reads buf; node workloads differ.
    fn two_node_schedule(ctx: &mut Context, n0_elems: i64, n1_elems: i64) -> ScheduleOp {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let (schedule, body) = {
            let mut b = OpBuilder::at_end_of(ctx, func);
            build_schedule(&mut b, "pipe")
        };
        let ty = Type::memref(vec![n0_elems.max(n1_elems)], Type::f32());
        let mk = |ctx: &mut Context, name: &str| {
            let mut b = OpBuilder::at_block_end(ctx, body);
            build_buffer(&mut b, ty.clone(), 2, name).1
        };
        let b_in: ValueId = mk(ctx, "in");
        let b_mid = mk(ctx, "mid");
        let b_out = mk(ctx, "out");
        let (n0, _) = build_node(
            ctx,
            body,
            "n0",
            &[(b_in, MemEffect::Read), (b_mid, MemEffect::Write)],
        );
        // Note: node body args order = operand order, so args[0]=read, args[1]=write.
        fill_node_body(ctx, n0, n0_elems);
        let (n1, _) = build_node(
            ctx,
            body,
            "n1",
            &[(b_mid, MemEffect::Read), (b_out, MemEffect::Write)],
        );
        fill_node_body(ctx, n1, n1_elems);
        schedule
    }

    #[test]
    fn dataflow_interval_is_max_of_node_latencies() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 1000, 4000);
        let df = est.estimate_schedule(&ctx, schedule, true);
        let seq = est.estimate_schedule(&ctx, schedule, false);
        assert!(df.interval_cycles < seq.interval_cycles);
        // Sequential interval equals the sum; dataflow equals (roughly) the max.
        let lats: Vec<i64> = df.node_estimates.iter().map(|e| e.latency_cycles).collect();
        assert_eq!(seq.interval_cycles, lats.iter().sum::<i64>());
        assert_eq!(df.interval_cycles, *lats.iter().max().unwrap());
        // Latency is the same chain in both cases here (single path).
        assert_eq!(df.latency_cycles, lats.iter().sum::<i64>());
        assert!(df.throughput() > seq.throughput());
    }

    #[test]
    fn buffers_contribute_bram_and_count() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 4096, 4096);
        let d = est.estimate_schedule(&ctx, schedule, true);
        assert_eq!(d.buffer_count, 3);
        assert!(d.resources.bram_18k > 0);
        assert!(d.utilization > 0.0);
        assert!(d.macs_per_sample > 0);
    }

    #[test]
    fn unbalanced_shortcut_stalls_unless_buffer_is_deep() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        // Residual pattern: n0 -> n1 -> n2 and n0 -> n2 through a shallow buffer.
        let build = |depth: i64| {
            let mut ctx = Context::new();
            let module = ctx.create_module("m");
            let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
            let (schedule, body) = {
                let mut b = OpBuilder::at_end_of(&mut ctx, func);
                build_schedule(&mut b, "res")
            };
            let ty = Type::memref(vec![1024], Type::f32());
            let mk = |ctx: &mut Context, name: &str, d: i64| {
                let mut b = OpBuilder::at_block_end(ctx, body);
                build_buffer(&mut b, ty.clone(), d, name).1
            };
            let b_in = mk(&mut ctx, "in", 2);
            let b_mid = mk(&mut ctx, "mid", 2);
            let b_mid2 = mk(&mut ctx, "mid2", 2);
            let b_skip = mk(&mut ctx, "skip", depth);
            let b_out = mk(&mut ctx, "out", 2);
            let (n0, _) = build_node(
                &mut ctx,
                body,
                "n0",
                &[
                    (b_in, MemEffect::Read),
                    (b_mid, MemEffect::Write),
                    (b_skip, MemEffect::Write),
                ],
            );
            fill_node_body(&mut ctx, n0, 1024);
            let (n1, _) = build_node(
                &mut ctx,
                body,
                "n1",
                &[(b_mid, MemEffect::Read), (b_mid2, MemEffect::Write)],
            );
            fill_node_body(&mut ctx, n1, 1024);
            let (n2, _) = build_node(
                &mut ctx,
                body,
                "n2",
                &[
                    (b_mid2, MemEffect::Read),
                    (b_skip, MemEffect::Read),
                    (b_out, MemEffect::Write),
                ],
            );
            fill_node_body(&mut ctx, n2, 1024);
            let d = est.estimate_schedule(&ctx, schedule, true);
            d.interval_cycles
        };
        let shallow = build(1);
        let deep = build(3);
        assert!(
            shallow > deep,
            "shallow skip buffer must stall the pipeline"
        );
    }

    #[test]
    fn repeated_estimates_reuse_memoized_node_results() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 1024, 2048);
        let first = est.estimate_schedule(&ctx, schedule, true);
        let after_first = est.cache_stats();
        // 2 node estimates + 1 dataflow graph were computed.
        assert!(after_first.misses >= 3, "{after_first:?}");
        assert_eq!(after_first.hits, 0);

        // The sequential variant and a repeat of the dataflow estimate recompute
        // nothing: the IR did not change.
        let sequential = est.estimate_schedule(&ctx, schedule, false);
        let second = est.estimate_schedule(&ctx, schedule, true);
        let after_repeats = est.cache_stats();
        assert!(after_repeats.hits >= 4, "{after_repeats:?}");
        assert_eq!(after_repeats.misses, after_first.misses);
        assert_eq!(first.node_estimates, second.node_estimates);
        assert_eq!(first.node_estimates, sequential.node_estimates);

        // Mutating the IR invalidates the memoized estimates.
        let node = schedule.nodes(&ctx)[0];
        fill_node_body(&mut ctx, node, 16);
        let third = est.estimate_schedule(&ctx, schedule, true);
        assert!(est.cache_stats().misses > after_repeats.misses);
        assert!(third.node_estimates[0].latency_cycles >= first.node_estimates[0].latency_cycles);

        est.clear_cache();
        assert!(est.cache_stats().invalidations > 0);
        // A clone starts with a cold cache but the same device.
        let cloned = est.clone();
        assert_eq!(cloned.cache_stats(), AnalysisCacheStats::default());
        assert_eq!(cloned.device().name, est.device().name);
    }

    #[test]
    fn shared_cache_reuses_estimates_across_contexts() {
        let cache = Arc::new(SharedEstimateCache::new());
        // Two independent compilations of the same design: separate contexts,
        // different op numbering (the second context builds junk IR first).
        let mut ctx_a = Context::new();
        let schedule_a = two_node_schedule(&mut ctx_a, 1024, 2048);
        let mut ctx_b = Context::new();
        ctx_b.create_module("junk");
        let schedule_b = two_node_schedule(&mut ctx_b, 1024, 2048);

        let est_a = DataflowEstimator::new(FpgaDevice::zu3eg()).with_shared_cache(cache.clone());
        let est_b = DataflowEstimator::new(FpgaDevice::zu3eg()).with_shared_cache(cache.clone());
        let a = est_a.estimate_schedule(&ctx_a, schedule_a, true);
        assert_eq!(est_a.shared_cache_stats().hits, 0);
        assert_eq!(est_a.shared_cache_stats().misses, 2);

        let b = est_b.estimate_schedule(&ctx_b, schedule_b, true);
        // The second compilation's node estimates are pure shared hits, and
        // the results are bit-identical to an isolated estimation.
        assert_eq!(est_b.shared_cache_stats().hits, 2);
        assert_eq!(est_b.shared_cache_stats().misses, 0);
        assert_eq!(a.node_estimates, b.node_estimates);
        assert_eq!(a.interval_cycles, b.interval_cycles);
        let isolated = DataflowEstimator::new(FpgaDevice::zu3eg());
        let reference = isolated.estimate_schedule(&ctx_b, schedule_b, true);
        assert_eq!(reference, b);

        // A design point where only the first node changed (same buffer
        // shapes: the buffer size is the max of both nodes) re-estimates
        // exactly that node.
        let mut ctx_c = Context::new();
        let schedule_c = two_node_schedule(&mut ctx_c, 2000, 2048);
        let est_c = DataflowEstimator::new(FpgaDevice::zu3eg()).with_shared_cache(cache.clone());
        est_c.estimate_schedule(&ctx_c, schedule_c, true);
        let traffic = est_c.shared_cache_stats();
        // The 2048-element node is shared; the 4096-element one is new.
        assert_eq!(traffic.hits, 1, "{traffic:?}");
        assert_eq!(traffic.misses, 1, "{traffic:?}");
        assert_eq!(cache.stats().entries, 3);

        // Clones keep the shared cache but reset local traffic.
        let cloned = est_c.clone();
        assert!(cloned.shared_cache().is_some());
        assert_eq!(cloned.shared_cache_stats().hits, 0);
    }

    #[test]
    fn estimate_function_includes_on_chip_allocs() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("plain", vec![], vec![]);
        let body = ctx.body_block(func);
        let a = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            hida_dialects::memory::build_alloc(&mut b, Type::memref(vec![8192], Type::f32()), "A")
        };
        let (_l, ivs, inner) = build_loop_nest(&mut ctx, body, &[(0, 8192, "i")]);
        let mut b = OpBuilder::at_block_end(&mut ctx, inner);
        let x = build_load(&mut b, a, &[ivs[0]]);
        build_store(&mut b, x, a, &[ivs[0]]);
        let d = est.estimate_function(&ctx, func);
        assert_eq!(d.buffer_count, 1);
        assert!(d.resources.bram_18k >= 14); // 32 KiB of f32 data in 18 Kb blocks.
        assert_eq!(d.interval_cycles, d.latency_cycles);
    }
}
