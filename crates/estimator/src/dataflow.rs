//! Schedule-level dataflow throughput estimation.
//!
//! A well-formed HIDA dataflow executes its nodes in a coarse-grained pipeline: with
//! ping-pong buffers between stages, a new data frame can enter the design every
//! `max_i(latency_i)` cycles (the critical node determines the achievable rate,
//! paper §1). Unbalanced data paths stall the producer (Figure 8) unless buffers on
//! the short path are deep enough; with dataflow disabled, the design degenerates to
//! sequential execution and the interval equals the sum of node latencies.

use crate::device::FpgaDevice;
use crate::latency::{buffer_info, estimate_body, NodeEstimate};
use crate::report::DesignEstimate;
use crate::resource::Resources;
use hida_dataflow_ir::graph::DataflowGraph;
use hida_dataflow_ir::structural::ScheduleOp;
use hida_ir_core::{Context, OpId};
use std::collections::HashMap;

/// Estimates complete designs (schedules or plain functions) on a target device.
#[derive(Debug, Clone)]
pub struct DataflowEstimator {
    device: FpgaDevice,
}

impl DataflowEstimator {
    /// Creates an estimator for the given device.
    pub fn new(device: FpgaDevice) -> Self {
        DataflowEstimator { device }
    }

    /// The target device.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Estimates one node of a schedule.
    pub fn estimate_node(
        &self,
        ctx: &Context,
        node: hida_dataflow_ir::structural::NodeOp,
    ) -> NodeEstimate {
        estimate_body(ctx, node.id(), &self.device)
    }

    /// Estimates a structural dataflow schedule.
    ///
    /// When `dataflow_enabled` is false the nodes execute sequentially (the paper's
    /// "w/o df" configurations); otherwise the schedule is a coarse-grained pipeline.
    pub fn estimate_schedule(
        &self,
        ctx: &Context,
        schedule: ScheduleOp,
        dataflow_enabled: bool,
    ) -> DesignEstimate {
        let nodes = schedule.nodes(ctx);
        let node_estimates: Vec<NodeEstimate> = nodes
            .iter()
            .map(|&n| estimate_body(ctx, n.id(), &self.device))
            .collect();

        // Buffer resources: every buffer declared in the schedule.
        let mut buffer_res = Resources::zero();
        let mut buffer_count = 0_i64;
        for buf in schedule.internal_buffers(ctx) {
            let info = buffer_info(ctx, buf.value(ctx));
            buffer_res += info.resources();
            buffer_count += 1;
        }
        // memref.allocs nested anywhere inside the schedule (baseline flows keep
        // full intermediate arrays on chip this way).
        for op in ctx.collect_ops(schedule.id(), hida_dialects::memory::ALLOC) {
            let value = ctx.op(op).results[0];
            let info = buffer_info(ctx, value);
            buffer_res += info.resources();
            buffer_count += 1;
        }

        let compute_res: Resources = node_estimates.iter().map(|e| e.resources).sum();
        let total_res = compute_res + buffer_res;
        let total_macs: i64 = node_estimates.iter().map(|e| e.macs).sum();

        let (mut interval, mut latency) = if dataflow_enabled {
            self.pipeline_timing(ctx, schedule, &nodes, &node_estimates)
        } else {
            let total: i64 = node_estimates.iter().map(|e| e.latency_cycles).sum();
            (total.max(1), total.max(1))
        };
        // Over-subscribed designs cannot sustain their nominal parallelism: a design
        // demanding more BRAM/DSP/LUT than the device provides must serialise or
        // time-multiplex the excess, so the achieved rate degrades proportionally to
        // the over-subscription (this is what limits ScaleHLS-style all-on-chip
        // designs and the Naive parallelization mode at large parallel factors).
        let over = total_res.utilization(&self.device);
        if over > 1.0 {
            interval = (interval as f64 * over).ceil() as i64;
            latency = (latency as f64 * over).ceil() as i64;
        }

        DesignEstimate {
            name: schedule_name(ctx, schedule.id()),
            interval_cycles: interval,
            latency_cycles: latency,
            resources: total_res,
            macs_per_sample: total_macs,
            node_estimates,
            buffer_count,
            clock_mhz: self.device.clock_mhz,
            utilization: total_res.utilization(&self.device),
        }
    }

    /// Estimates a plain function body (no dataflow structure), e.g. the Vitis-only
    /// baseline or a single fused task.
    pub fn estimate_function(&self, ctx: &Context, func: OpId) -> DesignEstimate {
        let est = estimate_body(ctx, func, &self.device);
        let mut buffer_res = Resources::zero();
        let mut buffer_count = 0;
        for op in ctx.collect_ops(func, hida_dialects::memory::ALLOC) {
            let value = ctx.op(op).results[0];
            buffer_res += buffer_info(ctx, value).resources();
            buffer_count += 1;
        }
        for op in ctx.collect_ops(func, hida_dataflow_ir::op_names::BUFFER) {
            let value = ctx.op(op).results[0];
            buffer_res += buffer_info(ctx, value).resources();
            buffer_count += 1;
        }
        let total_res = est.resources + buffer_res;
        let over = total_res.utilization(&self.device).max(1.0);
        let cycles = (est.latency_cycles as f64 * over).ceil() as i64;
        DesignEstimate {
            name: est.name.clone(),
            interval_cycles: cycles,
            latency_cycles: cycles,
            resources: total_res,
            macs_per_sample: est.macs,
            node_estimates: vec![est],
            buffer_count,
            clock_mhz: self.device.clock_mhz,
            utilization: total_res.utilization(&self.device),
        }
    }

    /// Computes the pipeline interval and end-to-end latency of a dataflow schedule,
    /// accounting for unbalanced-path stalls.
    fn pipeline_timing(
        &self,
        ctx: &Context,
        schedule: ScheduleOp,
        nodes: &[hida_dataflow_ir::structural::NodeOp],
        estimates: &[NodeEstimate],
    ) -> (i64, i64) {
        if nodes.is_empty() {
            return (1, 1);
        }
        let latency_of: HashMap<_, i64> = nodes
            .iter()
            .zip(estimates)
            .map(|(&n, e)| (n, e.latency_cycles))
            .collect();

        let graph = DataflowGraph::from_schedule(ctx, schedule);

        // Stall factors from unbalanced reconvergent paths: the producer of a short
        // path cannot issue a new frame until the long path drains, unless the buffer
        // on the short edge holds enough in-flight frames.
        let mut stall: HashMap<_, i64> = nodes.iter().map(|&n| (n, 1_i64)).collect();
        for (edge, imbalance) in graph.unbalanced_edges() {
            let required_depth = imbalance as i64 + 1;
            let actual_depth = buffer_info(ctx, edge.buffer).depth.max(1);
            if actual_depth < required_depth {
                let factor = (required_depth + actual_depth - 1) / actual_depth;
                let entry = stall.entry(edge.producer).or_insert(1);
                *entry = (*entry).max(factor);
            }
        }

        let interval = nodes
            .iter()
            .map(|n| latency_of[n] * stall[n])
            .max()
            .unwrap_or(1)
            .max(1);

        // End-to-end latency: longest-latency path through the dataflow graph.
        let mut path_latency: HashMap<_, i64> = HashMap::new();
        for &node in nodes {
            let best_pred = graph
                .predecessors(node)
                .iter()
                .filter_map(|p| path_latency.get(p).copied())
                .max()
                .unwrap_or(0);
            path_latency.insert(node, best_pred + latency_of[&node]);
        }
        let latency = path_latency.values().copied().max().unwrap_or(1).max(1);
        (interval, latency)
    }
}

fn schedule_name(ctx: &Context, op: OpId) -> String {
    ctx.op(op)
        .attr_str("schedule_name")
        .map(str::to_string)
        .unwrap_or_else(|| format!("schedule{}", op.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dataflow_ir::structural::{build_buffer, build_node, build_schedule, NodeOp};
    use hida_dialects::analysis::MemEffect;
    use hida_dialects::arith;
    use hida_dialects::loops::build_loop_nest;
    use hida_dialects::memory::{build_load, build_store};
    use hida_ir_core::{OpBuilder, Type, ValueId};

    /// Adds a simple compute body (elementwise copy with one multiply) to a node,
    /// iterating `n` elements of its first two args.
    fn fill_node_body(ctx: &mut Context, node: NodeOp, n: i64) {
        let body = node.body(ctx);
        let args = node.body_args(ctx);
        let (_l, ivs, inner) = build_loop_nest(ctx, body, &[(0, n, "i")]);
        let mut b = OpBuilder::at_block_end(ctx, inner);
        let x = build_load(&mut b, args[0], &[ivs[0]]);
        let y = arith::build_binary(&mut b, arith::MULF, x, x);
        build_store(&mut b, y, args[1], &[ivs[0]]);
    }

    /// Two-node pipeline: n0 writes buf, n1 reads buf; node workloads differ.
    fn two_node_schedule(ctx: &mut Context, n0_elems: i64, n1_elems: i64) -> ScheduleOp {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let (schedule, body) = {
            let mut b = OpBuilder::at_end_of(ctx, func);
            build_schedule(&mut b, "pipe")
        };
        let ty = Type::memref(vec![n0_elems.max(n1_elems)], Type::f32());
        let mk = |ctx: &mut Context, name: &str| {
            let mut b = OpBuilder::at_block_end(ctx, body);
            build_buffer(&mut b, ty.clone(), 2, name).1
        };
        let b_in: ValueId = mk(ctx, "in");
        let b_mid = mk(ctx, "mid");
        let b_out = mk(ctx, "out");
        let (n0, _) = build_node(
            ctx,
            body,
            "n0",
            &[(b_in, MemEffect::Read), (b_mid, MemEffect::Write)],
        );
        // Note: node body args order = operand order, so args[0]=read, args[1]=write.
        fill_node_body(ctx, n0, n0_elems);
        let (n1, _) = build_node(
            ctx,
            body,
            "n1",
            &[(b_mid, MemEffect::Read), (b_out, MemEffect::Write)],
        );
        fill_node_body(ctx, n1, n1_elems);
        schedule
    }

    #[test]
    fn dataflow_interval_is_max_of_node_latencies() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 1000, 4000);
        let df = est.estimate_schedule(&ctx, schedule, true);
        let seq = est.estimate_schedule(&ctx, schedule, false);
        assert!(df.interval_cycles < seq.interval_cycles);
        // Sequential interval equals the sum; dataflow equals (roughly) the max.
        let lats: Vec<i64> = df.node_estimates.iter().map(|e| e.latency_cycles).collect();
        assert_eq!(seq.interval_cycles, lats.iter().sum::<i64>());
        assert_eq!(df.interval_cycles, *lats.iter().max().unwrap());
        // Latency is the same chain in both cases here (single path).
        assert_eq!(df.latency_cycles, lats.iter().sum::<i64>());
        assert!(df.throughput() > seq.throughput());
    }

    #[test]
    fn buffers_contribute_bram_and_count() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 4096, 4096);
        let d = est.estimate_schedule(&ctx, schedule, true);
        assert_eq!(d.buffer_count, 3);
        assert!(d.resources.bram_18k > 0);
        assert!(d.utilization > 0.0);
        assert!(d.macs_per_sample > 0);
    }

    #[test]
    fn unbalanced_shortcut_stalls_unless_buffer_is_deep() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        // Residual pattern: n0 -> n1 -> n2 and n0 -> n2 through a shallow buffer.
        let build = |depth: i64| {
            let mut ctx = Context::new();
            let module = ctx.create_module("m");
            let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
            let (schedule, body) = {
                let mut b = OpBuilder::at_end_of(&mut ctx, func);
                build_schedule(&mut b, "res")
            };
            let ty = Type::memref(vec![1024], Type::f32());
            let mk = |ctx: &mut Context, name: &str, d: i64| {
                let mut b = OpBuilder::at_block_end(ctx, body);
                build_buffer(&mut b, ty.clone(), d, name).1
            };
            let b_in = mk(&mut ctx, "in", 2);
            let b_mid = mk(&mut ctx, "mid", 2);
            let b_mid2 = mk(&mut ctx, "mid2", 2);
            let b_skip = mk(&mut ctx, "skip", depth);
            let b_out = mk(&mut ctx, "out", 2);
            let (n0, _) = build_node(
                &mut ctx,
                body,
                "n0",
                &[
                    (b_in, MemEffect::Read),
                    (b_mid, MemEffect::Write),
                    (b_skip, MemEffect::Write),
                ],
            );
            fill_node_body(&mut ctx, n0, 1024);
            let (n1, _) = build_node(
                &mut ctx,
                body,
                "n1",
                &[(b_mid, MemEffect::Read), (b_mid2, MemEffect::Write)],
            );
            fill_node_body(&mut ctx, n1, 1024);
            let (n2, _) = build_node(
                &mut ctx,
                body,
                "n2",
                &[
                    (b_mid2, MemEffect::Read),
                    (b_skip, MemEffect::Read),
                    (b_out, MemEffect::Write),
                ],
            );
            fill_node_body(&mut ctx, n2, 1024);
            let d = est.estimate_schedule(&ctx, schedule, true);
            d.interval_cycles
        };
        let shallow = build(1);
        let deep = build(3);
        assert!(
            shallow > deep,
            "shallow skip buffer must stall the pipeline"
        );
    }

    #[test]
    fn estimate_function_includes_on_chip_allocs() {
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("plain", vec![], vec![]);
        let body = ctx.body_block(func);
        let a = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            hida_dialects::memory::build_alloc(&mut b, Type::memref(vec![8192], Type::f32()), "A")
        };
        let (_l, ivs, inner) = build_loop_nest(&mut ctx, body, &[(0, 8192, "i")]);
        let mut b = OpBuilder::at_block_end(&mut ctx, inner);
        let x = build_load(&mut b, a, &[ivs[0]]);
        build_store(&mut b, x, a, &[ivs[0]]);
        let d = est.estimate_function(&ctx, func);
        assert_eq!(d.buffer_count, 1);
        assert!(d.resources.bram_18k >= 14); // 32 KiB of f32 data in 18 Kb blocks.
        assert_eq!(d.interval_cycles, d.latency_cycles);
    }
}
