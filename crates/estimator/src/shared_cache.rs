//! Content-addressed estimate cache shared *across* compilations.
//!
//! A design-space sweep compiles dozens of variants of one workload, and most
//! node bodies are structurally identical across design points — only the
//! nodes whose tiling or parallel factors actually changed differ. The
//! per-compilation memoization inside [`DataflowEstimator`] cannot see that:
//! it is keyed by context identity and mutation generation, both of which are
//! fresh for every design point.
//!
//! [`SharedEstimateCache`] closes the gap. It is a `Sync` map from a
//! [`Fingerprint`] to [`NodeEstimate`], where the key combines the [content
//! hash](estimate_fingerprint) of a node subtree *plus* the physical
//! description of every buffer the node accesses with the [full device
//! description](device_fingerprint) — every field, not just the device name,
//! so sweeping device parameters (clock, bandwidth) under one name can never
//! alias. Because [`crate::latency::estimate_body`] is a pure function of
//! exactly those inputs, a cache hit returns bit-for-bit the estimate a
//! recomputation would produce — sharing is an invisible optimization, never
//! a QoR change.
//!
//! Estimators attach to a cache with
//! [`DataflowEstimator::with_shared_cache`]; a sweep engine creates one cache
//! and hands a clone of the `Arc` to every concurrent compilation.
//!
//! With [`SharedEstimateCache::with_store`], the cache additionally layers a
//! persistent, content-addressed [`EstimateStore`] underneath: in-memory
//! misses read through to disk, and freshly computed estimates are written
//! back — so *separate processes* (consecutive CLI runs, bench invocations,
//! CI steps) pointed at the same directory share estimate work too. The disk
//! tier keeps its own hit/miss counters
//! ([`SharedEstimateCache::persistent_stats`]); the in-memory counters count
//! a disk hit as a cache hit, because the caller was served without
//! computing.
//!
//! [`DataflowEstimator`]: crate::dataflow::DataflowEstimator
//! [`DataflowEstimator::with_shared_cache`]: crate::dataflow::DataflowEstimator::with_shared_cache

use crate::device::FpgaDevice;
use crate::latency::{buffer_info, NodeEstimate};
use crate::store::{EstimateStore, PersistentStoreStats};
use hida_ir_core::fingerprint::{structural_fingerprint_filtered, Fingerprint, StableHasher};
use hida_ir_core::{lock_recover, Context, OpId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Traffic counters of a [`SharedEstimateCache`] (or of one estimator's view
/// of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Estimates served from the shared cache.
    pub hits: u64,
    /// Estimates that had to be computed (and were then published).
    pub misses: u64,
    /// Distinct `(fingerprint, device)` entries currently stored.
    pub entries: u64,
}

impl SharedCacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Adds `other`'s hit/miss counters onto `self` (entries: maximum, since
    /// per-estimator views share one store).
    pub fn accumulate(&mut self, other: &SharedCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries = self.entries.max(other.entries);
    }
}

impl fmt::Display for SharedCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit / {} miss ({:.0}% hit rate, {} entries)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

/// A `Sync` node-estimate cache keyed by the combined node-plus-device
/// [`Fingerprint`] (see [`estimate_key`]), designed to be shared (behind an
/// `Arc`) by every compilation of a design-space sweep.
///
/// All internal locking recovers from mutex poison ([`lock_recover`]): a
/// worker that panics while holding the map lock cannot wedge later lookups —
/// entries are only ever inserted whole, so the map is valid even after an
/// interrupted critical section.
#[derive(Default)]
pub struct SharedEstimateCache {
    entries: Mutex<HashMap<Fingerprint, NodeEstimate>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Persistent read-through/write-back tier, when attached.
    store: Option<EstimateStore>,
}

impl SharedEstimateCache {
    /// Creates an empty, purely in-memory cache.
    pub fn new() -> Self {
        SharedEstimateCache::default()
    }

    /// Creates a cache layered over a persistent [`EstimateStore`]: lookups
    /// that miss in memory read through to disk, and published estimates are
    /// written back, so separate processes sharing the store's directory
    /// share estimate work across runs.
    pub fn with_store(store: EstimateStore) -> Self {
        SharedEstimateCache {
            store: Some(store),
            ..SharedEstimateCache::default()
        }
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&EstimateStore> {
        self.store.as_ref()
    }

    /// Traffic/maintenance counters of the persistent tier (`None` without an
    /// attached store).
    pub fn persistent_stats(&self) -> Option<PersistentStoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Looks up the estimate cached under `key`, counting a hit or a miss.
    /// With a persistent store attached, an in-memory miss reads through to
    /// disk; a disk hit is promoted into the in-memory map (and counted as a
    /// hit — the caller was served without computing).
    pub fn lookup(&self, key: Fingerprint) -> Option<NodeEstimate> {
        {
            let entries = lock_recover(&self.entries);
            if let Some(estimate) = entries.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(estimate.clone());
            }
        }
        // Read through to the persistent tier outside the map lock: disk IO
        // must not serialize concurrent in-memory lookups.
        if let Some(estimate) = self.store.as_ref().and_then(|store| store.load(key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            lock_recover(&self.entries)
                .entry(key)
                .or_insert_with(|| estimate.clone());
            return Some(estimate);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Probes the cache under `key` **without** counting hit/miss traffic and
    /// without computing anything on a miss — the surrogate query the
    /// design-space explorer uses to pre-score candidate points before
    /// deciding whether to compile them. With a persistent store attached, an
    /// in-memory miss still reads through to disk (and promotes the entry),
    /// so estimates written by earlier processes feed the surrogate too. The
    /// main hit/miss counters stay untouched: a probe is a question about the
    /// cache, not a request served by it.
    pub fn peek(&self, key: Fingerprint) -> Option<NodeEstimate> {
        {
            let entries = lock_recover(&self.entries);
            if let Some(estimate) = entries.get(&key) {
                return Some(estimate.clone());
            }
        }
        let estimate = self.store.as_ref().and_then(|store| store.load(key))?;
        lock_recover(&self.entries)
            .entry(key)
            .or_insert_with(|| estimate.clone());
        Some(estimate)
    }

    /// Publishes a freshly computed estimate. The first publisher wins; a
    /// concurrent duplicate is dropped (both computed the same pure function,
    /// so the values are identical anyway). With a persistent store attached,
    /// a first publish is also written back to disk.
    pub fn publish(&self, key: Fingerprint, estimate: NodeEstimate) {
        let inserted = {
            let mut entries = lock_recover(&self.entries);
            match entries.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(estimate.clone());
                    true
                }
            }
        };
        if inserted {
            if let Some(store) = &self.store {
                store.save(key, &estimate);
            }
        }
    }

    /// Number of cached node-per-device entries.
    pub fn len(&self) -> usize {
        lock_recover(&self.entries).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime traffic counters across every attached estimator.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

impl fmt::Debug for SharedEstimateCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedEstimateCache")
            .field("stats", &self.stats())
            .field("persistent", &self.persistent_stats())
            .finish()
    }
}

/// Presentation-only attributes excluded from the estimate key. They feed
/// only the `name` field of a [`NodeEstimate`], which
/// [`crate::dataflow::DataflowEstimator`] re-derives from the local IR when
/// serving a shared hit — so ResNet's structurally repeated basic blocks (and
/// their twins in other design points) share one cache entry despite their
/// distinct names.
const NAME_ATTRS: [&str; 3] = ["node_name", "task_name", "sym_name"];

/// The content key under which a node (or function) body's estimate may be
/// shared across compilations: the structural fingerprint of the subtree
/// rooted at `op` — ignoring the name attributes (`node_name`, `task_name`,
/// `sym_name`) — with every
/// external value folded in as the physical description of the buffer behind
/// it.
///
/// This captures *all* inputs of [`crate::latency::estimate_body`] except the
/// device (folded into the full cache key by [`estimate_key`]) and the
/// display name: loop structure, unroll / tile / pipeline annotations and
/// access patterns live inside the subtree, while buffer shapes, partition
/// factors, depths and placements are resolved through [`buffer_info`]
/// exactly like the estimator itself resolves them.
pub fn estimate_fingerprint(ctx: &Context, op: OpId) -> Fingerprint {
    let keep = |key: &str| !NAME_ATTRS.contains(&key);
    structural_fingerprint_filtered(ctx, op, keep, |hasher, value| {
        hasher.write_str(&ctx.value_type(value).to_string());
        let info = buffer_info(ctx, value);
        hasher.write_i64(info.elements);
        hasher.write_u64(u64::from(info.bits));
        hasher.write_u64(info.partition_factors.len() as u64);
        for &factor in &info.partition_factors {
            hasher.write_i64(factor);
        }
        hasher.write_i64(info.depth);
        hasher.write_str(&format!("{:?}", info.kind));
        hasher.write_u64(info.shape.len() as u64);
        for &dim in &info.shape {
            hasher.write_i64(dim);
        }
    })
}

/// Content hash of the *entire* device description — every field, not just
/// the name — so device catalogs or sweeps that vary clock/bandwidth/latency
/// parameters under one name can never alias in the cache. Computed once per
/// estimator and combined with each node's fingerprint by [`estimate_key`].
pub fn device_fingerprint(device: &FpgaDevice) -> Fingerprint {
    let mut hasher = StableHasher::new();
    hasher.write_str(&device.name);
    hasher.write_i64(device.dsp);
    hasher.write_i64(device.bram_18k);
    hasher.write_i64(device.uram);
    hasher.write_i64(device.lut);
    hasher.write_i64(device.ff);
    hasher.write_u64(device.clock_mhz.to_bits());
    hasher.write_i64(device.axi_latency);
    hasher.write_u64(device.axi_bytes_per_cycle.to_bits());
    hasher.write_i64(device.axi_burst);
    hasher.finish()
}

/// The full cache key of one node's estimate: [`estimate_fingerprint`] of the
/// node combined with a precomputed [`device_fingerprint`]. A plain
/// `Fingerprint` again, so lookups are a single allocation-free map probe.
pub fn estimate_key(ctx: &Context, op: OpId, device: Fingerprint) -> Fingerprint {
    let node = estimate_fingerprint(ctx, op);
    let mut hasher = StableHasher::new();
    hasher.write_u64(node.hi);
    hasher.write_u64(node.lo);
    hasher.write_u64(device.hi);
    hasher.write_u64(device.lo);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resources;

    fn estimate(name: &str) -> NodeEstimate {
        NodeEstimate {
            name: name.to_string(),
            latency_cycles: 10,
            ii: 1,
            resources: Resources::zero(),
            macs: 5,
            external_bytes: 0,
            parallelism: 1,
        }
    }

    #[test]
    fn lookup_publish_round_trip_counts_traffic() {
        let cache = SharedEstimateCache::new();
        let key = Fingerprint { hi: 1, lo: 2 };
        let other = Fingerprint { hi: 1, lo: 3 };
        assert!(cache.lookup(key).is_none());
        cache.publish(key, estimate("n"));
        assert_eq!(cache.lookup(key).unwrap().name, "n");
        // A different combined key is a distinct entry.
        assert!(cache.lookup(other).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!cache.is_empty());
    }

    #[test]
    fn peek_probes_without_counting_traffic() {
        let cache = SharedEstimateCache::new();
        let key = Fingerprint { hi: 4, lo: 2 };
        assert!(cache.peek(key).is_none());
        cache.publish(key, estimate("probed"));
        assert_eq!(cache.peek(key).unwrap().name, "probed");
        // Neither the miss nor the hit moved the lookup counters.
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn first_publisher_wins() {
        let cache = SharedEstimateCache::new();
        let key = Fingerprint { hi: 7, lo: 7 };
        cache.publish(key, estimate("first"));
        cache.publish(key, estimate("second"));
        assert_eq!(cache.lookup(key).unwrap().name, "first");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging_lookups() {
        hida_ir_core::fault::silence_expected_panics();
        let cache = std::sync::Arc::new(SharedEstimateCache::new());
        let key = Fingerprint { hi: 9, lo: 9 };
        cache.publish(key, estimate("survivor"));
        // Poison the entries mutex from a panicking worker.
        let poisoner = std::sync::Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.entries.lock().unwrap();
            panic!("injected fault: poison the cache lock");
        })
        .join();
        assert!(cache.entries.is_poisoned());
        // Lookups and publishes keep working after the poisoning panic.
        assert_eq!(cache.lookup(key).unwrap().name, "survivor");
        let key2 = Fingerprint { hi: 9, lo: 10 };
        cache.publish(key2, estimate("after"));
        assert_eq!(cache.lookup(key2).unwrap().name, "after");
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(key).is_some());
    }

    #[test]
    fn device_fingerprints_separate_same_named_configurations() {
        let stock = FpgaDevice::vu9p_slr();
        let overclocked = FpgaDevice {
            clock_mhz: 300.0,
            ..FpgaDevice::vu9p_slr()
        };
        // Same name, different parameters: the keys must differ, so a sweep
        // over device parameters can never be served a stale estimate.
        assert_eq!(stock.name, overclocked.name);
        assert_ne!(device_fingerprint(&stock), device_fingerprint(&overclocked));
        assert_ne!(
            device_fingerprint(&stock),
            device_fingerprint(&FpgaDevice::zu3eg())
        );
    }

    #[test]
    fn stats_accumulate_and_render() {
        let mut total = SharedCacheStats::default();
        total.accumulate(&SharedCacheStats {
            hits: 3,
            misses: 1,
            entries: 4,
        });
        total.accumulate(&SharedCacheStats {
            hits: 1,
            misses: 1,
            entries: 4,
        });
        assert_eq!(total.hits, 4);
        assert_eq!(total.misses, 2);
        assert_eq!(total.entries, 4);
        let rendered = total.to_string();
        assert!(rendered.contains("4 hit"), "{rendered}");
        assert!(rendered.contains("67% hit rate"), "{rendered}");
        assert_eq!(SharedCacheStats::default().hit_rate(), 0.0);
    }
}
