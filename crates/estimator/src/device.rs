//! FPGA device catalogs for the platforms used in the paper's evaluation.
//!
//! * AMD PYNQ-Z2 (Zynq-7020) — the LeNet case study platform (§2).
//! * AMD-Xilinx ZU3EG — the PolyBench C++ kernel platform (§7.1).
//! * One super logic region (SLR) of an AMD-Xilinx VU9P — the DNN platform (§7.2).

/// Static description of an FPGA target.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Human-readable device name.
    pub name: String,
    /// Number of DSP48 blocks.
    pub dsp: i64,
    /// Number of 18 Kb block RAMs.
    pub bram_18k: i64,
    /// Number of UltraRAM blocks (0 when the family has none).
    pub uram: i64,
    /// Number of LUTs.
    pub lut: i64,
    /// Number of flip-flops.
    pub ff: i64,
    /// Target clock frequency in MHz (the paper holds 200 MHz for DNNs).
    pub clock_mhz: f64,
    /// Round-trip latency of an external (AXI) memory access in cycles.
    pub axi_latency: i64,
    /// Sustained external-memory bandwidth in bytes per cycle per port.
    pub axi_bytes_per_cycle: f64,
    /// Maximum AXI burst length in beats.
    pub axi_burst: i64,
}

impl FpgaDevice {
    /// AMD PYNQ-Z2 board (Zynq-7020), used for the LeNet case study.
    pub fn pynq_z2() -> Self {
        FpgaDevice {
            name: "pynq-z2".to_string(),
            dsp: 220,
            bram_18k: 280,
            uram: 0,
            lut: 53_200,
            ff: 106_400,
            clock_mhz: 100.0,
            axi_latency: 80,
            axi_bytes_per_cycle: 8.0,
            axi_burst: 256,
        }
    }

    /// AMD-Xilinx ZU3EG, used for the PolyBench kernels (Table 7).
    pub fn zu3eg() -> Self {
        FpgaDevice {
            name: "zu3eg".to_string(),
            dsp: 360,
            bram_18k: 432,
            uram: 0,
            lut: 70_560,
            ff: 141_120,
            clock_mhz: 150.0,
            axi_latency: 80,
            axi_bytes_per_cycle: 8.0,
            axi_burst: 256,
        }
    }

    /// One super logic region of an AMD-Xilinx VU9P, used for the DNN models
    /// (Table 8). The paper constrains resources to match DNNBuilder.
    pub fn vu9p_slr() -> Self {
        FpgaDevice {
            name: "vu9p-slr".to_string(),
            dsp: 2_280,
            bram_18k: 1_440,
            uram: 320,
            lut: 394_000,
            ff: 788_000,
            clock_mhz: 200.0,
            axi_latency: 120,
            axi_bytes_per_cycle: 32.0,
            axi_burst: 256,
        }
    }

    /// Every device in the catalog, in ascending size order.
    pub fn catalog() -> Vec<FpgaDevice> {
        vec![
            FpgaDevice::pynq_z2(),
            FpgaDevice::zu3eg(),
            FpgaDevice::vu9p_slr(),
        ]
    }

    /// Looks a catalog device up by its name (`"pynq-z2"`, `"zu3eg"`,
    /// `"vu9p-slr"`), as used by the textual pipeline syntax's `device=` option.
    pub fn by_name(name: &str) -> Option<FpgaDevice> {
        FpgaDevice::catalog().into_iter().find(|d| d.name == name)
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1_000.0 / self.clock_mhz
    }

    /// Converts a cycle count into seconds at this device's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_mhz * 1.0e6)
    }

    /// Total on-chip memory capacity in bits (BRAM + URAM).
    pub fn on_chip_bits(&self) -> i64 {
        self.bram_18k * 18 * 1024 + self.uram * 288 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_catalog_sizes_are_ordered() {
        let pynq = FpgaDevice::pynq_z2();
        let zu3 = FpgaDevice::zu3eg();
        let vu9p = FpgaDevice::vu9p_slr();
        assert!(pynq.dsp < zu3.dsp);
        assert!(zu3.dsp < vu9p.dsp);
        assert!(pynq.bram_18k < vu9p.bram_18k);
        assert!(vu9p.uram > 0);
        assert_eq!(pynq.uram, 0);
    }

    #[test]
    fn clock_conversions() {
        let vu9p = FpgaDevice::vu9p_slr();
        assert!((vu9p.clock_period_ns() - 5.0).abs() < 1e-9);
        // 200 MHz: 2e8 cycles per second.
        assert!((vu9p.cycles_to_seconds(2.0e8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn on_chip_capacity_includes_uram() {
        let zu3 = FpgaDevice::zu3eg();
        assert_eq!(zu3.on_chip_bits(), 432 * 18 * 1024);
        let vu9p = FpgaDevice::vu9p_slr();
        assert!(vu9p.on_chip_bits() > zu3.on_chip_bits());
    }

    #[test]
    fn catalog_lookup_by_name_round_trips() {
        for device in FpgaDevice::catalog() {
            assert_eq!(FpgaDevice::by_name(&device.name), Some(device.clone()));
        }
        assert_eq!(FpgaDevice::by_name("unknown-board"), None);
    }

    #[test]
    fn devices_debug_and_clone_round_trip() {
        let d = FpgaDevice::zu3eg();
        let text = format!("{d:?}");
        assert!(text.contains("zu3eg"));
        let clone = d.clone();
        assert_eq!(d, clone);
    }
}
