//! QoR (quality of results) estimation for HIDA designs.
//!
//! The original HIDA flow hands its output to AMD Vitis HLS and reads throughput and
//! resource utilization back from synthesis reports; its design-space exploration is
//! driven by the analytic QoR estimator inherited from ScaleHLS. Because this
//! reproduction cannot run Vitis HLS or place-and-route a bitstream, the same
//! analytic estimator serves both purposes here (see DESIGN.md, substitution table):
//!
//! * [`device`] — catalogs of the FPGA platforms used in the paper's evaluation
//!   (PYNQ-Z2, ZU3EG, one VU9P SLR),
//! * [`resource`] — DSP / BRAM / LUT / FF cost model for compute and buffers,
//! * [`latency`] — loop-nest latency and initiation-interval model under unroll,
//!   pipeline, partition and tiling decisions,
//! * [`dataflow`] — schedule-level throughput model with ping-pong buffers,
//!   unbalanced-path stalls, and external-memory transfer costs,
//! * [`report`] — the [`DesignEstimate`] summary (throughput,
//!   DSP efficiency, utilization) reported by every benchmark harness,
//! * [`shared_cache`] — a content-addressed [`SharedEstimateCache`] shared
//!   *across* compilations, keyed by structural node fingerprints, so a
//!   design-space sweep re-estimates only the nodes whose tiling or parallel
//!   factors actually changed,
//! * [`store`] — a persistent, disk-backed tier under the shared cache
//!   ([`EstimateStore`]): content-addressed entry files with atomic writes,
//!   corruption tolerance and size-budgeted eviction, so *separate processes*
//!   (CLI runs, bench invocations, CI steps) share estimate work too.
//!
//! Per-node estimates are memoized through the shared analysis-cache machinery
//! and — via [`DataflowEstimator::with_jobs`](dataflow::DataflowEstimator::with_jobs)
//! — computed on a work-stealing thread pool: the per-node half of a schedule
//! estimate is a pure function of the IR and the device, so parallel and
//! sequential estimation are bit-identical.

pub mod dataflow;
pub mod device;
pub mod latency;
pub mod report;
pub mod resource;
pub mod shared_cache;
pub mod store;
pub mod surrogate;

pub use dataflow::DataflowEstimator;
pub use device::FpgaDevice;
pub use latency::NodeEstimate;
pub use report::DesignEstimate;
pub use resource::Resources;
pub use shared_cache::{estimate_fingerprint, SharedCacheStats, SharedEstimateCache};
pub use store::{EstimateStore, PersistentStoreStats, STORE_VERSION};
pub use surrogate::{design_bound, DesignBound};
