//! Persistent, content-addressed compilation store for node estimates.
//!
//! The in-memory [`SharedEstimateCache`](crate::shared_cache::SharedEstimateCache)
//! shares per-node QoR estimates *within* one process; this module persists
//! that cache *across* processes. Consecutive CLI invocations, bench runs and
//! CI steps compile the same TwoMm/ResNet nodes over and over — with an
//! [`EstimateStore`] attached, the second process starts warm instead of
//! recomputing everything.
//!
//! # Layout
//!
//! Entries live in a sharded directory tree under the store root:
//!
//! ```text
//! <dir>/
//!   ab/                          # first two hex digits of the key
//!     ab12...cd34.est            # one entry per combined fingerprint
//! ```
//!
//! The key is the same combined 128-bit fingerprint the in-memory cache uses
//! ([`estimate_key`](crate::shared_cache::estimate_key)): the structural
//! fingerprint of the node subtree folded with the full device description —
//! so an entry written by one process is valid in any other process compiling
//! the same structure for the same device, and for no other combination.
//!
//! # Entry format
//!
//! Every entry file is self-describing and self-checking:
//!
//! ```text
//! magic "HIDAESTM" (8 bytes)
//! format version   (u32 LE)     # bumping STORE_VERSION invalidates old files
//! key.hi, key.lo   (u64 LE x2)  # must match the file's own name
//! payload length   (u32 LE)
//! payload          (encoded NodeEstimate, little-endian fields)
//! checksum         (u64 LE, StableHasher over the payload)
//! ```
//!
//! # Guarantees
//!
//! * **Atomicity** — entries are written to a temporary file in the store
//!   root and published with an atomic `rename`, so a concurrent reader (or a
//!   crash mid-write) can never observe a torn entry.
//! * **Corruption tolerance** — any anomaly on read (short file, bad magic,
//!   version mismatch, key mismatch, checksum mismatch, undecodable payload)
//!   is a *miss*, never an error or a panic. Corrupt files are deleted
//!   best-effort so they stop costing read attempts.
//! * **Bounded size** — with [`EstimateStore::with_limit_bytes`], writes that
//!   push the store past the budget trigger LRU-ish eviction: entries are
//!   removed oldest-modification-time first until the store fits (reads touch
//!   the entry's mtime best-effort, so recently used entries survive).

use crate::latency::NodeEstimate;
use crate::resource::Resources;
use hida_ir_core::fingerprint::{Fingerprint, StableHasher};
use hida_ir_core::lock_recover;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// Bump to invalidate every previously written entry (e.g. when the
/// [`NodeEstimate`] encoding or the estimator's cost model changes in a way
/// the structural fingerprint cannot see). Old-version files read as misses.
pub const STORE_VERSION: u32 = 1;

/// File magic identifying a store entry.
const MAGIC: [u8; 8] = *b"HIDAESTM";

/// Fixed entry size before the variable-length payload: magic + version +
/// key + payload length.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4;

/// Entry file extension.
const ENTRY_EXT: &str = "est";

/// Traffic and maintenance counters of one [`EstimateStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistentStoreStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry on disk.
    pub misses: u64,
    /// Entries written (tempfile + rename publishes).
    pub writes: u64,
    /// Entries removed to stay under the size budget.
    pub evictions: u64,
    /// Malformed entries encountered (each also counted as a miss).
    pub corrupt: u64,
    /// Write-path I/O failures (tempfile or rename) swallowed as non-fatal
    /// degradations: the estimate is simply not persisted.
    pub write_errors: u64,
    /// Read-path I/O failures other than a plain missing entry (EIO,
    /// permission), each also counted as a miss.
    pub read_errors: u64,
}

impl PersistentStoreStats {
    /// Adds `other`'s counters onto `self`.
    pub fn accumulate(&mut self, other: &PersistentStoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writes += other.writes;
        self.evictions += other.evictions;
        self.corrupt += other.corrupt;
        self.write_errors += other.write_errors;
        self.read_errors += other.read_errors;
    }
}

impl fmt::Display for PersistentStoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit / {} miss, {} written, {} evicted, {} corrupt",
            self.hits, self.misses, self.writes, self.evictions, self.corrupt
        )?;
        if self.write_errors > 0 || self.read_errors > 0 {
            write!(
                f,
                ", {} write errors, {} read errors",
                self.write_errors, self.read_errors
            )?;
        }
        Ok(())
    }
}

/// A disk-backed, content-addressed store of serialized [`NodeEstimate`]s,
/// keyed by the combined node-plus-device fingerprint. Safe to share between
/// concurrent processes pointed at the same directory: writes are atomic
/// renames and every read re-validates the entry it finds.
#[derive(Debug)]
pub struct EstimateStore {
    dir: PathBuf,
    limit_bytes: Option<u64>,
    /// Running estimate of the store's on-disk size; corrected to the exact
    /// total on every eviction sweep.
    approx_bytes: AtomicU64,
    /// Serializes eviction sweeps (concurrent sweeps would double-count).
    evict_lock: Mutex<()>,
    tmp_counter: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    write_errors: AtomicU64,
    read_errors: AtomicU64,
}

impl EstimateStore {
    /// Opens (creating if necessary) the store rooted at `dir` with no size
    /// budget.
    ///
    /// # Errors
    /// Propagates the failure to create or scan the root directory; a store
    /// that cannot even be opened is a configuration error, unlike the
    /// per-entry anomalies which all degrade to misses.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<EstimateStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let store = EstimateStore {
            dir,
            limit_bytes: None,
            approx_bytes: AtomicU64::new(0),
            evict_lock: Mutex::new(()),
            tmp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
        };
        store.approx_bytes.store(
            store.scan_entries().iter().map(|e| e.bytes).sum(),
            Ordering::Relaxed,
        );
        Ok(store)
    }

    /// Sets the size budget in bytes (builder style). Writes that push the
    /// store past the budget evict oldest-mtime entries until it fits again.
    pub fn with_limit_bytes(mut self, limit: u64) -> Self {
        self.limit_bytes = Some(limit);
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured size budget, if any.
    pub fn limit_bytes(&self) -> Option<u64> {
        self.limit_bytes
    }

    /// The on-disk path an entry for `key` lives at (whether or not it
    /// currently exists).
    pub fn entry_path(&self, key: Fingerprint) -> PathBuf {
        let name = key.to_string();
        self.dir
            .join(&name[..2])
            .join(format!("{name}.{ENTRY_EXT}"))
    }

    /// Loads the estimate stored under `key`. Every anomaly — missing file,
    /// torn or malformed entry, version or checksum mismatch — is a miss;
    /// this method never fails.
    pub fn load(&self, key: Fingerprint) -> Option<NodeEstimate> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                // A missing entry is the expected cold-cache miss; any other
                // failure (EIO, permission) is a counted read degradation —
                // still served as a miss, never an error.
                if e.kind() != io::ErrorKind::NotFound {
                    self.read_errors.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Some(estimate) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // LRU-ish: refresh the mtime so eviction prefers entries that
                // have not been used recently. Best-effort only.
                if let Ok(file) = fs::File::options().write(true).open(&path) {
                    let _ = file.set_modified(SystemTime::now());
                }
                Some(estimate)
            }
            None => {
                // The file exists but is not a valid entry: count it, delete
                // it best-effort (self-healing), and treat it as a miss.
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists `estimate` under `key` with an atomic tempfile + rename
    /// publish. An existing entry is left untouched (first publisher wins,
    /// matching the in-memory cache); IO failures are swallowed — the store
    /// is an optimization, never a correctness dependency.
    pub fn save(&self, key: Fingerprint, estimate: &NodeEstimate) {
        let path = self.entry_path(key);
        if path.exists() {
            return;
        }
        let bytes = encode_entry(key, estimate);
        match self.write_atomic(&path, &bytes) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                let total = self
                    .approx_bytes
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed)
                    + bytes.len() as u64;
                if let Some(limit) = self.limit_bytes {
                    if total > limit {
                        self.enforce_budget(limit);
                    }
                }
            }
            // ENOSPC, permission, read-only filesystem: a counted, non-fatal
            // degradation. The sweep continues; the entry is simply not
            // persisted.
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counts an *injected* read fault (chaos testing) in the same counter a
    /// real EIO would land in.
    pub fn note_injected_read_error(&self) {
        self.read_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an *injected* short write (chaos testing) in the same counter a
    /// real write failure would land in.
    pub fn note_injected_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime counters of this store handle.
    pub fn stats(&self) -> PersistentStoreStats {
        PersistentStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
        }
    }

    /// Exact on-disk size of every entry currently in the store, in bytes
    /// (rescans the directory).
    pub fn disk_bytes(&self) -> u64 {
        self.scan_entries().iter().map(|e| e.bytes).sum()
    }

    /// Number of entries currently on disk (rescans the directory).
    pub fn disk_entries(&self) -> usize {
        self.scan_entries().len()
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some(shard) = path.parent() {
            fs::create_dir_all(shard)?;
        }
        // The temporary lives in the store root: same filesystem as the final
        // shard path, so the rename is atomic, and the name is unique per
        // (process, handle, write) so concurrent writers never collide.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Removes oldest-mtime entries until the store fits `limit`. Concurrent
    /// processes may race individual deletions; every outcome of that race
    /// still leaves the store under budget, and a deleted entry is simply a
    /// future miss.
    fn enforce_budget(&self, limit: u64) {
        let _guard = lock_recover(&self.evict_lock);
        let mut entries = self.scan_entries();
        // Oldest first; paths tie-break so the order is total.
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        for entry in entries {
            if total <= limit {
                break;
            }
            if fs::remove_file(&entry.path).is_ok() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                total = total.saturating_sub(entry.bytes);
            }
        }
        self.approx_bytes.store(total, Ordering::Relaxed);
    }

    /// Every entry file currently in the store (stale temporaries and foreign
    /// files are ignored).
    fn scan_entries(&self) -> Vec<DiskEntry> {
        let mut entries = Vec::new();
        let Ok(shards) = fs::read_dir(&self.dir) else {
            return entries;
        };
        for shard in shards.flatten() {
            let shard_path = shard.path();
            if !shard_path.is_dir() {
                continue;
            }
            let Ok(files) = fs::read_dir(&shard_path) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                    continue;
                }
                let Ok(meta) = file.metadata() else { continue };
                entries.push(DiskEntry {
                    bytes: meta.len(),
                    mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                    path,
                });
            }
        }
        entries
    }
}

/// One entry file as seen by an eviction sweep.
struct DiskEntry {
    bytes: u64,
    mtime: SystemTime,
    path: PathBuf,
}

/// Encodes a complete entry file for `estimate` under `key`: header, payload
/// and checksum (see the module docs for the layout).
pub fn encode_entry(key: Fingerprint, estimate: &NodeEstimate) -> Vec<u8> {
    let payload = encode_estimate(estimate);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&key.hi.to_le_bytes());
    out.extend_from_slice(&key.lo.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out
}

/// Decodes an entry file, validating magic, version, key, length and
/// checksum. Any deviation returns `None` — a corrupt entry must read as a
/// miss, never as an error.
pub fn decode_entry(bytes: &[u8], key: Fingerprint) -> Option<NodeEstimate> {
    if bytes.len() < HEADER_LEN + 8 || bytes[..8] != MAGIC {
        return None;
    }
    let mut r = Reader::new(&bytes[8..]);
    if r.u32()? != STORE_VERSION {
        return None;
    }
    if (Fingerprint {
        hi: r.u64()?,
        lo: r.u64()?,
    }) != key
    {
        return None;
    }
    let payload_len = r.u32()? as usize;
    let payload = r.bytes(payload_len)?;
    let stored_checksum = u64::from_le_bytes(r.bytes(8)?.try_into().ok()?);
    if checksum(payload) != stored_checksum || !r.is_empty() {
        return None; // Bit rot, or trailing bytes this version never wrote.
    }
    decode_estimate(payload)
}

/// Checksum of an entry payload: both lanes of the workspace's stable hasher
/// folded into one word.
fn checksum(payload: &[u8]) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_bytes(payload);
    let digest = hasher.finish();
    digest.hi ^ digest.lo.rotate_left(32)
}

/// Encodes a [`NodeEstimate`] as the entry payload. Every numeric field is a
/// fixed-width little-endian integer, so decoding reproduces the estimate
/// bit for bit — the property the cross-process QoR-identity CI gate relies
/// on.
pub fn encode_estimate(estimate: &NodeEstimate) -> Vec<u8> {
    let name = estimate.name.as_bytes();
    let mut out = Vec::with_capacity(name.len() + 11 * 8);
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    for word in [
        estimate.latency_cycles,
        estimate.ii,
        estimate.resources.dsp,
        estimate.resources.bram_18k,
        estimate.resources.lut,
        estimate.resources.ff,
        estimate.macs,
        estimate.external_bytes,
        estimate.parallelism,
    ] {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out
}

/// Decodes an entry payload back into a [`NodeEstimate`]; `None` on any
/// structural problem (short buffer, trailing garbage, invalid UTF-8 name).
pub fn decode_estimate(payload: &[u8]) -> Option<NodeEstimate> {
    let mut r = Reader::new(payload);
    let name_len = r.u32()? as usize;
    let name = String::from_utf8(r.bytes(name_len)?.to_vec()).ok()?;
    let mut word = || r.i64();
    let estimate = NodeEstimate {
        name,
        latency_cycles: word()?,
        ii: word()?,
        resources: Resources {
            dsp: word()?,
            bram_18k: word()?,
            lut: word()?,
            ff: word()?,
        },
        macs: word()?,
        external_bytes: word()?,
        parallelism: word()?,
    };
    if !r.is_empty() {
        return None; // Trailing bytes: not something this version wrote.
    }
    Some(estimate)
}

/// Bounds-checked little-endian cursor over an entry's bytes.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() < n {
            return None;
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(self.u64()? as i64)
    }

    fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn sample_estimate() -> NodeEstimate {
        NodeEstimate {
            name: "conv1".to_string(),
            latency_cycles: 12_345,
            ii: 3,
            resources: Resources::new(8, 16, 1200, 900),
            macs: 65_536,
            external_bytes: 4_096,
            parallelism: 4,
        }
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hida_store_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip_and_stats() {
        let dir = temp_store_dir("roundtrip");
        let store = EstimateStore::open(&dir).unwrap();
        let key = Fingerprint { hi: 0xabcd, lo: 42 };
        assert!(store.load(key).is_none());
        store.save(key, &sample_estimate());
        let loaded = store.load(key).expect("entry persists");
        assert_eq!(loaded, sample_estimate());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.corrupt, 0);
        // A second handle on the same directory sees the entry: this is the
        // cross-process path (same code, different process in CI).
        let other = EstimateStore::open(&dir).unwrap();
        assert_eq!(other.load(key).unwrap(), sample_estimate());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_first_publisher_wins() {
        let dir = temp_store_dir("firstwins");
        let store = EstimateStore::open(&dir).unwrap();
        let key = Fingerprint { hi: 1, lo: 1 };
        store.save(key, &sample_estimate());
        let mut second = sample_estimate();
        second.latency_cycles = 1;
        store.save(key, &second);
        assert_eq!(store.load(key).unwrap(), sample_estimate());
        assert_eq!(store.stats().writes, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss_and_self_heals() {
        let dir = temp_store_dir("corrupt");
        let store = EstimateStore::open(&dir).unwrap();
        let key = Fingerprint { hi: 2, lo: 2 };
        store.save(key, &sample_estimate());
        fs::write(store.entry_path(key), b"not an entry").unwrap();
        assert!(store.load(key).is_none());
        let stats = store.stats();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.misses, 1);
        // Self-healed: the bad file is gone, so the next read is a plain miss.
        assert!(!store.entry_path(key).exists());
        assert!(store.load(key).is_none());
        assert_eq!(store.stats().corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_decoding_rejects_every_tampering() {
        let key = Fingerprint { hi: 77, lo: 88 };
        let good = encode_entry(key, &sample_estimate());
        assert_eq!(decode_entry(&good, key), Some(sample_estimate()));
        // Wrong key (e.g. a file renamed by hand).
        assert_eq!(decode_entry(&good, Fingerprint { hi: 77, lo: 89 }), None);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_entry(&bad, key), None);
        // Version mismatch.
        let mut bad = good.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert_eq!(decode_entry(&bad, key), None);
        // Flipped payload bit: checksum catches it.
        let mut bad = good.clone();
        bad[HEADER_LEN + 2] ^= 0x01;
        assert_eq!(decode_entry(&bad, key), None);
        // Truncation at every prefix length is a clean miss.
        for len in 0..good.len() {
            assert_eq!(decode_entry(&good[..len], key), None, "prefix {len}");
        }
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(decode_entry(&bad, key), None);
    }

    #[test]
    fn eviction_keeps_the_store_under_budget() {
        let dir = temp_store_dir("evict");
        let one_entry = encode_entry(Fingerprint { hi: 0, lo: 0 }, &sample_estimate()).len() as u64;
        let store = EstimateStore::open(&dir)
            .unwrap()
            .with_limit_bytes(3 * one_entry);
        for i in 0..10 {
            store.save(Fingerprint { hi: 9, lo: i }, &sample_estimate());
        }
        assert!(
            store.disk_bytes() <= 3 * one_entry,
            "{}",
            store.disk_bytes()
        );
        assert!(store.stats().evictions >= 7, "{:?}", store.stats());
        assert!(store.disk_entries() >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_store_degrades_to_counted_write_errors() {
        let dir = temp_store_dir("readonly");
        let store = EstimateStore::open(&dir).unwrap();
        let key = Fingerprint { hi: 3, lo: 3 };
        // Plant a regular file where the entry's shard *directory* must go:
        // `create_dir_all` fails with NotADirectory regardless of privileges
        // (unlike chmod-based read-only dirs, which root bypasses).
        let shard = store.entry_path(key).parent().unwrap().to_path_buf();
        fs::write(&shard, b"not a directory").unwrap();
        store.save(key, &sample_estimate());
        store.save(key, &sample_estimate());
        let stats = store.stats();
        assert_eq!(stats.writes, 0);
        assert_eq!(stats.write_errors, 2, "{stats:?}");
        // The store stays fully usable for other shards (the shard is the
        // leading two hex digits, i.e. the top bits of `hi`).
        let other = Fingerprint {
            hi: 0xf300_0000_0000_0000,
            lo: 9,
        };
        store.save(other, &sample_estimate());
        assert_eq!(store.load(other).unwrap(), sample_estimate());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_errors_are_counted_separately_from_cold_misses() {
        let dir = temp_store_dir("readerr");
        let store = EstimateStore::open(&dir).unwrap();
        let key = Fingerprint { hi: 6, lo: 6 };
        // Cold miss: no read error.
        assert!(store.load(key).is_none());
        assert_eq!(store.stats().read_errors, 0);
        // Plant a directory where the entry file should be: fs::read fails
        // with something other than NotFound.
        fs::create_dir_all(store.entry_path(key)).unwrap();
        assert!(store.load(key).is_none());
        let stats = store.stats();
        assert_eq!(stats.read_errors, 1, "{stats:?}");
        assert_eq!(stats.misses, 2);
        // Injected-fault bookkeeping lands in the same counters.
        store.note_injected_read_error();
        store.note_injected_write_error();
        let stats = store.stats();
        assert_eq!(stats.read_errors, 2);
        assert_eq!(stats.write_errors, 1);
        let rendered = stats.to_string();
        assert!(rendered.contains("1 write errors"), "{rendered}");
        assert!(rendered.contains("2 read errors"), "{rendered}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_recovers_the_existing_size() {
        let dir = temp_store_dir("reopen");
        let store = EstimateStore::open(&dir).unwrap();
        store.save(Fingerprint { hi: 5, lo: 5 }, &sample_estimate());
        let expected = store.disk_bytes();
        let reopened = EstimateStore::open(&dir).unwrap();
        assert_eq!(reopened.approx_bytes.load(Ordering::Relaxed), expected);
        let _ = fs::remove_dir_all(&dir);
    }
}
