//! Design-level QoR reports.
//!
//! [`DesignEstimate`] is the unit every benchmark harness prints: throughput in
//! samples per second, resource counts, utilization, and DSP efficiency as defined in
//! Equation (1) of the paper.

use crate::latency::NodeEstimate;
use crate::resource::Resources;

/// Complete QoR summary of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEstimate {
    /// Design name (schedule or function name).
    pub name: String,
    /// Cycles between consecutive data frames (initiation interval of the design).
    pub interval_cycles: i64,
    /// Cycles from frame entry to frame exit.
    pub latency_cycles: i64,
    /// Total resources (compute plus buffers).
    pub resources: Resources,
    /// Multiply-accumulate operations performed per sample.
    pub macs_per_sample: i64,
    /// Per-node estimates (one entry for plain functions).
    pub node_estimates: Vec<NodeEstimate>,
    /// Number of on-chip buffers instantiated.
    pub buffer_count: i64,
    /// Clock frequency assumed for throughput conversion (MHz).
    pub clock_mhz: f64,
    /// `max(BRAM%, DSP%, LUT%)` on the target device.
    pub utilization: f64,
}

impl DesignEstimate {
    /// Throughput in samples (frames) per second.
    pub fn throughput(&self) -> f64 {
        self.clock_mhz * 1.0e6 / self.interval_cycles.max(1) as f64
    }

    /// DSP efficiency as defined by Equation (1):
    /// `throughput * OPs / (DSP * frequency)` where `OPs` is MACs per sample.
    ///
    /// A value of 1.0 means every instantiated DSP performs one MAC every cycle.
    pub fn dsp_efficiency(&self) -> f64 {
        if self.resources.dsp == 0 {
            return 0.0;
        }
        self.throughput() * self.macs_per_sample as f64
            / (self.resources.dsp as f64 * self.clock_mhz * 1.0e6)
    }

    /// End-to-end latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.latency_cycles as f64 / (self.clock_mhz * 1.0e6)
    }

    /// Throughput ratio `self / other` (how many times faster this design is).
    pub fn speedup_over(&self, other: &DesignEstimate) -> f64 {
        self.throughput() / other.throughput().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(interval: i64, dsp: i64, macs: i64) -> DesignEstimate {
        DesignEstimate {
            name: "test".to_string(),
            interval_cycles: interval,
            latency_cycles: interval * 2,
            resources: Resources::new(dsp, 10, 1000, 1000),
            macs_per_sample: macs,
            node_estimates: vec![],
            buffer_count: 1,
            clock_mhz: 200.0,
            utilization: 0.5,
        }
    }

    #[test]
    fn throughput_and_latency_follow_clock() {
        let d = estimate(200_000, 100, 1_000_000);
        // 200 MHz / 200k cycles = 1000 samples/s.
        assert!((d.throughput() - 1000.0).abs() < 1e-6);
        assert!((d.latency_seconds() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn dsp_efficiency_equation_matches_paper_definition() {
        // 1000 samples/s * 1e6 MACs / (100 DSP * 200e6 Hz) = 0.05.
        let d = estimate(200_000, 100, 1_000_000);
        assert!((d.dsp_efficiency() - 0.05).abs() < 1e-9);
        // Perfect efficiency: every DSP does one MAC per cycle.
        let perfect = estimate(10_000, 100, 1_000_000);
        assert!((perfect.dsp_efficiency() - 1.0).abs() < 1e-9);
        // No DSPs -> zero efficiency, no division by zero.
        let none = estimate(10_000, 0, 1_000_000);
        assert_eq!(none.dsp_efficiency(), 0.0);
    }

    #[test]
    fn speedup_is_throughput_ratio() {
        let fast = estimate(10_000, 10, 100);
        let slow = estimate(80_000, 10, 100);
        assert!((fast.speedup_over(&slow) - 8.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.125).abs() < 1e-9);
    }
}
