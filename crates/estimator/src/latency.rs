//! Node-level latency, initiation-interval and resource estimation.
//!
//! The estimator mirrors the QoR model HIDA inherits from ScaleHLS (§6.5, Algorithm 4
//! line 20): for a dataflow node it derives, from the node's compute profile and the
//! micro-architectural decisions recorded on the IR (unroll factors, pipelining,
//! array partitions, buffer placement, tile sizes), the cycle count needed to process
//! one data frame, the achievable initiation interval, and the resources consumed.

use crate::device::FpgaDevice;
use crate::resource::{buffer_resources, compute_resources, Resources};
use hida_dataflow_ir::structural::{BufferOp, NodeOp};
use hida_dialects::analysis::{profile_body, ComputeProfile};
use hida_dialects::hls::{self, MemoryKind};
use hida_dialects::transforms;
use hida_ir_core::{Context, OpId, ValueId};

/// Physical description of a buffer as seen by one node.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferInfo {
    /// Elements per ping-pong stage.
    pub elements: i64,
    /// Element bit width.
    pub bits: u32,
    /// Per-dimension partition factors.
    pub partition_factors: Vec<i64>,
    /// Ping-pong depth.
    pub depth: i64,
    /// Physical placement.
    pub kind: MemoryKind,
    /// Buffer shape.
    pub shape: Vec<i64>,
}

impl BufferInfo {
    /// Total partition banks.
    pub fn banks(&self) -> i64 {
        self.partition_factors
            .iter()
            .map(|&f| f.max(1))
            .product::<i64>()
            .max(1)
    }

    /// On-chip resources occupied by this buffer.
    pub fn resources(&self) -> Resources {
        buffer_resources(
            self.elements,
            self.bits,
            self.banks(),
            self.depth,
            self.kind,
        )
    }
}

/// Resolves the physical description of a buffer-like SSA value: a `hida.buffer`
/// result, a `memref.alloc` result, a `hida.pack`/`hida.port` handle (external), or a
/// node body argument (resolved through the node operand it mirrors).
pub fn buffer_info(ctx: &Context, value: ValueId) -> BufferInfo {
    // Body argument of a node: map to the corresponding operand.
    if let Some(block) = ctx.value(value).owner_block() {
        let owner = ctx
            .block(block)
            .parent_region
            .and_then(|r| ctx.region(r).parent_op);
        if let Some(owner_op) = owner {
            if let Some(node) = NodeOp::try_from_op(ctx, owner_op) {
                let idx = ctx
                    .block(block)
                    .args
                    .iter()
                    .position(|&a| a == value)
                    .unwrap_or(0);
                if let Some(&operand) = ctx.op(node.id()).operands.get(idx) {
                    return buffer_info(ctx, operand);
                }
            }
        }
    }

    let ty = ctx.value_type(value).clone();
    let shape = ty.shape().map(|s| s.to_vec()).unwrap_or_default();
    let elements = ty.num_elements().unwrap_or(1);
    let bits = ty.elem_bit_width().max(1);
    let rank = shape.len();

    if let Some(def) = ctx.value(value).defining_op() {
        if let Some(buf) = BufferOp::try_from_op(ctx, def) {
            return BufferInfo {
                elements: buf.num_elements(ctx),
                bits: buf.elem_bits(ctx).max(1),
                partition_factors: buf.partition(ctx).factors,
                depth: buf.depth(ctx),
                kind: buf.memory_kind(ctx),
                shape: buf.shape(ctx),
            };
        }
        let op = ctx.op(def);
        if op.is(hida_dialects::memory::ALLOC) {
            let partition = hls::get_array_partition(ctx, def, rank);
            return BufferInfo {
                elements,
                bits,
                partition_factors: partition.factors,
                depth: 1,
                kind: hls::get_memory_kind(ctx, def),
                shape,
            };
        }
        if op.is(hida_dataflow_ir::op_names::PACK) || op.is(hida_dataflow_ir::op_names::PORT) {
            return BufferInfo {
                elements,
                bits,
                partition_factors: vec![1; rank.max(1)],
                depth: 1,
                kind: MemoryKind::External,
                shape,
            };
        }
    }
    // Unknown definition (e.g. function argument): assume an external interface.
    BufferInfo {
        elements,
        bits,
        partition_factors: vec![1; rank.max(1)],
        depth: 1,
        kind: MemoryKind::External,
        shape,
    }
}

/// QoR estimate of one dataflow node (or of any op body treated as a single task).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEstimate {
    /// Human-readable node name.
    pub name: String,
    /// Cycles to process one data frame.
    pub latency_cycles: i64,
    /// Pipeline initiation interval achieved by the innermost loop.
    pub ii: i64,
    /// Compute resources consumed by the node (buffers are charged separately).
    pub resources: Resources,
    /// Multiply-accumulate operations per frame.
    pub macs: i64,
    /// Bytes moved to/from external memory per frame.
    pub external_bytes: i64,
    /// Total parallel lanes instantiated (product of unroll factors).
    pub parallelism: i64,
}

/// Estimates the body of `op` (a `hida.node`, `hida.task`, or function).
pub fn estimate_body(ctx: &Context, op: OpId, device: &FpgaDevice) -> NodeEstimate {
    let profile = profile_body(ctx, op);
    estimate_profile(ctx, op, &profile, device)
}

/// An optimistic per-node QoR bound: `latency_lb` never exceeds the latency
/// [`estimate_body`] would report for the same IR, while `resources` *equals*
/// the exact model's answer (the resource half is pure profile arithmetic
/// with no timing analysis). The design-space explorer prunes a candidate
/// only when a compiled frontier point dominates this bound — which is then
/// guaranteed to dominate the true estimate too, so pruning can never drop a
/// Pareto-optimal design.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBound {
    /// Lower bound on [`NodeEstimate::latency_cycles`].
    pub latency_lb: i64,
    /// Exactly [`NodeEstimate::resources`] (cheap, timing-free arithmetic).
    pub resources: Resources,
}

/// Computes the optimistic bound for `op`'s body. The entire per-node model
/// is pure arithmetic over `BodyShape` — trip counts, the port-limited II,
/// pipeline depth, and the burst-efficiency transfer term are all exact given
/// the lowered IR — so `latency_lb` *equals* `estimate_body`'s latency
/// (`tests::optimistic_bound_never_exceeds_the_exact_model` pins it). The
/// bound's slack is entirely design-level: the dataflow estimator multiplies
/// node latencies by unbalanced-path stall factors and an oversubscription
/// penalty, both `>= 1`, which a per-node bound cannot see. The true design
/// interval is therefore always `>=` the largest `latency_lb`.
pub fn optimistic_body_bound(ctx: &Context, op: OpId, device: &FpgaDevice) -> NodeBound {
    let estimate = estimate_body(ctx, op, device);
    NodeBound {
        latency_lb: estimate.latency_cycles,
        resources: estimate.resources,
    }
}

/// Pure-IR quantities feeding both the exact node model and the optimistic
/// bound: unroll structure, trip counts, port-limited II, pipeline depth,
/// external traffic and the resource-model inputs. Everything here is exact
/// arithmetic over the profile and the IR attributes — no estimation.
struct BodyShape {
    total_unroll: i64,
    pipelined: bool,
    is_float: bool,
    bits: u32,
    /// Trip count after unrolling (secondary loop nests folded in).
    trip_total: i64,
    /// Initiation interval limited by on-chip memory ports.
    ii: i64,
    /// Bytes moved to/from external memory per frame.
    external_bytes: i64,
    has_external: bool,
    /// Smallest tile dimension, when the body was tiled.
    min_tile: Option<i64>,
    /// Pipeline depth from operator latency and the unroll reduction tree.
    depth: i64,
    /// Address-generation DSP overhead for fine-grained external access.
    addr_dsp: i64,
}

/// The exact resource vector for a body shape — shared verbatim by
/// [`estimate_profile`] and [`optimistic_body_bound`].
fn shape_resources(profile: &ComputeProfile, shape: &BodyShape) -> Resources {
    compute_resources(
        profile
            .muls_per_iter
            .max(if profile.macs > 0 { 1 } else { 0 }),
        profile.adds_per_iter.max(1),
        profile.divs_per_iter,
        profile.mem_per_iter.max(2),
        shape.is_float,
        shape.bits,
        shape.total_unroll,
        shape.addr_dsp,
    )
}

fn body_shape(ctx: &Context, op: OpId, profile: &ComputeProfile) -> BodyShape {
    let rank = profile.loop_dims.len();
    let unroll = transforms::unroll_factors_of(ctx, op, rank);
    let unroll: Vec<i64> = (0..rank)
        .map(|i| unroll.get(i).copied().unwrap_or(1).max(1))
        .collect();
    let total_unroll: i64 = unroll.iter().product::<i64>().max(1);
    let pipelined = ctx.op(op).has_flag(transforms::ATTR_PIPELINE)
        || hida_dialects::loops::all_loops(ctx, op)
            .iter()
            .any(|l| l.is_pipelined(ctx));

    let is_float = false_or_float(profile);
    let bits = element_bits(profile, ctx);

    // Trip count after unrolling. Bodies containing several top-level loop nests
    // (e.g. the Vitis/SOFF sequential baselines) execute the nests back to back, so
    // the work of the secondary nests is added on top of the primary band.
    let primary_trip: i64 = profile
        .loop_dims
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let u = unroll.get(i).copied().unwrap_or(1).max(1);
            (d.trip + u - 1) / u
        })
        .product::<i64>()
        .max(1);
    let total_unrolled_work = {
        let top = hida_dialects::loops::top_level_loops(ctx, op);
        if top.len() > 1 {
            let total: i64 = top
                .iter()
                .map(|&outer| {
                    let band = hida_dialects::loops::loop_band(ctx, outer.id());
                    hida_dialects::loops::band_trip_count(ctx, &band)
                })
                .sum();
            (total / total_unroll.max(1)).max(primary_trip)
        } else {
            primary_trip
        }
    };
    let trip_total = total_unrolled_work;

    // Initiation interval limited by memory ports of each accessed on-chip buffer.
    let mut ii: i64 = 1;
    let mut external_bytes: i64 = 0;
    let mut has_external = false;
    let tile_sizes = transforms::tile_sizes_of(ctx, op, rank);
    for access in &profile.accesses {
        let info = buffer_info(ctx, access.buffer);
        if info.kind == MemoryKind::External {
            has_external = true;
            // One frame moves the (tiled) working set once.
            let moved_elements = match &tile_sizes {
                Some(tiles) => tiles
                    .iter()
                    .zip(info.shape.iter())
                    .map(|(&t, &s)| t.clamp(1, s))
                    .product::<i64>()
                    .max(1)
                    .max(info.elements.min(1)),
                None => info.elements,
            };
            external_bytes += moved_elements.max(info.elements.min(4096)) * (info.bits as i64) / 8;
            continue;
        }
        // Parallel accesses required on this buffer: for every buffer dimension,
        // multiply by the unroll of the loop driving that dimension.
        let mut required: i64 = 1;
        let mut served: i64 = 1;
        for (dim_idx, dim_access) in access.pattern.dims.iter().enumerate() {
            if let Some((loop_idx, _stride)) = dim_access {
                let u = unroll.get(*loop_idx).copied().unwrap_or(1).max(1);
                required *= u;
                let factor = info
                    .partition_factors
                    .get(dim_idx)
                    .copied()
                    .unwrap_or(1)
                    .max(1);
                served *= factor.min(u);
            }
        }
        // Two ports per bank (true dual-port BRAM).
        let ports = served * 2;
        let buffer_ii = (required + ports - 1) / ports;
        ii = ii.max(buffer_ii.max(1));
    }

    // Pipeline depth grows with operator latency and the unroll reduction tree.
    let mut depth: i64 = 3 + (64 - (total_unroll as u64).leading_zeros() as i64).max(0);
    if is_float {
        depth += 8;
    }
    if profile.divs_per_iter > 0 {
        depth += 18;
    }

    let min_tile = tile_sizes.as_ref().and_then(|t| t.iter().copied().min());

    // Address-generation DSP overhead for fine-grained external access.
    let addr_dsp = if has_external {
        match min_tile {
            Some(t) if t <= 2 => 4,
            Some(t) if t <= 4 => 2,
            Some(t) if t <= 8 => 1,
            _ => 0,
        }
    } else {
        0
    };

    BodyShape {
        total_unroll,
        pipelined,
        is_float,
        bits,
        trip_total,
        ii,
        external_bytes,
        has_external,
        min_tile,
        depth,
        addr_dsp,
    }
}

/// Estimates a node given an already-extracted compute profile.
pub fn estimate_profile(
    ctx: &Context,
    op: OpId,
    profile: &ComputeProfile,
    device: &FpgaDevice,
) -> NodeEstimate {
    let shape = body_shape(ctx, op, profile);
    let compute_latency = if shape.pipelined {
        shape.ii * (shape.trip_total - 1) + shape.depth
    } else {
        shape.trip_total * shape.depth.max(2)
    };

    // External memory transfer, overlapped with compute (tile load/store hiding).
    let transfer_latency = if shape.has_external {
        let min_tile = shape.min_tile.unwrap_or(i64::MAX);
        // Short bursts waste bandwidth.
        let burst_efficiency = if min_tile >= 32 {
            1.0
        } else if min_tile >= 16 {
            0.85
        } else if min_tile >= 8 {
            0.6
        } else if min_tile >= 4 {
            0.35
        } else {
            0.2
        };
        let cycles = shape.external_bytes as f64 / (device.axi_bytes_per_cycle * burst_efficiency);
        device.axi_latency + cycles.ceil() as i64
    } else {
        0
    };
    let latency = compute_latency.max(transfer_latency)
        + if shape.has_external {
            device.axi_latency
        } else {
            0
        };

    NodeEstimate {
        name: node_name(ctx, op),
        latency_cycles: latency.max(1),
        ii: shape.ii.max(1),
        resources: shape_resources(profile, &shape),
        macs: profile.macs,
        external_bytes: shape.external_bytes,
        parallelism: shape.total_unroll,
    }
}

/// Display name of a node/task/function body, as recorded in its estimate.
/// `pub(crate)` so the shared estimate cache can re-derive the local name
/// when serving a structurally identical node from another compilation.
pub(crate) fn node_name(ctx: &Context, op: OpId) -> String {
    ctx.op(op)
        .attr_str("node_name")
        .or_else(|| ctx.op(op).attr_str("task_name"))
        .or_else(|| ctx.op(op).attr_str("sym_name"))
        .map(str::to_string)
        .unwrap_or_else(|| format!("op{}", op.index()))
}

fn false_or_float(profile: &ComputeProfile) -> bool {
    // DNN layers are quantized to int8 in the accelerator; explicit loop nests from
    // PolyBench use f32. We infer "float" when MACs exist but no named layer weights
    // were recorded (named layers record weight_params).
    profile.weight_params == 0 && profile.macs > 0
}

fn element_bits(profile: &ComputeProfile, ctx: &Context) -> u32 {
    profile
        .accesses
        .first()
        .map(|a| ctx.value_type(a.buffer).elem_bit_width().max(8))
        .unwrap_or(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dialects::arith;
    use hida_dialects::loops::build_loop_nest;
    use hida_dialects::memory::{build_alloc, build_load, build_store};
    use hida_ir_core::{OpBuilder, Type};

    /// A simple vector-add loop nest over a 1024-element buffer.
    fn vector_add(ctx: &mut Context, partition: i64, unroll: i64) -> OpId {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("vadd", vec![], vec![]);
        let body = ctx.body_block(func);
        let (a, b_val, c) = {
            let mut b = OpBuilder::at_block_end(ctx, body);
            let a = build_alloc(&mut b, Type::memref(vec![1024], Type::f32()), "A");
            let bb = build_alloc(&mut b, Type::memref(vec![1024], Type::f32()), "B");
            let c = build_alloc(&mut b, Type::memref(vec![1024], Type::f32()), "C");
            (a, bb, c)
        };
        if partition > 1 {
            for buf in [a, b_val, c] {
                let def = ctx.value(buf).defining_op().unwrap();
                hls::set_array_partition(ctx, def, &hls::ArrayPartition::cyclic(vec![partition]));
            }
        }
        let (_loops, ivs, inner) = build_loop_nest(ctx, body, &[(0, 1024, "i")]);
        let mut bld = OpBuilder::at_block_end(ctx, inner);
        let x = build_load(&mut bld, a, &[ivs[0]]);
        let y = build_load(&mut bld, b_val, &[ivs[0]]);
        let sum = arith::build_binary(&mut bld, arith::ADDF, x, y);
        build_store(&mut bld, sum, c, &[ivs[0]]);
        transforms::apply_unroll_factors(ctx, func, &[unroll]).unwrap();
        func
    }

    #[test]
    fn unrolling_with_matching_partition_keeps_ii_low() {
        let device = FpgaDevice::zu3eg();
        let mut ctx = Context::new();
        let func = vector_add(&mut ctx, 8, 8);
        let est = estimate_body(&ctx, func, &device);
        assert_eq!(est.ii, 1);
        assert_eq!(est.parallelism, 8);
        // 1024/8 = 128 pipeline iterations.
        assert!(est.latency_cycles >= 128 && est.latency_cycles < 200);
    }

    #[test]
    fn unrolling_without_partition_raises_ii_and_latency() {
        let device = FpgaDevice::zu3eg();
        let mut ctx_bad = Context::new();
        let bad = vector_add(&mut ctx_bad, 1, 8);
        let bad_est = estimate_body(&ctx_bad, bad, &device);
        let mut ctx_good = Context::new();
        let good = vector_add(&mut ctx_good, 8, 8);
        let good_est = estimate_body(&ctx_good, good, &device);
        assert!(bad_est.ii > good_est.ii);
        assert!(bad_est.latency_cycles > good_est.latency_cycles);
    }

    #[test]
    fn more_unroll_means_fewer_cycles_and_more_resources() {
        let device = FpgaDevice::zu3eg();
        let mut ctx1 = Context::new();
        let f1 = vector_add(&mut ctx1, 1, 1);
        let e1 = estimate_body(&ctx1, f1, &device);
        let mut ctx2 = Context::new();
        let f2 = vector_add(&mut ctx2, 16, 16);
        let e2 = estimate_body(&ctx2, f2, &device);
        assert!(e2.latency_cycles < e1.latency_cycles);
        assert!(e2.resources.dsp >= e1.resources.dsp);
        assert!(e2.resources.lut > e1.resources.lut);
    }

    #[test]
    fn buffer_info_resolves_allocs_and_defaults() {
        let mut ctx = Context::new();
        let func = vector_add(&mut ctx, 4, 1);
        let profile = profile_body(&ctx, func);
        let info = buffer_info(&ctx, profile.accesses[0].buffer);
        assert_eq!(info.elements, 1024);
        assert_eq!(info.bits, 32);
        assert_eq!(info.banks(), 4);
        assert_eq!(info.kind, MemoryKind::Bram);
        assert!(info.resources().bram_18k > 0);
    }

    #[test]
    fn optimistic_bound_never_exceeds_the_exact_model() {
        for device in [FpgaDevice::zu3eg(), FpgaDevice::vu9p_slr()] {
            for (partition, unroll) in [(1, 1), (1, 8), (4, 1), (8, 8), (16, 4), (16, 16)] {
                let mut ctx = Context::new();
                let func = vector_add(&mut ctx, partition, unroll);
                let exact = estimate_body(&ctx, func, &device);
                let bound = optimistic_body_bound(&ctx, func, &device);
                assert!(
                    bound.latency_lb <= exact.latency_cycles,
                    "bound {} exceeds exact {} (partition={partition}, unroll={unroll}, {})",
                    bound.latency_lb,
                    exact.latency_cycles,
                    device.name,
                );
                assert!(bound.latency_lb >= 1);
                assert_eq!(bound.resources, exact.resources);
            }
        }
    }

    #[test]
    fn estimate_reports_macs_for_mac_kernels() {
        let device = FpgaDevice::zu3eg();
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("mm", vec![], vec![]);
        let body = ctx.body_block(func);
        let (a, c) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            let a = build_alloc(&mut b, Type::memref(vec![64, 64], Type::f32()), "A");
            let c = build_alloc(&mut b, Type::memref(vec![64, 64], Type::f32()), "C");
            (a, c)
        };
        let (_l, ivs, inner) = build_loop_nest(&mut ctx, body, &[(0, 64, "i"), (0, 64, "j")]);
        let mut bld = OpBuilder::at_block_end(&mut ctx, inner);
        let x = build_load(&mut bld, a, &[ivs[0], ivs[1]]);
        let prod = arith::build_binary(&mut bld, arith::MULF, x, x);
        build_store(&mut bld, prod, c, &[ivs[0], ivs[1]]);
        let est = estimate_body(&ctx, func, &device);
        assert_eq!(est.macs, 64 * 64);
        assert!(est.latency_cycles > 0);
    }
}
