//! Surrogate QoR bounds for design-space exploration.
//!
//! The explorer in `hida_core::explore` must decide whether a candidate design
//! point is worth compiling *before* paying for the compile. This module
//! answers that question with an optimistic bound on the design's QoR vector,
//! assembled without running the design-level timing model: per-node results
//! already known to the [`SharedEstimateCache`] (in memory or in the
//! persistent store) are served via [`SharedEstimateCache::peek`], and
//! unknown nodes fall back to [`optimistic_body_bound`] — both give the
//! **exact** per-node latency and resources, since the per-node model is pure
//! arithmetic over the lowered IR. What the bound cannot see are the
//! design-level stall and oversubscription factors, which are always `>= 1`.
//! Buffer resources are pure IR arithmetic and are always exact.
//!
//! Soundness: every component of [`DesignBound`] is `<=` the corresponding
//! component of the exact [`estimate_schedule`] answer (resources are equal,
//! the interval is a lower bound). A frontier point that *strictly dominates*
//! the bound therefore also dominates the true estimate, so pruning on the
//! bound can never discard a Pareto-optimal design. See
//! `docs/ARCHITECTURE.md` § "Adaptive DSE & budget rebalancing" for the
//! term-by-term argument.
//!
//! [`estimate_schedule`]: crate::DataflowEstimator::estimate_schedule

use crate::device::FpgaDevice;
use crate::latency::{buffer_info, optimistic_body_bound};
use crate::resource::Resources;
use crate::shared_cache::{device_fingerprint, estimate_key, SharedEstimateCache};
use hida_dataflow_ir::graph::DataflowGraph;
use hida_dataflow_ir::structural::ScheduleOp;
use hida_ir_core::Context;
use std::collections::HashMap;

/// Optimistic bound on a whole design's QoR vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignBound {
    /// Lower bound on the dataflow pipeline interval (cycles). The exact
    /// interval is `max_i(latency_i * stall_i)` scaled by over-subscription.
    /// The stall factors are purely topological (path-depth imbalance vs
    /// buffer depth — no timing involved), so the bound reproduces them
    /// exactly and only the over-subscription factor (`>= 1`) is dropped:
    /// `max_i(latency_lb_i * stall_i)` bounds the interval from below.
    pub interval_lb: i64,
    /// Exactly the resources `estimate_schedule` would charge: per-node
    /// compute resources (timing-free profile arithmetic) plus buffer
    /// resources (pure IR resolution).
    pub resources: Resources,
    /// Number of dataflow nodes inspected.
    pub nodes: usize,
    /// How many of those nodes were served exactly from the shared cache /
    /// persistent store (the rest used the optimistic per-node bound).
    pub probe_hits: usize,
}

/// Computes the optimistic QoR bound of `schedule` without running the timing
/// model. When `cache` is given, each node is first probed (via
/// [`SharedEstimateCache::peek`] — a non-counting read that falls through to
/// the persistent store) and a hit contributes its **exact** latency and
/// resources; misses contribute [`optimistic_body_bound`]. Exact latencies
/// keep the bound sound because a node's latency is itself `<=` the design
/// interval.
pub fn design_bound(
    ctx: &Context,
    schedule: ScheduleOp,
    device: &FpgaDevice,
    cache: Option<&SharedEstimateCache>,
) -> DesignBound {
    let device_key = device_fingerprint(device);
    let nodes = schedule.nodes(ctx);
    let mut latencies: Vec<i64> = Vec::with_capacity(nodes.len());
    let mut compute_res = Resources::zero();
    let mut probe_hits = 0_usize;
    for node in &nodes {
        let op = node.id();
        match cache.and_then(|c| c.peek(estimate_key(ctx, op, device_key))) {
            Some(exact) => {
                probe_hits += 1;
                latencies.push(exact.latency_cycles);
                compute_res += exact.resources;
            }
            None => {
                let bound = optimistic_body_bound(ctx, op, device);
                latencies.push(bound.latency_lb);
                compute_res += bound.resources;
            }
        }
    }

    // Unbalanced-path stall factors, exactly as the dataflow estimator's
    // pipeline timing charges them: the imbalance is a path-depth count and
    // the buffer depth is IR arithmetic, so no timing estimate is involved
    // and the factors are exact. Multiplying exact (`>= 1`) factors into the
    // per-node latency bounds keeps `interval_lb` a sound lower bound — only
    // the over-subscription scaling remains unmodeled.
    let graph = DataflowGraph::from_schedule(ctx, schedule);
    let mut stall: HashMap<_, i64> = nodes.iter().map(|&n| (n, 1_i64)).collect();
    for (edge, imbalance) in graph.unbalanced_edges() {
        let required_depth = imbalance as i64 + 1;
        let actual_depth = buffer_info(ctx, edge.buffer).depth.max(1);
        if actual_depth < required_depth {
            let factor = (required_depth + actual_depth - 1) / actual_depth;
            let entry = stall.entry(edge.producer).or_insert(1);
            *entry = (*entry).max(factor);
        }
    }
    let interval_lb = nodes
        .iter()
        .zip(&latencies)
        .map(|(n, &lat)| lat * stall[n])
        .max()
        .unwrap_or(1)
        .max(1);

    // Buffer resources are exact: the same loops `estimate_schedule` runs.
    let mut buffer_res = Resources::zero();
    for buf in schedule.internal_buffers(ctx) {
        buffer_res += buffer_info(ctx, buf.value(ctx)).resources();
    }
    for op in ctx.collect_ops(schedule.id(), hida_dialects::memory::ALLOC) {
        buffer_res += buffer_info(ctx, ctx.op(op).results[0]).resources();
    }

    DesignBound {
        interval_lb,
        resources: compute_res + buffer_res,
        nodes: nodes.len(),
        probe_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataflowEstimator;
    use hida_dataflow_ir::structural::{build_buffer, build_node, NodeOp};
    use hida_dialects::analysis::MemEffect;
    use hida_dialects::arith;
    use hida_dialects::loops::build_loop_nest;
    use hida_dialects::memory::{build_load, build_store};
    use hida_ir_core::{OpBuilder, Type};
    use std::sync::Arc;

    fn fill_node_body(ctx: &mut Context, node: NodeOp, n: i64) {
        let body = node.body(ctx);
        let args = node.body_args(ctx);
        let (_l, ivs, inner) = build_loop_nest(ctx, body, &[(0, n, "i")]);
        let mut b = OpBuilder::at_block_end(ctx, inner);
        let x = build_load(&mut b, args[0], &[ivs[0]]);
        let y = arith::build_binary(&mut b, arith::MULF, x, x);
        build_store(&mut b, y, args[1], &[ivs[0]]);
    }

    fn two_node_schedule(ctx: &mut Context, n0: i64, n1: i64) -> ScheduleOp {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let (schedule, body) = {
            let mut b = OpBuilder::at_end_of(ctx, func);
            hida_dataflow_ir::structural::build_schedule(&mut b, "pipe")
        };
        let ty = Type::memref(vec![n0.max(n1)], Type::f32());
        let mk = |ctx: &mut Context, name: &str| {
            let mut b = OpBuilder::at_block_end(ctx, body);
            build_buffer(&mut b, ty.clone(), 2, name).1
        };
        let b_in = mk(ctx, "in");
        let b_mid = mk(ctx, "mid");
        let b_out = mk(ctx, "out");
        let (node0, _) = build_node(
            ctx,
            body,
            "n0",
            &[(b_in, MemEffect::Read), (b_mid, MemEffect::Write)],
        );
        fill_node_body(ctx, node0, n0);
        let (node1, _) = build_node(
            ctx,
            body,
            "n1",
            &[(b_mid, MemEffect::Read), (b_out, MemEffect::Write)],
        );
        fill_node_body(ctx, node1, n1);
        schedule
    }

    #[test]
    fn bound_never_exceeds_exact_schedule_estimate() {
        let device = FpgaDevice::zu3eg();
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 1024, 4096);
        let exact = DataflowEstimator::new(device.clone()).estimate_schedule(&ctx, schedule, true);

        let cold = design_bound(&ctx, schedule, &device, None);
        assert!(cold.interval_lb <= exact.interval_cycles);
        assert_eq!(cold.resources, exact.resources);
        assert_eq!(cold.nodes, 2);
        assert_eq!(cold.probe_hits, 0);
    }

    #[test]
    fn warm_cache_serves_exact_latencies_and_stays_sound() {
        let device = FpgaDevice::zu3eg();
        let cache = Arc::new(SharedEstimateCache::new());
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 1024, 4096);
        let est = DataflowEstimator::new(device.clone()).with_shared_cache(cache.clone());
        let exact = est.estimate_schedule(&ctx, schedule, true);

        let warm = design_bound(&ctx, schedule, &device, Some(&cache));
        assert_eq!(warm.probe_hits, 2);
        // With every node served exactly, the interval bound equals the exact
        // max-latency interval (this schedule has no stalls).
        assert_eq!(warm.interval_lb, exact.interval_cycles);
        assert_eq!(warm.resources, exact.resources);
        // The probe is traffic-free: pruning decisions don't perturb the
        // hit/miss counters CI asserts on.
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn warm_bound_is_at_least_as_tight_as_cold() {
        let device = FpgaDevice::zu3eg();
        let cache = Arc::new(SharedEstimateCache::new());
        let mut ctx = Context::new();
        let schedule = two_node_schedule(&mut ctx, 2048, 2048);
        let cold = design_bound(&ctx, schedule, &device, Some(&cache));
        DataflowEstimator::new(device.clone())
            .with_shared_cache(cache.clone())
            .estimate_schedule(&ctx, schedule, true);
        let warm = design_bound(&ctx, schedule, &device, Some(&cache));
        assert!(warm.interval_lb >= cold.interval_lb);
        assert_eq!(warm.resources, cold.resources);
    }
}
