//! Property tests for the persistent estimate store: exact round-trips of the
//! on-disk entry encoding over arbitrary estimates, rejection (never a panic,
//! never a wrong value) of version-mismatched and truncated entry files, and
//! the size budget staying enforced across arbitrary write sequences.

use hida_estimator::store::{decode_entry, encode_entry, EstimateStore, STORE_VERSION};
use hida_estimator::{NodeEstimate, Resources};
use hida_ir_core::Fingerprint;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Name fragments covering the hostile cases a length-prefixed string must
/// survive: empty, multi-byte UTF-8, separators that look like path syntax,
/// and bytes that collide with the entry magic.
const NAME_PARTS: [&str; 6] = ["conv3x3", "", "τ-节点", "a+b/c", " ", "HIDAESTM"];

fn temp_store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hida_store_props_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds an estimate from sampled raw material: a name concatenated from
/// `NAME_PARTS` indices and the nine numeric fields in declaration order.
fn estimate_from(parts: &[usize], words: &[i64]) -> NodeEstimate {
    NodeEstimate {
        name: parts.iter().map(|&i| NAME_PARTS[i]).collect(),
        latency_cycles: words[0],
        ii: words[1],
        resources: Resources::new(words[2], words[3], words[4], words[5]),
        macs: words[6],
        external_bytes: words[7],
        parallelism: words[8],
    }
}

const WORD_RANGE: std::ops::Range<i64> = -(1_i64 << 62)..(1_i64 << 62);

proptest! {
    /// Encoding an entry and decoding it under the same key reproduces the
    /// estimate exactly — every numeric field bit-for-bit, the name
    /// byte-for-byte. This is what makes a store hit indistinguishable from
    /// recomputation, and thereby what makes warm-process QoR byte-identical.
    #[test]
    fn entry_encoding_round_trips_exactly(
        key in (0_u64..u64::MAX, 0_u64..u64::MAX),
        parts in prop::collection::vec(0_usize..NAME_PARTS.len(), 0..5),
        words in prop::collection::vec(WORD_RANGE, 9..10),
    ) {
        let key = Fingerprint { hi: key.0, lo: key.1 };
        let estimate = estimate_from(&parts, &words);
        let bytes = encode_entry(key, &estimate);
        prop_assert_eq!(decode_entry(&bytes, key), Some(estimate));
    }

    /// An entry written by any other format version is rejected, whatever the
    /// version delta: stale estimates from an older (or newer) binary must be
    /// misses, never be decoded under today's semantics.
    #[test]
    fn version_mismatch_is_rejected(
        key in (0_u64..u64::MAX, 0_u64..u64::MAX),
        parts in prop::collection::vec(0_usize..NAME_PARTS.len(), 0..4),
        words in prop::collection::vec(WORD_RANGE, 9..10),
        other_version in 0_u32..1024,
    ) {
        prop_assume!(other_version != STORE_VERSION);
        let key = Fingerprint { hi: key.0, lo: key.1 };
        let mut bytes = encode_entry(key, &estimate_from(&parts, &words));
        // The version field sits right after the 8-byte magic.
        bytes[8..12].copy_from_slice(&other_version.to_le_bytes());
        prop_assert_eq!(decode_entry(&bytes, key), None);
    }

    /// Every strict prefix of a valid entry fails to decode: a torn write of
    /// any length is detected, never misread as a shorter valid entry.
    #[test]
    fn any_truncation_is_rejected(
        key in (0_u64..u64::MAX, 0_u64..u64::MAX),
        parts in prop::collection::vec(0_usize..NAME_PARTS.len(), 0..4),
        words in prop::collection::vec(WORD_RANGE, 9..10),
        cut in 0_u64..u64::MAX,
    ) {
        let key = Fingerprint { hi: key.0, lo: key.1 };
        let bytes = encode_entry(key, &estimate_from(&parts, &words));
        let len = (cut % bytes.len() as u64) as usize;
        prop_assert_eq!(decode_entry(&bytes[..len], key), None);
    }

    /// A version-mismatched file on disk degrades to a counted miss and is
    /// self-healed: the slot becomes writable again and the fresh entry loads.
    #[test]
    fn stale_version_on_disk_degrades_to_miss_then_heals(
        raw_key in (0_u64..u64::MAX, 0_u64..u64::MAX),
        words in prop::collection::vec(WORD_RANGE, 9..10),
    ) {
        let key = Fingerprint { hi: raw_key.0, lo: raw_key.1 };
        let estimate = estimate_from(&[0], &words);
        let dir = temp_store_dir("version");
        let store = EstimateStore::open(&dir).expect("open store");
        let mut bytes = encode_entry(key, &estimate);
        bytes[8..12].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        let path = store.entry_path(key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        prop_assert_eq!(store.load(key), None);
        let stats = store.stats();
        prop_assert_eq!((stats.corrupt, stats.misses), (1, 1));
        store.save(key, &estimate);
        prop_assert_eq!(store.load(key), Some(estimate));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// After every save under a size budget the store fits the budget, each
    /// eviction accounts for exactly one earlier write, and every surviving
    /// entry still decodes to the estimate it was saved with.
    #[test]
    fn eviction_keeps_the_store_under_budget(
        num_entries in 1_usize..24,
        limit_entries in 1_u64..8,
        words in prop::collection::vec(WORD_RANGE, 9..10),
    ) {
        let dir = temp_store_dir("budget");
        let base = estimate_from(&[0], &words);
        let entry_bytes = encode_entry(Fingerprint { hi: 1, lo: 1 }, &base).len() as u64;
        let limit = limit_entries * entry_bytes;
        let store = EstimateStore::open(&dir)
            .expect("open store")
            .with_limit_bytes(limit);
        for i in 0..num_entries {
            // Same-length estimates: keys differ, payload size does not, so
            // `limit` is an exact entry-count budget.
            let key = Fingerprint { hi: 0x10 + i as u64, lo: i as u64 };
            store.save(key, &base);
            prop_assert!(
                store.disk_bytes() <= limit,
                "store exceeds budget after save {}: {} > {}",
                i,
                store.disk_bytes(),
                limit
            );
        }
        let stats = store.stats();
        prop_assert_eq!(stats.writes, num_entries as u64);
        prop_assert_eq!(stats.evictions, num_entries as u64 - store.disk_entries() as u64);
        for i in 0..num_entries {
            let key = Fingerprint { hi: 0x10 + i as u64, lo: i as u64 };
            if store.entry_path(key).exists() {
                prop_assert_eq!(store.load(key), Some(base.clone()));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
