//! Semantics-oracle regression: for every built-in PolyBench kernel, the
//! functional interpreter must compute the same buffer contents under the
//! minimal `construct,lower` pipeline and under the full polybench
//! optimization pipeline. Any pass that reorders, duplicates, tiles or
//! parallelizes a node while changing what it computes shows up here.
//!
//! DNN models are out of scope: their layer ops are outside the interpreter's
//! affine/arith vocabulary, so interpreting them is vacuously equal.

use std::collections::BTreeMap;

use hida_frontend::polybench::{build_kernel, PolybenchKernel};
use hida_ir_core::Context;
use hida_opt::{registry, Pipeline};
use hida_sim::functional::Memory;
use hida_sim::interpret_schedule;

const SIZE: i64 = 8;

/// Deterministic per-name seed so both compilations of a kernel present the
/// interpreter with identical inputs.
fn name_fill(name: &str) -> f64 {
    let h: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |acc, b| {
        (acc ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    0.25 + (h % 8) as f64 * 0.125
}

/// Seeds every original (non-duplicated) buffer: a uniform name-derived fill
/// plus a diagonal perturbation so index mix-ups change the result.
fn seed_inputs(ctx: &Context, schedule: hida_dataflow_ir::structural::ScheduleOp) -> Memory {
    let mut memory = Memory::new();
    for buf in schedule.internal_buffers(ctx) {
        let name = buf.name(ctx);
        if name.ends_with("_dup") {
            // Duplicates are filled by the inserted copy node (or fully
            // overwritten); pre-seeding them would diverge from the baseline.
            continue;
        }
        let shape = buf.shape(ctx);
        let fill = name_fill(&name);
        memory.init(buf.value(ctx), &shape, fill);
        let extent = shape.iter().copied().min().unwrap_or(1);
        for i in 0..extent {
            let indices: Vec<i64> = shape.iter().map(|_| i).collect();
            memory.store(buf.value(ctx), &indices, fill + 0.0625 * i as f64);
        }
    }
    memory
}

/// Interpreted buffer contents keyed by base name (deepest `_dup` wins, since
/// multi-producer elimination moves the final value into the duplicate).
fn contents_by_name(
    ctx: &Context,
    schedule: hida_dataflow_ir::structural::ScheduleOp,
    memory: &Memory,
) -> BTreeMap<String, (usize, Vec<f64>)> {
    let mut out: BTreeMap<String, (usize, Vec<f64>)> = BTreeMap::new();
    for buf in schedule.internal_buffers(ctx) {
        let Some(data) = memory.contents(buf.value(ctx)) else {
            continue;
        };
        let mut base = buf.name(ctx);
        let mut dups = 0;
        while let Some(stripped) = base.strip_suffix("_dup") {
            base = stripped.to_string();
            dups += 1;
        }
        match out.get(&base) {
            Some(&(best, _)) if best >= dups => {}
            _ => {
                out.insert(base, (dups, data.to_vec()));
            }
        }
    }
    out
}

fn run_pipeline(
    kernel: PolybenchKernel,
    pipeline_text: &str,
) -> BTreeMap<String, (usize, Vec<f64>)> {
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let func = build_kernel(&mut ctx, module, kernel, SIZE);
    let mut pipeline =
        Pipeline::parse(&registry(), pipeline_text).unwrap_or_else(|e| panic!("{kernel:?}: {e}"));
    let schedule = pipeline
        .run(&mut ctx, func)
        .unwrap_or_else(|e| panic!("{kernel:?} via '{pipeline_text}': {e}"));
    let mut memory = seed_inputs(&ctx, schedule);
    interpret_schedule(&ctx, schedule, &mut memory);
    contents_by_name(&ctx, schedule, &memory)
}

#[test]
fn interpreter_agrees_before_and_after_the_full_pipeline() {
    // The full polybench pipeline as `HidaOptions::polybench` configures it.
    let optimized_text = "construct,fusion,lower,multi-producer-elim,\
         tiling{factor=4},balance,parallelize{max-factor=8,device=zu3eg}";
    for kernel in PolybenchKernel::all() {
        let baseline = run_pipeline(kernel, "construct,lower");
        let optimized = run_pipeline(kernel, optimized_text);

        let mut compared = 0;
        let mut nonzero = false;
        for (name, (_, expected)) in &baseline {
            let Some((_, actual)) = optimized.get(name) else {
                continue;
            };
            compared += 1;
            assert_eq!(
                expected.len(),
                actual.len(),
                "{kernel:?}: buffer '{name}' changed size"
            );
            for (i, (&e, &a)) in expected.iter().zip(actual).enumerate() {
                nonzero |= e != 0.0;
                let tolerance = 1e-6 * e.abs().max(a.abs()).max(1.0);
                assert!(
                    (e - a).abs() <= tolerance,
                    "{kernel:?}: buffer '{name}'[{i}] diverges: {e} (baseline) vs {a} (optimized)"
                );
            }
        }
        assert!(
            compared > 0 && nonzero,
            "{kernel:?}: oracle is vacuous (compared {compared}, nonzero {nonzero})"
        );
    }
}
