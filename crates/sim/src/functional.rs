//! Functional interpreter for structural dataflow schedules.
//!
//! Node bodies built from affine loop nests with `affine.load`/`affine.store` and
//! scalar arithmetic are executed on `f64` data. Buffers are dense arrays addressed
//! by row-major order. The interpreter is deliberately simple — its job is to show
//! that HIDA's structural rewrites do not change program semantics, not to be fast.

use hida_dataflow_ir::structural::ScheduleOp;
use hida_dialects::loops::ForOp;
use hida_dialects::{arith, memory};
use hida_ir_core::{Context, OpId, ValueId};
use std::collections::HashMap;

/// Dense storage for every buffer touched by the schedule.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    buffers: HashMap<ValueId, Vec<f64>>,
    shapes: HashMap<ValueId, Vec<i64>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-initialises) a buffer with the given shape and fill value.
    pub fn init(&mut self, buffer: ValueId, shape: &[i64], fill: f64) {
        let size: i64 = shape.iter().product::<i64>().max(1);
        self.buffers.insert(buffer, vec![fill; size as usize]);
        self.shapes.insert(buffer, shape.to_vec());
    }

    /// Reads one element.
    pub fn load(&self, buffer: ValueId, indices: &[i64]) -> f64 {
        let offset = self.offset(buffer, indices);
        self.buffers
            .get(&buffer)
            .and_then(|data| data.get(offset))
            .copied()
            .unwrap_or(0.0)
    }

    /// Writes one element.
    pub fn store(&mut self, buffer: ValueId, indices: &[i64], value: f64) {
        let offset = self.offset(buffer, indices);
        if let Some(data) = self.buffers.get_mut(&buffer) {
            if offset < data.len() {
                data[offset] = value;
            }
        }
    }

    /// Returns the full contents of a buffer (row-major).
    pub fn contents(&self, buffer: ValueId) -> Option<&[f64]> {
        self.buffers.get(&buffer).map(|v| v.as_slice())
    }

    fn offset(&self, buffer: ValueId, indices: &[i64]) -> usize {
        let shape = match self.shapes.get(&buffer) {
            Some(s) => s,
            None => return 0,
        };
        let mut offset = 0_i64;
        for (i, &idx) in indices.iter().enumerate() {
            let dim = shape.get(i).copied().unwrap_or(1).max(1);
            offset = offset * dim + idx.clamp(0, dim - 1);
        }
        offset.max(0) as usize
    }
}

/// Interprets every node of a schedule in program order, reading and writing the
/// provided memory. Buffers not yet registered are zero-initialised from their types.
pub fn interpret_schedule(ctx: &Context, schedule: ScheduleOp, memory: &mut Memory) {
    for buffer in schedule.internal_buffers(ctx) {
        let value = buffer.value(ctx);
        if memory.contents(value).is_none() {
            memory.init(value, &buffer.shape(ctx), 0.0);
        }
    }
    for node in schedule.nodes(ctx) {
        // Map body arguments to the node operands so loads/stores hit shared storage.
        let mut alias: HashMap<ValueId, ValueId> = HashMap::new();
        for (arg, operand) in node.body_args(ctx).into_iter().zip(node.operands(ctx)) {
            alias.insert(arg, operand);
        }
        let mut env: HashMap<ValueId, f64> = HashMap::new();
        for op in ctx.body_ops(node.id()) {
            interpret_op(ctx, op, memory, &alias, &mut env);
        }
    }
}

fn resolve_buffer(alias: &HashMap<ValueId, ValueId>, value: ValueId) -> ValueId {
    *alias.get(&value).unwrap_or(&value)
}

fn interpret_op(
    ctx: &Context,
    op: OpId,
    memory: &mut Memory,
    alias: &HashMap<ValueId, ValueId>,
    env: &mut HashMap<ValueId, f64>,
) {
    let operation = ctx.op(op);
    let name = operation.name.as_str();
    if let Some(for_op) = ForOp::try_from_op(ctx, op) {
        let iv = for_op.induction_var(ctx);
        let lower = for_op.lower_bound(ctx);
        let upper = for_op.upper_bound(ctx);
        let step = for_op.step(ctx);
        let body = ctx.body_ops(op);
        let mut i = lower;
        while i < upper {
            env.insert(iv, i as f64);
            for &inner in &body {
                interpret_op(ctx, inner, memory, alias, env);
            }
            i += step;
        }
        return;
    }
    match name {
        n if n == hida_ir_core::op_names::CONSTANT => {
            let value = operation
                .attr("value")
                .and_then(|a| a.as_float())
                .unwrap_or(0.0);
            env.insert(operation.results[0], value);
        }
        memory::APPLY => {
            let stride = operation.attr_int("stride").unwrap_or(1) as f64;
            let offset = operation.attr_int("offset").unwrap_or(0) as f64;
            let input = *env.get(&operation.operands[0]).unwrap_or(&0.0);
            env.insert(operation.results[0], stride * input + offset);
        }
        memory::LOAD => {
            let buffer = resolve_buffer(alias, operation.operands[0]);
            let indices: Vec<i64> = operation.operands[1..]
                .iter()
                .map(|v| *env.get(v).unwrap_or(&0.0) as i64)
                .collect();
            env.insert(operation.results[0], memory.load(buffer, &indices));
        }
        memory::STORE => {
            let value = *env.get(&operation.operands[0]).unwrap_or(&0.0);
            let buffer = resolve_buffer(alias, operation.operands[1]);
            let indices: Vec<i64> = operation.operands[2..]
                .iter()
                .map(|v| *env.get(v).unwrap_or(&0.0) as i64)
                .collect();
            memory.store(buffer, &indices, value);
        }
        memory::COPY => {
            let src = resolve_buffer(alias, operation.operands[0]);
            let dst = resolve_buffer(alias, operation.operands[1]);
            if let Some(data) = memory.contents(src).map(|d| d.to_vec()) {
                if let Some(shape) = memory.shapes.get(&src).cloned() {
                    memory.init(dst, &shape, 0.0);
                    if let Some(dst_data) = memory.buffers.get_mut(&dst) {
                        dst_data.copy_from_slice(&data);
                    }
                }
            }
        }
        arith::ADDF | arith::ADDI => binary(ctx, op, env, |a, b| a + b),
        arith::SUBF | arith::SUBI => binary(ctx, op, env, |a, b| a - b),
        arith::MULF | arith::MULI => binary(ctx, op, env, |a, b| a * b),
        arith::DIVF | arith::DIVI => {
            binary(ctx, op, env, |a, b| if b != 0.0 { a / b } else { 0.0 })
        }
        arith::MAXF => binary(ctx, op, env, f64::max),
        _ => {
            // Token pushes/pops and unknown ops are no-ops for functional semantics.
        }
    }
}

fn binary(ctx: &Context, op: OpId, env: &mut HashMap<ValueId, f64>, f: impl Fn(f64, f64) -> f64) {
    let operation = ctx.op(op);
    let a = *env.get(&operation.operands[0]).unwrap_or(&0.0);
    let b = *env.get(&operation.operands[1]).unwrap_or(&0.0);
    env.insert(operation.results[0], f(a, b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_frontend::listing1::build_listing1;
    use hida_opt::{construct, lower, parallelize, ParallelMode};

    /// Lowers Listing 1 and interprets it: C must equal A(strided) * B summed over k.
    #[test]
    fn listing1_computes_the_expected_matrix_product() {
        let mut ctx = hida_ir_core::Context::new();
        let module = ctx.create_module("m");
        let l1 = build_listing1(&mut ctx, module);
        construct::construct_functional_dataflow(&mut ctx, l1.func).unwrap();
        let schedule = lower::lower_to_structural(
            &mut ctx,
            &mut hida_ir_core::AnalysisManager::new(),
            l1.func,
        )
        .unwrap();

        let mut memory = Memory::new();
        interpret_schedule(&ctx, schedule, &mut memory);

        // Node0 stores 1.0 into A, Node1 stores 2.0 into B, so every C element is
        // sum over k of 1*2 = 32.
        let c_buffer = schedule
            .internal_buffers(&ctx)
            .into_iter()
            .find(|b| b.name(&ctx) == "C")
            .unwrap();
        let contents = memory.contents(c_buffer.value(&ctx)).unwrap();
        assert_eq!(contents.len(), 256);
        assert!(contents.iter().all(|&v| (v - 32.0).abs() < 1e-9));
    }

    /// The structural optimizations must not change the computed values.
    #[test]
    fn parallelization_preserves_functional_semantics() {
        let run = |parallelize_it: bool| -> Vec<f64> {
            let mut ctx = hida_ir_core::Context::new();
            let module = ctx.create_module("m");
            let l1 = build_listing1(&mut ctx, module);
            construct::construct_functional_dataflow(&mut ctx, l1.func).unwrap();
            let mut analyses = hida_ir_core::AnalysisManager::new();
            let schedule = lower::lower_to_structural(&mut ctx, &mut analyses, l1.func).unwrap();
            if parallelize_it {
                parallelize::parallelize_schedule(
                    &mut ctx,
                    &mut analyses,
                    schedule,
                    32,
                    ParallelMode::IaCa,
                    &hida_estimator::device::FpgaDevice::pynq_z2(),
                )
                .unwrap();
            }
            let mut memory = Memory::new();
            interpret_schedule(&ctx, schedule, &mut memory);
            let c = schedule
                .internal_buffers(&ctx)
                .into_iter()
                .find(|b| b.name(&ctx) == "C")
                .unwrap();
            memory.contents(c.value(&ctx)).unwrap().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn memory_addressing_is_row_major_and_clamped() {
        let mut m = Memory::new();
        let v = ValueId::from_index(1);
        m.init(v, &[2, 3], 0.0);
        m.store(v, &[1, 2], 7.0);
        assert_eq!(m.load(v, &[1, 2]), 7.0);
        assert_eq!(m.contents(v).unwrap()[5], 7.0);
        // Out-of-range indices clamp instead of panicking.
        m.store(v, &[9, 9], 1.0);
        assert_eq!(m.load(v, &[1, 2]), 1.0);
        assert_eq!(m.load(ValueId::from_index(99), &[0]), 0.0);
    }
}
