//! Dataflow simulator.
//!
//! The paper validates its designs through Vitis HLS C simulation and on-board runs.
//! Without that toolchain, this crate provides two substitutes:
//!
//! * a **functional interpreter** ([`functional`]) that executes structural dataflow
//!   schedules whose node bodies are affine loop nests (the PolyBench path) on real
//!   data, checking that HIDA's structural transformations (buffer duplication, node
//!   fusion, multi-producer elimination) preserve the computed values;
//! * a **timed simulator** ([`timed`]) that replays the coarse-grained pipeline
//!   cycle-by-frame using the per-node latency estimates, cross-checking the
//!   analytic interval model of `hida-estimator` (stalls from unbalanced paths,
//!   sequential vs dataflow execution).

pub mod functional;
pub mod timed;

pub use functional::interpret_schedule;
pub use timed::{simulate_pipeline, PipelineTrace};
