//! Frame-level timed simulation of a coarse-grained dataflow pipeline.
//!
//! Each node is a pipeline stage with a fixed per-frame latency; buffers between
//! stages hold a bounded number of in-flight frames (the ping-pong depth). The
//! simulator pushes a stream of frames through the pipeline and reports the steady
//! state interval actually achieved, which cross-checks the analytic model in
//! `hida-estimator` (critical-stage interval, stalls caused by shallow buffers on
//! reconvergent paths, and the sequential behaviour when dataflow is disabled).

use hida_dataflow_ir::graph::DataflowGraph;
use hida_dataflow_ir::structural::{NodeOp, ScheduleOp};
use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::latency::buffer_info;
use hida_ir_core::Context;
use std::collections::HashMap;

/// Result of a timed pipeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTrace {
    /// Cycle at which each frame left the pipeline.
    pub completion_cycles: Vec<i64>,
    /// Steady-state interval between consecutive frame completions.
    pub steady_interval: i64,
    /// Total cycles to drain all frames.
    pub makespan: i64,
}

/// Simulates `frames` frames flowing through the schedule's dataflow pipeline.
///
/// With `dataflow` disabled the nodes run back-to-back for each frame (sequential
/// execution). With it enabled, a node may start frame `k` as soon as (a) it finished
/// frame `k-1`, (b) all its producers finished frame `k`, and (c) every buffer it
/// writes has a free stage, i.e. its consumers are at most `depth-1` frames behind.
pub fn simulate_pipeline(
    ctx: &Context,
    schedule: ScheduleOp,
    estimator: &DataflowEstimator,
    frames: usize,
    dataflow: bool,
) -> PipelineTrace {
    let nodes = schedule.nodes(ctx);
    let latencies: HashMap<NodeOp, i64> = nodes
        .iter()
        .map(|&n| (n, estimator.estimate_node(ctx, n).latency_cycles.max(1)))
        .collect();
    if nodes.is_empty() || frames == 0 {
        return PipelineTrace {
            completion_cycles: vec![],
            steady_interval: 1,
            makespan: 0,
        };
    }

    if !dataflow {
        let per_frame: i64 = latencies.values().sum();
        let completion: Vec<i64> = (1..=frames as i64).map(|k| k * per_frame).collect();
        return PipelineTrace {
            steady_interval: per_frame,
            makespan: *completion.last().unwrap(),
            completion_cycles: completion,
        };
    }

    let graph = DataflowGraph::from_schedule(ctx, schedule);
    // finish[node][frame] = cycle when the node finished that frame.
    let mut finish: HashMap<NodeOp, Vec<i64>> = nodes.iter().map(|&n| (n, Vec::new())).collect();
    // Buffer depth between producer/consumer pairs.
    let edge_depth: Vec<(NodeOp, NodeOp, i64)> = graph
        .edges
        .iter()
        .map(|e| {
            (
                e.producer,
                e.consumer,
                buffer_info(ctx, e.buffer).depth.max(1),
            )
        })
        .collect();

    for frame in 0..frames {
        for &node in &nodes {
            let mut start: i64 = 0;
            // (a) The node itself is busy until it finished the previous frame.
            if frame > 0 {
                start = start.max(finish[&node][frame - 1]);
            }
            // (b) Producers must have delivered this frame.
            for pred in graph.predecessors(node) {
                start = start.max(finish[&pred][frame]);
            }
            // (c) Back-pressure: a producer may run at most `depth` frames ahead of
            // each consumer on the connecting buffer.
            for &(producer, consumer, depth) in &edge_depth {
                if producer == node {
                    let lag = frame as i64 - depth;
                    if lag >= 0 {
                        start = start.max(finish[&consumer][lag as usize]);
                    }
                }
            }
            let done = start + latencies[&node];
            finish.get_mut(&node).unwrap().push(done);
        }
    }

    let completion: Vec<i64> = (0..frames)
        .map(|frame| nodes.iter().map(|n| finish[n][frame]).max().unwrap())
        .collect();
    let steady_interval = if frames >= 3 {
        completion[frames - 1] - completion[frames - 2]
    } else {
        completion[0]
    };
    PipelineTrace {
        steady_interval: steady_interval.max(1),
        makespan: *completion.last().unwrap(),
        completion_cycles: completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_estimator::device::FpgaDevice;
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};
    use hida_opt::{HidaOptimizer, HidaOptions};

    fn optimized(kernel: PolybenchKernel) -> (Context, ScheduleOp) {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, kernel, 32);
        let schedule = HidaOptimizer::new(HidaOptions::polybench())
            .run(&mut ctx, func)
            .unwrap();
        (ctx, schedule)
    }

    #[test]
    fn dataflow_simulation_matches_the_analytic_interval_model() {
        let (ctx, schedule) = optimized(PolybenchKernel::ThreeMm);
        let estimator = DataflowEstimator::new(FpgaDevice::zu3eg());
        let analytic = estimator.estimate_schedule(&ctx, schedule, true);
        let trace = simulate_pipeline(&ctx, schedule, &estimator, 8, true);
        // Steady-state interval must match the analytic critical-node interval within
        // a small tolerance (the analytic model adds stall factors conservatively).
        let ratio = trace.steady_interval as f64 / analytic.interval_cycles as f64;
        assert!(
            (0.5..=1.5).contains(&ratio),
            "simulated {} vs analytic {}",
            trace.steady_interval,
            analytic.interval_cycles
        );
    }

    #[test]
    fn sequential_simulation_is_slower_than_dataflow() {
        let (ctx, schedule) = optimized(PolybenchKernel::TwoMm);
        let estimator = DataflowEstimator::new(FpgaDevice::zu3eg());
        let df = simulate_pipeline(&ctx, schedule, &estimator, 6, true);
        let seq = simulate_pipeline(&ctx, schedule, &estimator, 6, false);
        assert!(df.steady_interval < seq.steady_interval);
        assert!(df.makespan < seq.makespan);
        assert_eq!(df.completion_cycles.len(), 6);
        // Completion times are monotone.
        assert!(df.completion_cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_request_yields_empty_trace() {
        let (ctx, schedule) = optimized(PolybenchKernel::TwoMm);
        let estimator = DataflowEstimator::new(FpgaDevice::zu3eg());
        let trace = simulate_pipeline(&ctx, schedule, &estimator, 0, true);
        assert!(trace.completion_cycles.is_empty());
        assert_eq!(trace.makespan, 0);
    }
}
