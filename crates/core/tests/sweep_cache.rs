//! Integration tests for the sweep engine and the cross-compilation estimate
//! cache: the second point of a sweep must reuse shared estimates, and every
//! sweep result must be byte-identical to an isolated `Compiler` run of the
//! same design point — regardless of pool size.

use hida::ir::printer::print_op;
use hida::{
    CompilationResult, Compiler, HidaOptions, JobBudget, PolybenchKernel, SweepEngine, SweepPoint,
    Workload,
};

fn two_mm(size: i64) -> Workload {
    Workload::PolybenchSized(PolybenchKernel::TwoMm, size)
}

/// A variant pair of the same workload: identical flows except for the
/// maximum parallel factor.
fn variant_points() -> Vec<SweepPoint> {
    [8_i64, 8, 16]
        .iter()
        .enumerate()
        .map(|(index, &factor)| {
            SweepPoint::new(
                format!("pf{factor}-{index}"),
                two_mm(32),
                HidaOptions {
                    max_parallel_factor: factor,
                    ..HidaOptions::polybench()
                },
            )
        })
        .collect()
}

/// Byte-level equality of two compilation results: QoR estimates, emitted
/// C++ and printed IR.
fn assert_identical(a: &CompilationResult, b: &CompilationResult, label: &str) {
    assert_eq!(a.estimate, b.estimate, "{label}: dataflow estimate");
    assert_eq!(
        a.estimate_sequential, b.estimate_sequential,
        "{label}: sequential estimate"
    );
    assert_eq!(a.hls_cpp, b.hls_cpp, "{label}: emitted HLS C++");
    assert_eq!(
        print_op(&a.ctx, a.func),
        print_op(&b.ctx, b.func),
        "{label}: printed IR"
    );
}

#[test]
fn second_point_of_a_two_point_sweep_hits_the_shared_cache() {
    // Two identical design points, compiled strictly in order (pool of one)
    // so the hit accounting is deterministic.
    let points = vec![
        SweepPoint::new("first", two_mm(32), HidaOptions::polybench()),
        SweepPoint::new("second", two_mm(32), HidaOptions::polybench()),
    ];
    let outcome = SweepEngine::new()
        .with_budget(JobBudget::sequential())
        .run(&points);
    assert!(outcome.all_ok());

    let first = outcome.points[0].result.as_ref().unwrap();
    let second = outcome.points[1].result.as_ref().unwrap();
    let first_traffic = first.shared_estimator_cache.unwrap();
    let second_traffic = second.shared_estimator_cache.unwrap();
    // The first point populates the cache; the second is pure hits.
    assert_eq!(first_traffic.hits, 0, "{first_traffic:?}");
    assert!(first_traffic.misses > 0, "{first_traffic:?}");
    assert!(second_traffic.hits > 0, "{second_traffic:?}");
    assert_eq!(second_traffic.misses, 0, "{second_traffic:?}");
    let totals = outcome.shared_cache.unwrap();
    assert_eq!(totals.hits, second_traffic.hits);

    // Byte-identical QoR versus two isolated (share-nothing) compiler runs.
    for point in &outcome.points {
        let isolated = Compiler::new(HidaOptions::polybench())
            .compile(two_mm(32))
            .unwrap();
        assert!(isolated.shared_estimator_cache.is_none());
        assert_identical(point.result.as_ref().unwrap(), &isolated, &point.label);
    }
}

#[test]
fn pooled_sweep_matches_isolated_runs_point_by_point() {
    let points = variant_points();
    let outcome = SweepEngine::new()
        .with_budget(JobBudget {
            pool_jobs: 3,
            point_jobs: 1,
        })
        .run(&points);
    assert!(outcome.all_ok());
    assert_eq!(outcome.points.len(), points.len());
    for (point, spec) in outcome.points.iter().zip(&points) {
        assert_eq!(point.label, spec.label);
        let isolated = Compiler::new(spec.options.clone())
            .compile(spec.workload.clone())
            .unwrap();
        assert_identical(point.result.as_ref().unwrap(), &isolated, &point.label);
    }
    // The duplicated pf8 variant shares estimates whichever worker got there
    // first.
    let totals = outcome.shared_cache.unwrap();
    assert!(totals.hits > 0, "{totals:?}");
}

#[test]
fn pooled_and_sequential_sweeps_are_byte_identical() {
    let points = variant_points();
    let sequential = SweepEngine::new()
        .with_budget(JobBudget::sequential())
        .run(&points);
    let pooled = SweepEngine::new()
        .with_budget(JobBudget {
            pool_jobs: 3,
            point_jobs: 2,
        })
        .run(&points);
    for (a, b) in sequential.points.iter().zip(&pooled.points) {
        assert_identical(
            a.result.as_ref().unwrap(),
            b.result.as_ref().unwrap(),
            &a.label,
        );
    }
}

#[test]
fn sharing_can_be_disabled_for_a_share_nothing_baseline() {
    let points = vec![
        SweepPoint::new("first", two_mm(32), HidaOptions::polybench()),
        SweepPoint::new("second", two_mm(32), HidaOptions::polybench()),
    ];
    let outcome = SweepEngine::new()
        .with_shared_estimates(false)
        .with_budget(JobBudget::sequential())
        .run(&points);
    assert!(outcome.shared_cache.is_none());
    for point in &outcome.points {
        assert!(point
            .result
            .as_ref()
            .unwrap()
            .shared_estimator_cache
            .is_none());
    }
}

#[test]
fn verification_toggle_reaches_every_point_and_changes_nothing() {
    let points = vec![SweepPoint::new("p", two_mm(32), HidaOptions::polybench())];
    let verified = SweepEngine::new()
        .with_budget(JobBudget::sequential())
        .run(&points);
    let unverified = SweepEngine::new()
        .with_verification(false)
        .with_budget(JobBudget::sequential())
        .run(&points);
    // Skipping verification trades safety for time only — same results.
    assert_identical(
        verified.points[0].result.as_ref().unwrap(),
        unverified.points[0].result.as_ref().unwrap(),
        "verification toggle",
    );
    // The Compiler-level toggle backs the CLI's --no-verify.
    let compiler = Compiler::new(HidaOptions::polybench()).with_verification(false);
    assert!(!compiler.verification());
    let direct = compiler.compile(two_mm(32)).unwrap();
    assert_identical(
        verified.points[0].result.as_ref().unwrap(),
        &direct,
        "compiler toggle",
    );
}

#[test]
fn infeasible_points_fail_without_killing_the_sweep() {
    let points = vec![
        SweepPoint::new("good", two_mm(32), HidaOptions::polybench()),
        SweepPoint::new("bad", two_mm(32), HidaOptions::polybench())
            .with_pipeline("construct,,lower"),
    ];
    let outcome = SweepEngine::new()
        .with_budget(JobBudget::sequential())
        .run(&points);
    assert!(!outcome.all_ok());
    assert!(outcome.points[0].result.is_ok());
    assert!(outcome.points[1].result.is_err());
}

#[test]
fn job_budget_composition_never_oversubscribes() {
    assert_eq!(JobBudget::sequential().total(), 1);
    for total in 1..20 {
        for num_points in 1..30 {
            let budget = JobBudget::for_points(total, num_points);
            assert!(budget.total() <= total.max(1), "{budget:?} over {total}");
            assert!(budget.pool_jobs >= 1 && budget.point_jobs >= 1);
            assert!(budget.pool_jobs <= num_points.max(1));
        }
    }
    // Degenerate inputs clamp instead of panicking.
    assert_eq!(JobBudget::for_points(0, 0).total(), 1);
}
