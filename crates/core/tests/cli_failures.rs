//! CLI failure handling: `--sweep` and `--explore` must exit nonzero when any
//! design point fails to compile, and print a failure summary naming the
//! failed points — a CI matrix that swallows per-point errors would otherwise
//! report green on broken sweeps.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_hida-opt");

/// Writes `contents` to a fresh file under the target tmpdir and returns its path.
fn write_variants(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write variants file");
    path
}

/// One healthy point and one that parses but dies at run time (`parallelize`
/// without `lower` has no schedule to parallelize).
const MIXED_VARIANTS: &str = "\
construct,lower,tiling{factor=2},parallelize{max-factor=2,device=zu3eg}
parallelize{max-factor=2,device=zu3eg}
";

#[test]
fn sweep_exits_nonzero_and_summarizes_failed_points() {
    let path = write_variants("sweep_failures.txt", MIXED_VARIANTS);
    let output = Command::new(BIN)
        .args([
            "--workload",
            "two_mm",
            "--size",
            "32",
            "--no-timing",
            "--jobs",
            "1",
        ])
        .arg("--sweep")
        .arg(&path)
        .output()
        .expect("run hida-opt --sweep");
    assert!(
        !output.status.success(),
        "a sweep with a failing point must exit nonzero"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stdout.contains("FAILED: 1 of 2 sweep points (p02)"),
        "missing failure summary in:\n{stdout}"
    );
    assert!(
        stderr.contains("1 of 2 sweep points failed"),
        "missing error line in:\n{stderr}"
    );
    // The healthy point still reports its QoR.
    assert!(
        stdout.contains("qor: throughput"),
        "healthy point missing QoR:\n{stdout}"
    );
}

#[test]
fn explore_exits_nonzero_and_summarizes_failed_points() {
    let contents = format!("explore{{seed=3}}\n{MIXED_VARIANTS}");
    let path = write_variants("explore_failures.txt", &contents);
    let output = Command::new(BIN)
        .args([
            "--workload",
            "two_mm",
            "--size",
            "32",
            "--no-timing",
            "--jobs",
            "1",
        ])
        .arg("--explore")
        .arg(&path)
        .output()
        .expect("run hida-opt --explore");
    assert!(
        !output.status.success(),
        "an exploration with a failing point must exit nonzero"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stdout.contains("FAILED: 1 of"),
        "missing failure summary in:\n{stdout}"
    );
    assert!(
        stdout.contains("(p02)"),
        "summary must name the failed point:\n{stdout}"
    );
    assert!(
        stderr.contains("compiled points failed"),
        "missing error line in:\n{stderr}"
    );
}

#[test]
fn explore_is_deterministic_across_job_counts() {
    let contents = "\
explore{seed=11,extras=0}
construct,lower,tiling{factor=2},parallelize{max-factor=1,device=zu3eg}
construct,lower,tiling{factor=2},parallelize{max-factor=4,device=zu3eg}
construct,lower,tiling{factor=2},parallelize{max-factor=16,device=zu3eg}
construct,lower,tiling{factor=8},parallelize{max-factor=1,device=zu3eg}
construct,lower,tiling{factor=8},parallelize{max-factor=4,device=zu3eg}
construct,lower,tiling{factor=8},parallelize{max-factor=16,device=zu3eg}
";
    let path = write_variants("explore_determinism.txt", contents);
    let run = |jobs: &str| {
        let output = Command::new(BIN)
            .args([
                "--workload",
                "two_mm",
                "--size",
                "32",
                "--no-timing",
                "--jobs",
                jobs,
            ])
            .arg("--explore")
            .arg(&path)
            .output()
            .expect("run hida-opt --explore");
        assert!(
            output.status.success(),
            "exploration failed at --jobs {jobs}"
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    assert_eq!(
        run("1"),
        run("4"),
        "--no-timing explore output must be byte-identical across job counts"
    );
}
