//! CLI chaos harness: `--inject-faults` must fail exactly the planned points
//! with structured reasons, stay byte-identical across job counts, leave the
//! surviving points' reports untouched relative to a fault-free run, time out
//! deterministically under `--deadline-ms`, and recover transient faults
//! under `--retries`.

use hida::FaultPlan;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_hida-opt");

/// Four healthy pipeline variants — any failure below is injected.
const HEALTHY_VARIANTS: &str = "\
construct,lower,tiling{factor=2},parallelize{max-factor=2,device=zu3eg}
construct,lower,tiling{factor=2},parallelize{max-factor=4,device=zu3eg}
construct,lower,tiling{factor=4},parallelize{max-factor=2,device=zu3eg}
construct,lower,tiling{factor=4},parallelize{max-factor=4,device=zu3eg}
";

fn write_variants(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write variants file");
    path
}

/// Runs `hida-opt --sweep` over `path` with extra args, returning
/// (exit-success, stdout).
fn run_sweep(path: &PathBuf, jobs: &str, extra: &[&str]) -> (bool, String) {
    let output = Command::new(BIN)
        .args([
            "--workload",
            "two_mm",
            "--size",
            "32",
            "--no-timing",
            "--jobs",
            jobs,
        ])
        .arg("--sweep")
        .arg(path)
        .args(extra)
        .output()
        .expect("run hida-opt --sweep");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

/// Splits a sweep report into per-point blocks keyed by label (`p01`, ...).
fn point_blocks(stdout: &str) -> BTreeMap<String, String> {
    let mut blocks = BTreeMap::new();
    for chunk in stdout.split("\npoint ").skip(1) {
        let number = chunk.split(':').next().expect("point number");
        let body = chunk.split("\n\n").next().expect("point body");
        blocks.insert(format!("p{number}"), body.trim_end().to_string());
    }
    blocks
}

#[test]
fn injected_faults_fail_exactly_the_planned_points_at_any_job_count() {
    let path = write_variants("chaos_sweep.txt", HEALTHY_VARIANTS);
    let spec = "seed=7,pass-panic=1,store-read=1";

    // The expected failed set comes from the plan alone — the same
    // assignment the engine computes, independent of scheduling.
    let plan = FaultPlan::parse(spec).expect("valid fault spec");
    let labels: Vec<String> = (1..=4).map(|i| format!("p{i:02}")).collect();
    let expected: Vec<String> = plan.assign(&labels).keys().cloned().collect();
    assert_eq!(expected.len(), 2, "the plan arms two fatal faults");

    let (ok, chaos1) = run_sweep(&path, "1", &["--inject-faults", spec]);
    assert!(!ok, "a sweep with injected faults must exit nonzero");
    let (ok, chaos4) = run_sweep(&path, "4", &["--inject-faults", spec]);
    assert!(!ok);
    assert_eq!(
        chaos1, chaos4,
        "--no-timing chaos output must be byte-identical across job counts"
    );

    let summary = format!("FAILED: 2 of 4 sweep points ({})", expected.join(", "));
    assert!(
        chaos1.contains(&summary),
        "missing summary '{summary}' in:\n{chaos1}"
    );
    assert!(
        chaos1.contains("Panicked") && chaos1.contains("StoreDegraded"),
        "failures must carry structured reasons:\n{chaos1}"
    );

    // Surviving points report exactly what a fault-free run reports.
    let (ok, clean) = run_sweep(&path, "1", &[]);
    assert!(ok, "the fault-free sweep must pass:\n{clean}");
    let chaos_blocks = point_blocks(&chaos1);
    let clean_blocks = point_blocks(&clean);
    for label in &labels {
        if expected.contains(label) {
            continue;
        }
        assert_eq!(
            chaos_blocks.get(label),
            clean_blocks.get(label),
            "survivor {label} must be byte-identical to the fault-free run"
        );
    }
}

#[test]
fn stalled_point_times_out_under_a_deadline() {
    let path = write_variants("chaos_deadline.txt", HEALTHY_VARIANTS);
    let (ok, stdout) = run_sweep(
        &path,
        "2",
        &[
            "--inject-faults",
            "seed=5,stall=1,stall-ms=400",
            "--deadline-ms",
            "50",
        ],
    );
    assert!(!ok, "a timed-out point must fail the sweep");
    assert!(
        stdout.contains("TimedOut") && stdout.contains("FAILED: 1 of 4"),
        "missing structured timeout in:\n{stdout}"
    );
}

#[test]
fn transient_faults_recover_under_retries() {
    let path = write_variants("chaos_retries.txt", HEALTHY_VARIANTS);
    let (ok, stdout) = run_sweep(
        &path,
        "2",
        &[
            "--inject-faults",
            "seed=3,pass-panic=1,transient",
            "--retries",
            "1",
        ],
    );
    assert!(
        ok,
        "a transient fault must converge under --retries 1:\n{stdout}"
    );
    assert!(!stdout.contains("FAILED"), "no point may fail:\n{stdout}");
}

#[test]
fn single_run_isolates_an_injected_pass_panic() {
    let output = Command::new(BIN)
        .args([
            "--workload",
            "two_mm",
            "--size",
            "32",
            "--no-timing",
            "--jobs",
            "1",
            "--inject-faults",
            "seed=1,pass-panic=1",
        ])
        .output()
        .expect("run hida-opt");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("injected fault"),
        "error must name the injected fault:\n{stderr}"
    );
    // The structured `WorkerPanic` display mentions the panic; what must NOT
    // appear is the runtime's own report of an escaped panic.
    assert!(
        !stderr.contains("stack backtrace") && !stderr.contains("thread 'main' panicked"),
        "the injected panic must not escape as a raw panic report:\n{stderr}"
    );
}
