//! Property tests for fault-isolated sweeps: across random point counts,
//! plan seeds, fault mixes and job counts, the set of failed points is
//! exactly the plan's fatal assignment (pass panics and store read errors),
//! every report-level summary — [`SweepOutcome::all_ok`],
//! [`SweepOutcome::failed_labels`] and the CLI's `FAILED: n of m` line —
//! agrees with it, and each failure carries the structured reason matching
//! its injected fault kind.
//!
//! Because the expected failed set is computed from the plan alone (label
//! shuffle, no scheduling input) while the sweep runs at a sampled job
//! count, every passing case also re-proves schedule independence.

use hida::sweep::{JobBudget, SweepEngine, SweepPoint};
use hida::{FailureReason, FaultKind, FaultPlan, HidaOptions, PolybenchKernel, Workload};
use proptest::prelude::*;

/// Cheap, distinct design points labeled `p01..pNN` like the CLI's sweeps.
fn points(n: usize) -> Vec<SweepPoint> {
    (0..n)
        .map(|i| {
            SweepPoint::new(
                format!("p{:02}", i + 1),
                Workload::PolybenchSized(PolybenchKernel::TwoMm, 32),
                HidaOptions {
                    max_parallel_factor: 4 << (i % 3),
                    ..HidaOptions::polybench()
                },
            )
        })
        .collect()
}

/// The CLI's failure summary line, rebuilt from the same two quantities
/// `run_sweep` uses (`failed_labels()` and the point count).
fn cli_summary(failed: &[&str], total: usize) -> String {
    format!(
        "FAILED: {} of {} sweep points ({})",
        failed.len(),
        total,
        failed.join(", ")
    )
}

proptest! {
    /// `failed_labels`/`all_ok`/the CLI summary all equal the plan-derived
    /// expectation, at any sampled job count.
    #[test]
    fn failed_points_equal_the_plans_fatal_assignment(
        n in 1_usize..5,
        seed in 0_u64..64,
        panics in 0_usize..3,
        reads in 0_usize..3,
        jobs in 1_usize..4,
    ) {
        hida_ir_core::fault::silence_expected_panics();
        let plan = FaultPlan {
            seed,
            pass_panics: panics,
            store_reads: reads,
            ..FaultPlan::default()
        };
        let points = points(n);
        let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
        let assignment = plan.assign(&labels);
        // BTreeMap keys are sorted; the zero-padded labels sort identically
        // to the sweep's point order, so this matches failed_labels' order.
        let expected: Vec<&str> = assignment.keys().map(String::as_str).collect();

        let mut engine = SweepEngine::new().with_budget(JobBudget::for_points(jobs, n));
        if !plan.is_empty() {
            engine = engine.with_fault_plan(plan.clone());
        }
        let outcome = engine.run(&points);

        let failed = outcome.failed_labels();
        prop_assert_eq!(&failed, &expected);
        prop_assert_eq!(outcome.all_ok(), expected.is_empty());
        prop_assert_eq!(
            cli_summary(&failed, outcome.points.len()),
            cli_summary(&expected, n)
        );

        for point in &outcome.points {
            match assignment.get(&point.label) {
                Some(FaultKind::PassPanic) => {
                    prop_assert_eq!(point.failure_reason(), Some(FailureReason::Panicked));
                }
                Some(FaultKind::StoreRead) => {
                    prop_assert_eq!(point.failure_reason(), Some(FailureReason::StoreDegraded));
                }
                _ => prop_assert!(point.result.is_ok()),
            }
        }
    }

    /// An empty plan (or none at all) fails nothing: chaos plumbing is
    /// zero-impact when no fault is armed.
    #[test]
    fn empty_plans_fail_no_points(
        n in 1_usize..4,
        seed in 0_u64..64,
        jobs in 1_usize..4,
    ) {
        let plan = FaultPlan { seed, ..FaultPlan::default() };
        prop_assert!(plan.is_empty());
        let points = points(n);
        let outcome = SweepEngine::new()
            .with_budget(JobBudget::for_points(jobs, n))
            .with_fault_plan(plan)
            .run(&points);
        prop_assert!(outcome.all_ok());
        prop_assert!(outcome.failed_labels().is_empty());
        prop_assert!(outcome.points.iter().all(|p| p.failure.is_none() && p.attempts == 1));
    }
}
