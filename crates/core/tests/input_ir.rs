//! `--input <file.hir>` integration: the golden example files stay in sync
//! with the builders that generated them, a textual-IR compilation produces
//! the same QoR as the equivalent builder workload, and the `--input` /
//! `--emit-ir` error paths report positioned, actionable messages.

use std::path::PathBuf;
use std::process::Command;

use hida::{build_workload, PolybenchKernel, Workload};
use hida_ir_core::printer::print_op;
use hida_ir_core::Context;

const BIN: &str = env!("CARGO_BIN_EXE_hida-opt");

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name)
}

fn tmpfile(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write tmpfile");
    path
}

fn run_opt(args: &[&str]) -> std::process::Output {
    Command::new(BIN).args(args).output().expect("run hida-opt")
}

/// Stdout with the source-dependent `workload:`/`emitted IR:` report lines
/// removed — everything else must be identical across equivalent sources.
fn qor_portion(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.starts_with("workload:") && !l.starts_with("emitted IR:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn two_mm_golden_file_matches_the_builder() {
    let mut ctx = Context::new();
    let (module, _func) =
        build_workload(&mut ctx, Workload::Polybench(PolybenchKernel::TwoMm)).unwrap();
    let printed = print_op(&ctx, module);
    let golden = std::fs::read_to_string(example("two_mm.hir")).expect("read examples/two_mm.hir");
    assert_eq!(
        printed, golden,
        "examples/two_mm.hir is stale; regenerate with \
         `hida-opt --workload two_mm --no-timing --emit-ir examples/two_mm.hir`"
    );
}

#[test]
fn attention_golden_file_matches_the_builder() {
    let mut ctx = Context::new();
    let (module, _func) = hida_fuzz::build_attention(&mut ctx, 16);
    let printed = print_op(&ctx, module);
    let golden =
        std::fs::read_to_string(example("attention.hir")).expect("read examples/attention.hir");
    assert_eq!(
        printed, golden,
        "examples/attention.hir is stale; regenerate from hida_fuzz::build_attention(n=16)"
    );
}

#[test]
fn textual_input_matches_builder_qor_byte_for_byte() {
    let input = example("two_mm.hir");
    let from_builder = run_opt(&["--workload", "two_mm", "--no-timing"]);
    let from_text = run_opt(&["--input", input.to_str().unwrap(), "--no-timing"]);
    assert!(from_builder.status.success());
    assert!(
        from_text.status.success(),
        "--input failed: {}",
        String::from_utf8_lossy(&from_text.stderr)
    );
    assert_eq!(
        qor_portion(&from_builder.stdout),
        qor_portion(&from_text.stdout),
        "textual IR and builder QoR diverged"
    );
}

#[test]
fn emit_ir_round_trips_through_input() {
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("two_mm_reemit.hir");
    let input = example("two_mm.hir");
    let output = run_opt(&[
        "--input",
        input.to_str().unwrap(),
        "--no-timing",
        "--emit-ir",
        out.to_str().unwrap(),
    ]);
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let original = std::fs::read_to_string(&input).unwrap();
    let reemitted = std::fs::read_to_string(&out).unwrap();
    assert_eq!(
        original, reemitted,
        "--emit-ir re-emit is not byte-identical"
    );
}

#[test]
fn attention_compiles_with_a_stable_qor_snapshot() {
    let input = example("attention.hir");
    let output = run_opt(&["--input", input.to_str().unwrap(), "--no-timing"]);
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // QoR snapshot for the attention kernel on the default device; update
    // deliberately when the estimator or default pipeline changes.
    for expected in [
        "workload: attention (textual IR)",
        "# Schedule (3 nodes)",
        "buffer S                      depth 2   kind Bram      partition [4, 8] (32 banks)",
        "throughput: 259403.372 samples/s (dataflow) vs 168634.064 samples/s (sequential)",
        "resources:  DSP 336 / 2280, BRAM-18K 16 / 1440, LUT 63952 / 394000",
    ] {
        assert!(
            expected.is_empty() || stdout.contains(expected),
            "missing {expected:?} in:\n{stdout}"
        );
    }
}

#[test]
fn input_errors_are_positioned_and_actionable() {
    // Missing file.
    let output = run_opt(&["--input", "/nonexistent/kernel.hir", "--no-timing"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--input"),
        "missing flag name in:\n{stderr}"
    );

    // Syntax error: the message carries line and column before any compilation.
    let bad = tmpfile(
        "bad_syntax.hir",
        "\"builtin.module\"() {sym_name = \"m\"}\n{\n  \"func.func\"() {x = @}\n}\n",
    );
    let output = run_opt(&["--input", bad.to_str().unwrap(), "--no-timing"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("line 3") && stderr.contains("column"),
        "missing position in:\n{stderr}"
    );

    // A well-formed module with nothing to compile.
    let empty = tmpfile(
        "no_func.hir",
        "\"builtin.module\"() {sym_name = \"m\"}\n{\n}\n",
    );
    let output = run_opt(&["--input", empty.to_str().unwrap(), "--no-timing"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("func.func"), "unexpected error:\n{stderr}");
}

#[test]
fn input_flag_exclusivity_is_enforced() {
    let input = example("two_mm.hir");
    let output = run_opt(&[
        "--input",
        input.to_str().unwrap(),
        "--workload",
        "two_mm",
        "--no-timing",
    ]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("exclusive"));

    let output = run_opt(&[
        "--input",
        input.to_str().unwrap(),
        "--size",
        "32",
        "--no-timing",
    ]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--size"));

    let variants = tmpfile("variants.txt", "construct,lower\n");
    let output = run_opt(&[
        "--workload",
        "two_mm",
        "--no-timing",
        "--sweep",
        variants.to_str().unwrap(),
        "--emit-ir",
        "/tmp/out.hir",
    ]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--emit-ir"));
}
