//! Property tests for the explorer's Pareto frontier: dominance is a strict
//! partial order, incremental insert/prune matches a brute-force
//! non-dominated filter, a non-dominated insert is never dropped, and the
//! frontier of a point set is invariant under permutation of the insertion
//! order.

use hida::explore::{dominates, Frontier, FrontierPoint};
use proptest::prelude::*;

/// Brute-force reference: the non-dominated subset of `vectors`, as a sorted,
/// deduplicated-by-identity multiset of vectors (ties are kept, exact
/// duplicates all survive — mirroring the frontier's tie policy).
fn reference_frontier(vectors: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let mut keep: Vec<Vec<i64>> = vectors
        .iter()
        .filter(|v| !vectors.iter().any(|other| dominates(other, v)))
        .cloned()
        .collect();
    keep.sort();
    keep
}

/// Builds a frontier by inserting `vectors` in order; labels are unique per
/// index so ties stay distinguishable.
fn build_frontier(vectors: &[Vec<i64>]) -> Frontier {
    let mut frontier = Frontier::new();
    for (i, v) in vectors.iter().enumerate() {
        frontier.insert(FrontierPoint::from_vector(format!("p{i:03}"), v.clone()));
    }
    frontier
}

proptest! {
    /// Dominance is irreflexive, asymmetric and transitive on sampled
    /// vector triples — a strict partial order.
    #[test]
    fn dominance_is_a_strict_partial_order(
        a in prop::collection::vec(0_i64..6, 3..4),
        b in prop::collection::vec(0_i64..6, 3..4),
        c in prop::collection::vec(0_i64..6, 3..4),
    ) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// Incremental insert/prune computes exactly the brute-force
    /// non-dominated set (ties included).
    #[test]
    fn incremental_frontier_matches_brute_force(
        vectors in prop::collection::vec(prop::collection::vec(0_i64..8, 3..4), 1..24),
    ) {
        let frontier = build_frontier(&vectors);
        prop_assert_eq!(frontier.vectors(), reference_frontier(&vectors));
    }

    /// Inserting a point no current frontier member dominates always
    /// succeeds and the point is present afterwards — insert/prune never
    /// drops a non-dominated point.
    #[test]
    fn non_dominated_insert_is_never_dropped(
        vectors in prop::collection::vec(prop::collection::vec(0_i64..8, 3..4), 1..16),
        candidate in prop::collection::vec(0_i64..8, 3..4),
    ) {
        let mut frontier = build_frontier(&vectors);
        prop_assume!(!frontier.would_prune(&candidate));
        let inserted = frontier.insert(FrontierPoint::from_vector("probe", candidate.clone()));
        prop_assert!(inserted);
        prop_assert!(frontier.vectors().contains(&candidate));
        // And the insert kept the invariant: nothing on the frontier is
        // dominated by anything else on it.
        let vectors_after = frontier.vectors();
        for v in &vectors_after {
            prop_assert!(!vectors_after.iter().any(|other| dominates(other, v)));
        }
    }

    /// The frontier of a shuffled point set is permutation-invariant: a
    /// sampled permutation of the insertion order yields an identical
    /// (sorted) vector set.
    #[test]
    fn frontier_is_permutation_invariant(
        vectors in prop::collection::vec(prop::collection::vec(0_i64..8, 3..4), 1..20),
        swaps in prop::collection::vec((0_usize..20, 0_usize..20), 0..32),
    ) {
        let mut shuffled = vectors.clone();
        for (i, j) in swaps {
            let (i, j) = (i % shuffled.len(), j % shuffled.len());
            shuffled.swap(i, j);
        }
        let original = build_frontier(&vectors);
        let permuted = build_frontier(&shuffled);
        prop_assert_eq!(original.vectors(), permuted.vectors());
    }
}
