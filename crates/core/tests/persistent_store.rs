//! Integration tests for the persistent estimate store underneath the sweep
//! engine: two engines that share only a store *directory* — the in-process
//! simulation of two separate CLI/CI processes — must reuse each other's
//! estimates with byte-identical QoR, and a corrupted store must degrade to
//! misses without affecting results.

use hida::ir::printer::print_op;
use hida::{
    CompilationResult, EstimateStore, HidaOptions, JobBudget, PolybenchKernel, SharedEstimateCache,
    SweepEngine, SweepOutcome, SweepPoint, Workload,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn two_mm(size: i64) -> Workload {
    Workload::PolybenchSized(PolybenchKernel::TwoMm, size)
}

fn points() -> Vec<SweepPoint> {
    [8_i64, 16]
        .iter()
        .map(|&factor| {
            SweepPoint::new(
                format!("pf{factor}"),
                two_mm(32),
                HidaOptions {
                    max_parallel_factor: factor,
                    ..HidaOptions::polybench()
                },
            )
        })
        .collect()
}

fn temp_store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hida_persistent_sweep_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One sweep over `points()` with a *fresh* cache handle over `dir` — each
/// call stands in for a separate process sharing the store directory.
fn run_with_store(dir: &PathBuf) -> SweepOutcome {
    let store = EstimateStore::open(dir).expect("open store");
    let cache = Arc::new(SharedEstimateCache::with_store(store));
    SweepEngine::new()
        .with_budget(JobBudget::sequential())
        .with_cache(cache)
        .run(&points())
}

fn assert_identical(a: &CompilationResult, b: &CompilationResult, label: &str) {
    assert_eq!(a.estimate, b.estimate, "{label}: dataflow estimate");
    assert_eq!(
        a.estimate_sequential, b.estimate_sequential,
        "{label}: sequential estimate"
    );
    assert_eq!(a.hls_cpp, b.hls_cpp, "{label}: emitted HLS C++");
    assert_eq!(
        print_op(&a.ctx, a.func),
        print_op(&b.ctx, b.func),
        "{label}: printed IR"
    );
}

#[test]
fn second_engine_over_the_same_directory_reuses_estimates() {
    let dir = temp_store_dir("reuse");

    // "Process" one: cold store — every estimate is computed and written back.
    let cold = run_with_store(&dir);
    assert!(cold.all_ok());
    let cold_store = cold.persistent_cache.expect("store attached");
    assert_eq!(cold_store.hits, 0, "{cold_store:?}");
    assert!(cold_store.writes > 0, "{cold_store:?}");

    // "Process" two: fresh cache handle, same directory — served from disk.
    let warm = run_with_store(&dir);
    assert!(warm.all_ok());
    let warm_store = warm.persistent_cache.expect("store attached");
    assert!(warm_store.hits > 0, "{warm_store:?}");
    assert_eq!(warm_store.misses, 0, "{warm_store:?}");
    assert_eq!(warm_store.writes, 0, "{warm_store:?}");
    // Estimates flowing out of the store count as cache hits for the engine.
    assert_eq!(warm.shared_cache.unwrap().misses, 0);

    // The reuse must be invisible in the results: byte-identical QoR, C++ and
    // IR between the cold and warm runs.
    for (a, b) in cold.points.iter().zip(&warm.points) {
        assert_identical(
            a.result.as_ref().unwrap(),
            b.result.as_ref().unwrap(),
            &a.label,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_degrades_to_misses_with_identical_results() {
    let dir = temp_store_dir("corrupt");
    let cold = run_with_store(&dir);
    assert!(cold.all_ok());

    // Vandalize every entry file in the store.
    let probe = EstimateStore::open(&dir).expect("open store");
    assert!(probe.disk_entries() > 0);
    for shard in std::fs::read_dir(&dir).unwrap().flatten() {
        if !shard.path().is_dir() {
            continue;
        }
        for file in std::fs::read_dir(shard.path()).unwrap().flatten() {
            std::fs::write(file.path(), b"not an estimate entry").unwrap();
        }
    }

    // The next "process" sees only corrupt entries: all misses, everything
    // recomputed and re-published, and the QoR unchanged.
    let recovered = run_with_store(&dir);
    assert!(recovered.all_ok());
    let store_stats = recovered.persistent_cache.expect("store attached");
    assert_eq!(store_stats.hits, 0, "{store_stats:?}");
    assert!(store_stats.corrupt > 0, "{store_stats:?}");
    assert!(store_stats.writes > 0, "{store_stats:?}");
    for (a, b) in cold.points.iter().zip(&recovered.points) {
        assert_identical(
            a.result.as_ref().unwrap(),
            b.result.as_ref().unwrap(),
            &a.label,
        );
    }

    // And the re-published entries serve the run after that.
    let warm = run_with_store(&dir);
    let warm_store = warm.persistent_cache.expect("store attached");
    assert!(warm_store.hits > 0, "{warm_store:?}");
    assert_eq!(warm_store.corrupt, 0, "{warm_store:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
