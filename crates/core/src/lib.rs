//! # hida — an end-to-end reproduction of the HIDA hierarchical dataflow HLS compiler
//!
//! HIDA (ASPLOS 2024) converts algorithmic descriptions — PyTorch models or HLS C++
//! kernels — into optimized dataflow architectures for FPGAs. This crate ties the
//! workspace together into one user-facing pipeline:
//!
//! ```text
//! front-end (model zoo / PolyBench)      hida-frontend
//!   -> Functional dataflow (dispatch/task)    hida-opt::construct, ::fusion
//!   -> Structural dataflow (schedule/node/buffer)  hida-opt::lower
//!   -> structural optimization + IA/CA parallelization  hida-opt
//!   -> QoR estimation (throughput, resources, DSP efficiency)  hida-estimator
//!   -> HLS C++ emission  hida-emitter
//! ```
//!
//! # Quickstart
//!
//! ```
//! use hida::{Compiler, Workload};
//!
//! let result = Compiler::polybench_defaults()
//!     .compile(Workload::Polybench(hida::PolybenchKernel::TwoMm))
//!     .expect("compilation succeeds");
//! assert!(result.hls_cpp.contains("#pragma HLS dataflow"));
//! assert!(result.estimate.throughput() > 0.0);
//! ```
//!
//! Per-node optimization and estimation can run on worker threads with
//! [`Compiler::with_jobs`]; the merge order is deterministic, so any job count
//! produces byte-identical results (see `docs/ARCHITECTURE.md`):
//!
//! ```
//! use hida::{Compiler, Workload};
//!
//! let sequential = Compiler::polybench_defaults()
//!     .compile(Workload::Polybench(hida::PolybenchKernel::TwoMm))
//!     .unwrap();
//! let parallel = Compiler::polybench_defaults()
//!     .with_jobs(4)
//!     .compile(Workload::Polybench(hida::PolybenchKernel::TwoMm))
//!     .unwrap();
//! assert_eq!(sequential.estimate, parallel.estimate);
//! assert_eq!(sequential.hls_cpp, parallel.hls_cpp);
//! ```

pub mod explore;
pub mod sweep;

pub use hida_baselines as baselines;
pub use hida_dataflow_ir as dataflow_ir;
pub use hida_dialects as dialects;
pub use hida_emitter as emitter;
pub use hida_estimator as estimator;
pub use hida_frontend as frontend;
pub use hida_ir_core as ir;
pub use hida_opt as opt;
pub use hida_sim as sim;

pub use explore::{
    ExploreConfig, ExploreOutcome, Explorer, Frontier, FrontierPoint, GenerationStats, Objective,
};
pub use hida_estimator::device::FpgaDevice;
pub use hida_estimator::report::DesignEstimate;
pub use hida_estimator::shared_cache::{SharedCacheStats, SharedEstimateCache};
pub use hida_estimator::store::{EstimateStore, PersistentStoreStats};
pub use hida_frontend::nn::Model;
pub use hida_frontend::polybench::PolybenchKernel;
pub use hida_ir_core::analysis::{
    Analysis, AnalysisCacheStats, AnalysisManager, PreservedAnalyses,
};
pub use hida_ir_core::fault::{CancelToken, FaultKind, FaultPlan, PointFaults, WorkerFault};
pub use hida_ir_core::pass::{PassOption, PassStatistics, PipelineState};
pub use hida_ir_core::registry::{PassRegistry, PipelineError};
pub use hida_ir_core::PassInvocation;
pub use hida_opt::{registry, registry_listing, HidaOptions, ParallelMode, Pipeline};
pub use sweep::{
    classify_failure, AdaptiveBudget, FailureReason, JobBudget, PointAttempt, PointFailure,
    SweepEngine, SweepOutcome, SweepPoint, SweepPointOutcome,
};

use hida_dataflow_ir::structural::ScheduleOp;
use hida_estimator::dataflow::DataflowEstimator;
use hida_ir_core::{Context, IrError, IrResult, OpId};
use std::sync::Arc;
use std::time::Instant;

/// A workload accepted by the compiler: a neural network from the model zoo, a
/// PolyBench kernel, or a module parsed from textual IR.
///
/// `Clone` is cheap for every variant (`TextIr` holds its text behind an
/// `Arc`), so the sweep and explore engines clone freely per design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// A neural network from the PyTorch-style model zoo.
    Model(Model),
    /// A PolyBench kernel with its default problem size.
    Polybench(PolybenchKernel),
    /// A PolyBench kernel with an explicit square problem size.
    PolybenchSized(PolybenchKernel, i64),
    /// A module parsed from textual IR (`hida-opt --input file.hir`).
    TextIr {
        /// Display name (typically the input file stem).
        name: Arc<str>,
        /// Module text, re-parsed into each compilation's fresh context.
        text: Arc<str>,
    },
}

impl Workload {
    /// A textual-IR workload from a display name and module text.
    pub fn text_ir(name: impl Into<Arc<str>>, text: impl Into<Arc<str>>) -> Self {
        Workload::TextIr {
            name: name.into(),
            text: text.into(),
        }
    }

    /// Human-readable workload name.
    pub fn name(&self) -> String {
        match self {
            Workload::Model(m) => m.name().to_string(),
            Workload::Polybench(k) | Workload::PolybenchSized(k, _) => k.name().to_string(),
            Workload::TextIr { name, .. } => name.to_string(),
        }
    }

    /// The widest per-point worker parallelism this workload can usefully
    /// exploit: per-node pass work and estimation fan out over dataflow
    /// nodes, so a deep DNN pipeline scales to ~its layer count while a
    /// two-node PolyBench kernel saturates almost immediately. Used by
    /// [`sweep::AdaptiveBudget`] to cap per-point thread claims.
    ///
    /// External IR gets the PolyBench width: the node count is unknown until
    /// parse time, and hand-written kernels look like PolyBench, not DNNs.
    pub fn node_parallel_width(&self) -> usize {
        match self {
            Workload::Model(Model::ResNet18) => 20,
            Workload::Model(_) => 8,
            Workload::Polybench(_) | Workload::PolybenchSized(..) | Workload::TextIr { .. } => 2,
        }
    }
}

/// Everything produced by one compilation run.
#[derive(Debug)]
pub struct CompilationResult {
    /// The IR context holding the compiled design.
    pub ctx: Context,
    /// The compiled function.
    pub func: OpId,
    /// The optimized structural schedule.
    pub schedule: ScheduleOp,
    /// The QoR estimate of the dataflow design.
    pub estimate: DesignEstimate,
    /// The QoR estimate with dataflow disabled (sequential execution).
    pub estimate_sequential: DesignEstimate,
    /// Generated Vitis-HLS-style C++.
    pub hls_cpp: String,
    /// Compile time of the HIDA flow itself, in seconds.
    pub compile_seconds: f64,
    /// Per-pass statistics recorded by the optimizer's pass pipeline (timing, op
    /// deltas, configured options, analysis cache traffic), in execution order.
    pub pass_statistics: Vec<PassStatistics>,
    /// Aggregate analysis-cache counters over the whole pipeline: how often the
    /// optimizer reused a cached profile/graph instead of re-walking the IR.
    pub analysis_cache: AnalysisCacheStats,
    /// Analysis-cache counters of the QoR estimator (the dataflow and
    /// sequential estimates share per-node results).
    pub estimator_cache: AnalysisCacheStats,
    /// This compilation's traffic against the cross-compilation estimate
    /// cache, when one was attached with [`Compiler::with_shared_estimates`]
    /// (e.g. by the [`sweep`] engine). `None` for isolated compilations.
    pub shared_estimator_cache: Option<SharedCacheStats>,
}

/// A workload lowered through the pass pipeline but not yet estimated or
/// emitted — the output of [`Compiler::lower`].
#[derive(Debug)]
pub struct LoweredDesign {
    /// The IR context holding the lowered design.
    pub ctx: Context,
    /// The module op.
    pub module: OpId,
    /// The compiled function.
    pub func: OpId,
    /// The optimized structural schedule.
    pub schedule: ScheduleOp,
}

/// Builds `workload`'s IR into a fresh module inside `ctx`; returns the
/// module and the workload function.
///
/// # Errors
/// Fails for [`Workload::TextIr`] when the module text does not parse or
/// contains no `func.func`; builder-based workloads are infallible.
pub fn build_workload(ctx: &mut Context, workload: Workload) -> IrResult<(OpId, OpId)> {
    match workload {
        Workload::Model(model) => {
            let module = ctx.create_module(model.name());
            Ok((module, hida_frontend::nn::build_model(ctx, module, model)))
        }
        Workload::Polybench(kernel) => {
            let module = ctx.create_module(kernel.name());
            let func =
                hida_frontend::polybench::build_kernel(ctx, module, kernel, kernel.default_size());
            Ok((module, func))
        }
        Workload::PolybenchSized(kernel, n) => {
            let module = ctx.create_module(kernel.name());
            let func = hida_frontend::polybench::build_kernel(ctx, module, kernel, n);
            Ok((module, func))
        }
        Workload::TextIr { name, text } => {
            let module = hida_ir_core::parse_module_into(ctx, &text)
                .map_err(|e| IrError::InvalidEntity(format!("parsing textual IR '{name}': {e}")))?;
            if !ctx.op(module).is(hida_ir_core::op_names::MODULE) {
                return Err(IrError::InvalidEntity(format!(
                    "textual IR '{name}' must have a builtin.module root, found \"{}\"",
                    ctx.op(module).name
                )));
            }
            let func = ctx
                .body_ops(module)
                .into_iter()
                .find(|&op| ctx.op(op).is(hida_ir_core::op_names::FUNC))
                .ok_or_else(|| {
                    IrError::InvalidEntity(format!(
                        "textual IR '{name}' contains no func.func to compile"
                    ))
                })?;
            Ok((module, func))
        }
    }
}

/// The end-to-end HIDA compiler.
#[derive(Debug, Clone)]
pub struct Compiler {
    options: HidaOptions,
    /// Explicit textual pipeline overriding the options-derived flow, when set.
    pipeline: Option<String>,
    /// Worker threads for per-node pass work and QoR estimation (1 = fully
    /// sequential).
    jobs: usize,
    /// Cross-compilation estimate cache shared with other compilations of the
    /// same sweep, when attached.
    shared_estimates: Option<Arc<SharedEstimateCache>>,
    /// Whether the pipeline verifies the IR between passes and after the run
    /// (on by default; disable to trade safety for compile time).
    verification: bool,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new(HidaOptions::default())
    }
}

impl Compiler {
    /// Creates a compiler with explicit options and sequential (one-job)
    /// execution.
    pub fn new(options: HidaOptions) -> Self {
        Compiler {
            options,
            pipeline: None,
            jobs: 1,
            shared_estimates: None,
            verification: true,
        }
    }

    /// Compiler tuned for the PolyBench kernels on the ZU3EG device (Table 7 setup).
    pub fn polybench_defaults() -> Self {
        Compiler::new(HidaOptions::polybench())
    }

    /// Compiler tuned for DNN models on one VU9P SLR (Table 8 setup).
    pub fn dnn_defaults() -> Self {
        Compiler::new(HidaOptions::dnn())
    }

    /// Returns the configured options.
    pub fn options(&self) -> &HidaOptions {
        &self.options
    }

    /// Replaces the options (builder style).
    pub fn with_options(mut self, options: HidaOptions) -> Self {
        self.options = options;
        self
    }

    /// Uses an explicit textual pass pipeline instead of the flow derived from
    /// the options (builder style). The text is parsed through the HIDA pass
    /// registry at compile time; the options still drive workload construction
    /// and QoR estimation (the target device).
    pub fn with_pipeline(mut self, text: impl Into<String>) -> Self {
        self.pipeline = Some(text.into());
        self
    }

    /// The explicit pipeline text, when one was set with
    /// [`Compiler::with_pipeline`].
    pub fn pipeline_text(&self) -> Option<&str> {
        self.pipeline.as_deref()
    }

    /// Sets the worker-thread count for per-node pass work (tiling,
    /// parallelization, profiling) and per-node QoR estimation. `1` — the
    /// default — is the bitwise-reproducibility escape hatch; any other value
    /// produces byte-identical results faster on multi-node designs.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attaches a cross-compilation estimate cache (builder style): per-node
    /// QoR estimates are shared with every other compilation holding a clone
    /// of the same `Arc`, keyed by content fingerprint and device, so a
    /// design-space sweep re-estimates only the nodes that actually changed
    /// between design points. Results are byte-identical with or without the
    /// cache; [`CompilationResult::shared_estimator_cache`] reports the
    /// traffic.
    pub fn with_shared_estimates(mut self, cache: Arc<SharedEstimateCache>) -> Self {
        self.shared_estimates = Some(cache);
        self
    }

    /// The attached cross-compilation estimate cache, if any.
    pub fn shared_estimates(&self) -> Option<&Arc<SharedEstimateCache>> {
        self.shared_estimates.as_ref()
    }

    /// Enables or disables IR verification (builder style): inter-pass
    /// verification inside the pipeline and the final whole-module check.
    /// On by default; the CLI's `--no-verify` maps to `false`.
    pub fn with_verification(mut self, enabled: bool) -> Self {
        self.verification = enabled;
        self
    }

    /// Whether IR verification runs (see [`Compiler::with_verification`]).
    pub fn verification(&self) -> bool {
        self.verification
    }

    /// Compiles a workload end to end.
    ///
    /// # Errors
    /// Propagates front-end or optimization failures.
    pub fn compile(&self, workload: Workload) -> IrResult<CompilationResult> {
        let mut ctx = Context::new();
        let (module, func) = build_workload(&mut ctx, workload)?;
        self.compile_func(ctx, module, func)
    }

    /// Runs the front end and the pass pipeline only — no QoR estimation, no
    /// emission. This is the cheap "probe" half of a compilation the
    /// design-space explorer scores candidates with: the returned design
    /// holds the optimized structural schedule, ready for
    /// [`hida_estimator::surrogate::design_bound`].
    ///
    /// # Errors
    /// Propagates front-end or optimization failures.
    pub fn lower(&self, workload: Workload) -> IrResult<LoweredDesign> {
        let mut ctx = Context::new();
        let (module, func) = build_workload(&mut ctx, workload)?;
        let mut pipeline = match &self.pipeline {
            Some(text) => Pipeline::parse(&registry(), text)
                .map_err(|e| IrError::pass_failed("hida-pipeline", e.to_string()))?,
            None => Pipeline::from_options(&self.options),
        }
        .with_jobs(self.jobs);
        if !self.verification {
            pipeline = pipeline.with_verification(false);
        }
        let schedule = pipeline.run(&mut ctx, func)?;
        Ok(LoweredDesign {
            ctx,
            module,
            func,
            schedule,
        })
    }

    /// Compiles an already-constructed function (advanced use: custom front-ends).
    ///
    /// # Errors
    /// Propagates optimization failures and IR verification errors.
    pub fn compile_func(
        &self,
        mut ctx: Context,
        module: OpId,
        func: OpId,
    ) -> IrResult<CompilationResult> {
        let start = Instant::now();
        // Chaos-harness site: an armed stall sleeps here, at the very start of
        // the point's compilation, where a per-point deadline will catch it.
        hida_ir_core::fault::injected_stall("compile:start");
        let mut pipeline = match &self.pipeline {
            Some(text) => Pipeline::parse(&registry(), text)
                .map_err(|e| IrError::pass_failed("hida-pipeline", e.to_string()))?,
            None => Pipeline::from_options(&self.options),
        }
        .with_jobs(self.jobs);
        if !self.verification {
            pipeline = pipeline.with_verification(false);
        }
        let schedule = pipeline.run(&mut ctx, func)?;
        let pass_statistics = pipeline.statistics().to_vec();
        let analysis_cache = PassStatistics::aggregate_cache(&pass_statistics);
        if self.verification {
            hida_ir_core::verifier::verify(&ctx, module)
                .map_err(|e| IrError::pass_failed("hida-pipeline", e.to_string()))?;
        }
        // Chaos-harness site: an armed store-read fault surfaces as the
        // `StoreDegraded` error a real unrecoverable EIO on the estimate
        // store's read path would produce, and lands in the same counter.
        if let Err(e) = hida_ir_core::fault::injected_store_read("estimator/store-read") {
            if let Some(store) = self.shared_estimates.as_ref().and_then(|c| c.store()) {
                store.note_injected_read_error();
            }
            return Err(e);
        }
        let mut estimator =
            DataflowEstimator::new(self.options.device.clone()).with_jobs(self.jobs);
        if let Some(cache) = &self.shared_estimates {
            estimator = estimator.with_shared_cache(cache.clone());
        }
        let estimate = estimator.estimate_schedule(&ctx, schedule, true);
        let estimate_sequential = estimator.estimate_schedule(&ctx, schedule, false);
        // Chaos-harness site: an armed short write drops one store publish —
        // a counted, non-fatal degradation, exactly like a real ENOSPC.
        if hida_ir_core::fault::injected_short_write() {
            if let Some(store) = self.shared_estimates.as_ref().and_then(|c| c.store()) {
                store.note_injected_write_error();
            }
        }
        let estimator_cache = estimator.cache_stats();
        let shared_estimator_cache = self
            .shared_estimates
            .as_ref()
            .map(|_| estimator.shared_cache_stats());
        let hls_cpp = hida_emitter::emit_schedule(&ctx, schedule);
        let compile_seconds = start.elapsed().as_secs_f64();
        Ok(CompilationResult {
            ctx,
            func,
            schedule,
            estimate,
            estimate_sequential,
            hls_cpp,
            compile_seconds,
            pass_statistics,
            analysis_cache,
            estimator_cache,
            shared_estimator_cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_polybench_compilation_works_end_to_end() {
        let result = Compiler::polybench_defaults()
            .compile(Workload::PolybenchSized(PolybenchKernel::TwoMm, 32))
            .unwrap();
        assert!(result.estimate.throughput() > 0.0);
        assert!(result.estimate.throughput() >= result.estimate_sequential.throughput());
        assert!(result.hls_cpp.contains("#pragma HLS dataflow"));
        assert!(result.compile_seconds < 60.0);
        assert_eq!(result.schedule.nodes(&result.ctx).len(), 2);
    }

    #[test]
    fn dnn_compilation_produces_a_deep_pipeline() {
        let result = Compiler::dnn_defaults()
            .compile(Workload::Model(Model::LeNet))
            .unwrap();
        assert!(result.schedule.nodes(&result.ctx).len() >= 3);
        assert!(result.estimate.macs_per_sample > 100_000);
        assert!(result.estimate.dsp_efficiency() > 0.0);
    }

    #[test]
    fn workload_names_are_stable() {
        assert_eq!(Workload::Model(Model::ResNet18).name(), "resnet-18");
        assert_eq!(Workload::Polybench(PolybenchKernel::Atax).name(), "atax");
        assert_eq!(
            Workload::PolybenchSized(PolybenchKernel::Mvt, 64).name(),
            "mvt"
        );
    }

    #[test]
    fn compilation_result_exposes_per_pass_statistics() {
        let result = Compiler::polybench_defaults()
            .compile(Workload::PolybenchSized(PolybenchKernel::TwoMm, 32))
            .unwrap();
        let expected = Pipeline::from_options(&HidaOptions::polybench()).pass_names();
        let recorded: Vec<String> = result
            .pass_statistics
            .iter()
            .map(|s| s.pass.clone())
            .collect();
        assert!(!recorded.is_empty());
        assert_eq!(recorded, expected);
        // Statistics are genuinely per-pass: every record carries op counts, and the
        // construction pass visibly grows the IR.
        assert!(result.pass_statistics[0].op_delta() > 0);
        for stat in &result.pass_statistics {
            assert!(stat.live_ops_after > 0);
        }
    }

    #[test]
    fn explicit_pipeline_overrides_the_options_flow() {
        let result = Compiler::polybench_defaults()
            .with_pipeline("construct,lower,parallelize{max-factor=16,device=zu3eg}")
            .compile(Workload::PolybenchSized(PolybenchKernel::TwoMm, 32))
            .unwrap();
        let recorded: Vec<String> = result
            .pass_statistics
            .iter()
            .map(|s| s.pass.clone())
            .collect();
        assert_eq!(
            recorded,
            vec![
                "hida-construct-dataflow",
                "hida-lower-structural",
                "hida-parallelize",
            ]
        );
        // A malformed pipeline surfaces as an error, not a panic.
        let err = Compiler::polybench_defaults()
            .with_pipeline("construct,,lower")
            .compile(Workload::PolybenchSized(PolybenchKernel::TwoMm, 32));
        assert!(err.is_err());
    }

    #[test]
    fn compilation_reports_analysis_cache_reuse() {
        let result = Compiler::polybench_defaults()
            .compile(Workload::PolybenchSized(PolybenchKernel::TwoMm, 32))
            .unwrap();
        // The pipeline reuses profiles across passes: tiling consumes the node
        // profiles warmed during lowering, parallelization re-queries them for
        // connection analysis, node sorting and partition assignment.
        assert!(
            result.analysis_cache.hits >= 2,
            "expected cross-pass cache hits, got {:?}",
            result.analysis_cache
        );
        assert!(result.analysis_cache.misses >= 1);
        // The polybench preset may omit tiling; when present it must reuse the
        // node profiles warmed during lowering.
        if let Some(tiling) = result
            .pass_statistics
            .iter()
            .find(|s| s.pass == "hida-tiling")
        {
            assert!(tiling.cache.hits >= 1, "{:?}", tiling.cache);
        }
        let parallelize = result
            .pass_statistics
            .iter()
            .find(|s| s.pass == "hida-parallelize")
            .unwrap();
        assert!(parallelize.cache.hits >= 1, "{:?}", parallelize.cache);
        // The sequential estimate reused the dataflow estimate's node results.
        assert!(
            result.estimator_cache.hits >= 1,
            "{:?}",
            result.estimator_cache
        );
        assert!(result.pass_statistics.iter().all(|s| !s.failed));
    }

    #[test]
    fn options_builder_round_trips() {
        let compiler = Compiler::default().with_options(HidaOptions {
            max_parallel_factor: 128,
            ..HidaOptions::dnn()
        });
        assert_eq!(compiler.options().max_parallel_factor, 128);
    }
}
