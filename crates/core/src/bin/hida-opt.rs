//! `hida-opt` — run a textual HIDA-OPT pass pipeline over a built-in workload.
//!
//! The CLI counterpart of `Pipeline::parse`: ablations are command-line strings
//! instead of recompiled bench binaries.
//!
//! ```text
//! hida-opt --list-passes
//! hida-opt --list-workloads
//! hida-opt --workload two_mm \
//!     --pipeline "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
//! hida-opt --workload lenet --preset dnn
//! hida-opt --workload resnet-18 --sweep variants.txt --jobs 8
//! ```
//!
//! Prints the normalized pipeline, per-pass `PassStatistics`, the resulting
//! schedule (nodes, unroll factors, buffers) and the estimated QoR. With
//! `--sweep <file>` (one pipeline string per line), every line becomes an
//! independent design point of the workload: the points fan out over the
//! sweep engine's pool and share per-node QoR estimates through the
//! content-addressed cross-compilation cache, with `--jobs` as the total
//! worker-thread budget.

use hida::sweep::{json_escape, JobBudget, SweepEngine, SweepOutcome, SweepPoint};
use hida::{
    EstimateStore, ExploreConfig, ExploreOutcome, Explorer, PersistentStoreStats, SharedCacheStats,
    SharedEstimateCache, Workload,
};
use hida_dialects::analysis::ComputeProfile;
use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::device::FpgaDevice;
use hida_frontend::nn::Model;
use hida_frontend::polybench::PolybenchKernel;
use hida_ir_core::fault::{self, FaultPlan};
use hida_ir_core::pass::PassStatistics;
use hida_ir_core::{AnalysisCacheStats, Context, OpId};
use hida_opt::registry::{registry, registry_listing};
use hida_opt::{HidaOptions, Pipeline};
use std::process::ExitCode;

const USAGE: &str = "\
usage: hida-opt [OPTIONS]

  --workload <name>     workload to compile (see --list-workloads); accepts
                        paper names (2mm, resnet-18) and identifiers (two_mm)
  --input <file.hir>    compile a module from textual IR instead of a built-in
                        workload (exclusive with --workload; grammar in
                        docs/IR_SYNTAX.md). The file's first func.func is the
                        workload function; works with --pipeline, --sweep and
                        --explore alike
  --emit-ir <file>      write the workload module as textual IR before the
                        pipeline runs (single compilations only); the output
                        re-parses with --input to the same design
  --pipeline <text>     textual pass pipeline, e.g.
                        \"construct,fusion,lower,tiling{factor=4},parallelize\"
  --preset <name>       pipeline preset when --pipeline is omitted:
                        default | polybench | dnn
  --sweep <file>        run every non-empty, non-# line of <file> as an
                        independent pipeline variant of the workload: the
                        design points compile concurrently on the sweep pool
                        and share per-node QoR estimates through the
                        content-addressed cross-compilation cache
  --explore <file>      guided design-space exploration over the same sweep
                        grammar: pipeline lines span a knob lattice, and a
                        Pareto-frontier explorer compiles only candidates
                        whose surrogate QoR bound is not already dominated.
                        An optional first line configures the search:
                        explore{budget=N,seed=N,objectives=throughput+dsp+bram,
                        extras=N,max-generations=N}. Exploration order is
                        deterministic for a fixed seed at any --jobs
  --size <n>            PolyBench problem size (default: the kernel's own)
  --jobs <n>            worker threads for per-node pass work and QoR
                        estimation; under --sweep, the total budget split
                        between concurrent points and per-point workers
                        (default: available parallelism; 1 = fully
                        sequential, bitwise-reproducible execution)
  --device <name>       device for QoR estimation: pynq-z2 | zu3eg | vu9p-slr
                        (default: the pipeline's parallelize device, else
                        vu9p-slr)
  --cache-dir <path>    persist per-node QoR estimates in a content-addressed
                        store under <path> (created if missing): this run
                        reuses estimates written by earlier processes sharing
                        the directory, and writes its own back; corrupt or
                        stale entries read as misses, never as errors
  --cache-limit-mb <n>  size budget for --cache-dir in megabytes; writes past
                        the budget evict least-recently-used entries
  --deadline-ms <n>     per-point wall-clock deadline in milliseconds: a point
                        that exceeds it is cancelled at the next checkpoint
                        and reported as timed-out; under --sweep the run
                        continues and the reclaimed workers widen later points
  --retries <n>         retry failed sweep/explore points up to <n> times with
                        degraded settings (1 worker, verification forced on,
                        shared cache bypassed); a point that never converges
                        reports its full attempt history
  --run-budget-ms <n>   whole-run wall-clock budget under --sweep: when it
                        expires, in-flight points are cancelled at their next
                        checkpoint and remaining retries are skipped
  --inject-faults <s>   deterministic chaos testing: arm faults at named sites
                        from a seeded plan, e.g.
                        \"seed=7,pass-panic=1,store-read=1,stall=1,stall-ms=200\"
                        (add 'transient' to fire faults only on the first
                        attempt, so --retries can recover the point); which
                        points fault depends only on the seed and the point
                        labels, never on --jobs
  --no-verify           skip inter-pass IR verification
  --no-timing           omit timing and machine/state-dependent counters
                        (pass micros, jobs, cache traffic, wall-clock) so the
                        report is byte-stable across runs and job counts —
                        what CI diffs for determinism
  --stats-json          emit per-pass statistics (timing, op deltas, analysis
                        + estimator cache hits/misses; under --sweep, the
                        per-point QoR and aggregated cross-compilation cache
                        counters) as one JSON object on stdout; the
                        human-readable report moves to stderr
  --list-passes         print the pass registry and exit
  --list-workloads      print the known workloads and exit
  --help                print this help and exit";

/// A workload resolvable from the command line.
enum CliWorkload {
    Polybench(PolybenchKernel),
    Model(Model),
}

/// Lowercased name with separators removed, so `two_mm`, `TwoMm` and `2mm`
/// collapse onto comparable keys.
fn normalize(name: &str) -> String {
    name.to_lowercase()
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .collect()
}

/// Additional spellings accepted for kernels whose paper name starts with a digit.
fn kernel_aliases(kernel: PolybenchKernel) -> &'static [&'static str] {
    match kernel {
        PolybenchKernel::TwoMm => &["twomm"],
        PolybenchKernel::ThreeMm => &["threemm"],
        _ => &[],
    }
}

fn resolve_workload(name: &str) -> Option<CliWorkload> {
    let key = normalize(name);
    for kernel in PolybenchKernel::all() {
        if normalize(kernel.name()) == key || kernel_aliases(kernel).contains(&key.as_str()) {
            return Some(CliWorkload::Polybench(kernel));
        }
    }
    Model::all()
        .into_iter()
        .find(|m| normalize(m.name()) == key)
        .map(CliWorkload::Model)
}

fn workload_listing() -> String {
    let kernels: Vec<&str> = PolybenchKernel::all().iter().map(|k| k.name()).collect();
    let models: Vec<&str> = Model::all().iter().map(|m| m.name()).collect();
    format!(
        "PolyBench kernels: {}\nDNN models:        {}",
        kernels.join(", "),
        models.join(", ")
    )
}

/// What the CLI was asked to compile: a built-in workload or a `.hir` file.
enum CliSource {
    Builtin(CliWorkload),
    TextIr { name: String, text: String },
}

/// Resolves `--workload`/`--input` (exclusive) into a compile source.
///
/// `--input` files are parsed here so syntax errors surface with line/column
/// before any compilation machinery spins up.
fn resolve_source(args: &Args) -> Result<CliSource, String> {
    match (&args.input, &args.workload) {
        (Some(_), Some(_)) => Err("--input and --workload are exclusive".to_string()),
        (Some(path), None) => {
            if args.size.is_some() {
                return Err("--size applies to built-in workloads, not --input".to_string());
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("--input: cannot read '{path}': {e}"))?;
            hida_ir_core::parse_module(&text).map_err(|e| format!("--input '{path}': {e}"))?;
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("input")
                .to_string();
            Ok(CliSource::TextIr { name, text })
        }
        (None, Some(workload_name)) => resolve_workload(workload_name)
            .map(CliSource::Builtin)
            .ok_or_else(|| format!("unknown workload '{workload_name}'\n{}", workload_listing())),
        (None, None) => Err("missing --workload or --input (try --list-workloads)".to_string()),
    }
}

/// The name reported in JSON output: the raw `--workload` spelling (what the
/// user typed, kept byte-stable) or the `--input` file stem.
fn source_name(source: &CliSource, args: &Args) -> String {
    match source {
        CliSource::TextIr { name, .. } => name.clone(),
        CliSource::Builtin(_) => args
            .workload
            .clone()
            .expect("builtin source has --workload"),
    }
}

/// Converts a resolved source into the compiler's `Workload` plus the
/// human-readable report line describing it.
fn source_workload(source: CliSource, args: &Args) -> (Workload, String) {
    match source {
        CliSource::Builtin(CliWorkload::Polybench(kernel)) => {
            let size = args.size.unwrap_or_else(|| kernel.default_size());
            (
                Workload::PolybenchSized(kernel, size),
                format!("workload: {} (PolyBench, size {size})", kernel.name()),
            )
        }
        CliSource::Builtin(CliWorkload::Model(model)) => (
            Workload::Model(model),
            format!("workload: {} (DNN model)", model.name()),
        ),
        CliSource::TextIr { name, text } => {
            let line = format!("workload: {name} (textual IR)");
            (Workload::text_ir(name, text), line)
        }
    }
}

#[derive(Default)]
struct Args {
    workload: Option<String>,
    input: Option<String>,
    emit_ir: Option<String>,
    pipeline: Option<String>,
    preset: Option<String>,
    sweep: Option<String>,
    explore: Option<String>,
    size: Option<i64>,
    jobs: Option<usize>,
    device: Option<String>,
    cache_dir: Option<String>,
    cache_limit_mb: Option<u64>,
    deadline_ms: Option<u64>,
    retries: Option<usize>,
    run_budget_ms: Option<u64>,
    inject_faults: Option<String>,
    no_verify: bool,
    no_timing: bool,
    stats_json: bool,
    list_passes: bool,
    list_workloads: bool,
    help: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--workload" => args.workload = Some(value_of("--workload")?),
            "--input" => args.input = Some(value_of("--input")?),
            "--emit-ir" => args.emit_ir = Some(value_of("--emit-ir")?),
            "--pipeline" => args.pipeline = Some(value_of("--pipeline")?),
            "--preset" => args.preset = Some(value_of("--preset")?),
            "--sweep" => args.sweep = Some(value_of("--sweep")?),
            "--explore" => args.explore = Some(value_of("--explore")?),
            "--size" => {
                let raw = value_of("--size")?;
                let size: i64 = raw
                    .parse()
                    .map_err(|_| format!("--size: '{raw}' is not an integer"))?;
                if size < 4 {
                    return Err(format!("--size: {size} must be >= 4"));
                }
                args.size = Some(size);
            }
            "--jobs" => {
                let raw = value_of("--jobs")?;
                let jobs: usize = raw
                    .parse()
                    .map_err(|_| format!("--jobs: '{raw}' is not an integer"))?;
                if jobs < 1 {
                    return Err("--jobs: must be >= 1".to_string());
                }
                args.jobs = Some(jobs);
            }
            "--device" => args.device = Some(value_of("--device")?),
            "--cache-dir" => args.cache_dir = Some(value_of("--cache-dir")?),
            "--cache-limit-mb" => {
                let raw = value_of("--cache-limit-mb")?;
                let mb: u64 = raw
                    .parse()
                    .map_err(|_| format!("--cache-limit-mb: '{raw}' is not an integer"))?;
                if mb < 1 {
                    return Err("--cache-limit-mb: must be >= 1".to_string());
                }
                args.cache_limit_mb = Some(mb);
            }
            "--deadline-ms" => {
                let raw = value_of("--deadline-ms")?;
                let ms: u64 = raw
                    .parse()
                    .map_err(|_| format!("--deadline-ms: '{raw}' is not an integer"))?;
                if ms < 1 {
                    return Err("--deadline-ms: must be >= 1".to_string());
                }
                args.deadline_ms = Some(ms);
            }
            "--retries" => {
                let raw = value_of("--retries")?;
                let retries: usize = raw
                    .parse()
                    .map_err(|_| format!("--retries: '{raw}' is not an integer"))?;
                args.retries = Some(retries);
            }
            "--run-budget-ms" => {
                let raw = value_of("--run-budget-ms")?;
                let ms: u64 = raw
                    .parse()
                    .map_err(|_| format!("--run-budget-ms: '{raw}' is not an integer"))?;
                if ms < 1 {
                    return Err("--run-budget-ms: must be >= 1".to_string());
                }
                args.run_budget_ms = Some(ms);
            }
            "--inject-faults" => args.inject_faults = Some(value_of("--inject-faults")?),
            "--no-verify" => args.no_verify = true,
            "--no-timing" => args.no_timing = true,
            "--stats-json" => args.stats_json = true,
            "--list-passes" => args.list_passes = true,
            "--list-workloads" => args.list_workloads = true,
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn preset_text(preset: &str) -> Result<String, String> {
    let options = match preset {
        "default" => HidaOptions::default(),
        "polybench" => HidaOptions::polybench(),
        "dnn" => HidaOptions::dnn(),
        other => {
            return Err(format!(
                "unknown preset '{other}' (default, polybench, dnn)"
            ))
        }
    };
    Ok(options.pipeline_text())
}

fn cache_json(cache: &AnalysisCacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"invalidations\":{},\"preserved\":{}}}",
        cache.hits, cache.misses, cache.invalidations, cache.preserved
    )
}

fn parallel_json(parallel: Option<&hida_ir_core::ParallelStats>) -> String {
    match parallel {
        Some(p) => format!(
            "{{\"workers\":{},\"items\":{},\"steals\":{},\"imbalance\":{}}}",
            p.workers,
            p.items,
            p.steals,
            p.imbalance()
        ),
        None => "null".to_string(),
    }
}

fn shared_cache_json(shared: &SharedCacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"entries\":{},\"hit_rate\":{:.3}}}",
        shared.hits,
        shared.misses,
        shared.entries,
        shared.hit_rate()
    )
}

fn persistent_json(persistent: Option<&PersistentStoreStats>) -> String {
    match persistent {
        Some(p) => format!(
            "{{\"hits\":{},\"misses\":{},\"writes\":{},\"evictions\":{},\"corrupt\":{},\
             \"write_errors\":{},\"read_errors\":{}}}",
            p.hits, p.misses, p.writes, p.evictions, p.corrupt, p.write_errors, p.read_errors
        ),
        None => "null".to_string(),
    }
}

/// Parses `--inject-faults` into a seeded plan; empty plans (no armed faults)
/// collapse to `None` so the zero-cost fast path stays active.
fn parse_fault_plan(args: &Args) -> Result<Option<FaultPlan>, String> {
    match &args.inject_faults {
        None => Ok(None),
        Some(spec) => {
            let plan = FaultPlan::parse(spec).map_err(|e| format!("--inject-faults: {e}"))?;
            Ok(if plan.is_empty() { None } else { Some(plan) })
        }
    }
}

/// Builds the shared estimate cache backed by `--cache-dir`, when set.
fn build_cache(args: &Args) -> Result<Option<std::sync::Arc<SharedEstimateCache>>, String> {
    let Some(dir) = &args.cache_dir else {
        if args.cache_limit_mb.is_some() {
            return Err("--cache-limit-mb requires --cache-dir".to_string());
        }
        return Ok(None);
    };
    let mut store = EstimateStore::open(dir)
        .map_err(|e| format!("--cache-dir: cannot open store at '{dir}': {e}"))?;
    if let Some(mb) = args.cache_limit_mb {
        store = store.with_limit_bytes(mb * 1024 * 1024);
    }
    Ok(Some(std::sync::Arc::new(SharedEstimateCache::with_store(
        store,
    ))))
}

/// Renders one pass's statistics without timing or cache/worker counters:
/// only fields that are byte-stable across runs and job counts survive, so
/// `--no-timing` output can be diffed directly.
fn stable_stat(stat: &PassStatistics) -> String {
    let mut out = format!(
        "{}: ops {} -> {} ({:+})",
        stat.pass,
        stat.live_ops_before,
        stat.live_ops_after,
        stat.op_delta()
    );
    if !stat.options.is_empty() {
        let rendered: Vec<String> = stat.options.iter().map(|o| o.to_string()).collect();
        out.push_str(&format!(" [{}]", rendered.join(", ")));
    }
    if stat.failed {
        out.push_str(" FAILED");
    }
    out
}

/// Renders the per-pass statistics (and their aggregate analysis-cache
/// counters, plus the QoR estimator's cache when estimation ran) as one
/// machine-readable JSON object for the CI ablation matrix.
fn stats_json(
    workload: &str,
    pipeline_text: &str,
    statistics: &[PassStatistics],
    estimator_cache: Option<&AnalysisCacheStats>,
    shared: Option<&SharedCacheStats>,
    persistent: Option<&PersistentStoreStats>,
) -> String {
    let totals = PassStatistics::aggregate_cache(statistics);
    let passes: Vec<String> = statistics
        .iter()
        .map(|stat| {
            let options: Vec<String> = stat
                .options
                .iter()
                .map(|o| {
                    format!(
                        "{{\"name\":\"{}\",\"value\":\"{}\"}}",
                        json_escape(&o.name),
                        json_escape(&o.value)
                    )
                })
                .collect();
            format!(
                "{{\"pass\":\"{}\",\"micros\":{},\"live_ops_before\":{},\"live_ops_after\":{},\
                 \"op_delta\":{},\"verified\":{},\"failed\":{},\"cache\":{},\"parallel\":{},\
                 \"options\":[{}]}}",
                json_escape(&stat.pass),
                stat.micros,
                stat.live_ops_before,
                stat.live_ops_after,
                stat.op_delta(),
                stat.verified,
                stat.failed,
                cache_json(&stat.cache),
                parallel_json(stat.parallel.as_ref()),
                options.join(",")
            )
        })
        .collect();
    format!(
        "{{\"workload\":\"{}\",\"pipeline\":\"{}\",\"passes\":[{}],\
         \"analysis_cache_totals\":{},\"estimator_cache\":{},\
         \"shared_cache\":{},\"persistent_cache\":{}}}",
        json_escape(workload),
        json_escape(pipeline_text),
        passes.join(","),
        cache_json(&totals),
        estimator_cache.map_or_else(|| "null".to_string(), cache_json),
        shared.map_or_else(|| "null".to_string(), shared_cache_json),
        persistent_json(persistent),
    )
}

/// Renders a sweep's per-point QoR and the aggregated cross-compilation cache
/// counters as one machine-readable JSON object.
fn sweep_json(workload: &str, outcome: &SweepOutcome) -> String {
    let points: Vec<String> = outcome
        .points
        .iter()
        .enumerate()
        .map(|(index, point)| match &point.result {
            Ok(result) => format!(
                "{{\"index\":{index},\"pipeline\":\"{}\",\"seconds\":{:.6},\
                 \"throughput\":{:.3},\"dsp\":{},\"bram_18k\":{},\"shared_cache\":{}}}",
                json_escape(&point.pipeline),
                point.seconds,
                result.estimate.throughput(),
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result
                    .shared_estimator_cache
                    .as_ref()
                    .map_or_else(|| "null".to_string(), shared_cache_json),
            ),
            Err(e) => format!(
                "{{\"index\":{index},\"pipeline\":\"{}\",\"seconds\":{:.6},\"error\":\"{}\",\
                 \"reason\":\"{}\",\"attempts\":{}}}",
                json_escape(&point.pipeline),
                point.seconds,
                json_escape(&e.to_string()),
                point.failure_reason().map_or("Failed", |r| r.name()),
                point.attempts,
            ),
        })
        .collect();
    format!(
        "{{\"workload\":\"{}\",\"sweep\":{{\"pool_jobs\":{},\"point_jobs\":{},\
         \"wall_seconds\":{:.6},\"points\":[{}],\"shared_cache_totals\":{},\
         \"persistent_cache\":{}}}}}",
        json_escape(workload),
        outcome.budget.pool_jobs,
        outcome.budget.point_jobs,
        outcome.wall_seconds,
        points.join(","),
        outcome
            .shared_cache
            .as_ref()
            .map_or_else(|| "null".to_string(), shared_cache_json),
        persistent_json(outcome.persistent_cache.as_ref()),
    )
}

/// The device the pipeline's last `parallelize` pass sized the design for.
fn pipeline_device(pipeline: &Pipeline) -> Option<String> {
    pipeline
        .invocations()
        .iter()
        .rev()
        .find(|i| i.name == "parallelize")
        .and_then(|i| i.options.iter().find(|o| o.name == "device"))
        .map(|o| o.value.clone())
}

fn resolve_device(name: &str) -> Result<FpgaDevice, String> {
    FpgaDevice::by_name(name).ok_or_else(|| {
        let known: Vec<String> = FpgaDevice::catalog().into_iter().map(|d| d.name).collect();
        format!("unknown device '{name}' (known: {})", known.join(", "))
    })
}

/// `--sweep` mode: every line of the sweep file is an independent pipeline
/// variant of the workload, compiled through the sweep engine's pool with the
/// cross-compilation estimate cache attached.
fn run_sweep(args: &Args) -> Result<(), String> {
    macro_rules! say {
        ($($arg:tt)*) => {
            if args.stats_json {
                eprintln!($($arg)*)
            } else {
                println!($($arg)*)
            }
        };
    }
    if args.pipeline.is_some() || args.preset.is_some() {
        return Err("--sweep is exclusive with --pipeline and --preset".to_string());
    }
    if args.emit_ir.is_some() {
        return Err("--emit-ir applies to single compilations, not --sweep".to_string());
    }
    let source = resolve_source(args)?;
    let path = args
        .sweep
        .as_deref()
        .expect("caller checked --sweep is set");
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("--sweep: cannot read '{path}': {e}"))?;
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .collect();
    if lines.is_empty() {
        return Err(format!("--sweep: '{path}' contains no pipeline variants"));
    }

    let workload_name = source_name(&source, args);
    let workload_name = workload_name.as_str();
    let (workload, workload_line) = source_workload(source, args);
    say!("{workload_line}");
    let mut points = Vec::new();
    for (index, line) in lines.iter().enumerate() {
        // Validate early: a typo on line 7 should fail before compiling lines
        // 1-6, with the line number in the message.
        let parsed = Pipeline::parse(&registry(), line)
            .map_err(|e| format!("sweep variant on line {}: {e}", index + 1))?;
        let device_name = args
            .device
            .clone()
            .or_else(|| pipeline_device(&parsed))
            .unwrap_or_else(|| "vu9p-slr".to_string());
        let options = HidaOptions {
            device: resolve_device(&device_name)?,
            ..HidaOptions::default()
        };
        points.push(
            SweepPoint::new(format!("p{:02}", index + 1), workload.clone(), options)
                .with_pipeline(*line),
        );
    }

    let total_jobs = args.jobs.unwrap_or_else(hida_ir_core::default_jobs);
    let budget = JobBudget::for_points(total_jobs, points.len());
    say!("sweep: {} design points from {path}", points.len());
    if !args.no_timing {
        say!(
            "jobs: {total_jobs} total -> {} concurrent points x {} each",
            budget.pool_jobs,
            budget.point_jobs
        );
    }
    let plan = parse_fault_plan(args)?;
    if plan.is_some() || args.deadline_ms.is_some() || args.run_budget_ms.is_some() {
        // Injected faults and deadline cancellations unwind by design; keep
        // the default panic hook from spamming stderr with their backtraces.
        fault::silence_expected_panics();
    }
    let mut engine = SweepEngine::new()
        .with_budget(budget)
        .with_verification(!args.no_verify)
        .with_retries(args.retries.unwrap_or(0));
    if let Some(ms) = args.deadline_ms {
        engine = engine.with_deadline_ms(ms);
    }
    if let Some(ms) = args.run_budget_ms {
        engine = engine.with_run_budget_ms(ms);
    }
    if let Some(plan) = plan {
        engine = engine.with_fault_plan(plan);
    }
    if let Some(cache) = build_cache(args)? {
        engine = engine.with_cache(cache);
    }
    let outcome = engine.run(&points);

    for (index, point) in outcome.points.iter().enumerate() {
        say!("\npoint {:02}: {}", index + 1, point.pipeline);
        match &point.result {
            Ok(result) => {
                say!(
                    "  qor: throughput {:.3} samples/s, DSP {}, BRAM-18K {}, LUT {}",
                    result.estimate.throughput(),
                    result.estimate.resources.dsp,
                    result.estimate.resources.bram_18k,
                    result.estimate.resources.lut
                );
                if !args.no_timing {
                    say!(
                        "  time: {:.4}s, shared cache {}",
                        point.seconds,
                        result.shared_estimator_cache.unwrap_or_default()
                    );
                }
            }
            Err(e) => {
                say!("  error: {e}");
                if let Some(failure) = &point.failure {
                    for attempt in &failure.attempts {
                        say!("  {attempt}");
                    }
                }
            }
        }
    }
    if !args.no_timing {
        if let Some(cache) = &outcome.shared_cache {
            say!(
                "\nsweep wall-clock {:.4}s, cross-compilation estimate cache: {cache}",
                outcome.wall_seconds
            );
        }
        if let Some(persistent) = &outcome.persistent_cache {
            say!("persistent estimate store: {persistent}");
        }
    }
    if args.stats_json {
        println!("{}", sweep_json(workload_name, &outcome));
    }
    if !outcome.all_ok() {
        let failed = outcome.failed_labels();
        say!(
            "\nFAILED: {} of {} sweep points ({})",
            failed.len(),
            outcome.points.len(),
            failed.join(", ")
        );
        return Err(format!(
            "{} of {} sweep points failed (see the report above)",
            failed.len(),
            outcome.points.len()
        ));
    }
    Ok(())
}

/// Renders an exploration's generations, frontier, compiled points and the
/// aggregated cache counters as one machine-readable JSON object — the
/// `--sweep` schema extended with `frontier`, per-generation counters and
/// `compiles_saved`.
fn explore_json(workload: &str, outcome: &ExploreOutcome) -> String {
    let generations: Vec<String> = outcome
        .generations
        .iter()
        .map(|g| {
            format!(
                "{{\"index\":{},\"proposed\":{},\"pruned\":{},\"compiled\":{},\
                 \"failed\":{},\"frontier_size\":{},\"probe_hits\":{},\"probe_nodes\":{}}}",
                g.index,
                g.proposed,
                g.pruned,
                g.compiled,
                g.failed,
                g.frontier_size,
                g.probe_hits,
                g.probe_nodes
            )
        })
        .collect();
    let frontier: Vec<String> = outcome
        .frontier
        .points()
        .iter()
        .map(|p| {
            let objectives: Vec<String> = p.objectives.iter().map(i64::to_string).collect();
            format!(
                "{{\"label\":\"{}\",\"pipeline\":\"{}\",\"objectives\":[{}],\
                 \"throughput\":{:.3},\"dsp\":{},\"bram_18k\":{},\"generation\":{}}}",
                json_escape(&p.label),
                json_escape(&p.pipeline),
                objectives.join(","),
                p.throughput,
                p.dsp,
                p.bram_18k,
                p.generation
            )
        })
        .collect();
    let points: Vec<String> = outcome
        .points
        .iter()
        .map(|point| match &point.result {
            Ok(result) => format!(
                "{{\"label\":\"{}\",\"pipeline\":\"{}\",\"seconds\":{:.6},\
                 \"throughput\":{:.3},\"dsp\":{},\"bram_18k\":{},\"shared_cache\":{}}}",
                json_escape(&point.label),
                json_escape(&point.pipeline),
                point.seconds,
                result.estimate.throughput(),
                result.estimate.resources.dsp,
                result.estimate.resources.bram_18k,
                result
                    .shared_estimator_cache
                    .as_ref()
                    .map_or_else(|| "null".to_string(), shared_cache_json),
            ),
            Err(e) => format!(
                "{{\"label\":\"{}\",\"pipeline\":\"{}\",\"seconds\":{:.6},\"error\":\"{}\",\
                 \"reason\":\"{}\",\"attempts\":{}}}",
                json_escape(&point.label),
                json_escape(&point.pipeline),
                point.seconds,
                json_escape(&e.to_string()),
                point.failure_reason().map_or("Failed", |r| r.name()),
                point.attempts,
            ),
        })
        .collect();
    let seeds: Vec<String> = outcome
        .seeds
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!(
        "{{\"workload\":\"{}\",\"explore\":{{\"pool_jobs\":{},\"point_jobs\":{},\
         \"adaptive\":{},\"num_candidates\":{},\"probed\":{},\"pruned\":{},\
         \"compiled\":{},\"compiles_saved\":{},\"wall_seconds\":{:.6},\
         \"seeds\":[{}],\"generations\":[{}],\"frontier\":[{}],\"points\":[{}],\
         \"shared_cache_totals\":{},\"persistent_cache\":{}}}}}",
        json_escape(workload),
        outcome.budget.pool_jobs,
        outcome.budget.point_jobs,
        outcome.adaptive,
        outcome.num_candidates,
        outcome.probed,
        outcome.pruned,
        outcome.points.len(),
        outcome.compiles_saved(),
        outcome.wall_seconds,
        seeds.join(","),
        generations.join(","),
        frontier.join(","),
        points.join(","),
        outcome
            .shared_cache
            .as_ref()
            .map_or_else(|| "null".to_string(), shared_cache_json),
        persistent_json(outcome.persistent_cache.as_ref()),
    )
}

/// `--explore` mode: the sweep file's pipeline lines span a knob lattice and
/// the Pareto-frontier explorer walks it generation by generation, compiling
/// only candidates whose surrogate QoR bound is not already dominated.
fn run_explore(args: &Args) -> Result<(), String> {
    macro_rules! say {
        ($($arg:tt)*) => {
            if args.stats_json {
                eprintln!($($arg)*)
            } else {
                println!($($arg)*)
            }
        };
    }
    if args.pipeline.is_some() || args.preset.is_some() {
        return Err("--explore is exclusive with --pipeline and --preset".to_string());
    }
    if args.sweep.is_some() {
        return Err("--explore is exclusive with --sweep".to_string());
    }
    if args.emit_ir.is_some() {
        return Err("--emit-ir applies to single compilations, not --explore".to_string());
    }
    let source = resolve_source(args)?;
    let path = args
        .explore
        .as_deref()
        .expect("caller checked --explore is set");
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("--explore: cannot read '{path}': {e}"))?;
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, line)| (i + 1, line.trim()))
        .filter(|(_, line)| !line.is_empty() && !line.starts_with('#'))
        .collect();
    // An optional leading `explore{...}` line configures the search; every
    // other line is a pipeline variant, exactly as under --sweep.
    let (config, variants) = match lines.split_first() {
        Some(((line_no, first), rest)) if first.starts_with("explore") => {
            let config = ExploreConfig::parse(first)
                .map_err(|e| format!("explore config on line {line_no}: {e}"))?;
            (config, rest)
        }
        _ => (ExploreConfig::default(), &lines[..]),
    };
    if variants.is_empty() {
        return Err(format!("--explore: '{path}' contains no pipeline variants"));
    }

    let workload_name = source_name(&source, args);
    let workload_name = workload_name.as_str();
    let (workload, workload_line) = source_workload(source, args);
    say!("{workload_line}");
    let mut points = Vec::new();
    for (index, (line_no, line)) in variants.iter().enumerate() {
        let parsed = Pipeline::parse(&registry(), line)
            .map_err(|e| format!("explore variant on line {line_no}: {e}"))?;
        let device_name = args
            .device
            .clone()
            .or_else(|| pipeline_device(&parsed))
            .unwrap_or_else(|| "vu9p-slr".to_string());
        let options = HidaOptions {
            device: resolve_device(&device_name)?,
            ..HidaOptions::default()
        };
        points.push(
            SweepPoint::new(format!("p{:02}", index + 1), workload.clone(), options)
                .with_pipeline(*line),
        );
    }

    let total_jobs = args.jobs.unwrap_or_else(hida_ir_core::default_jobs);
    let objectives: Vec<&str> = config.objectives.iter().map(|o| o.name()).collect();
    say!("explore: {} candidate points from {path}", points.len());
    say!(
        "objectives: {} (seed {}, budget {})",
        objectives.join("+"),
        config.seed,
        config
            .budget
            .map_or_else(|| "unbounded".to_string(), |b| b.to_string())
    );
    if !args.no_timing {
        say!("jobs: {total_jobs} total, adaptive per-point rebalancing");
    }
    if args.run_budget_ms.is_some() {
        return Err("--run-budget-ms applies to --sweep".to_string());
    }
    let plan = parse_fault_plan(args)?;
    if plan.is_some() || args.deadline_ms.is_some() {
        fault::silence_expected_panics();
    }
    let mut explorer = Explorer::new(config)
        .with_total_jobs(total_jobs)
        .with_verification(!args.no_verify)
        .with_retries(args.retries.unwrap_or(0));
    if let Some(ms) = args.deadline_ms {
        explorer = explorer.with_deadline_ms(ms);
    }
    if let Some(plan) = plan {
        explorer = explorer.with_fault_plan(plan);
    }
    if let Some(cache) = build_cache(args)? {
        explorer = explorer.with_cache(cache);
    }
    let outcome = explorer.explore(&points)?;

    say!("seeds: {}", outcome.seeds.join(", "));
    for g in &outcome.generations {
        say!(
            "generation {}: proposed {}, pruned by surrogate {}, compiled {}, failed {}, \
             frontier {}",
            g.index,
            g.proposed,
            g.pruned,
            g.compiled,
            g.failed,
            g.frontier_size
        );
    }

    for point in &outcome.points {
        say!("\npoint {}: {}", point.label, point.pipeline);
        match &point.result {
            Ok(result) => {
                say!(
                    "  qor: throughput {:.3} samples/s, DSP {}, BRAM-18K {}, LUT {}",
                    result.estimate.throughput(),
                    result.estimate.resources.dsp,
                    result.estimate.resources.bram_18k,
                    result.estimate.resources.lut
                );
                if !args.no_timing {
                    say!(
                        "  time: {:.4}s, jobs {}, shared cache {}",
                        point.seconds,
                        point.point_jobs,
                        result.shared_estimator_cache.unwrap_or_default()
                    );
                }
            }
            Err(e) => {
                say!("  error: {e}");
                if let Some(failure) = &point.failure {
                    for attempt in &failure.attempts {
                        say!("  {attempt}");
                    }
                }
            }
        }
    }

    say!("\n# Pareto frontier ({} points)", outcome.frontier.len());
    for p in outcome.frontier.points() {
        say!(
            "  {}: throughput {:.3} samples/s, DSP {}, BRAM-18K {} (generation {})",
            p.label,
            p.throughput,
            p.dsp,
            p.bram_18k,
            p.generation
        );
    }
    say!(
        "\nprobed {} of {} candidates: {} pruned by surrogate, {} compiled \
         ({} compilations saved)",
        outcome.probed,
        outcome.num_candidates,
        outcome.pruned,
        outcome.points.len(),
        outcome.compiles_saved()
    );
    if !args.no_timing {
        say!("exploration wall-clock {:.4}s", outcome.wall_seconds);
        if let Some(cache) = &outcome.shared_cache {
            say!("cross-compilation estimate cache: {cache}");
        }
        if let Some(persistent) = &outcome.persistent_cache {
            say!("persistent estimate store: {persistent}");
        }
    }
    if args.stats_json {
        println!("{}", explore_json(workload_name, &outcome));
    }
    if !outcome.all_ok() {
        let failed = outcome.failed_labels();
        say!(
            "\nFAILED: {} of {} compiled points ({})",
            failed.len(),
            outcome.points.len(),
            failed.join(", ")
        );
        return Err(format!(
            "{} of {} compiled points failed (see the report above)",
            failed.len(),
            outcome.points.len()
        ));
    }
    Ok(())
}

fn run(args: Args) -> Result<(), String> {
    if args.explore.is_some() {
        return run_explore(&args);
    }
    if args.sweep.is_some() {
        return run_sweep(&args);
    }
    // With --stats-json, stdout carries exactly one JSON object; the
    // human-readable report moves to stderr so `hida-opt --stats-json | jq .`
    // works as documented.
    macro_rules! say {
        ($($arg:tt)*) => {
            if args.stats_json {
                eprintln!($($arg)*)
            } else {
                println!($($arg)*)
            }
        };
    }
    if args.retries.is_some() {
        return Err("--retries applies to --sweep and --explore".to_string());
    }
    if args.run_budget_ms.is_some() {
        return Err("--run-budget-ms applies to --sweep".to_string());
    }
    let fault_plan = parse_fault_plan(&args)?;
    if fault_plan.is_some() || args.deadline_ms.is_some() {
        fault::silence_expected_panics();
    }
    let source = resolve_source(&args)?;
    let workload_name = match &source {
        CliSource::Builtin(_) => args
            .workload
            .clone()
            .expect("builtin source has --workload"),
        CliSource::TextIr { name, .. } => name.clone(),
    };
    let workload_name = workload_name.as_str();
    let pipeline_text = match (&args.pipeline, &args.preset) {
        (Some(_), Some(_)) => return Err("--pipeline and --preset are exclusive".to_string()),
        (Some(text), None) => text.clone(),
        (None, Some(preset)) => preset_text(preset)?,
        (None, None) => preset_text("default")?,
    };
    let mut pipeline = Pipeline::parse(&registry(), &pipeline_text).map_err(|e| e.to_string())?;
    if pipeline.is_empty() {
        return Err("the pipeline is empty".to_string());
    }
    // Estimate QoR against the device the design was actually sized for: the
    // parallelize pass's device option, unless --device overrides it.
    let device_name = args
        .device
        .clone()
        .or_else(|| pipeline_device(&pipeline))
        .unwrap_or_else(|| "vu9p-slr".to_string());
    let device = resolve_device(&device_name)?;
    if args.no_verify {
        pipeline = pipeline.with_verification(false);
    }
    // Per-node pass work (tiling, parallelize, profile) and QoR estimation run
    // on this many workers; --jobs 1 is the reproducibility escape hatch.
    let jobs = args.jobs.unwrap_or_else(hida_ir_core::default_jobs);
    pipeline = pipeline.with_jobs(jobs);

    let mut ctx = Context::new();
    // Build through the same `build_workload` path the sweep/explore compilers
    // use, so `--emit-ir` output matches the library builders byte for byte.
    let (workload, workload_line) = source_workload(source, &args);
    say!("{workload_line}");
    let (module, func): (OpId, OpId) =
        hida::build_workload(&mut ctx, workload).map_err(|e| e.to_string())?;
    // --emit-ir captures the module as the pipeline will see it: the printed
    // text re-parses (with --input) to a structurally identical design.
    if let Some(path) = &args.emit_ir {
        let text = hida_ir_core::printer::print_op(&ctx, module);
        std::fs::write(path, &text)
            .map_err(|e| format!("--emit-ir: cannot write '{path}': {e}"))?;
        say!("emitted IR: {path}");
    }
    say!("pipeline: {}", pipeline.to_text());
    if !args.no_timing {
        say!("jobs: {jobs}");
    }
    let pipeline_text = pipeline.to_text();

    // In single-run mode --deadline-ms and --inject-faults scope to the pass
    // pipeline: a cancel token (and any armed faults) is installed for its
    // duration, so a stuck or faulted pass surfaces as a structured error
    // instead of a hang or an escaping panic.
    let chaos_guard = if args.deadline_ms.is_some() || fault_plan.is_some() {
        let token = match args.deadline_ms {
            Some(ms) => fault::CancelToken::with_deadline_ms(ms),
            None => fault::CancelToken::new(),
        };
        let faults = fault_plan.as_ref().map(|plan| {
            let labels = vec![workload_name.to_string()];
            plan.assign(&labels)
                .remove(workload_name)
                .map(|kind| plan.arm(kind))
                .unwrap_or_default()
        });
        Some(fault::install_point(token, faults))
    } else {
        None
    };
    let run_result = pipeline.run(&mut ctx, func);
    drop(chaos_guard);

    say!("\n# Per-pass statistics");
    for stat in pipeline.statistics() {
        if args.no_timing {
            say!("{}", stable_stat(stat));
        } else {
            say!("{stat}");
        }
    }
    if !args.no_timing {
        let cache_totals = PassStatistics::aggregate_cache(pipeline.statistics());
        say!("analysis cache totals: {cache_totals}");
    }
    // A failing pipeline still reports where (and after how long) it died —
    // including the machine-readable statistics, with the estimator section
    // nulled out because estimation never ran.
    if let Err(e) = &run_result {
        if args.stats_json {
            println!(
                "{}",
                stats_json(
                    workload_name,
                    &pipeline_text,
                    pipeline.statistics(),
                    None,
                    None,
                    None
                )
            );
        }
        return Err(e.to_string());
    }
    let schedule = run_result.map_err(|e| e.to_string())?;

    say!("\n# Schedule ({} nodes)", schedule.nodes(&ctx).len());
    for node in schedule.nodes(&ctx) {
        // The parallelize pass preserved the node profiles; these queries are
        // pure cache hits.
        let rank = pipeline
            .analyses_mut()
            .get::<ComputeProfile>(&ctx, node.id())
            .loop_dims
            .len();
        say!(
            "node {:<24} intensity {:<10} parallel factor {:<5} unroll {:?}",
            node.name(&ctx),
            ctx.op(node.id()).attr_int("intensity").unwrap_or(0),
            ctx.op(node.id()).attr_int("parallel_factor").unwrap_or(0),
            hida_dialects::transforms::unroll_factors_of(&ctx, node.id(), rank),
        );
    }
    for buffer in schedule.internal_buffers(&ctx) {
        let partition = buffer.partition(&ctx);
        say!(
            "buffer {:<22} depth {:<3} kind {:<9} partition {:?} ({} banks)",
            buffer.name(&ctx),
            buffer.depth(&ctx),
            format!("{:?}", buffer.memory_kind(&ctx)),
            partition.factors,
            partition.bank_count(),
        );
    }

    // With --cache-dir, QoR estimation runs against the persistent store:
    // node estimates written by earlier processes are reused, and this run's
    // fresh estimates are written back for the next one.
    let shared_cache = build_cache(&args)?;
    let mut estimator = DataflowEstimator::new(device.clone()).with_jobs(jobs);
    if let Some(cache) = &shared_cache {
        estimator = estimator.with_shared_cache(cache.clone());
    }
    let dataflow = estimator.estimate_schedule(&ctx, schedule, true);
    let sequential = estimator.estimate_schedule(&ctx, schedule, false);
    say!("\n# QoR estimate ({})", device.name);
    say!(
        "throughput: {:.3} samples/s (dataflow) vs {:.3} samples/s (sequential)",
        dataflow.throughput(),
        sequential.throughput()
    );
    say!(
        "resources:  DSP {} / {}, BRAM-18K {} / {}, LUT {} / {}",
        dataflow.resources.dsp,
        device.dsp,
        dataflow.resources.bram_18k,
        device.bram_18k,
        dataflow.resources.lut,
        device.lut
    );
    say!("DSP efficiency: {:.1}%", 100.0 * dataflow.dsp_efficiency());
    if !args.no_timing {
        say!(
            "estimator cache: {} (dataflow + sequential estimates share node estimates)",
            estimator.cache_stats()
        );
        if let Some(cache) = &shared_cache {
            say!("shared estimate cache: {}", cache.stats());
            if let Some(persistent) = cache.persistent_stats() {
                say!("persistent estimate store: {persistent}");
            }
        }
    }
    if args.stats_json {
        let shared_stats = shared_cache.as_ref().map(|c| c.stats());
        let persistent_stats = shared_cache.as_ref().and_then(|c| c.persistent_stats());
        println!(
            "{}",
            stats_json(
                workload_name,
                &pipeline_text,
                pipeline.statistics(),
                Some(&estimator.cache_stats()),
                shared_stats.as_ref(),
                persistent_stats.as_ref(),
            )
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.list_passes {
        print!("{}", registry_listing());
        return ExitCode::SUCCESS;
    }
    if args.list_workloads {
        println!("{}", workload_listing());
        return ExitCode::SUCCESS;
    }
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
