//! Adaptive Pareto-frontier design-space exploration.
//!
//! HIDA's evaluation sweeps enumerate every grid point; the paper's own DSE
//! story (§fig1) — and any production deployment — needs *search*. This
//! module replaces exhaustive enumeration with a guided explorer:
//!
//! * A dominance [`Frontier`] over minimized objective vectors (interval
//!   cycles, DSP, BRAM by default) with incremental insert/prune.
//! * A [`KnobLattice`] inferred from the sweep's pipeline strings: every
//!   differing pass option (tile factor, parallel factor, pipeline variant)
//!   becomes an axis, and candidate proposal is generation-based neighborhood
//!   expansion — a breadth-first closure over lattice edges seeded at the
//!   corners and centroid.
//! * Surrogate pre-scoring: before compiling a candidate, the explorer
//!   lowers it (front end + pass pipeline only) and bounds its QoR with
//!   [`hida_estimator::surrogate::design_bound`] — exact per-node estimates
//!   served from the [`SharedEstimateCache`] (including the persistent
//!   store), optimistic bounds for unknown nodes. A candidate whose *bound*
//!   is dominated by a compiled frontier point is pruned without the full
//!   compile; the bound is componentwise `<=` the true estimate, so pruning
//!   never discards a Pareto-optimal design.
//! * Compile batches run through the [`SweepEngine`], optionally under an
//!   [`AdaptiveBudget`](crate::sweep::AdaptiveBudget) that re-splits
//!   `point_jobs` as each generation's pool drains.
//!
//! Exploration order is deterministic for a fixed seed regardless of the job
//! count: probes run sequentially against generation-start state, compile
//! batches are order-preserving, and the cache key set published by a
//! generation is a pure function of which points compiled — all
//! schedule-independent (CI diffs `--explore` output at jobs 1 vs 4).

use crate::sweep::{JobBudget, SweepEngine, SweepPoint, SweepPointOutcome};
use crate::Compiler;
use hida_estimator::report::DesignEstimate;
use hida_estimator::shared_cache::{SharedCacheStats, SharedEstimateCache};
use hida_estimator::store::PersistentStoreStats;
use hida_estimator::surrogate::{design_bound, DesignBound};
use hida_ir_core::par::default_jobs;
use hida_ir_core::parse_pipeline;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// One minimized objective of the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize throughput, i.e. minimize the dataflow interval (cycles).
    Throughput,
    /// Minimize DSP slices.
    Dsp,
    /// Minimize BRAM-18K blocks.
    Bram,
}

impl Objective {
    /// Parses one objective name (`throughput`, `dsp`, `bram`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim() {
            "throughput" => Ok(Objective::Throughput),
            "dsp" => Ok(Objective::Dsp),
            "bram" => Ok(Objective::Bram),
            other => Err(format!(
                "unknown objective '{other}' (expected throughput, dsp or bram)"
            )),
        }
    }

    /// Short name, as accepted by [`Objective::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Throughput => "throughput",
            Objective::Dsp => "dsp",
            Objective::Bram => "bram",
        }
    }

    /// The minimized value of this objective in an exact estimate.
    pub fn value(&self, estimate: &DesignEstimate) -> i64 {
        match self {
            Objective::Throughput => estimate.interval_cycles,
            Objective::Dsp => estimate.resources.dsp,
            Objective::Bram => estimate.resources.bram_18k,
        }
    }

    /// The minimized value of this objective in a surrogate bound
    /// (componentwise `<=` [`Objective::value`] of the true estimate).
    pub fn bound_value(&self, bound: &DesignBound) -> i64 {
        match self {
            Objective::Throughput => bound.interval_lb,
            Objective::Dsp => bound.resources.dsp,
            Objective::Bram => bound.resources.bram_18k,
        }
    }
}

/// True when `a` Pareto-dominates `b` under minimization: `a` is
/// componentwise `<=` and strictly better in at least one objective.
/// Vectors of unequal length never dominate each other.
pub fn dominates(a: &[i64], b: &[i64]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| x <= y)
        && a.iter().zip(b).any(|(x, y)| x < y)
}

/// A compiled design point on (or once on) the Pareto frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The design point's sweep label.
    pub label: String,
    /// The textual pipeline it compiled with.
    pub pipeline: String,
    /// Minimized objective vector (the frontier's ordering key).
    pub objectives: Vec<i64>,
    /// Throughput in MHz-samples (reporting only).
    pub throughput: f64,
    /// DSP slices (reporting only).
    pub dsp: i64,
    /// BRAM-18K blocks (reporting only).
    pub bram_18k: i64,
    /// The exploration generation that compiled this point.
    pub generation: usize,
}

impl FrontierPoint {
    /// A bare frontier point from a label and an objective vector (tests and
    /// property checks; the reporting fields stay zero).
    pub fn from_vector(label: impl Into<String>, objectives: Vec<i64>) -> Self {
        FrontierPoint {
            label: label.into(),
            pipeline: String::new(),
            objectives,
            throughput: 0.0,
            dsp: 0,
            bram_18k: 0,
            generation: 0,
        }
    }
}

/// An incrementally maintained Pareto frontier under minimization.
///
/// Ties are kept: two points with identical objective vectors are mutually
/// non-dominated and both stay on the frontier. Points are stored sorted by
/// (objective vector, label), so the frontier's rendering is independent of
/// insertion order — the permutation-invariance property
/// `tests/frontier_props.rs` checks.
#[derive(Debug, Clone, Default)]
pub struct Frontier {
    points: Vec<FrontierPoint>,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// The current non-dominated set, sorted by (objective vector, label).
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Number of points on the frontier.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sorted objective vectors of the frontier (coverage comparisons).
    pub fn vectors(&self) -> Vec<Vec<i64>> {
        self.points.iter().map(|p| p.objectives.clone()).collect()
    }

    /// True when some frontier point strictly dominates `vector`. With a
    /// surrogate bound as `vector`, a `true` answer is a sound prune: the
    /// bound is componentwise `<=` the candidate's true vector, so the
    /// dominating point dominates the true vector too.
    pub fn would_prune(&self, vector: &[i64]) -> bool {
        self.points.iter().any(|p| dominates(&p.objectives, vector))
    }

    /// Inserts a compiled point, pruning everything it dominates. Returns
    /// `false` (and leaves the frontier unchanged) when an existing point
    /// dominates the newcomer.
    pub fn insert(&mut self, point: FrontierPoint) -> bool {
        if self.would_prune(&point.objectives) {
            return false;
        }
        self.points
            .retain(|p| !dominates(&point.objectives, &p.objectives));
        self.points.push(point);
        self.points
            .sort_by(|a, b| a.objectives.cmp(&b.objectives).then(a.label.cmp(&b.label)));
        true
    }
}

/// Exploration knobs, parsed from the sweep file's `explore{...}` line.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreConfig {
    /// Maximum number of full compilations (`None` = unlimited: explore
    /// until the lattice closure is exhausted).
    pub budget: Option<usize>,
    /// Seed for the extra random seed-candidate picks.
    pub seed: u64,
    /// Minimized objectives, in vector order.
    pub objectives: Vec<Objective>,
    /// Extra seeded-random seed candidates beyond corners + centroid.
    pub extras: usize,
    /// Hard cap on expansion generations (a lattice-diameter backstop).
    pub max_generations: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget: None,
            seed: 0,
            objectives: vec![Objective::Throughput, Objective::Dsp, Objective::Bram],
            extras: 0,
            max_generations: 64,
        }
    }
}

impl ExploreConfig {
    /// Parses an `explore` line: `explore` alone for the defaults, or
    /// `explore{budget=24,seed=7,objectives=throughput+dsp+bram,extras=1,max-generations=16}`
    /// (every knob optional; objectives are `+`-separated).
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        let rest = text
            .strip_prefix("explore")
            .ok_or_else(|| format!("explore config must start with 'explore': '{text}'"))?
            .trim();
        let mut config = ExploreConfig::default();
        if rest.is_empty() {
            return Ok(config);
        }
        let body = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| format!("malformed explore options (expected '{{...}}'): '{text}'"))?;
        for entry in body.split(',').filter(|e| !e.trim().is_empty()) {
            let (key, value) = entry.split_once('=').ok_or_else(|| {
                format!("malformed explore option (expected key=value): '{entry}'")
            })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "budget" => {
                    config.budget = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| format!("invalid explore budget '{value}'"))?,
                    )
                }
                "seed" => {
                    config.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid explore seed '{value}'"))?
                }
                "extras" => {
                    config.extras = value
                        .parse::<usize>()
                        .map_err(|_| format!("invalid explore extras '{value}'"))?
                }
                "max-generations" => {
                    config.max_generations = value
                        .parse::<usize>()
                        .map_err(|_| format!("invalid explore max-generations '{value}'"))?
                }
                "objectives" => {
                    let objectives = value
                        .split('+')
                        .map(Objective::parse)
                        .collect::<Result<Vec<_>, _>>()?;
                    if objectives.is_empty() {
                        return Err("explore objectives must not be empty".to_string());
                    }
                    config.objectives = objectives;
                }
                other => return Err(format!("unknown explore option '{other}'")),
            }
        }
        Ok(config)
    }
}

/// One knob axis of the sweep's design space: a pass option (or the whole
/// pipeline variant) with its sorted distinct values.
#[derive(Debug, Clone)]
pub struct KnobAxis {
    /// Axis identity, e.g. `"4:parallelize:max-factor"`.
    pub name: String,
    /// Distinct values, numerically sorted when all parse as integers.
    pub values: Vec<String>,
}

/// The knob lattice spanned by a sweep's pipeline strings: each candidate is
/// a coordinate vector over the [`KnobAxis`] set, and lattice edges connect
/// candidates that differ in exactly one axis with no candidate strictly
/// between them (so sparse grids stay connected).
#[derive(Debug, Clone)]
pub struct KnobLattice {
    axes: Vec<KnobAxis>,
    coords: Vec<Vec<usize>>,
}

/// True when every candidate value parses as an integer.
fn all_numeric(values: &BTreeSet<String>) -> bool {
    values.iter().all(|v| v.parse::<i64>().is_ok())
}

impl KnobLattice {
    /// Infers the lattice from the points' pipeline strings. Candidates
    /// sharing one pass skeleton (same pass sequence and option names) get
    /// one axis per option whose value differs anywhere in the sweep;
    /// structurally different pipelines fall back to a single categorical
    /// `variant` axis (every point a coordinate, chain-adjacent).
    pub fn build(points: &[SweepPoint]) -> Result<KnobLattice, String> {
        if points.is_empty() {
            return Err("cannot explore an empty sweep".to_string());
        }
        let parsed: Vec<Vec<hida_ir_core::PassInvocation>> = points
            .iter()
            .map(|p| {
                parse_pipeline(&p.pipeline_text()).map_err(|e| format!("point '{}': {e}", p.label))
            })
            .collect::<Result<_, _>>()?;

        let skeleton = |invs: &[hida_ir_core::PassInvocation]| -> Vec<String> {
            invs.iter()
                .map(|inv| {
                    let mut id = inv.name.clone();
                    for opt in &inv.options {
                        id.push(':');
                        id.push_str(&opt.name);
                    }
                    id
                })
                .collect()
        };
        let reference = skeleton(&parsed[0]);
        let uniform = parsed.iter().all(|invs| skeleton(invs) == reference);
        if !uniform {
            // Categorical fallback: one axis, points chained in declaration
            // order.
            let axis = KnobAxis {
                name: "variant".to_string(),
                values: (0..points.len()).map(|i| i.to_string()).collect(),
            };
            return Ok(KnobLattice {
                axes: vec![axis],
                coords: (0..points.len()).map(|i| vec![i]).collect(),
            });
        }

        // One axis per (invocation, option) whose value varies across points.
        let mut axes = Vec::new();
        let mut axis_keys: Vec<(usize, usize)> = Vec::new();
        for (inv_idx, inv) in parsed[0].iter().enumerate() {
            for (opt_idx, opt) in inv.options.iter().enumerate() {
                let values: BTreeSet<String> = parsed
                    .iter()
                    .map(|invs| invs[inv_idx].options[opt_idx].value.clone())
                    .collect();
                if values.len() < 2 {
                    continue;
                }
                let mut sorted: Vec<String> = values.iter().cloned().collect();
                if all_numeric(&values) {
                    sorted.sort_by_key(|v| v.parse::<i64>().unwrap());
                }
                axes.push(KnobAxis {
                    name: format!("{inv_idx}:{}:{}", inv.name, opt.name),
                    values: sorted,
                });
                axis_keys.push((inv_idx, opt_idx));
            }
        }
        if axes.is_empty() {
            // All pipelines identical: degenerate one-axis chain so every
            // point still gets probed.
            let axis = KnobAxis {
                name: "variant".to_string(),
                values: (0..points.len()).map(|i| i.to_string()).collect(),
            };
            return Ok(KnobLattice {
                axes: vec![axis],
                coords: (0..points.len()).map(|i| vec![i]).collect(),
            });
        }
        let coords = parsed
            .iter()
            .map(|invs| {
                axes.iter()
                    .zip(&axis_keys)
                    .map(|(axis, &(inv_idx, opt_idx))| {
                        let value = &invs[inv_idx].options[opt_idx].value;
                        axis.values
                            .iter()
                            .position(|v| v == value)
                            .expect("axis values were collected from exactly these candidates")
                    })
                    .collect()
            })
            .collect();
        Ok(KnobLattice { axes, coords })
    }

    /// The inferred axes.
    pub fn axes(&self) -> &[KnobAxis] {
        &self.axes
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when the lattice holds no candidates (never after a successful
    /// [`KnobLattice::build`]).
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Lattice neighbors of candidate `i`: along each axis, the nearest
    /// candidates above and below with identical coordinates elsewhere.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let mut result = BTreeSet::new();
        for axis in 0..self.axes.len() {
            // The "line" through i along this axis.
            let mut line: Vec<usize> = (0..self.coords.len())
                .filter(|&j| {
                    self.coords[j]
                        .iter()
                        .enumerate()
                        .all(|(k, &c)| k == axis || c == self.coords[i][k])
                })
                .collect();
            line.sort_by_key(|&j| self.coords[j][axis]);
            let pos = line
                .iter()
                .position(|&j| j == i)
                .expect("i is on its own line");
            if pos > 0 {
                result.insert(line[pos - 1]);
            }
            if pos + 1 < line.len() {
                result.insert(line[pos + 1]);
            }
        }
        result.remove(&i);
        result.into_iter().collect()
    }

    /// Seed candidates: every lattice corner (each coordinate extremal), the
    /// centroid (L1-nearest candidate to the per-axis midpoints), plus
    /// `extras` seeded-random picks. Sorted and deduplicated.
    pub fn seed_candidates(&self, seed: u64, extras: usize) -> Vec<usize> {
        let mut seeds: BTreeSet<usize> = BTreeSet::new();
        for (i, coord) in self.coords.iter().enumerate() {
            let corner = coord
                .iter()
                .zip(&self.axes)
                .all(|(&c, axis)| c == 0 || c + 1 == axis.values.len());
            if corner {
                seeds.insert(i);
            }
        }
        // Centroid: candidate closest (L1) to the middle of every axis.
        let mid: Vec<usize> = self.axes.iter().map(|a| (a.values.len() - 1) / 2).collect();
        let centroid = (0..self.coords.len()).min_by_key(|&i| {
            let dist: usize = self.coords[i]
                .iter()
                .zip(&mid)
                .map(|(&c, &m)| c.abs_diff(m))
                .sum();
            (dist, i)
        });
        if let Some(c) = centroid {
            seeds.insert(c);
        }
        let mut state = seed;
        let mut added = 0;
        let mut attempts = 0;
        while added < extras && attempts < 16 * (extras + 1) {
            let pick = (splitmix64(&mut state) % self.coords.len() as u64) as usize;
            if seeds.insert(pick) {
                added += 1;
            }
            attempts += 1;
        }
        if seeds.is_empty() {
            seeds.insert(0);
        }
        seeds.into_iter().collect()
    }
}

/// Deterministic 64-bit mixer (SplitMix64) for the seeded extra picks.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-generation exploration counters (the `--stats-json` payload that makes
/// pruning-effectiveness regressions machine-visible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationStats {
    /// Generation index (0 = seeds).
    pub index: usize,
    /// Candidates proposed (probed) this generation.
    pub proposed: usize,
    /// Candidates pruned by the surrogate bound before compiling.
    pub pruned: usize,
    /// Candidates fully compiled.
    pub compiled: usize,
    /// Compilations that failed.
    pub failed: usize,
    /// Frontier size after the generation's inserts.
    pub frontier_size: usize,
    /// Probe nodes served exactly from the shared cache / store.
    pub probe_hits: usize,
    /// Total nodes probed across the generation's surrogate bounds.
    pub probe_nodes: usize,
}

/// Everything an exploration run produced.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Compiled points, in exploration order (generation by generation,
    /// candidate order within each).
    pub points: Vec<SweepPointOutcome>,
    /// The final Pareto frontier.
    pub frontier: Frontier,
    /// Per-generation counters.
    pub generations: Vec<GenerationStats>,
    /// Seed-candidate labels (generation 0's wave).
    pub seeds: Vec<String>,
    /// Total candidates in the sweep's lattice.
    pub num_candidates: usize,
    /// Candidates probed (compiled or pruned).
    pub probed: usize,
    /// Candidates pruned by the surrogate.
    pub pruned: usize,
    /// The nominal job budget compile batches ran under.
    pub budget: JobBudget,
    /// Whether per-point worker counts were re-split adaptively.
    pub adaptive: bool,
    /// Wall-clock seconds for the whole exploration.
    pub wall_seconds: f64,
    /// Aggregate shared-cache traffic across all compile batches.
    pub shared_cache: Option<SharedCacheStats>,
    /// Persistent-store traffic, when the cache has a disk tier.
    pub persistent_cache: Option<PersistentStoreStats>,
}

impl ExploreOutcome {
    /// True when every compiled point succeeded.
    pub fn all_ok(&self) -> bool {
        self.points.iter().all(|p| p.result.is_ok())
    }

    /// Labels of failed compilations, in exploration order.
    pub fn failed_labels(&self) -> Vec<&str> {
        self.points
            .iter()
            .filter(|p| p.result.is_err())
            .map(|p| p.label.as_str())
            .collect()
    }

    /// Candidates that never compiled: pruned by the surrogate, cut by the
    /// budget, or unreachable in the lattice closure.
    pub fn compiles_saved(&self) -> usize {
        self.num_candidates.saturating_sub(self.points.len())
    }
}

/// The guided design-space explorer. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct Explorer {
    config: ExploreConfig,
    total_jobs: Option<usize>,
    verification: bool,
    cache: Option<Arc<SharedEstimateCache>>,
    adaptive: bool,
    retries: usize,
    deadline_ms: Option<u64>,
    fault_plan: Option<hida_ir_core::FaultPlan>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new(ExploreConfig::default())
    }
}

impl Explorer {
    /// Creates an explorer with the given knobs, adaptive budgeting on.
    pub fn new(config: ExploreConfig) -> Self {
        Explorer {
            config,
            total_jobs: None,
            verification: true,
            cache: None,
            adaptive: true,
            retries: 0,
            deadline_ms: None,
            fault_plan: None,
        }
    }

    /// Retry budget per compiled point (builder style); see
    /// [`SweepEngine::with_retries`] for the degradation ladder.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Per-point compile deadline in milliseconds (builder style); see
    /// [`SweepEngine::with_deadline_ms`].
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Arms a deterministic fault-injection plan for the compile batches
    /// (builder style); see [`SweepEngine::with_fault_plan`]. Probe lowerings
    /// install no fault context, so injections only fire in real compiles.
    pub fn with_fault_plan(mut self, plan: hida_ir_core::FaultPlan) -> Self {
        self.fault_plan = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Total worker-thread budget for compile batches (builder style).
    /// Defaults to the machine's available parallelism.
    pub fn with_total_jobs(mut self, total_jobs: usize) -> Self {
        self.total_jobs = Some(total_jobs.max(1));
        self
    }

    /// Enables or disables IR verification inside compilations (builder
    /// style). Probe lowerings never verify — they exist to be cheap.
    pub fn with_verification(mut self, enabled: bool) -> Self {
        self.verification = enabled;
        self
    }

    /// Uses an existing estimate cache (builder style) — e.g. one backed by a
    /// persistent [`hida_estimator::store::EstimateStore`], so the surrogate
    /// starts warm from earlier processes.
    pub fn with_cache(mut self, cache: Arc<SharedEstimateCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables or disables adaptive per-point budget re-splitting inside
    /// compile batches (builder style; on by default).
    pub fn with_adaptive_budget(mut self, enabled: bool) -> Self {
        self.adaptive = enabled;
        self
    }

    /// The explorer's configuration.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// Explores the design space spanned by `points`.
    ///
    /// # Errors
    /// Fails when the candidate pipelines cannot be parsed into a lattice;
    /// per-point compile failures are recorded in the outcome instead.
    pub fn explore(&self, points: &[SweepPoint]) -> Result<ExploreOutcome, String> {
        let start = Instant::now();
        let lattice = KnobLattice::build(points)?;
        let cache = self
            .cache
            .clone()
            .unwrap_or_else(|| Arc::new(SharedEstimateCache::new()));
        let total_jobs = self.total_jobs.unwrap_or_else(default_jobs);
        let mut engine = SweepEngine::new()
            .with_total_jobs(total_jobs)
            .with_cache(cache.clone())
            .with_verification(self.verification)
            .with_adaptive_budget(self.adaptive)
            .with_retries(self.retries);
        if let Some(deadline_ms) = self.deadline_ms {
            engine = engine.with_deadline_ms(deadline_ms);
        }
        if let Some(plan) = &self.fault_plan {
            engine = engine.with_fault_plan(plan.clone());
        }
        let budget_limit = self.config.budget.unwrap_or(usize::MAX);

        let seeds = lattice.seed_candidates(self.config.seed, self.config.extras);
        let seed_labels = seeds.iter().map(|&i| points[i].label.clone()).collect();
        let mut visited = vec![false; points.len()];
        let mut frontier = Frontier::new();
        let mut outcomes: Vec<SweepPointOutcome> = Vec::new();
        let mut generations: Vec<GenerationStats> = Vec::new();
        let mut pruned_total = 0;
        let mut nominal_budget = JobBudget::for_points(total_jobs, points.len());

        let mut wave = seeds;
        while !wave.is_empty()
            && generations.len() < self.config.max_generations
            && outcomes.len() < budget_limit
        {
            let generation = generations.len();
            // Probe phase: sequential and on this thread, so pruning
            // decisions depend only on generation-start state.
            let mut stats = GenerationStats {
                index: generation,
                proposed: wave.len(),
                pruned: 0,
                compiled: 0,
                failed: 0,
                frontier_size: frontier.len(),
                probe_hits: 0,
                probe_nodes: 0,
            };
            let mut to_compile: Vec<usize> = Vec::new();
            for &idx in &wave {
                visited[idx] = true;
                let point = &points[idx];
                let mut probe = Compiler::new(point.options.clone()).with_verification(false);
                if let Some(text) = &point.pipeline {
                    probe = probe.with_pipeline(text.clone());
                }
                // Probes are isolated like compiles: a panicking probe falls
                // through to the real compile batch, where the failure is
                // recorded as a structured point outcome.
                let lowered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    probe.lower(point.workload.clone())
                }))
                .unwrap_or_else(|payload| {
                    Err(hida_ir_core::fault::error_from_panic(
                        &format!("probe '{}'", point.label),
                        payload,
                    ))
                });
                match lowered {
                    Ok(design) => {
                        let bound = design_bound(
                            &design.ctx,
                            design.schedule,
                            &point.options.device,
                            Some(&cache),
                        );
                        stats.probe_hits += bound.probe_hits;
                        stats.probe_nodes += bound.nodes;
                        let vector: Vec<i64> = self
                            .config
                            .objectives
                            .iter()
                            .map(|o| o.bound_value(&bound))
                            .collect();
                        if frontier.would_prune(&vector) {
                            stats.pruned += 1;
                            pruned_total += 1;
                        } else {
                            to_compile.push(idx);
                        }
                    }
                    // A candidate that fails to lower goes to the real
                    // compile so the failure is recorded and reported.
                    Err(_) => to_compile.push(idx),
                }
            }

            // Compile phase: a batch through the sweep engine (barrier).
            let room = budget_limit.saturating_sub(outcomes.len());
            to_compile.truncate(room);
            if !to_compile.is_empty() {
                let batch: Vec<SweepPoint> =
                    to_compile.iter().map(|&i| points[i].clone()).collect();
                let batch_outcome = engine.run(&batch);
                nominal_budget = batch_outcome.budget;
                for outcome in batch_outcome.points {
                    match &outcome.result {
                        Ok(result) => {
                            stats.compiled += 1;
                            let objectives = self
                                .config
                                .objectives
                                .iter()
                                .map(|o| o.value(&result.estimate))
                                .collect();
                            frontier.insert(FrontierPoint {
                                label: outcome.label.clone(),
                                pipeline: outcome.pipeline.clone(),
                                objectives,
                                throughput: result.estimate.throughput(),
                                dsp: result.estimate.resources.dsp,
                                bram_18k: result.estimate.resources.bram_18k,
                                generation,
                            });
                        }
                        Err(_) => stats.failed += 1,
                    }
                    outcomes.push(outcome);
                }
            }
            stats.frontier_size = frontier.len();

            // Expansion: the next wave is the unvisited lattice neighborhood
            // of everything probed this generation — pruned points expand
            // too, so the closure reaches every connected candidate and
            // pruning alone provides the savings.
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for &idx in &wave {
                for n in lattice.neighbors(idx) {
                    if !visited[n] {
                        next.insert(n);
                    }
                }
            }
            generations.push(stats);
            wave = next.into_iter().collect();
        }

        Ok(ExploreOutcome {
            points: outcomes,
            frontier,
            generations,
            seeds: seed_labels,
            num_candidates: points.len(),
            probed: visited.iter().filter(|&&v| v).count(),
            pruned: pruned_total,
            budget: nominal_budget,
            adaptive: self.adaptive,
            wall_seconds: start.elapsed().as_secs_f64(),
            persistent_cache: cache.persistent_stats(),
            shared_cache: Some(cache.stats()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HidaOptions, PolybenchKernel, Workload};

    fn grid_points() -> Vec<SweepPoint> {
        let mut points = Vec::new();
        for pf in [1, 4, 16] {
            for tile in [2, 8] {
                let pipeline = format!(
                    "construct,lower,tiling{{factor={tile}}},parallelize{{max-factor={pf},device=zu3eg}}"
                );
                points.push(
                    SweepPoint::new(
                        format!("pf{pf}-tile{tile}"),
                        Workload::PolybenchSized(PolybenchKernel::TwoMm, 32),
                        HidaOptions::polybench(),
                    )
                    .with_pipeline(pipeline),
                );
            }
        }
        points
    }

    #[test]
    fn dominance_is_strict_and_componentwise() {
        assert!(dominates(&[1, 2, 3], &[1, 2, 4]));
        assert!(dominates(&[0, 0, 0], &[1, 1, 1]));
        assert!(!dominates(&[1, 2, 3], &[1, 2, 3]));
        assert!(!dominates(&[1, 5], &[2, 4]));
        assert!(!dominates(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn frontier_keeps_ties_and_prunes_dominated() {
        let mut f = Frontier::new();
        assert!(f.insert(FrontierPoint::from_vector("a", vec![4, 4])));
        assert!(f.insert(FrontierPoint::from_vector("b", vec![2, 6])));
        // Dominated by "a": rejected.
        assert!(!f.insert(FrontierPoint::from_vector("c", vec![5, 5])));
        // Tie with "a": kept.
        assert!(f.insert(FrontierPoint::from_vector("d", vec![4, 4])));
        assert_eq!(f.len(), 3);
        // Dominates "a" and "d": both evicted.
        assert!(f.insert(FrontierPoint::from_vector("e", vec![3, 3])));
        assert_eq!(f.len(), 2);
        assert!(f.would_prune(&[3, 4]));
        assert!(!f.would_prune(&[3, 3]));
        assert!(!f.would_prune(&[1, 9]));
    }

    #[test]
    fn explore_config_parses_the_knob_grammar() {
        assert_eq!(
            ExploreConfig::parse("explore").unwrap(),
            ExploreConfig::default()
        );
        let full = ExploreConfig::parse(
            "explore{budget=24,seed=7,objectives=throughput+dsp,extras=2,max-generations=9}",
        )
        .unwrap();
        assert_eq!(full.budget, Some(24));
        assert_eq!(full.seed, 7);
        assert_eq!(full.objectives, vec![Objective::Throughput, Objective::Dsp]);
        assert_eq!(full.extras, 2);
        assert_eq!(full.max_generations, 9);
        assert!(ExploreConfig::parse("explore{bogus=1}").is_err());
        assert!(ExploreConfig::parse("explore{objectives=speed}").is_err());
        assert!(ExploreConfig::parse("sweep{budget=1}").is_err());
    }

    #[test]
    fn lattice_infers_axes_and_neighbors_from_pipelines() {
        let points = grid_points();
        let lattice = KnobLattice::build(&points).unwrap();
        assert_eq!(lattice.len(), 6);
        assert_eq!(lattice.axes().len(), 2);
        // Candidate order: (pf, tile) = (1,2) (1,8) (4,2) (4,8) (16,2) (16,8).
        // (1,2) touches (1,8) and (4,2).
        assert_eq!(lattice.neighbors(0), vec![1, 2]);
        // (4,8) touches (4,2), (1,8) and (16,8).
        assert_eq!(lattice.neighbors(3), vec![1, 2, 5]);
        // Corners: all four pf/tile extremes; centroid is (4,*) middle row.
        let seeds = lattice.seed_candidates(0, 0);
        assert!(
            seeds.contains(&0) && seeds.contains(&1) && seeds.contains(&4) && seeds.contains(&5)
        );
        // Extra picks are deterministic per seed and grow the set.
        let with_extras = lattice.seed_candidates(7, 1);
        assert_eq!(with_extras, lattice.seed_candidates(7, 1));
        assert!(with_extras.len() >= seeds.len());
    }

    #[test]
    fn lattice_falls_back_to_a_variant_chain_for_mixed_skeletons() {
        let mk = |label: &str, pipeline: &str| {
            SweepPoint::new(
                label,
                Workload::PolybenchSized(PolybenchKernel::TwoMm, 32),
                HidaOptions::polybench(),
            )
            .with_pipeline(pipeline)
        };
        let points = vec![
            mk("a", "construct,lower"),
            mk("b", "construct,fusion,lower"),
            mk("c", "construct,fusion,lower,balance"),
        ];
        let lattice = KnobLattice::build(&points).unwrap();
        assert_eq!(lattice.axes().len(), 1);
        assert_eq!(lattice.axes()[0].name, "variant");
        assert_eq!(lattice.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn explorer_covers_the_exhaustive_frontier_deterministically() {
        let points = grid_points();
        // Exhaustive reference frontier.
        let exhaustive = SweepEngine::new()
            .with_budget(JobBudget::sequential())
            .run(&points);
        assert!(exhaustive.all_ok());
        let mut reference = Frontier::new();
        for p in &exhaustive.points {
            let est = &p.result.as_ref().unwrap().estimate;
            reference.insert(FrontierPoint::from_vector(
                p.label.clone(),
                vec![
                    est.interval_cycles,
                    est.resources.dsp,
                    est.resources.bram_18k,
                ],
            ));
        }

        let outcome = Explorer::new(ExploreConfig::default())
            .with_total_jobs(1)
            .explore(&points)
            .unwrap();
        assert!(outcome.all_ok());
        assert_eq!(outcome.frontier.vectors(), reference.vectors());
        assert_eq!(outcome.probed, points.len());

        // Same seed, different job count: identical frontier, identical
        // generation counters.
        let parallel = Explorer::new(ExploreConfig::default())
            .with_total_jobs(4)
            .explore(&points)
            .unwrap();
        assert_eq!(parallel.frontier.vectors(), outcome.frontier.vectors());
        assert_eq!(parallel.generations, outcome.generations);
        let labels =
            |o: &ExploreOutcome| o.points.iter().map(|p| p.label.clone()).collect::<Vec<_>>();
        assert_eq!(labels(&parallel), labels(&outcome));
    }

    #[test]
    fn explorer_honors_the_compile_budget() {
        let points = grid_points();
        let outcome = Explorer::new(ExploreConfig {
            budget: Some(3),
            ..ExploreConfig::default()
        })
        .with_total_jobs(1)
        .explore(&points)
        .unwrap();
        assert!(outcome.points.len() <= 3);
        assert!(outcome.compiles_saved() >= points.len() - 3);
    }
}
