//! Sweep-level parallel compilation with cross-compilation estimate sharing.
//!
//! HIDA's evaluation is a design-space sweep: dozens of *independent*
//! [`Compiler`] invocations — pipeline-string variants of one workload —
//! whose wall-clock sum, not any single compile, is what users wait for.
//! This module makes the whole sweep the unit of optimization:
//!
//! * [`SweepEngine`] fans [`SweepPoint`]s out over the same work-stealing pool
//!   ([`hida_ir_core::par::run_batch`]) the passes use for per-node work.
//!   Each design point compiles in its own [`Context`](hida_ir_core::Context)
//!   (share-nothing), so the only coordination is the result slot per point —
//!   results come back in declaration order regardless of scheduling.
//! * A [`JobBudget`] composes the two parallelism levels: `pool_jobs` design
//!   points run concurrently, each with `point_jobs` worker threads for its
//!   per-node pass work, and `pool_jobs * point_jobs` never exceeds the
//!   budgeted total — point-level and node-level parallelism compose without
//!   oversubscribing the machine.
//! * A content-addressed [`SharedEstimateCache`] is handed to every point:
//!   per-node QoR estimates are keyed by structural fingerprint and device,
//!   so the 100th ResNet-18 design point re-estimates only the nodes whose
//!   tiling or parallel factors actually changed. The per-node model is a
//!   pure function of exactly the fingerprinted inputs, which is why sweep
//!   results are **byte-identical** to a sequential, share-nothing loop — the
//!   determinism CI enforces.

use crate::{CompilationResult, Compiler, HidaOptions, Workload};
use hida_estimator::shared_cache::{SharedCacheStats, SharedEstimateCache};
use hida_estimator::store::PersistentStoreStats;
use hida_ir_core::par::{default_jobs, run_batch};
use hida_ir_core::{IrResult, ParallelStats};
use std::sync::Arc;
use std::time::Instant;

/// Minimal JSON string escaping for the workspace's hand-rolled report
/// writers (`--stats-json`, `BENCH_sweep.json`; no JSON dependency without
/// registry access): quotes, backslashes and control characters.
pub fn json_escape(raw: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One design point of a sweep: a workload plus the compiler configuration
/// (options and, usually, an explicit pipeline-string variant) to build it
/// with.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Short label identifying the point in reports (e.g. `"pf64-tile8"`).
    pub label: String,
    /// The workload to compile.
    pub workload: Workload,
    /// Compiler options (device, workload construction knobs).
    pub options: HidaOptions,
    /// Explicit textual pipeline overriding the options-derived flow.
    pub pipeline: Option<String>,
}

impl SweepPoint {
    /// Creates a design point compiling `workload` with `options`.
    pub fn new(label: impl Into<String>, workload: Workload, options: HidaOptions) -> Self {
        SweepPoint {
            label: label.into(),
            workload,
            options,
            pipeline: None,
        }
    }

    /// Sets an explicit pipeline-string variant (builder style).
    pub fn with_pipeline(mut self, text: impl Into<String>) -> Self {
        self.pipeline = Some(text.into());
        self
    }

    /// The textual pipeline this point runs: the explicit variant, or the
    /// options-derived flow.
    pub fn pipeline_text(&self) -> String {
        self.pipeline
            .clone()
            .unwrap_or_else(|| self.options.pipeline_text())
    }
}

/// How a sweep's worker-thread budget is split between concurrent design
/// points (`pool_jobs`) and per-node parallelism inside each point
/// (`point_jobs`).
///
/// ```
/// use hida::JobBudget;
///
/// // 8 threads over 12 points: 8 concurrent points, sequential inside.
/// assert_eq!(JobBudget::for_points(8, 12), JobBudget { pool_jobs: 8, point_jobs: 1 });
/// // 8 threads over 2 points: 2 concurrent points, 4 workers each.
/// assert_eq!(JobBudget::for_points(8, 2), JobBudget { pool_jobs: 2, point_jobs: 4 });
/// assert_eq!(JobBudget::for_points(8, 2).total(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobBudget {
    /// Design points compiling concurrently.
    pub pool_jobs: usize,
    /// Worker threads inside each design point (per-node pass work and QoR
    /// estimation).
    pub point_jobs: usize,
}

impl JobBudget {
    /// The fully sequential budget: one point at a time, no worker threads —
    /// the bitwise-reproducibility escape hatch and the deterministic-order
    /// setting for cache-accounting tests.
    pub fn sequential() -> Self {
        JobBudget {
            pool_jobs: 1,
            point_jobs: 1,
        }
    }

    /// Splits `total_jobs` threads over `num_points` design points. Point-
    /// level parallelism is preferred (independent compilations scale
    /// perfectly); leftover capacity becomes per-point worker threads. The
    /// product `pool_jobs * point_jobs` never exceeds `total_jobs`.
    pub fn for_points(total_jobs: usize, num_points: usize) -> Self {
        let total = total_jobs.max(1);
        let pool = total.min(num_points.max(1));
        JobBudget {
            pool_jobs: pool,
            point_jobs: (total / pool).max(1),
        }
    }

    /// The maximum number of threads the budget can occupy at once.
    pub fn total(&self) -> usize {
        self.pool_jobs * self.point_jobs
    }
}

/// Everything produced for one design point.
#[derive(Debug)]
pub struct SweepPointOutcome {
    /// The point's label.
    pub label: String,
    /// The textual pipeline the point ran.
    pub pipeline: String,
    /// Wall-clock seconds this point took (front-end through emission).
    pub seconds: f64,
    /// The compilation result, or the error that stopped it.
    pub result: IrResult<CompilationResult>,
}

/// The result of one sweep run.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-point outcomes, in declaration order.
    pub points: Vec<SweepPointOutcome>,
    /// The budget the sweep ran under.
    pub budget: JobBudget,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Aggregate traffic of the cross-compilation estimate cache (`None` when
    /// sharing was disabled).
    pub shared_cache: Option<SharedCacheStats>,
    /// Traffic of the persistent estimate-store tier (`None` unless the
    /// engine's cache was created with
    /// [`SharedEstimateCache::with_store`]): nonzero hits mean this sweep
    /// reused estimates written by an *earlier process*.
    pub persistent_cache: Option<PersistentStoreStats>,
    /// Worker/steal counters of the sweep-level pool.
    pub pool: ParallelStats,
}

impl SweepOutcome {
    /// True when every point compiled successfully.
    pub fn all_ok(&self) -> bool {
        self.points.iter().all(|p| p.result.is_ok())
    }

    /// Sum of the per-point wall-clock times (the time a sequential loop
    /// would have spent compiling, under the same per-point configuration).
    pub fn point_seconds_total(&self) -> f64 {
        self.points.iter().map(|p| p.seconds).sum()
    }
}

/// Runs a list of independent design points through the compiler, pooled and
/// (by default) sharing per-node estimates across points.
///
/// ```no_run
/// use hida::{HidaOptions, PolybenchKernel, SweepEngine, SweepPoint, Workload};
///
/// let points: Vec<SweepPoint> = [4, 8, 16]
///     .iter()
///     .map(|&factor| {
///         SweepPoint::new(
///             format!("pf{factor}"),
///             Workload::Polybench(PolybenchKernel::TwoMm),
///             HidaOptions {
///                 max_parallel_factor: factor,
///                 ..HidaOptions::polybench()
///             },
///         )
///     })
///     .collect();
/// let outcome = SweepEngine::new().run(&points);
/// assert!(outcome.all_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine {
    budget: Option<JobBudget>,
    total_jobs: Option<usize>,
    share_estimates: bool,
    cache: Option<Arc<SharedEstimateCache>>,
    verification: bool,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// Creates an engine with the default budget (the machine's available
    /// parallelism, split when the sweep runs) and estimate sharing enabled.
    pub fn new() -> Self {
        SweepEngine {
            budget: None,
            total_jobs: None,
            share_estimates: true,
            cache: None,
            verification: true,
        }
    }

    /// Sets an explicit job budget (builder style). Without one, the budget
    /// is [`JobBudget::for_points`] of the machine's available parallelism.
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Splits `total_jobs` threads over the sweep's points when it runs
    /// (builder style); shorthand for a deferred [`JobBudget::for_points`].
    pub fn with_total_jobs(mut self, total_jobs: usize) -> Self {
        self.budget = None;
        self.total_jobs = Some(total_jobs.max(1));
        self
    }

    /// Enables or disables the cross-compilation estimate cache (builder
    /// style). Disabled, every point is a fully isolated compilation — the
    /// share-nothing baseline the cache's results are verified against.
    pub fn with_shared_estimates(mut self, enabled: bool) -> Self {
        self.share_estimates = enabled;
        self
    }

    /// Reuses an existing cache instead of creating a fresh one per run, so
    /// consecutive sweeps (e.g. CLI invocations in one process) keep sharing.
    /// Hand in a cache created with [`SharedEstimateCache::with_store`] to
    /// also persist estimates across *processes*: the outcome's
    /// [`persistent_cache`](SweepOutcome::persistent_cache) then reports the
    /// disk tier's traffic.
    pub fn with_cache(mut self, cache: Arc<SharedEstimateCache>) -> Self {
        self.cache = Some(cache);
        self.share_estimates = true;
        self
    }

    /// Enables or disables IR verification inside every point's compilation
    /// (builder style); maps to [`Compiler::with_verification`]. On by
    /// default — the CLI's `--no-verify` sets `false`.
    pub fn with_verification(mut self, enabled: bool) -> Self {
        self.verification = enabled;
        self
    }

    /// Compiles every point. Points are independent; under a pooled budget
    /// they run concurrently, and the outcome vector is always in declaration
    /// order. Per-point failures are recorded, not propagated — one infeasible
    /// design point must not kill the other 99.
    pub fn run(&self, points: &[SweepPoint]) -> SweepOutcome {
        let budget = self.budget.unwrap_or_else(|| {
            JobBudget::for_points(self.total_jobs.unwrap_or_else(default_jobs), points.len())
        });
        let cache = if self.share_estimates {
            Some(
                self.cache
                    .clone()
                    .unwrap_or_else(|| Arc::new(SharedEstimateCache::new())),
            )
        } else {
            None
        };
        let start = Instant::now();
        let (outcomes, pool) = run_batch(budget.pool_jobs, points, |point| {
            let point_start = Instant::now();
            let mut compiler = Compiler::new(point.options.clone())
                .with_jobs(budget.point_jobs)
                .with_verification(self.verification);
            if let Some(cache) = &cache {
                compiler = compiler.with_shared_estimates(cache.clone());
            }
            if let Some(text) = &point.pipeline {
                compiler = compiler.with_pipeline(text.clone());
            }
            let result = compiler.compile(point.workload);
            SweepPointOutcome {
                label: point.label.clone(),
                pipeline: point.pipeline_text(),
                seconds: point_start.elapsed().as_secs_f64(),
                result,
            }
        });
        SweepOutcome {
            points: outcomes,
            budget,
            wall_seconds: start.elapsed().as_secs_f64(),
            persistent_cache: cache.as_ref().and_then(|c| c.persistent_stats()),
            shared_cache: cache.map(|c| c.stats()),
            pool,
        }
    }
}
