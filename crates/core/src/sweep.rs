//! Sweep-level parallel compilation with cross-compilation estimate sharing.
//!
//! HIDA's evaluation is a design-space sweep: dozens of *independent*
//! [`Compiler`] invocations — pipeline-string variants of one workload —
//! whose wall-clock sum, not any single compile, is what users wait for.
//! This module makes the whole sweep the unit of optimization:
//!
//! * [`SweepEngine`] fans [`SweepPoint`]s out over the same work-stealing pool
//!   ([`hida_ir_core::par::run_batch`]) the passes use for per-node work.
//!   Each design point compiles in its own [`Context`](hida_ir_core::Context)
//!   (share-nothing), so the only coordination is the result slot per point —
//!   results come back in declaration order regardless of scheduling.
//! * A [`JobBudget`] composes the two parallelism levels: `pool_jobs` design
//!   points run concurrently, each with `point_jobs` worker threads for its
//!   per-node pass work, and `pool_jobs * point_jobs` never exceeds the
//!   budgeted total — point-level and node-level parallelism compose without
//!   oversubscribing the machine.
//! * A content-addressed [`SharedEstimateCache`] is handed to every point:
//!   per-node QoR estimates are keyed by structural fingerprint and device,
//!   so the 100th ResNet-18 design point re-estimates only the nodes whose
//!   tiling or parallel factors actually changed. The per-node model is a
//!   pure function of exactly the fingerprinted inputs, which is why sweep
//!   results are **byte-identical** to a sequential, share-nothing loop — the
//!   determinism CI enforces.

use crate::{CompilationResult, Compiler, HidaOptions, Workload};
use hida_estimator::shared_cache::{SharedCacheStats, SharedEstimateCache};
use hida_estimator::store::PersistentStoreStats;
use hida_ir_core::fault::{self, CancelToken, FaultKind, FaultPlan};
use hida_ir_core::par::{default_jobs, run_batch_isolated};
use hida_ir_core::{IrError, IrResult, ParallelStats};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Minimal JSON string escaping for the workspace's hand-rolled report
/// writers (`--stats-json`, `BENCH_sweep.json`; no JSON dependency without
/// registry access): quotes, backslashes and control characters.
pub fn json_escape(raw: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One design point of a sweep: a workload plus the compiler configuration
/// (options and, usually, an explicit pipeline-string variant) to build it
/// with.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Short label identifying the point in reports (e.g. `"pf64-tile8"`).
    pub label: String,
    /// The workload to compile.
    pub workload: Workload,
    /// Compiler options (device, workload construction knobs).
    pub options: HidaOptions,
    /// Explicit textual pipeline overriding the options-derived flow.
    pub pipeline: Option<String>,
}

impl SweepPoint {
    /// Creates a design point compiling `workload` with `options`.
    pub fn new(label: impl Into<String>, workload: Workload, options: HidaOptions) -> Self {
        SweepPoint {
            label: label.into(),
            workload,
            options,
            pipeline: None,
        }
    }

    /// Sets an explicit pipeline-string variant (builder style).
    pub fn with_pipeline(mut self, text: impl Into<String>) -> Self {
        self.pipeline = Some(text.into());
        self
    }

    /// The textual pipeline this point runs: the explicit variant, or the
    /// options-derived flow.
    pub fn pipeline_text(&self) -> String {
        self.pipeline
            .clone()
            .unwrap_or_else(|| self.options.pipeline_text())
    }
}

/// How a sweep's worker-thread budget is split between concurrent design
/// points (`pool_jobs`) and per-node parallelism inside each point
/// (`point_jobs`).
///
/// ```
/// use hida::JobBudget;
///
/// // 8 threads over 12 points: 8 concurrent points, sequential inside.
/// assert_eq!(JobBudget::for_points(8, 12), JobBudget { pool_jobs: 8, point_jobs: 1 });
/// // 8 threads over 2 points: 2 concurrent points, 4 workers each.
/// assert_eq!(JobBudget::for_points(8, 2), JobBudget { pool_jobs: 2, point_jobs: 4 });
/// assert_eq!(JobBudget::for_points(8, 2).total(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobBudget {
    /// Design points compiling concurrently.
    pub pool_jobs: usize,
    /// Worker threads inside each design point (per-node pass work and QoR
    /// estimation).
    pub point_jobs: usize,
}

impl JobBudget {
    /// The fully sequential budget: one point at a time, no worker threads —
    /// the bitwise-reproducibility escape hatch and the deterministic-order
    /// setting for cache-accounting tests.
    pub fn sequential() -> Self {
        JobBudget {
            pool_jobs: 1,
            point_jobs: 1,
        }
    }

    /// Splits `total_jobs` threads over `num_points` design points. Point-
    /// level parallelism is preferred (independent compilations scale
    /// perfectly); leftover capacity becomes per-point worker threads. The
    /// product `pool_jobs * point_jobs` never exceeds `total_jobs`; a budget
    /// smaller than the point count degrades to `pool_jobs = budget,
    /// point_jobs = 1` (never oversubscribed, never a zeroed lane), and an
    /// empty sweep collapses to the sequential budget instead of handing the
    /// whole thread budget to a lane that will never run.
    pub fn for_points(total_jobs: usize, num_points: usize) -> Self {
        if num_points == 0 {
            return JobBudget::sequential();
        }
        let total = total_jobs.max(1);
        let pool = total.min(num_points);
        JobBudget {
            pool_jobs: pool,
            point_jobs: (total / pool).max(1),
        }
    }

    /// The maximum number of threads the budget can occupy at once.
    pub fn total(&self) -> usize {
        self.pool_jobs * self.point_jobs
    }
}

/// A job budget that re-splits `point_jobs` *per design point* as the sweep's
/// pending-point pool drains, subsuming the static [`JobBudget::for_points`]
/// split.
///
/// A static split freezes `pool_jobs x point_jobs` before the first compile,
/// so once fewer points remain than pool lanes, the surplus lanes idle while
/// each straggler still runs with its original (small) `point_jobs`. The
/// adaptive budget instead asks, at the moment a point starts compiling, how
/// many points are still pending: the fewer there are, the more worker
/// threads each one gets (`total_jobs / min(pending, pool_jobs)`), capped by
/// the point's own useful width ([`crate::Workload::node_parallel_width`] —
/// a big DNN point can use node-level parallelism that a two-node PolyBench
/// point cannot).
///
/// Re-splitting never changes *results*: `point_jobs` only sets the worker
/// count for per-node pass work and estimation, which is byte-identical at
/// any job count (the PR 4 determinism guarantee CI enforces).
#[derive(Debug)]
pub struct AdaptiveBudget {
    total_jobs: usize,
    pool_jobs: usize,
    pending: std::sync::atomic::AtomicUsize,
    /// Worker threads handed back by cancelled/timed-out points; future
    /// claims redistribute them (see [`AdaptiveBudget::reclaim`]).
    reclaimed: std::sync::atomic::AtomicUsize,
}

impl AdaptiveBudget {
    /// Creates an adaptive budget for `num_points` points over `total_jobs`
    /// threads. The pool width is fixed (same choice as
    /// [`JobBudget::for_points`]); only the per-point split adapts.
    pub fn new(total_jobs: usize, num_points: usize) -> Self {
        let total = total_jobs.max(1);
        AdaptiveBudget {
            total_jobs: total,
            pool_jobs: JobBudget::for_points(total, num_points).pool_jobs,
            pending: std::sync::atomic::AtomicUsize::new(num_points),
            reclaimed: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Design points compiling concurrently (fixed for the whole sweep).
    pub fn pool_jobs(&self) -> usize {
        self.pool_jobs
    }

    /// The total thread budget being split.
    pub fn total_jobs(&self) -> usize {
        self.total_jobs
    }

    /// Points that have not yet claimed their worker split.
    pub fn pending(&self) -> usize {
        self.pending.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Claims the next point's worker-thread count: `total_jobs` divided by
    /// the number of points that can still compete for threads (never more
    /// than the pool width), capped at `width_cap` — the widest parallelism
    /// the point's workload can actually exploit.
    pub fn claim(&self, width_cap: usize) -> usize {
        let before = self
            .pending
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        let competing = before.max(1).min(self.pool_jobs).max(1);
        let available = self.total_jobs + self.reclaimed.load(std::sync::atomic::Ordering::SeqCst);
        (available / competing).max(1).min(width_cap.max(1))
    }

    /// Hands back the worker threads of a cancelled (or timed-out) point so
    /// subsequent claims can use the freed capacity. Purely a scheduling
    /// lever: results stay byte-identical at any worker count.
    pub fn reclaim(&self, width: usize) {
        self.reclaimed
            .fetch_add(width, std::sync::atomic::Ordering::SeqCst);
    }

    /// The static split this budget started from (for reports).
    pub fn nominal(&self) -> JobBudget {
        JobBudget {
            pool_jobs: self.pool_jobs,
            point_jobs: (self.total_jobs / self.pool_jobs.max(1)).max(1),
        }
    }
}

/// Structured classification of why a design point failed, used by reports,
/// the CLI summary, and the chaos CI assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// A worker or pass panicked; the unwind was isolated.
    Panicked,
    /// A per-point deadline or the whole-run budget cancelled the point.
    TimedOut,
    /// The persistent estimate store degraded fatally for this point.
    StoreDegraded,
    /// An ordinary compilation error (verification, pass failure, ...).
    Failed,
}

impl FailureReason {
    /// Stable report name (`Panicked` / `TimedOut` / `StoreDegraded` /
    /// `Failed`).
    pub fn name(&self) -> &'static str {
        match self {
            FailureReason::Panicked => "Panicked",
            FailureReason::TimedOut => "TimedOut",
            FailureReason::StoreDegraded => "StoreDegraded",
            FailureReason::Failed => "Failed",
        }
    }
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps a structured [`IrError`] onto the report-level [`FailureReason`].
pub fn classify_failure(error: &IrError) -> FailureReason {
    match error {
        IrError::WorkerPanic { .. } => FailureReason::Panicked,
        IrError::Cancelled { .. } => FailureReason::TimedOut,
        IrError::StoreDegraded(_) => FailureReason::StoreDegraded,
        _ => FailureReason::Failed,
    }
}

/// One failed attempt in a point's retry history.
#[derive(Debug, Clone)]
pub struct PointAttempt {
    /// Zero-based attempt index (0 = the original attempt).
    pub attempt: usize,
    /// Structured failure classification.
    pub reason: FailureReason,
    /// The rendered error.
    pub detail: String,
    /// Whether the attempt ran under the degradation ladder (retries run with
    /// `jobs = 1`, verification on, and the shared cache bypassed).
    pub degraded: bool,
}

impl fmt::Display for PointAttempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attempt {}: {} ({})",
            self.attempt, self.reason, self.detail
        )?;
        if self.degraded {
            write!(f, " [degraded]")?;
        }
        Ok(())
    }
}

/// The full attempt history of a point that never converged to a clean
/// result.
#[derive(Debug, Clone)]
pub struct PointFailure {
    /// Every failed attempt, in order. Never empty.
    pub attempts: Vec<PointAttempt>,
}

impl PointFailure {
    /// The final attempt's classification — what the point ultimately died of.
    pub fn reason(&self) -> FailureReason {
        self.attempts
            .last()
            .map(|a| a.reason)
            .unwrap_or(FailureReason::Failed)
    }
}

/// Everything produced for one design point.
#[derive(Debug)]
pub struct SweepPointOutcome {
    /// The point's label.
    pub label: String,
    /// The textual pipeline the point ran.
    pub pipeline: String,
    /// Wall-clock seconds this point took (front-end through emission).
    pub seconds: f64,
    /// Worker threads this point compiled with. Fixed by the budget for
    /// static sweeps; chosen at claim time under an [`AdaptiveBudget`]
    /// (timing detail — results are byte-identical at any value).
    pub point_jobs: usize,
    /// The compilation result, or the (final) error that stopped it.
    pub result: IrResult<CompilationResult>,
    /// Number of attempts made (1 without retries; up to `retries + 1`).
    pub attempts: usize,
    /// The structured attempt history when the point never converged
    /// (`None` for points that compiled cleanly, possibly after retries).
    pub failure: Option<PointFailure>,
}

impl SweepPointOutcome {
    /// The structured reason the point failed, if it did.
    pub fn failure_reason(&self) -> Option<FailureReason> {
        match (&self.failure, &self.result) {
            (Some(failure), _) => Some(failure.reason()),
            (None, Err(e)) => Some(classify_failure(e)),
            (None, Ok(_)) => None,
        }
    }
}

/// The result of one sweep run.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-point outcomes, in declaration order.
    pub points: Vec<SweepPointOutcome>,
    /// The budget the sweep ran under.
    pub budget: JobBudget,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Aggregate traffic of the cross-compilation estimate cache (`None` when
    /// sharing was disabled).
    pub shared_cache: Option<SharedCacheStats>,
    /// Traffic of the persistent estimate-store tier (`None` unless the
    /// engine's cache was created with
    /// [`SharedEstimateCache::with_store`]): nonzero hits mean this sweep
    /// reused estimates written by an *earlier process*.
    pub persistent_cache: Option<PersistentStoreStats>,
    /// Worker/steal counters of the sweep-level pool.
    pub pool: ParallelStats,
    /// Whether per-point worker counts were re-split adaptively as the pool
    /// drained (see [`AdaptiveBudget`]); `budget` then reports the nominal
    /// static split the adaptive schedule started from.
    pub adaptive: bool,
}

impl SweepOutcome {
    /// True when every point compiled successfully.
    pub fn all_ok(&self) -> bool {
        self.points.iter().all(|p| p.result.is_ok())
    }

    /// Labels of the points whose compilation failed, in declaration order
    /// (the CLI's failure summary and nonzero-exit decision).
    pub fn failed_labels(&self) -> Vec<&str> {
        self.points
            .iter()
            .filter(|p| p.result.is_err())
            .map(|p| p.label.as_str())
            .collect()
    }

    /// Sum of the per-point wall-clock times (the time a sequential loop
    /// would have spent compiling, under the same per-point configuration).
    pub fn point_seconds_total(&self) -> f64 {
        self.points.iter().map(|p| p.seconds).sum()
    }
}

/// Runs a list of independent design points through the compiler, pooled and
/// (by default) sharing per-node estimates across points.
///
/// ```no_run
/// use hida::{HidaOptions, PolybenchKernel, SweepEngine, SweepPoint, Workload};
///
/// let points: Vec<SweepPoint> = [4, 8, 16]
///     .iter()
///     .map(|&factor| {
///         SweepPoint::new(
///             format!("pf{factor}"),
///             Workload::Polybench(PolybenchKernel::TwoMm),
///             HidaOptions {
///                 max_parallel_factor: factor,
///                 ..HidaOptions::polybench()
///             },
///         )
///     })
///     .collect();
/// let outcome = SweepEngine::new().run(&points);
/// assert!(outcome.all_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine {
    budget: Option<JobBudget>,
    total_jobs: Option<usize>,
    share_estimates: bool,
    cache: Option<Arc<SharedEstimateCache>>,
    verification: bool,
    adaptive: bool,
    retries: usize,
    deadline_ms: Option<u64>,
    run_budget_ms: Option<u64>,
    fault_plan: Option<FaultPlan>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// Creates an engine with the default budget (the machine's available
    /// parallelism, split when the sweep runs) and estimate sharing enabled.
    pub fn new() -> Self {
        SweepEngine {
            budget: None,
            total_jobs: None,
            share_estimates: true,
            cache: None,
            verification: true,
            adaptive: false,
            retries: 0,
            deadline_ms: None,
            run_budget_ms: None,
            fault_plan: None,
        }
    }

    /// Sets the retry budget per point (builder style). A failed or timed-out
    /// point re-compiles up to `retries` more times under the degradation
    /// ladder — `jobs = 1`, verification forced on, shared cache bypassed —
    /// so transient faults converge to a clean result and persistent ones to
    /// a structured [`PointFailure`] carrying the full attempt history.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Sets a per-point deadline in milliseconds (builder style). Work stops
    /// at the next cancellation checkpoint (pass boundary, wave boundary, or
    /// estimator node loop) and the point reports a `TimedOut` outcome.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Sets a whole-run wall-clock budget in milliseconds (builder style):
    /// one deadline shared by every point, chained above the per-point
    /// deadlines. Points that have not finished when it expires stop at their
    /// next checkpoint with a `TimedOut` outcome.
    pub fn with_run_budget_ms(mut self, budget_ms: u64) -> Self {
        self.run_budget_ms = Some(budget_ms);
        self
    }

    /// Arms a deterministic fault-injection plan (builder style): faults are
    /// assigned to points by seeded label shuffle — independent of job count
    /// and scheduling — and fire at named sites inside the afflicted points'
    /// compilations. Used by the chaos CI stage and `--inject-faults`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Sets an explicit job budget (builder style). Without one, the budget
    /// is [`JobBudget::for_points`] of the machine's available parallelism.
    /// An explicit budget disables adaptive re-splitting.
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = Some(budget);
        self.adaptive = false;
        self
    }

    /// Enables per-point re-splitting of the worker budget as the pool drains
    /// (builder style): each point claims its `point_jobs` from an
    /// [`AdaptiveBudget`] when it starts compiling, capped by its workload's
    /// [`Workload::node_parallel_width`]. Results are byte-identical to the
    /// static split; only the thread schedule (and therefore wall clock)
    /// changes.
    pub fn with_adaptive_budget(mut self, enabled: bool) -> Self {
        self.adaptive = enabled;
        if enabled {
            self.budget = None;
        }
        self
    }

    /// Splits `total_jobs` threads over the sweep's points when it runs
    /// (builder style); shorthand for a deferred [`JobBudget::for_points`].
    pub fn with_total_jobs(mut self, total_jobs: usize) -> Self {
        self.budget = None;
        self.total_jobs = Some(total_jobs.max(1));
        self
    }

    /// Enables or disables the cross-compilation estimate cache (builder
    /// style). Disabled, every point is a fully isolated compilation — the
    /// share-nothing baseline the cache's results are verified against.
    pub fn with_shared_estimates(mut self, enabled: bool) -> Self {
        self.share_estimates = enabled;
        self
    }

    /// Reuses an existing cache instead of creating a fresh one per run, so
    /// consecutive sweeps (e.g. CLI invocations in one process) keep sharing.
    /// Hand in a cache created with [`SharedEstimateCache::with_store`] to
    /// also persist estimates across *processes*: the outcome's
    /// [`persistent_cache`](SweepOutcome::persistent_cache) then reports the
    /// disk tier's traffic.
    pub fn with_cache(mut self, cache: Arc<SharedEstimateCache>) -> Self {
        self.cache = Some(cache);
        self.share_estimates = true;
        self
    }

    /// Enables or disables IR verification inside every point's compilation
    /// (builder style); maps to [`Compiler::with_verification`]. On by
    /// default — the CLI's `--no-verify` sets `false`.
    pub fn with_verification(mut self, enabled: bool) -> Self {
        self.verification = enabled;
        self
    }

    /// Compiles every point. Points are independent; under a pooled budget
    /// they run concurrently, and the outcome vector is always in declaration
    /// order. Per-point failures are recorded, not propagated — one infeasible
    /// design point must not kill the other 99.
    pub fn run(&self, points: &[SweepPoint]) -> SweepOutcome {
        let total_jobs = self.total_jobs.unwrap_or_else(default_jobs);
        let adaptive = self
            .adaptive
            .then(|| AdaptiveBudget::new(total_jobs, points.len()));
        let budget = match &adaptive {
            Some(a) => a.nominal(),
            None => self
                .budget
                .unwrap_or_else(|| JobBudget::for_points(total_jobs, points.len())),
        };
        let cache = if self.share_estimates {
            Some(
                self.cache
                    .clone()
                    .unwrap_or_else(|| Arc::new(SharedEstimateCache::new())),
            )
        } else {
            None
        };
        // The run-level token carries the whole-run wall-clock budget; every
        // point attempt gets a child token chaining its own deadline below it.
        let run_token = match self.run_budget_ms {
            Some(budget_ms) => CancelToken::with_deadline_ms(budget_ms),
            None => CancelToken::new(),
        };
        // Fault assignment is a seeded shuffle of the *labels*, computed once
        // before any point runs — which points are afflicted is independent
        // of job count and thread scheduling.
        let assignments: Option<BTreeMap<String, FaultKind>> =
            self.fault_plan.as_ref().map(|plan| {
                let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
                plan.assign(&labels)
            });
        let start = Instant::now();
        let (results, pool) = run_batch_isolated(budget.pool_jobs, points, |point| {
            let armed = assignments
                .as_ref()
                .and_then(|map| map.get(&point.label))
                .and_then(|&kind| self.fault_plan.as_ref().map(|plan| plan.arm(kind)));
            self.run_point(
                point,
                &budget,
                adaptive.as_ref(),
                cache.as_ref(),
                &run_token,
                armed,
            )
        });
        // `run_point` isolates every attempt itself, so a fault here means a
        // panic escaped *between* attempts; synthesize a failed outcome
        // rather than aborting the other points.
        let outcomes: Vec<SweepPointOutcome> = results
            .into_iter()
            .zip(points)
            .map(|(result, point)| match result {
                Ok(outcome) => outcome,
                Err(worker_fault) => {
                    let site = format!("sweep point '{}'", point.label);
                    let error = if worker_fault.cancelled {
                        IrError::Cancelled {
                            site,
                            detail: worker_fault.message.clone(),
                        }
                    } else {
                        IrError::WorkerPanic {
                            site,
                            message: worker_fault.message.clone(),
                        }
                    };
                    let reason = classify_failure(&error);
                    SweepPointOutcome {
                        label: point.label.clone(),
                        pipeline: point.pipeline_text(),
                        seconds: 0.0,
                        point_jobs: 1,
                        attempts: 1,
                        failure: Some(PointFailure {
                            attempts: vec![PointAttempt {
                                attempt: 0,
                                reason,
                                detail: worker_fault.message,
                                degraded: false,
                            }],
                        }),
                        result: Err(error),
                    }
                }
            })
            .collect();
        SweepOutcome {
            points: outcomes,
            budget,
            wall_seconds: start.elapsed().as_secs_f64(),
            persistent_cache: cache.as_ref().and_then(|c| c.persistent_stats()),
            shared_cache: cache.map(|c| c.stats()),
            pool,
            adaptive: adaptive.is_some(),
        }
    }

    /// Compiles one point, retrying under the degradation ladder. Every
    /// attempt runs under its own cancellation token (per-point deadline
    /// chained below the run budget) and an installed fault context, with the
    /// whole compilation wrapped in `catch_unwind` — panics, cancellations
    /// and store degradations all land as structured [`PointAttempt`]s.
    fn run_point(
        &self,
        point: &SweepPoint,
        budget: &JobBudget,
        adaptive: Option<&AdaptiveBudget>,
        cache: Option<&Arc<SharedEstimateCache>>,
        run_token: &CancelToken,
        armed: Option<fault::PointFaults>,
    ) -> SweepPointOutcome {
        let point_start = Instant::now();
        let mut history: Vec<PointAttempt> = Vec::new();
        let mut last_error = None;
        let mut attempts = 0;
        for attempt in 0..=self.retries {
            attempts = attempt + 1;
            // Degradation ladder for retries: one worker thread (no pool
            // interleaving), verification forced on (catch IR corruption a
            // crashed attempt may have exposed), shared cache bypassed (a
            // poisoned or degraded cache cannot re-fail the retry).
            let degraded = attempt > 0;
            let point_jobs = if degraded {
                1
            } else {
                match adaptive {
                    Some(a) => a.claim(point.workload.node_parallel_width()),
                    None => budget.point_jobs,
                }
            };
            let mut compiler = Compiler::new(point.options.clone())
                .with_jobs(point_jobs)
                .with_verification(if degraded { true } else { self.verification });
            if !degraded {
                if let Some(cache) = cache {
                    compiler = compiler.with_shared_estimates(Arc::clone(cache));
                }
            }
            if let Some(text) = &point.pipeline {
                compiler = compiler.with_pipeline(text.clone());
            }
            // Transient plans fire on the first attempt only (so retries
            // recover); persistent plans re-arm every attempt.
            let attempt_faults = match &armed {
                Some(faults)
                    if attempt == 0 || !self.fault_plan.as_ref().is_some_and(|p| p.transient) =>
                {
                    Some(faults.clone())
                }
                _ => None,
            };
            let token = run_token.child(self.deadline_ms);
            let result = {
                let _guard = fault::install_point(token, attempt_faults);
                match catch_unwind(AssertUnwindSafe(|| {
                    compiler.compile(point.workload.clone())
                })) {
                    Ok(result) => result,
                    Err(payload) => Err(fault::error_from_panic(
                        &format!("sweep point '{}'", point.label),
                        payload,
                    )),
                }
            };
            match result {
                Ok(compiled) => {
                    return SweepPointOutcome {
                        label: point.label.clone(),
                        pipeline: point.pipeline_text(),
                        seconds: point_start.elapsed().as_secs_f64(),
                        point_jobs,
                        attempts,
                        failure: None,
                        result: Ok(compiled),
                    };
                }
                Err(error) => {
                    let reason = classify_failure(&error);
                    if reason == FailureReason::TimedOut {
                        if let Some(a) = adaptive {
                            a.reclaim(point_jobs);
                        }
                    }
                    history.push(PointAttempt {
                        attempt,
                        reason,
                        detail: error.to_string(),
                        degraded,
                    });
                    last_error = Some(error);
                    // A run-budget cancellation dooms every further attempt;
                    // stop retrying instead of burning checkpoints.
                    if run_token.is_cancelled() {
                        break;
                    }
                }
            }
        }
        SweepPointOutcome {
            label: point.label.clone(),
            pipeline: point.pipeline_text(),
            seconds: point_start.elapsed().as_secs_f64(),
            point_jobs: 1,
            attempts,
            failure: Some(PointFailure { attempts: history }),
            result: Err(last_error.unwrap_or_else(|| {
                IrError::pass_failed("sweep", "point failed without an attempt record")
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolybenchKernel;

    fn small_points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                SweepPoint::new(
                    format!("p{:02}", i + 1),
                    Workload::PolybenchSized(PolybenchKernel::TwoMm, 32),
                    HidaOptions {
                        max_parallel_factor: 4 << i,
                        ..HidaOptions::polybench()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn classify_failure_maps_structured_variants() {
        assert_eq!(
            classify_failure(&IrError::WorkerPanic {
                site: "s".into(),
                message: "m".into()
            }),
            FailureReason::Panicked
        );
        assert_eq!(
            classify_failure(&IrError::Cancelled {
                site: "s".into(),
                detail: "d".into()
            }),
            FailureReason::TimedOut
        );
        assert_eq!(
            classify_failure(&IrError::StoreDegraded("x".into())),
            FailureReason::StoreDegraded
        );
        assert_eq!(
            classify_failure(&IrError::verification("bad")),
            FailureReason::Failed
        );
        assert_eq!(FailureReason::Panicked.to_string(), "Panicked");
    }

    #[test]
    fn injected_pass_panic_is_isolated_and_schedule_independent() {
        hida_ir_core::fault::silence_expected_panics();
        let points = small_points(4);
        let plan = FaultPlan::parse("seed=7,pass-panic=1").unwrap();
        let run = |jobs: usize| {
            SweepEngine::new()
                .with_total_jobs(jobs)
                .with_fault_plan(plan.clone())
                .run(&points)
        };
        let sequential = run(1);
        let parallel = run(4);
        // Which point is afflicted is a pure function of (seed, labels):
        // identical at any job count.
        assert_eq!(sequential.failed_labels(), parallel.failed_labels());
        assert_eq!(sequential.failed_labels().len(), 1);
        assert!(!sequential.all_ok());
        let failed = sequential
            .points
            .iter()
            .find(|p| p.result.is_err())
            .unwrap();
        assert_eq!(failed.failure_reason(), Some(FailureReason::Panicked));
        let failure = failed.failure.as_ref().unwrap();
        assert_eq!(failure.attempts.len(), 1);
        assert!(failure.attempts[0].detail.contains("injected"));
        // The surviving points compiled, and their QoR is byte-identical to a
        // fault-free run — isolation, not contamination.
        let clean = SweepEngine::new().with_total_jobs(1).run(&points);
        assert!(clean.all_ok());
        for (chaos, baseline) in sequential.points.iter().zip(&clean.points) {
            if let (Ok(x), Ok(y)) = (&chaos.result, &baseline.result) {
                assert_eq!(x.estimate, y.estimate);
                assert_eq!(x.hls_cpp, y.hls_cpp);
            }
        }
    }

    #[test]
    fn transient_faults_converge_under_retries() {
        hida_ir_core::fault::silence_expected_panics();
        let points = small_points(3);
        let plan = FaultPlan::parse("seed=3,pass-panic=1,transient").unwrap();
        let outcome = SweepEngine::new()
            .with_total_jobs(1)
            .with_fault_plan(plan)
            .with_retries(1)
            .run(&points);
        assert!(outcome.all_ok(), "failed: {:?}", outcome.failed_labels());
        let retried = outcome
            .points
            .iter()
            .find(|p| p.attempts == 2)
            .expect("the afflicted point must have retried");
        assert!(retried.failure.is_none());
        assert!(retried.result.is_ok());
    }

    #[test]
    fn injected_store_read_fault_reports_store_degraded() {
        let points = small_points(2);
        let plan = FaultPlan::parse("seed=1,store-read=1").unwrap();
        let outcome = SweepEngine::new()
            .with_total_jobs(1)
            .with_fault_plan(plan)
            .run(&points);
        assert_eq!(outcome.failed_labels().len(), 1);
        let failed = outcome.points.iter().find(|p| p.result.is_err()).unwrap();
        assert_eq!(failed.failure_reason(), Some(FailureReason::StoreDegraded));
        assert!(matches!(&failed.result, Err(IrError::StoreDegraded(_))));
    }

    #[test]
    fn stalled_point_hits_its_deadline_and_reports_timed_out() {
        hida_ir_core::fault::silence_expected_panics();
        let points = small_points(2);
        let plan = FaultPlan::parse("seed=5,stall=1,stall-ms=300").unwrap();
        let outcome = SweepEngine::new()
            .with_total_jobs(1)
            .with_deadline_ms(50)
            .with_fault_plan(plan)
            .run(&points);
        assert_eq!(outcome.failed_labels().len(), 1, "{:?}", outcome.points);
        let failed = outcome.points.iter().find(|p| p.result.is_err()).unwrap();
        assert_eq!(failed.failure_reason(), Some(FailureReason::TimedOut));
        let detail = &failed.failure.as_ref().unwrap().attempts[0].detail;
        assert!(detail.contains("deadline"), "{detail}");
    }

    #[test]
    fn for_points_handles_degenerate_budgets() {
        // Zero budget clamps to one thread.
        assert_eq!(JobBudget::for_points(0, 12), JobBudget::sequential());
        // One thread is always the sequential split.
        assert_eq!(JobBudget::for_points(1, 12), JobBudget::sequential());
        // Budget smaller than the point count: one lane per thread, 1-wide.
        let small = JobBudget::for_points(3, 12);
        assert_eq!(
            small,
            JobBudget {
                pool_jobs: 3,
                point_jobs: 1
            }
        );
        assert!(small.total() <= 3);
        // Non-divisible budget never oversubscribes.
        let uneven = JobBudget::for_points(7, 3);
        assert_eq!(uneven.pool_jobs, 3);
        assert_eq!(uneven.point_jobs, 2);
        assert!(uneven.total() <= 7);
        // No lane is ever zeroed.
        for total in 0..10 {
            for points in 0..10 {
                let b = JobBudget::for_points(total, points);
                assert!(
                    b.pool_jobs >= 1 && b.point_jobs >= 1,
                    "{total}/{points}: {b:?}"
                );
                assert!(b.total() <= total.max(1), "{total}/{points}: {b:?}");
            }
        }
        // An empty sweep gets the sequential budget, not an 8-wide idle lane.
        assert_eq!(JobBudget::for_points(8, 0), JobBudget::sequential());
    }

    #[test]
    fn adaptive_budget_widens_points_as_the_pool_drains() {
        // 8 threads over 4 points: lanes start at the static 2-wide split,
        // then widen claim by claim as fewer points remain pending, until the
        // last straggler gets the whole budget.
        let budget = AdaptiveBudget::new(8, 4);
        assert_eq!(budget.pool_jobs(), 4);
        assert_eq!(budget.nominal(), JobBudget::for_points(8, 4));
        assert_eq!(budget.claim(usize::MAX), 2); // 4 pending: 8/4
        assert_eq!(budget.claim(usize::MAX), 2); // 3 pending: 8/3
        assert_eq!(budget.claim(usize::MAX), 4); // 2 pending: 8/2
        assert_eq!(budget.claim(usize::MAX), 8); // last point: everything
        assert_eq!(budget.pending(), 0);
        // Claims past the pool never panic and never hand out zero.
        assert!(budget.claim(usize::MAX) >= 1);
    }

    #[test]
    fn reclaimed_jobs_widen_future_claims() {
        let budget = AdaptiveBudget::new(8, 4);
        assert_eq!(budget.claim(usize::MAX), 2); // 4 pending: 8/4
        budget.reclaim(4); // a cancelled point hands back its threads
        assert_eq!(budget.claim(usize::MAX), 4); // 3 pending: (8+4)/3
    }

    #[test]
    fn adaptive_budget_respects_the_workload_width_cap() {
        let budget = AdaptiveBudget::new(16, 1);
        // A narrow PolyBench-style point cannot use 16 workers.
        assert_eq!(budget.claim(2), 2);
        let budget = AdaptiveBudget::new(16, 1);
        assert_eq!(budget.claim(20), 16);
        // Zero caps are clamped, not propagated.
        let budget = AdaptiveBudget::new(4, 1);
        assert_eq!(budget.claim(0), 1);
    }
}
