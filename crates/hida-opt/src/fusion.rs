//! Functional dataflow task fusion (Algorithm 2).
//!
//! Two mechanisms reduce the number of dataflow tasks while balancing their
//! workloads:
//!
//! 1. **Pattern-driven fusion** — a worklist repeatedly merges adjacent tasks that
//!    match a profitable pattern (element-wise consumers like ReLU/Add/Flatten fuse
//!    into their producer, pooling fuses into the preceding convolution), until no
//!    pattern matches.
//! 2. **Criticality-driven fusion** — the two least-critical (lowest-intensity)
//!    adjacent tasks are merged while doing so does not create a new critical task,
//!    re-balancing the dataflow.
//!
//! Finally the dispatch/task hierarchy is canonicalized (single-task dispatches and
//! single-op tasks are simplified).

use hida_dataflow_ir::functional::{unwrap_op, wrap_ops, DispatchOp, TaskOp};
use hida_dataflow_ir::op_names as hida_ops;
use hida_dialects::analysis::ComputeProfile;
use hida_dialects::linalg;
use hida_ir_core::{AnalysisManager, Context, IrResult, OpId};

/// A profitable task-fusion pattern: decides whether `task` should be fused with the
/// adjacent `next` task. `Send + Sync` because pattern sets live inside pass
/// instances, which the parallel pass manager shares with worker threads.
pub trait FusionPattern: Send + Sync {
    /// Pattern name for diagnostics.
    fn name(&self) -> &str;

    /// Returns true when fusing `task` with `next` is profitable.
    fn matches(&self, ctx: &Context, task: TaskOp, next: TaskOp) -> bool;
}

/// Fuses element-wise tasks (ReLU, residual Add, Flatten) into their producer.
pub struct ElementwiseFusion;

impl FusionPattern for ElementwiseFusion {
    fn name(&self) -> &str {
        "elementwise-fusion"
    }

    fn matches(&self, ctx: &Context, _task: TaskOp, next: TaskOp) -> bool {
        // The consumer task must consist purely of element-wise layers; otherwise we
        // would keep gluing heavy compute tasks together through their activations.
        let mut has_elementwise = false;
        for &op in &ctx.body_ops(next.id()) {
            let name = ctx.op(op).name.as_str();
            if name == linalg::RELU || name == linalg::FLATTEN || name == linalg::ADD {
                has_elementwise = true;
            } else if linalg::is_linalg_op_name(name) || ctx.op(op).is(hida_dialects::loops::FOR) {
                return false;
            }
        }
        has_elementwise
    }
}

/// Fuses a pooling task into the preceding convolution task (the LeNet case-study
/// grouping of Table 1: Conv+ReLU+Pool form one task).
pub struct ConvPoolFusion;

impl FusionPattern for ConvPoolFusion {
    fn name(&self) -> &str {
        "conv-pool-fusion"
    }

    fn matches(&self, ctx: &Context, task: TaskOp, next: TaskOp) -> bool {
        let task_has_conv = ctx.body_ops(task.id()).iter().any(|&op| {
            let name = ctx.op(op).name.as_str();
            name == linalg::CONV2D || name == linalg::DEPTHWISE_CONV2D
        });
        // The pooling task must contain only pooling / element-wise layers: fusing a
        // pool that already leads another convolution would chain heavy tasks.
        let mut next_has_pool = false;
        for &op in &ctx.body_ops(next.id()) {
            let name = ctx.op(op).name.as_str();
            if name == linalg::MAXPOOL2D || name == linalg::AVGPOOL2D {
                next_has_pool = true;
            } else if name == linalg::CONV2D
                || name == linalg::DEPTHWISE_CONV2D
                || name == linalg::LINEAR
                || ctx.op(op).is(hida_dialects::loops::FOR)
            {
                return false;
            }
        }
        task_has_conv && next_has_pool
    }
}

/// The default profitable fusion patterns used by HIDA.
pub fn default_fusion_patterns() -> Vec<Box<dyn FusionPattern>> {
    vec![Box::new(ElementwiseFusion), Box::new(ConvPoolFusion)]
}

/// Computational intensity of a task (total scalar operations), fetched through
/// the analysis cache so the criticality loop re-queries surviving tasks for
/// free.
pub fn task_intensity(ctx: &Context, analyses: &mut AnalysisManager, task: TaskOp) -> i64 {
    analyses.get::<ComputeProfile>(ctx, task.id()).intensity
}

/// Drops cached analyses of every op (and enclosing task/func) that consumes a
/// result of `producer`: fusing rewires those consumers' operands to the fused
/// task's fresh result values, so their cached profiles reference dead values.
fn invalidate_consumers(ctx: &Context, analyses: &mut AnalysisManager, producer: TaskOp) {
    for &result in &ctx.op(producer.id()).results {
        for user in ctx.users_of(result) {
            analyses.invalidate_root(user);
            for ancestor in ctx.ancestors(user) {
                analyses.invalidate_root(ancestor);
            }
        }
    }
}

/// Fuses two adjacent tasks of the same dispatch into one new task.
/// Returns the fused task.
pub fn fuse_two_tasks(ctx: &mut Context, first: TaskOp, second: TaskOp) -> TaskOp {
    let name = format!("{}+{}", first.name(ctx), second.name(ctx));
    let merged = wrap_ops(ctx, &[first.id(), second.id()], hida_ops::TASK, &name);
    // Flatten: pull the two old tasks' contents directly into the new task so the
    // result is a single-level task rather than a task of tasks.
    let inner_tasks: Vec<OpId> = ctx
        .body_ops(merged)
        .into_iter()
        .filter(|&o| ctx.op(o).is(hida_ops::TASK))
        .collect();
    for t in inner_tasks {
        unwrap_op(ctx, t);
    }
    TaskOp(merged)
}

/// Runs task fusion (Algorithm 2) over every dispatch below `root`.
///
/// # Errors
/// Currently infallible; the `Result` keeps the pass signature uniform.
pub fn fuse_tasks(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    root: OpId,
    patterns: &[Box<dyn FusionPattern>],
) -> IrResult<()> {
    // Pre-order: partition each dispatch top-down.
    let dispatches: Vec<OpId> = hida_ir_core::walk::collect_preorder(ctx, root)
        .into_iter()
        .filter(|&op| ctx.is_alive(op) && ctx.op(op).is(hida_ops::DISPATCH))
        .collect();
    for dispatch in dispatches {
        if !ctx.is_alive(dispatch) {
            continue;
        }
        fuse_dispatch(ctx, analyses, DispatchOp(dispatch), patterns);
    }
    canonicalize(ctx, analyses, root);
    Ok(())
}

fn fuse_dispatch(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    dispatch: DispatchOp,
    patterns: &[Box<dyn FusionPattern>],
) {
    // Pattern-driven worklist: fuse adjacent tasks until no pattern matches.
    let mut changed = true;
    while changed {
        changed = false;
        let tasks = dispatch.tasks(ctx);
        for window in tasks.windows(2) {
            let (a, b) = (window[0], window[1]);
            if patterns.iter().any(|p| p.matches(ctx, a, b)) {
                let merged = fuse_two_tasks(ctx, a, b);
                invalidate_consumers(ctx, analyses, merged);
                changed = true;
                break;
            }
        }
    }

    // Criticality-driven re-balancing: repeatedly fuse the two least-critical
    // adjacent tasks while the result stays below the critical task's intensity.
    loop {
        let tasks = dispatch.tasks(ctx);
        if tasks.len() < 3 {
            break;
        }
        let intensities: Vec<i64> = tasks
            .iter()
            .map(|&t| task_intensity(ctx, analyses, t))
            .collect();
        let critical = intensities.iter().copied().max().unwrap_or(0);
        // Find the adjacent pair with the smallest combined intensity.
        let mut best: Option<(usize, i64)> = None;
        for i in 0..tasks.len() - 1 {
            let combined = intensities[i] + intensities[i + 1];
            if best.map(|(_, b)| combined < b).unwrap_or(true) {
                best = Some((i, combined));
            }
        }
        match best {
            Some((i, combined)) if combined <= critical => {
                let merged = fuse_two_tasks(ctx, tasks[i], tasks[i + 1]);
                invalidate_consumers(ctx, analyses, merged);
            }
            _ => break,
        }
    }
}

/// Canonicalizes the dispatch/task hierarchy: dispatches containing a single task are
/// dissolved, as are tasks that directly contain a single nested task.
///
/// Unwrapping moves ops into the enclosing body, so the cached analyses of every
/// ancestor of an unwrapped op are dropped through `analyses`.
pub fn canonicalize(ctx: &mut Context, analyses: &mut AnalysisManager, root: OpId) {
    // Tasks wrapping exactly one nested task collapse into one level.
    loop {
        let candidate = hida_ir_core::walk::collect_preorder(ctx, root)
            .into_iter()
            .filter(|&op| ctx.is_alive(op) && ctx.op(op).is(hida_ops::TASK))
            .find(|&task| {
                let inner: Vec<OpId> = ctx
                    .body_ops(task)
                    .into_iter()
                    .filter(|&o| !ctx.op(o).is(hida_ops::YIELD))
                    .collect();
                inner.len() == 1 && ctx.op(inner[0]).is(hida_ops::TASK)
            });
        match candidate {
            Some(task) => {
                let inner = ctx
                    .body_ops(task)
                    .into_iter()
                    .find(|&o| ctx.op(o).is(hida_ops::TASK))
                    .unwrap();
                unwrap_op(ctx, inner);
                analyses.invalidate_root(task);
                for ancestor in ctx.ancestors(task) {
                    analyses.invalidate_root(ancestor);
                }
            }
            None => break,
        }
    }
    // Dispatches with a single task dissolve entirely (no dataflow to exploit).
    let single_task_dispatches: Vec<OpId> = hida_ir_core::walk::collect_preorder(ctx, root)
        .into_iter()
        .filter(|&op| {
            ctx.is_alive(op)
                && ctx.op(op).is(hida_ops::DISPATCH)
                && DispatchOp(op).tasks(ctx).len() <= 1
        })
        .collect();
    for dispatch in single_task_dispatches {
        if !ctx.is_alive(dispatch) {
            continue;
        }
        for ancestor in ctx.ancestors(dispatch) {
            analyses.invalidate_root(ancestor);
        }
        for task in DispatchOp(dispatch).tasks(ctx) {
            unwrap_op(ctx, task.id());
        }
        unwrap_op(ctx, dispatch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_functional_dataflow;
    use hida_frontend::nn::{build_model, Model};
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};

    fn lenet_dispatch(ctx: &mut Context) -> (OpId, DispatchOp) {
        let module = ctx.create_module("m");
        let func = build_model(ctx, module, Model::LeNet);
        construct_functional_dataflow(ctx, func).unwrap();
        fuse_tasks(
            ctx,
            &mut AnalysisManager::new(),
            func,
            &default_fusion_patterns(),
        )
        .unwrap();
        let d = ctx.collect_ops(func, hida_ops::DISPATCH)[0];
        (func, DispatchOp(d))
    }

    #[test]
    fn lenet_fuses_into_conv_relu_pool_tasks() {
        let mut ctx = Context::new();
        let (func, dispatch) = lenet_dispatch(&mut ctx);
        let tasks = dispatch.tasks(&ctx);
        // 12 single-layer tasks fuse down to the Table 1 grouping scale (4-6 tasks).
        assert!(
            tasks.len() >= 3 && tasks.len() <= 6,
            "expected 3-6 fused tasks, got {}",
            tasks.len()
        );
        // At least one task combines a convolution with a pooling layer.
        let has_conv_pool_task = tasks.iter().any(|t| {
            let ops = ctx.collect_ops(t.id(), linalg::CONV2D).len()
                + ctx.collect_ops(t.id(), linalg::DEPTHWISE_CONV2D).len();
            let pools = ctx.collect_ops(t.id(), linalg::MAXPOOL2D).len();
            ops > 0 && pools > 0
        });
        assert!(has_conv_pool_task);
        hida_ir_core::verifier::verify(&ctx, ctx.ancestors(func).pop().unwrap()).unwrap();
    }

    #[test]
    fn fusion_balances_intensities() {
        let mut ctx = Context::new();
        let (_, dispatch) = lenet_dispatch(&mut ctx);
        let tasks = dispatch.tasks(&ctx);
        let mut analyses = AnalysisManager::new();
        let intensities: Vec<i64> = tasks
            .iter()
            .map(|&t| task_intensity(&ctx, &mut analyses, t))
            .collect();
        let max = *intensities.iter().max().unwrap();
        let min = *intensities.iter().min().unwrap();
        // The fused dataflow should not contain tasks thousands of times lighter than
        // the critical task (the unfused ReLU-only tasks were).
        assert!(min * 10_000 > max, "imbalance too high: {intensities:?}");
    }

    #[test]
    fn single_loop_kernels_are_untouched_by_fusion() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::Symm, 16);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        fuse_tasks(
            &mut ctx,
            &mut AnalysisManager::new(),
            func,
            &default_fusion_patterns(),
        )
        .unwrap();
        assert!(ctx.collect_ops(func, hida_ops::DISPATCH).is_empty());
        assert!(ctx.collect_ops(func, hida_ops::TASK).is_empty());
    }

    #[test]
    fn multi_nest_kernel_keeps_separate_compute_tasks() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::ThreeMm, 16);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        fuse_tasks(
            &mut ctx,
            &mut AnalysisManager::new(),
            func,
            &default_fusion_patterns(),
        )
        .unwrap();
        let dispatch = DispatchOp(ctx.collect_ops(func, hida_ops::DISPATCH)[0]);
        // Three equally heavy matmuls: criticality fusion must not collapse them.
        assert_eq!(dispatch.tasks(&ctx).len(), 3);
    }

    #[test]
    fn fuse_two_tasks_produces_single_level_task() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 8);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        let dispatch = DispatchOp(ctx.collect_ops(func, hida_ops::DISPATCH)[0]);
        let tasks = dispatch.tasks(&ctx);
        let fused = fuse_two_tasks(&mut ctx, tasks[0], tasks[1]);
        // No nested tasks remain inside the fused task.
        assert!(ctx
            .body_ops(fused.id())
            .iter()
            .all(|&o| !ctx.op(o).is(hida_ops::TASK)));
        assert_eq!(
            ctx.collect_ops(fused.id(), hida_dialects::loops::FOR).len(),
            6
        );
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
    }
}
