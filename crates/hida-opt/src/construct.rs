//! Functional dataflow construction (Algorithm 1).
//!
//! Walking the module bottom-up, every *dispatchable* region — one owned by an
//! iterative operation (a function or a loop) and containing at least two iterative
//! operations — is wrapped into a `hida.dispatch`; every compute operation inside
//! the dispatch is then wrapped into its own `hida.task`, producing a legal (if
//! unfused) Functional dataflow.

use hida_dataflow_ir::functional::wrap_ops;
use hida_dataflow_ir::op_names as hida_ops;
use hida_dialects::{linalg, loops};
use hida_ir_core::{Context, IrResult, OpId};

/// Returns true when `op` is a compute unit worth becoming a dataflow task:
/// an affine loop nest or a named linalg layer.
pub fn is_compute_unit(ctx: &Context, op: OpId) -> bool {
    ctx.op(op).is(loops::FOR) || linalg::is_linalg_op_name(ctx.op(op).name.as_str())
}

/// Returns true when `op` can own a dispatch: its body contains at least two compute
/// units (paper: "a region is dispatchable if it is owned by an iterative operation
/// ... while containing at least two iterative operations").
pub fn is_dispatchable(ctx: &Context, op: OpId) -> bool {
    if ctx.op(op).regions.is_empty() {
        return false;
    }
    let owner_ok = ctx.op(op).is(hida_ir_core::op_names::FUNC)
        || ctx.op(op).is(loops::FOR)
        || ctx.op(op).is(hida_ops::TASK);
    if !owner_ok {
        return false;
    }
    let compute_units = ctx
        .body_ops(op)
        .into_iter()
        .filter(|&o| is_compute_unit(ctx, o))
        .count();
    compute_units >= 2
}

/// Converts the body of `func` into a Functional dataflow (Algorithm 1).
///
/// Ops that do not belong in a task (buffer allocations, the synthetic input/output
/// markers) are left in the surrounding transparent context; every compute unit and
/// its trailing element-wise consumers become individual `hida.task`s inside a single
/// `hida.dispatch`.
///
/// # Errors
/// Currently infallible; the `Result` keeps the pass signature uniform.
pub fn construct_functional_dataflow(ctx: &mut Context, func: OpId) -> IrResult<()> {
    // Bottom-up: nested dispatchable regions first (hierarchical dataflow).
    let mut dispatchable: Vec<OpId> = hida_ir_core::walk::collect_postorder(ctx, func)
        .into_iter()
        .filter(|&op| ctx.is_alive(op) && is_dispatchable(ctx, op))
        .collect();
    if !dispatchable.contains(&func) && is_dispatchable(ctx, func) {
        dispatchable.push(func);
    }

    for region_owner in dispatchable {
        if !ctx.is_alive(region_owner) || !is_dispatchable(ctx, region_owner) {
            continue;
        }
        build_dispatch_in(ctx, region_owner);
    }
    Ok(())
}

/// Wraps the task-worthy ops of `owner`'s body into a dispatch of single-op tasks.
fn build_dispatch_in(ctx: &mut Context, owner: OpId) {
    let body_ops = ctx.body_ops(owner);
    // Ops to be placed inside the dispatch: everything from the first compute unit to
    // the last, excluding allocations and interface markers which stay transparent.
    let taskable: Vec<OpId> = body_ops
        .iter()
        .copied()
        .filter(|&op| is_compute_unit(ctx, op))
        .collect();
    if taskable.len() < 2 {
        return;
    }
    // Wrap each compute unit into its own task first (so the later dispatch wrap
    // keeps whole tasks as its units).
    let mut tasks = Vec::new();
    for (index, op) in taskable.iter().enumerate() {
        let task = wrap_ops(ctx, &[*op], hida_ops::TASK, &format!("task{index}"));
        tasks.push(task);
    }
    // Then wrap all tasks into one dispatch.
    wrap_ops(ctx, &tasks, hida_ops::DISPATCH, "dispatch0");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dataflow_ir::functional::{DispatchOp, TaskOp};
    use hida_frontend::nn::{build_model, Model};
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};

    #[test]
    fn polybench_2mm_becomes_two_tasks_in_one_dispatch() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 16);
        assert!(is_dispatchable(&ctx, func));
        construct_functional_dataflow(&mut ctx, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();

        let dispatches = ctx.collect_ops(func, hida_ops::DISPATCH);
        assert_eq!(dispatches.len(), 1);
        let dispatch = DispatchOp::try_from_op(&ctx, dispatches[0]).unwrap();
        assert_eq!(dispatch.tasks(&ctx).len(), 2);
        // Allocations stay outside the dispatch (transparent context).
        let func_level: Vec<_> = ctx
            .body_ops(func)
            .into_iter()
            .filter(|&o| ctx.op(o).is(hida_dialects::memory::ALLOC))
            .collect();
        assert_eq!(func_level.len(), 5);
    }

    #[test]
    fn single_nest_kernel_is_not_dispatchable() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::Gesummv, 16);
        assert!(!is_dispatchable(&ctx, func));
        construct_functional_dataflow(&mut ctx, func).unwrap();
        assert!(ctx.collect_ops(func, hida_ops::DISPATCH).is_empty());
    }

    #[test]
    fn lenet_layers_each_become_a_task() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_model(&mut ctx, module, Model::LeNet);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        let dispatch =
            DispatchOp::try_from_op(&ctx, ctx.collect_ops(func, hida_ops::DISPATCH)[0]).unwrap();
        // LeNet: 3 convs + 3 relus + 2 pools + flatten + 2 linears + 1 relu = 12 layers.
        let tasks = dispatch.tasks(&ctx);
        assert_eq!(tasks.len(), 12);
        for task in tasks {
            assert!(TaskOp::try_from_op(&ctx, task.id()).is_some());
            assert_eq!(
                ctx.body_ops(task.id())
                    .iter()
                    .filter(|&&o| is_compute_unit(&ctx, o))
                    .count(),
                1
            );
        }
    }

    #[test]
    fn construction_is_idempotent_enough_to_rerun() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::ThreeMm, 8);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        let before = ctx.collect_ops(func, hida_ops::TASK).len();
        // Tasks now own the loops; the func body holds a dispatch, not two loops, so
        // a second run must not create nested dispatches at the function level.
        construct_functional_dataflow(&mut ctx, func).unwrap();
        assert_eq!(ctx.collect_ops(func, hida_ops::TASK).len(), before);
        assert_eq!(ctx.collect_ops(func, hida_ops::DISPATCH).len(), 1);
    }
}
