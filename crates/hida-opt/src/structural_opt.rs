//! Structural dataflow optimization (paper §6.4).
//!
//! Two transformations make the schedule amenable to pipelined dataflow execution:
//!
//! * **Multi-producer elimination** (Algorithm 3): an internal buffer written by
//!   several nodes serialises the dataflow. Later producers get a duplicate of the
//!   buffer (plus an explicit copy when they also read the original); producers of
//!   *external* buffers are conservatively fused into a single node instead.
//! * **Data-path balancing**: when reconvergent paths have different lengths
//!   (e.g. ResNet shortcuts), buffers on the short path are deepened (on-chip buffer
//!   duplication) or, when too large to replicate on chip, turned into soft FIFOs in
//!   external memory with an elastic token flow maintaining execution order.

use hida_dataflow_ir::graph::DataflowGraph;
use hida_dataflow_ir::interface::{build_token_pop, build_token_push};
use hida_dataflow_ir::structural::{build_node, build_stream, BufferOp, NodeOp, ScheduleOp};
use hida_dialects::analysis::MemEffect;
use hida_dialects::hls::MemoryKind;
use hida_ir_core::{AnalysisManager, Context, IrResult, OpBuilder, OpId, Type, ValueId};

/// Eliminates buffers with multiple producer nodes (Algorithm 3).
///
/// # Errors
/// Currently infallible; the `Result` keeps the pass signature uniform.
pub fn eliminate_multi_producers(ctx: &mut Context, schedule: ScheduleOp) -> IrResult<()> {
    // Internal buffers: duplicate for every producer after the first.
    for buffer in schedule.internal_buffers(ctx) {
        let value = buffer.value(ctx);
        let producers = schedule.producers_of(ctx, value);
        if producers.len() <= 1 {
            continue;
        }
        // Producers are already in program order (dominance order in a single block).
        for &producer in producers.iter().skip(1) {
            duplicate_buffer_for(ctx, schedule, buffer, producer);
        }
    }
    // External buffers: merge all producers into one node to avoid data races.
    for external in schedule.external_buffers(ctx) {
        let producers = schedule.producers_of(ctx, external);
        if producers.len() > 1 {
            fuse_nodes(ctx, schedule, &producers);
        }
    }
    Ok(())
}

/// Clones `buffer` into a fresh buffer used by `producer` and every node dominated by
/// it, inserting an explicit copy node when the producer also reads the original.
fn duplicate_buffer_for(
    ctx: &mut Context,
    schedule: ScheduleOp,
    buffer: BufferOp,
    producer: NodeOp,
) {
    let original = buffer.value(ctx);
    // Clone the buffer op right after the original.
    let mut mapping = hida_ir_core::context::ValueMapping::new();
    let clone = ctx.clone_op(buffer.id(), &mut mapping);
    ctx.move_op_after(clone, buffer.id());
    let new_name = format!("{}_dup", buffer.name(ctx));
    ctx.op_mut(clone).set_attr("buffer_name", new_name);
    let new_value = ctx.op(clone).results[0];

    let reads_original = producer.reads(ctx, original);

    // Rewire: the producer and every node it dominates now use the duplicate.
    for node in schedule.nodes(ctx) {
        if ctx.dominates(producer.id(), node.id()) {
            let operands = node.operands(ctx);
            for (idx, operand) in operands.iter().enumerate() {
                if *operand == original {
                    node.replace_operand(ctx, idx, new_value);
                }
            }
        }
    }

    // If the producer read the original buffer, copy the original into the duplicate
    // before the producer runs (Figure 7(b): explicit memory copy).
    if reads_original {
        let copy_name = format!("copy_{}", buffer.name(ctx));
        let body = schedule.body(ctx);
        let (copy_node, args) = build_node(
            ctx,
            body,
            &copy_name,
            &[(original, MemEffect::Read), (new_value, MemEffect::Write)],
        );
        ctx.move_op_before(copy_node.id(), producer.id());
        let copy_body = copy_node.body(ctx);
        let mut b = OpBuilder::at_block_end(ctx, copy_body);
        hida_dialects::memory::build_copy(&mut b, args[0], args[1]);
    }
}

/// Fuses several nodes of a schedule into one node executing their bodies
/// sequentially (Figure 7(d)). Returns the fused node.
pub fn fuse_nodes(ctx: &mut Context, schedule: ScheduleOp, nodes: &[NodeOp]) -> NodeOp {
    assert!(!nodes.is_empty(), "fuse_nodes needs at least one node");
    // Union of operands with merged effects.
    let mut operands: Vec<(ValueId, MemEffect)> = Vec::new();
    for node in nodes {
        for (operand, effect) in node.operands(ctx).into_iter().zip(node.effects(ctx)) {
            if let Some(entry) = operands.iter_mut().find(|(v, _)| *v == operand) {
                entry.1 = entry.1.merge(effect);
            } else {
                operands.push((operand, effect));
            }
        }
    }
    let fused_name = nodes
        .iter()
        .map(|n| n.name(ctx))
        .collect::<Vec<_>>()
        .join("+");
    let body = schedule.body(ctx);
    let (fused, args) = build_node(ctx, body, &fused_name, &operands);
    ctx.move_op_before(fused.id(), nodes[0].id());
    let fused_body = fused.body(ctx);

    // Clone each node's body into the fused node, mapping old block args to the
    // fused node's args for the same buffer.
    for node in nodes {
        let mut mapping = hida_ir_core::context::ValueMapping::new();
        let old_args = node.body_args(ctx);
        let old_operands = node.operands(ctx);
        for (arg, operand) in old_args.iter().zip(&old_operands) {
            let pos = operands.iter().position(|(v, _)| v == operand).unwrap();
            mapping.map(*arg, args[pos]);
        }
        for op in ctx.body_ops(node.id()) {
            let cloned = ctx.clone_op(op, &mut mapping);
            ctx.append_op(fused_body, cloned);
        }
    }
    for node in nodes {
        ctx.erase_op(node.id());
    }
    fused
}

/// Balances reconvergent data paths (paper §6.4.2).
///
/// For every unbalanced edge, the buffer on the short path is either deepened
/// on chip (buffer duplication) or, when a single stage exceeds
/// `external_threshold_bytes`, converted into a soft FIFO in external memory with a
/// token stream inserted between the producer and the consumer to preserve order.
///
/// # Errors
/// Currently infallible; the `Result` keeps the pass signature uniform.
pub fn balance_data_paths(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
    external_threshold_bytes: i64,
) -> IrResult<()> {
    let graph = analyses.get::<DataflowGraph>(ctx, schedule.id());
    for (edge, imbalance) in graph.unbalanced_edges() {
        let required_depth = imbalance as i64 + 1;
        let buffer_op = match ctx.value(edge.buffer).defining_op() {
            Some(op) => match BufferOp::try_from_op(ctx, op) {
                Some(b) => b,
                None => continue,
            },
            None => continue,
        };
        let bytes_per_stage = buffer_op.num_elements(ctx) * buffer_op.elem_bits(ctx) as i64 / 8;
        if bytes_per_stage * required_depth <= external_threshold_bytes {
            // On-chip duplication: deepen the ping-pong buffer so `required_depth`
            // frames can be in flight.
            if buffer_op.depth(ctx) < required_depth {
                buffer_op.set_depth(ctx, required_depth);
            }
        } else {
            // Soft FIFO in external memory plus an elastic token flow.
            buffer_op.set_memory_kind(ctx, MemoryKind::External);
            buffer_op.set_depth(ctx, required_depth);
            insert_token_flow(ctx, schedule, edge.producer, edge.consumer, required_depth);
        }
    }
    Ok(())
}

/// Inserts a token stream between two nodes: the producer pushes a token when it
/// finishes a frame, the consumer pops it before starting (elastic node execution).
fn insert_token_flow(
    ctx: &mut Context,
    schedule: ScheduleOp,
    producer: NodeOp,
    consumer: NodeOp,
    depth: i64,
) -> ValueId {
    let body = schedule.body(ctx);
    let token = {
        let mut b = OpBuilder::at_block_index(ctx, body, 0);
        build_stream(&mut b, Type::i1(), depth.max(1), "token").1
    };
    let producer_arg = producer.add_operand(ctx, token, MemEffect::Write);
    let consumer_arg = consumer.add_operand(ctx, token, MemEffect::Read);
    {
        let producer_body = producer.body(ctx);
        let mut b = OpBuilder::at_block_end(ctx, producer_body);
        build_token_push(&mut b, producer_arg);
    }
    {
        let consumer_body = consumer.body(ctx);
        let mut b = OpBuilder::at_block_index(ctx, consumer_body, 0);
        build_token_pop(&mut b, consumer_arg);
    }
    token
}

/// Convenience wrapper returning the op ids of all copy nodes introduced by
/// multi-producer elimination (used by tests and reports).
pub fn copy_nodes(ctx: &Context, schedule: ScheduleOp) -> Vec<OpId> {
    schedule
        .nodes(ctx)
        .into_iter()
        .filter(|n| n.name(ctx).starts_with("copy_"))
        .map(|n| n.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dataflow_ir::structural::{build_buffer, build_schedule};
    use hida_ir_core::Type;

    fn schedule_fixture(ctx: &mut Context) -> (OpId, ScheduleOp, hida_ir_core::BlockId) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let (schedule, body) = {
            let mut b = OpBuilder::at_end_of(ctx, module);
            let _ = &mut b; // silence unused in case of reordering
            let mut b = OpBuilder::at_end_of(ctx, func);
            build_schedule(&mut b, "s")
        };
        (module, schedule, body)
    }

    fn buffer(ctx: &mut Context, body: hida_ir_core::BlockId, name: &str, n: i64) -> ValueId {
        let mut b = OpBuilder::at_block_end(ctx, body);
        build_buffer(&mut b, Type::memref(vec![n], Type::i8()), 2, name).1
    }

    #[test]
    fn internal_multi_producer_is_resolved_by_duplication() {
        // Figure 7(a): Node1 reads and writes Buf2, Node2 also writes Buf2.
        let mut ctx = Context::new();
        let (module, schedule, body) = schedule_fixture(&mut ctx);
        let buf1 = buffer(&mut ctx, body, "buf1", 64);
        let buf2 = buffer(&mut ctx, body, "buf2", 64);
        let (_n1, _) = build_node(
            &mut ctx,
            body,
            "node1",
            &[(buf1, MemEffect::Read), (buf2, MemEffect::ReadWrite)],
        );
        let (n2, _) = build_node(
            &mut ctx,
            body,
            "node2",
            &[(buf1, MemEffect::Read), (buf2, MemEffect::Write)],
        );
        assert_eq!(schedule.producers_of(&ctx, buf2).len(), 2);

        eliminate_multi_producers(&mut ctx, schedule).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();

        // Now exactly one producer remains for the original buffer, and node2 writes
        // a duplicate instead.
        assert_eq!(schedule.producers_of(&ctx, buf2).len(), 1);
        let n2_operands = n2.operands(&ctx);
        assert!(!n2_operands.contains(&buf2));
        assert_eq!(schedule.internal_buffers(&ctx).len(), 3);
        // node2 only wrote buf2 (no read), so no copy node is needed.
        assert!(copy_nodes(&ctx, schedule).is_empty());
    }

    #[test]
    fn read_write_producer_gets_an_explicit_copy_node() {
        let mut ctx = Context::new();
        let (module, schedule, body) = schedule_fixture(&mut ctx);
        let buf = buffer(&mut ctx, body, "buf", 64);
        let (_n1, _) = build_node(&mut ctx, body, "node1", &[(buf, MemEffect::Write)]);
        let (n2, _) = build_node(&mut ctx, body, "node2", &[(buf, MemEffect::ReadWrite)]);
        eliminate_multi_producers(&mut ctx, schedule).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();

        let copies = copy_nodes(&ctx, schedule);
        assert_eq!(
            copies.len(),
            1,
            "the read-write producer needs a copy of the original data"
        );
        // The copy node precedes node2 in program order.
        let nodes = schedule.nodes(&ctx);
        let copy_pos = nodes.iter().position(|n| n.id() == copies[0]).unwrap();
        let n2_pos = nodes.iter().position(|n| *n == n2).unwrap();
        assert!(copy_pos < n2_pos);
    }

    #[test]
    fn external_multi_producers_are_fused_into_one_node() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        // The external buffer lives at the function level, outside the schedule.
        let ext = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_buffer(&mut b, Type::memref(vec![64], Type::i8()), 2, "ext").1
        };
        let (schedule, body) = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_schedule(&mut b, "s")
        };
        build_node(&mut ctx, body, "w1", &[(ext, MemEffect::Write)]);
        build_node(&mut ctx, body, "w2", &[(ext, MemEffect::Write)]);
        assert_eq!(schedule.nodes(&ctx).len(), 2);
        eliminate_multi_producers(&mut ctx, schedule).unwrap();
        let nodes = schedule.nodes(&ctx);
        assert_eq!(
            nodes.len(),
            1,
            "producers of an external buffer must be merged"
        );
        assert_eq!(nodes[0].name(&ctx), "w1+w2");
        assert_eq!(schedule.producers_of(&ctx, ext).len(), 1);
    }

    #[test]
    fn small_shortcut_buffers_are_deepened_on_chip() {
        let mut ctx = Context::new();
        let (module, schedule, body) = schedule_fixture(&mut ctx);
        let b_in = buffer(&mut ctx, body, "in", 128);
        let b_mid = buffer(&mut ctx, body, "mid", 128);
        let b_mid2 = buffer(&mut ctx, body, "mid2", 128);
        let b_skip = buffer(&mut ctx, body, "skip", 128);
        let b_out = buffer(&mut ctx, body, "out", 128);
        build_node(
            &mut ctx,
            body,
            "n0",
            &[
                (b_in, MemEffect::Read),
                (b_mid, MemEffect::Write),
                (b_skip, MemEffect::Write),
            ],
        );
        build_node(
            &mut ctx,
            body,
            "n1",
            &[(b_mid, MemEffect::Read), (b_mid2, MemEffect::Write)],
        );
        build_node(
            &mut ctx,
            body,
            "n2",
            &[
                (b_mid2, MemEffect::Read),
                (b_skip, MemEffect::Read),
                (b_out, MemEffect::Write),
            ],
        );
        balance_data_paths(&mut ctx, &mut AnalysisManager::new(), schedule, 1 << 20).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        let skip_op =
            BufferOp::try_from_op(&ctx, ctx.value(b_skip).defining_op().unwrap()).unwrap();
        assert!(skip_op.depth(&ctx) >= 2);
        assert_eq!(skip_op.memory_kind(&ctx), MemoryKind::Bram);
    }

    #[test]
    fn large_shortcut_buffers_become_soft_fifos_with_tokens() {
        let mut ctx = Context::new();
        let (module, schedule, body) = schedule_fixture(&mut ctx);
        let b_in = buffer(&mut ctx, body, "in", 1 << 16);
        let b_mid = buffer(&mut ctx, body, "mid", 1 << 16);
        let b_mid2 = buffer(&mut ctx, body, "mid2", 1 << 16);
        let b_skip = buffer(&mut ctx, body, "skip", 1 << 16);
        let b_out = buffer(&mut ctx, body, "out", 1 << 16);
        let (n0, _) = build_node(
            &mut ctx,
            body,
            "n0",
            &[
                (b_in, MemEffect::Read),
                (b_mid, MemEffect::Write),
                (b_skip, MemEffect::Write),
            ],
        );
        build_node(
            &mut ctx,
            body,
            "n1",
            &[(b_mid, MemEffect::Read), (b_mid2, MemEffect::Write)],
        );
        let (n2, _) = build_node(
            &mut ctx,
            body,
            "n2",
            &[
                (b_mid2, MemEffect::Read),
                (b_skip, MemEffect::Read),
                (b_out, MemEffect::Write),
            ],
        );
        // Threshold far below the 64 KiB skip buffer -> soft FIFO.
        balance_data_paths(&mut ctx, &mut AnalysisManager::new(), schedule, 1024).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        let skip_op =
            BufferOp::try_from_op(&ctx, ctx.value(b_skip).defining_op().unwrap()).unwrap();
        assert_eq!(skip_op.memory_kind(&ctx), MemoryKind::External);
        // Token flow: the producer pushes, the consumer pops.
        assert_eq!(
            ctx.collect_ops(n0.id(), hida_dataflow_ir::op_names::TOKEN_PUSH)
                .len(),
            1
        );
        assert_eq!(
            ctx.collect_ops(n2.id(), hida_dataflow_ir::op_names::TOKEN_POP)
                .len(),
            1
        );
        // A token stream now exists in the schedule.
        assert_eq!(
            ctx.collect_ops(schedule.id(), hida_dataflow_ir::op_names::STREAM)
                .len(),
            1
        );
    }

    #[test]
    fn fuse_nodes_unions_operands_and_merges_effects() {
        let mut ctx = Context::new();
        let (_module, schedule, body) = schedule_fixture(&mut ctx);
        let a = buffer(&mut ctx, body, "a", 16);
        let b = buffer(&mut ctx, body, "b", 16);
        let c = buffer(&mut ctx, body, "c", 16);
        let (n1, _) = build_node(
            &mut ctx,
            body,
            "n1",
            &[(a, MemEffect::Read), (b, MemEffect::Write)],
        );
        let (n2, _) = build_node(
            &mut ctx,
            body,
            "n2",
            &[(b, MemEffect::Read), (c, MemEffect::Write)],
        );
        let fused = fuse_nodes(&mut ctx, schedule, &[n1, n2]);
        assert_eq!(fused.operands(&ctx), vec![a, b, c]);
        assert_eq!(
            fused.effects(&ctx),
            vec![MemEffect::Read, MemEffect::ReadWrite, MemEffect::Write]
        );
        assert_eq!(schedule.nodes(&ctx).len(), 1);
    }
}
