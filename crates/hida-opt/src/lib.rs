//! HIDA-OPT: the hierarchical dataflow optimizer (paper §6).
//!
//! The optimizer decomposes the dataflow optimization problem into five steps, each
//! implemented as a pass over the IR:
//!
//! 1. [`construct`] — Functional dataflow construction (Algorithm 1): wrap
//!    dispatchable regions into `hida.dispatch` and every compute op into a
//!    `hida.task`.
//! 2. [`fusion`] — Functional dataflow optimization (Algorithm 2): pattern-driven
//!    and criticality-driven task fusion, then hierarchy canonicalization.
//! 3. [`lower`] — Structural dataflow construction: tensors become ping-pong
//!    `hida.buffer`s, tasks become isolated `hida.node`s with explicit memory
//!    effects inside a `hida.schedule`.
//! 4. [`structural_opt`] — multi-producer elimination (Algorithm 3) and data-path
//!    balancing (on-chip buffer deepening / soft FIFOs with token flow).
//! 5. [`parallelize`] — intensity- and connection-aware parallelization
//!    (Algorithm 4), followed by connection-aware array partitioning.
//!
//! # Pass-pipeline architecture
//!
//! The steps are not hard-wired: each is wrapped as a named
//! [`Pass`](hida_ir_core::Pass) in the [`pipeline`] module, and the standard flow
//! is assembled *declaratively* by [`Pipeline::from_options`] — boolean options
//! become pipeline membership, scalar knobs become pass-instance options — and
//! executed by the shared [`PassManager`](hida_ir_core::PassManager), which
//! verifies the IR between passes and records per-pass
//! [`PassStatistics`] (wall-clock time, op deltas,
//! configured options). The structural `ScheduleOp` produced by lowering flows to
//! later passes through the typed
//! [`PipelineState`](hida_ir_core::PipelineState) slot map.
//!
//! Structural facts the passes keep re-asking for — compute profiles of
//! task/node bodies, the dataflow graph of a schedule — are fetched through the
//! [`AnalysisManager`](hida_ir_core::analysis::AnalysisManager) the pass
//! manager threads through every pass: results are cached per (analysis, root
//! op) and invalidated by the context's mutation generation, and each pass
//! declares the analyses its edits provably keep intact
//! ([`Pass::preserved_analyses`](hida_ir_core::Pass::preserved_analyses)), so
//! e.g. tiling and parallelization consume the profiles lowering computed as
//! pure cache hits. Per-pass hit/miss counters land in the recorded
//! statistics.
//!
//! [`HidaOptimizer`] is a thin driver over that machinery: it builds the pipeline
//! from its [`HidaOptions`] and runs it.
//!
//! # Textual pipelines and the pass registry
//!
//! Every pass is also registered by name in the [`registry`](mod@registry) module, with its
//! knobs as named options, so ablations and custom flows are plain *strings*:
//! `Pipeline::parse(&registry(), "construct,lower,parallelize{max-factor=8}")`.
//! [`Pipeline::from_options`] renders its options as text
//! ([`HidaOptions::pipeline_text`]) and parses it back through the registry —
//! one construction path for everything the syntax can express (a direct
//! fallback covers non-catalog devices) — and [`Pipeline::to_text`] round-trips
//! every registry-built pipeline. The `hida-opt` CLI binary exposes the same
//! surface from the command line (`--pipeline`, `--list-passes`).

pub mod construct;
pub mod fusion;
pub mod lower;
pub mod parallelize;
pub mod pipeline;
pub mod registry;
pub mod structural_opt;
pub mod tiling;

pub use pipeline::{
    BalancePass, ConstructPass, FusionPass, LowerPass, MultiProducerEliminationPass,
    ParallelizePass, Pipeline, ProfilePass, TilingPass,
};
pub use registry::{registry, registry_listing};

use hida_dataflow_ir::structural::ScheduleOp;
use hida_estimator::device::FpgaDevice;
use hida_ir_core::pass::PassStatistics;
use hida_ir_core::{Context, IrResult, OpId};

/// Parallelization strategy, used by the Figure 11 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParallelMode {
    /// Intensity-aware and connection-aware (the full HIDA approach).
    IaCa,
    /// Intensity-aware only: per-node budgets, no inter-node alignment constraints.
    IaOnly,
    /// Connection-aware only: alignment constraints, uniform per-node budgets.
    CaOnly,
    /// Neither: every node receives the maximum parallel factor.
    Naive,
}

impl ParallelMode {
    /// True when parallel factors are scaled by node intensity.
    pub fn intensity_aware(self) -> bool {
        matches!(self, ParallelMode::IaCa | ParallelMode::IaOnly)
    }

    /// True when inter-node connections constrain unroll factors and partitions.
    pub fn connection_aware(self) -> bool {
        matches!(self, ParallelMode::IaCa | ParallelMode::CaOnly)
    }

    /// Short label used in reports ("IA+CA", "IA", "CA", "Naive").
    pub fn label(self) -> &'static str {
        match self {
            ParallelMode::IaCa => "IA+CA",
            ParallelMode::IaOnly => "IA",
            ParallelMode::CaOnly => "CA",
            ParallelMode::Naive => "Naive",
        }
    }

    /// Parses a report label back into a mode, case-insensitively; the inverse of
    /// [`ParallelMode::label`], used by the textual pipeline syntax's `mode=`
    /// option (`"ia+ca"` and `"iaca"` are both accepted).
    pub fn from_label(label: &str) -> Option<ParallelMode> {
        match label.to_ascii_lowercase().as_str() {
            "ia+ca" | "iaca" => Some(ParallelMode::IaCa),
            "ia" => Some(ParallelMode::IaOnly),
            "ca" => Some(ParallelMode::CaOnly),
            "naive" => Some(ParallelMode::Naive),
            _ => None,
        }
    }
}

/// Configuration of one HIDA compilation.
#[derive(Debug, Clone)]
pub struct HidaOptions {
    /// Maximum parallel factor granted to any single node.
    pub max_parallel_factor: i64,
    /// Spatial tile size applied to large layers (None = untiled).
    pub tile_size: Option<i64>,
    /// Parallelization strategy.
    pub mode: ParallelMode,
    /// Whether task fusion (Algorithm 2) runs.
    pub enable_fusion: bool,
    /// Whether multi-producer elimination and data-path balancing run.
    pub enable_balancing: bool,
    /// Buffers larger than this many bytes are spilled to external memory
    /// (soft FIFO) when tiling is enabled.
    pub external_threshold_bytes: i64,
    /// Target device (drives resource-constrained parallel factor generation).
    pub device: FpgaDevice,
}

impl Default for HidaOptions {
    fn default() -> Self {
        HidaOptions {
            max_parallel_factor: 32,
            tile_size: Some(8),
            mode: ParallelMode::IaCa,
            enable_fusion: true,
            enable_balancing: true,
            external_threshold_bytes: 64 * 1024,
            device: FpgaDevice::vu9p_slr(),
        }
    }
}

impl HidaOptions {
    /// Options tuned for the small PolyBench kernels on the ZU3EG device.
    pub fn polybench() -> Self {
        HidaOptions {
            max_parallel_factor: 16,
            tile_size: None,
            device: FpgaDevice::zu3eg(),
            external_threshold_bytes: 512 * 1024,
            ..HidaOptions::default()
        }
    }

    /// Options tuned for the DNN models on one VU9P SLR.
    pub fn dnn() -> Self {
        HidaOptions {
            max_parallel_factor: 256,
            tile_size: Some(16),
            device: FpgaDevice::vu9p_slr(),
            ..HidaOptions::default()
        }
    }

    /// Renders these options as a textual pipeline (see [`registry()`]): the single
    /// source of truth for the standard HIDA-OPT flow. Boolean toggles become
    /// pipeline membership, scalar knobs become pass options.
    ///
    /// The target device is carried *by name*, so it must be one of the catalog
    /// devices resolvable through `FpgaDevice::by_name`.
    pub fn pipeline_text(&self) -> String {
        let mut passes = vec!["construct".to_string()];
        if self.enable_fusion {
            passes.push("fusion".to_string());
        }
        passes.push("lower".to_string());
        if self.enable_balancing {
            passes.push("multi-producer-elim".to_string());
        }
        if let Some(tile_size) = self.tile_size {
            passes.push(format!(
                "tiling{{factor={tile_size},external-threshold-bytes={}}}",
                self.external_threshold_bytes
            ));
        }
        if self.enable_balancing {
            passes.push(format!(
                "balance{{external-threshold-bytes={}}}",
                self.external_threshold_bytes
            ));
        }
        passes.push(format!(
            "parallelize{{max-factor={},mode={},device={}}}",
            self.max_parallel_factor,
            self.mode.label(),
            self.device.name
        ));
        passes.join(",")
    }
}

/// End-to-end HIDA-OPT driver.
#[derive(Debug, Clone)]
pub struct HidaOptimizer {
    options: HidaOptions,
}

impl HidaOptimizer {
    /// Creates an optimizer with the given options.
    pub fn new(options: HidaOptions) -> Self {
        HidaOptimizer { options }
    }

    /// The configured options.
    pub fn options(&self) -> &HidaOptions {
        &self.options
    }

    /// Runs the full HIDA-OPT pipeline on `func` (a function produced by one of the
    /// front-ends) and returns the resulting structural schedule.
    ///
    /// The pipeline is assembled declaratively with [`Pipeline::from_options`] and
    /// executed through the [`PassManager`](hida_ir_core::PassManager); use
    /// [`HidaOptimizer::run_with_statistics`] to also obtain per-pass statistics.
    ///
    /// # Errors
    /// Propagates pass failures (malformed IR, impossible constraints).
    pub fn run(&self, ctx: &mut Context, func: OpId) -> IrResult<ScheduleOp> {
        self.run_with_statistics(ctx, func)
            .map(|(schedule, _)| schedule)
    }

    /// Runs the pipeline like [`HidaOptimizer::run`], additionally returning the
    /// statistics recorded for every executed pass.
    ///
    /// # Errors
    /// Propagates pass failures (malformed IR, impossible constraints).
    pub fn run_with_statistics(
        &self,
        ctx: &mut Context,
        func: OpId,
    ) -> IrResult<(ScheduleOp, Vec<PassStatistics>)> {
        let mut pipeline = Pipeline::from_options(&self.options);
        let schedule = pipeline.run(ctx, func)?;
        Ok((schedule, pipeline.statistics().to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_estimator::dataflow::DataflowEstimator;
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};

    #[test]
    fn end_to_end_pipeline_produces_a_parallelized_schedule() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 32);
        let optimizer = HidaOptimizer::new(HidaOptions::polybench());
        let schedule = optimizer.run(&mut ctx, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();

        let nodes = schedule.nodes(&ctx);
        assert!(
            nodes.len() >= 2,
            "2mm must produce at least two dataflow nodes"
        );
        // Every node received unroll factors.
        for node in &nodes {
            let f = hida_dialects::transforms::unroll_factors_of(&ctx, node.id(), 3);
            assert!(f.iter().product::<i64>() >= 1);
        }
        // The design is estimable and faster with dataflow than without.
        let est = DataflowEstimator::new(FpgaDevice::zu3eg());
        let with_df = est.estimate_schedule(&ctx, schedule, true);
        let without_df = est.estimate_schedule(&ctx, schedule, false);
        assert!(with_df.throughput() > without_df.throughput());
    }

    #[test]
    fn parallel_mode_labels_round_trip() {
        for mode in [
            ParallelMode::IaCa,
            ParallelMode::IaOnly,
            ParallelMode::CaOnly,
            ParallelMode::Naive,
        ] {
            assert_eq!(ParallelMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(ParallelMode::from_label("iaca"), Some(ParallelMode::IaCa));
        assert_eq!(ParallelMode::from_label("NAIVE"), Some(ParallelMode::Naive));
        assert_eq!(ParallelMode::from_label("turbo"), None);
    }

    #[test]
    fn options_render_as_pipeline_text() {
        assert_eq!(
            HidaOptions::default().pipeline_text(),
            "construct,fusion,lower,multi-producer-elim,\
             tiling{factor=8,external-threshold-bytes=65536},\
             balance{external-threshold-bytes=65536},\
             parallelize{max-factor=32,mode=IA+CA,device=vu9p-slr}"
        );
        // Disabled toggles drop out of the text entirely.
        let minimal = HidaOptions {
            enable_fusion: false,
            enable_balancing: false,
            tile_size: None,
            ..HidaOptions::polybench()
        };
        assert_eq!(
            minimal.pipeline_text(),
            "construct,lower,parallelize{max-factor=16,mode=IA+CA,device=zu3eg}"
        );
    }

    #[test]
    fn parallel_mode_flags() {
        assert!(ParallelMode::IaCa.intensity_aware() && ParallelMode::IaCa.connection_aware());
        assert!(ParallelMode::IaOnly.intensity_aware() && !ParallelMode::IaOnly.connection_aware());
        assert!(!ParallelMode::CaOnly.intensity_aware() && ParallelMode::CaOnly.connection_aware());
        assert!(!ParallelMode::Naive.intensity_aware() && !ParallelMode::Naive.connection_aware());
        assert_eq!(ParallelMode::IaCa.label(), "IA+CA");
    }

    #[test]
    fn default_options_are_sane() {
        let opts = HidaOptions::default();
        assert!(opts.max_parallel_factor > 1);
        assert!(opts.enable_fusion && opts.enable_balancing);
        assert_eq!(HidaOptions::polybench().device.name, "zu3eg");
        assert_eq!(HidaOptions::dnn().device.name, "vu9p-slr");
    }
}
