//! The HIDA-OPT pass pipeline.
//!
//! Every step of the optimizer (paper §6) is wrapped as a named
//! [`Pass`] so the whole flow becomes *data*: a [`Pipeline`]
//! assembled by [`Pipeline::from_options`] and executed by the shared
//! [`PassManager`]. Option toggles map to pipeline membership (fusion, balancing
//! and tiling passes are simply absent when disabled) while scalar knobs become
//! pass-instance options, visible in the recorded
//! [`PassStatistics`].
//!
//! The structural [`ScheduleOp`] produced by [`LowerPass`] flows to the later
//! structural passes through the typed [`PipelineState`] slot map, so a custom
//! pipeline can splice in extra passes between lowering and parallelization
//! without any signature changes. Compute profiles and dataflow graphs flow
//! through the pass manager's `AnalysisManager` instead: each pass fetches
//! them from the cache and declares which analyses its mutations preserve, so
//! a profile computed once (e.g. while lowering a task to a node) is reused by
//! every later pass until the IR underneath it actually changes.
//!
//! The default pipeline assembled from [`HidaOptions`] is:
//!
//! | pass | gated by |
//! |------|----------|
//! | [`ConstructPass`] (`hida-construct-dataflow`) | always |
//! | [`FusionPass`] (`hida-task-fusion`) | `enable_fusion` |
//! | [`LowerPass`] (`hida-lower-structural`) | always |
//! | [`MultiProducerEliminationPass`] (`hida-eliminate-multi-producers`) | `enable_balancing` |
//! | [`TilingPass`] (`hida-tiling`) | `tile_size.is_some()` |
//! | [`BalancePass`] (`hida-balance-data-paths`) | `enable_balancing` |
//! | [`ParallelizePass`] (`hida-parallelize`) | always |
//!
//! [`ProfilePass`] (`hida-profile-nodes`, registry name `profile`) is not part
//! of the default flow but can be spliced in after lowering to warm per-node
//! profiles — in parallel under `--jobs N`.
//!
//! # Parallel execution
//!
//! Tiling, parallelization and profiling declare their per-node work through
//! [`Pass::parallelizable_roots`]: with [`Pipeline::with_jobs`] `> 1` the pass
//! manager freezes the analysis cache into a snapshot, fans the declared nodes
//! out to a work-stealing pool, and merges the scoped attribute edits back in
//! declaration order — so `--jobs 1` and `--jobs N` produce byte-identical IR.
//! Fusion and lowering restructure the IR across node boundaries and stay
//! sequential.

use crate::{construct, fusion, lower, parallelize, structural_opt, tiling};
use crate::{HidaOptions, ParallelMode};
use hida_dataflow_ir::graph::DataflowGraph;
use hida_dataflow_ir::structural::ScheduleOp;
use hida_dialects::analysis::ComputeProfile;
use hida_estimator::device::FpgaDevice;
use hida_ir_core::analysis::{AnalysisManager, AnalysisSnapshot, PreservedAnalyses};
use hida_ir_core::pass::{Pass, PassManager, PassOption, PassStatistics, PipelineState};
use hida_ir_core::registry::{PassRegistry, PipelineError};
use hida_ir_core::{
    parse_pipeline, print_pipeline, Analysis, Context, IrError, IrResult, NodeScope, OpId,
    PassInvocation,
};

/// Retrieves the schedule deposited by [`LowerPass`], failing with a diagnostic
/// naming the requesting pass when lowering has not run yet.
fn schedule_from(state: &PipelineState, pass: &str) -> IrResult<ScheduleOp> {
    state.get::<ScheduleOp>().copied().ok_or_else(|| {
        IrError::pass_failed(
            pass,
            "no ScheduleOp in pipeline state — run hida-lower-structural first",
        )
    })
}

/// Functional dataflow construction (Algorithm 1) as a pipeline pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstructPass;

impl Pass for ConstructPass {
    fn name(&self) -> &str {
        "hida-construct-dataflow"
    }

    fn run(
        &self,
        ctx: &mut Context,
        root: OpId,
        _state: &mut PipelineState,
        _analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        construct::construct_functional_dataflow(ctx, root)
    }
}

/// Task fusion (Algorithm 2) as a pipeline pass, configurable with a pattern set.
pub struct FusionPass {
    patterns: Vec<Box<dyn fusion::FusionPattern>>,
}

impl Default for FusionPass {
    fn default() -> Self {
        Self::new()
    }
}

impl FusionPass {
    /// Fusion with the default profitable patterns.
    pub fn new() -> Self {
        FusionPass {
            patterns: fusion::default_fusion_patterns(),
        }
    }

    /// Fusion with an explicit pattern set.
    pub fn with_patterns(patterns: Vec<Box<dyn fusion::FusionPattern>>) -> Self {
        FusionPass { patterns }
    }
}

impl Pass for FusionPass {
    fn name(&self) -> &str {
        "hida-task-fusion"
    }

    fn options(&self) -> Vec<PassOption> {
        let names: Vec<&str> = self.patterns.iter().map(|p| p.name()).collect();
        vec![PassOption::new("patterns", names.join("+"))]
    }

    fn preserved_analyses(&self) -> PreservedAnalyses {
        // Fusing two tasks erases them (their cache entries die with them) and
        // moves their bodies into a fresh task; every surviving task's body is
        // untouched, so its cached profile stays exact.
        PreservedAnalyses::none().preserve::<ComputeProfile>()
    }

    fn run(
        &self,
        ctx: &mut Context,
        root: OpId,
        _state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        fusion::fuse_tasks(ctx, analyses, root, &self.patterns)
    }
}

/// Structural dataflow construction (§6.3): lowers the functional dataflow to a
/// `hida.schedule` and deposits the [`ScheduleOp`] into the pipeline state.
#[derive(Debug, Default, Clone, Copy)]
pub struct LowerPass;

impl Pass for LowerPass {
    fn name(&self) -> &str {
        "hida-lower-structural"
    }

    fn preserved_analyses(&self) -> PreservedAnalyses {
        // Lowering clones task bodies into fresh nodes and erases the
        // functional ops afterwards: live roots keep their exact profiles
        // (which is what lets lowering consume the profiles fusion cached).
        PreservedAnalyses::none().preserve::<ComputeProfile>()
    }

    fn run(
        &self,
        ctx: &mut Context,
        root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let schedule = lower::lower_to_structural(ctx, analyses, root)?;
        state.insert(schedule);
        Ok(())
    }
}

/// Per-node profiling (`hida-profile-nodes`): warms the [`ComputeProfile`] of
/// every schedule node so later passes consume pure cache hits. Analysis-only —
/// it mutates nothing and preserves everything — and embarrassingly parallel:
/// under `--jobs N` each worker profiles its nodes over the shared read-only
/// context and *publishes* the results into the live analysis cache at merge
/// time. Useful right after lowering in pipelines that skip tiling (whose
/// sequential warm-up would otherwise be the first profile consumer).
#[derive(Debug, Default, Clone, Copy)]
pub struct ProfilePass;

impl ProfilePass {
    fn schedule_nodes(ctx: &Context, state: &PipelineState) -> Option<Vec<OpId>> {
        let schedule = *state.get::<ScheduleOp>()?;
        Some(schedule.nodes(ctx).into_iter().map(|n| n.id()).collect())
    }
}

impl Pass for ProfilePass {
    fn name(&self) -> &str {
        "hida-profile-nodes"
    }

    fn verify_after(&self) -> bool {
        // Analysis-only: nothing to re-verify.
        false
    }

    fn preserved_analyses(&self) -> PreservedAnalyses {
        PreservedAnalyses::all()
    }

    fn run(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let nodes = Self::schedule_nodes(ctx, state).ok_or_else(|| {
            IrError::pass_failed(
                self.name(),
                "no ScheduleOp in pipeline state — run hida-lower-structural first",
            )
        })?;
        for node in nodes {
            analyses.get::<ComputeProfile>(ctx, node);
        }
        Ok(())
    }

    fn parallelizable_roots(
        &self,
        ctx: &Context,
        _root: OpId,
        state: &PipelineState,
        _analyses: &mut AnalysisManager,
    ) -> Option<Vec<Vec<OpId>>> {
        // Deliberately does NOT warm the cache: profiling the nodes is the
        // parallel work itself.
        Self::schedule_nodes(ctx, state).map(|nodes| vec![nodes])
    }

    fn run_on_root(&self, scope: &mut NodeScope<'_>, snapshot: &AnalysisSnapshot) -> IrResult<()> {
        let node = scope.root();
        if snapshot.get::<ComputeProfile>(node).is_none() {
            let profile = ComputeProfile::compute(scope.ctx(), node);
            scope.publish(node, profile)?;
        }
        Ok(())
    }

    fn finish_parallel(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        _analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        // Parallel mode only needs the state sanity check the sequential path
        // performs implicitly.
        Self::schedule_nodes(ctx, state).map(|_| ()).ok_or_else(|| {
            IrError::pass_failed(
                self.name(),
                "no ScheduleOp in pipeline state — run hida-lower-structural first",
            )
        })
    }
}

/// Multi-producer elimination (Algorithm 3) as a pipeline pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct MultiProducerEliminationPass;

impl Pass for MultiProducerEliminationPass {
    fn name(&self) -> &str {
        "hida-eliminate-multi-producers"
    }

    fn preserved_analyses(&self) -> PreservedAnalyses {
        // Buffer duplication only rewires node operands; fused producer nodes
        // are erased (dropping their entries). Node body profiles survive. The
        // dataflow graph does change (new buffers/copy nodes), so it is not
        // declared.
        PreservedAnalyses::none().preserve::<ComputeProfile>()
    }

    fn run(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        _analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let schedule = schedule_from(state, self.name())?;
        structural_opt::eliminate_multi_producers(ctx, schedule)
    }
}

/// Loop tiling and external-memory spilling as a pipeline pass.
#[derive(Debug, Clone, Copy)]
pub struct TilingPass {
    /// Square spatial tile size applied to large layers.
    pub tile_size: i64,
    /// Buffers larger than this many bytes are spilled to external memory.
    pub external_threshold_bytes: i64,
}

impl Pass for TilingPass {
    fn name(&self) -> &str {
        "hida-tiling"
    }

    fn options(&self) -> Vec<PassOption> {
        vec![
            PassOption::new("tile-size", self.tile_size),
            PassOption::new("external-threshold-bytes", self.external_threshold_bytes),
        ]
    }

    fn preserved_analyses(&self) -> PreservedAnalyses {
        // Tiling annotates nodes with tile sizes and adds tile-local buffers;
        // node bodies and hence their profiles are untouched.
        PreservedAnalyses::none().preserve::<ComputeProfile>()
    }

    fn run(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let schedule = schedule_from(state, self.name())?;
        tiling::apply_tiling(
            ctx,
            analyses,
            schedule,
            self.tile_size,
            self.external_threshold_bytes,
        );
        Ok(())
    }

    fn parallelizable_roots(
        &self,
        ctx: &Context,
        _root: OpId,
        state: &PipelineState,
        analyses: &mut AnalysisManager,
    ) -> Option<Vec<Vec<OpId>>> {
        let schedule = *state.get::<ScheduleOp>()?;
        // Warm the per-node profiles exactly like the sequential path queries
        // them, so the workers' snapshot is complete; one wave, since tile
        // decisions are independent per node.
        let nodes: Vec<OpId> = schedule.nodes(ctx).into_iter().map(|n| n.id()).collect();
        for &node in &nodes {
            analyses.get::<ComputeProfile>(ctx, node);
        }
        Some(vec![nodes])
    }

    fn run_on_root(&self, scope: &mut NodeScope<'_>, snapshot: &AnalysisSnapshot) -> IrResult<()> {
        tiling::plan_node_tiling(scope, snapshot, self.tile_size)
    }

    fn finish_parallel(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        _analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let schedule = schedule_from(state, self.name())?;
        tiling::spill_large_buffers(ctx, schedule, self.tile_size, self.external_threshold_bytes);
        Ok(())
    }
}

/// Data-path balancing (§6.4.2) as a pipeline pass.
#[derive(Debug, Clone, Copy)]
pub struct BalancePass {
    /// Buffers whose deepened footprint exceeds this become soft FIFOs.
    pub external_threshold_bytes: i64,
}

impl Pass for BalancePass {
    fn name(&self) -> &str {
        "hida-balance-data-paths"
    }

    fn options(&self) -> Vec<PassOption> {
        vec![PassOption::new(
            "external-threshold-bytes",
            self.external_threshold_bytes,
        )]
    }

    fn preserved_analyses(&self) -> PreservedAnalyses {
        // Deepening buffers edits attributes; soft FIFOs insert token push/pop
        // ops, which carry no arithmetic or memory-access semantics the
        // profile counts. The dataflow graph gains token edges, so only the
        // profile is declared.
        PreservedAnalyses::none().preserve::<ComputeProfile>()
    }

    fn run(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let schedule = schedule_from(state, self.name())?;
        structural_opt::balance_data_paths(ctx, analyses, schedule, self.external_threshold_bytes)
    }
}

/// Intensity- and connection-aware parallelization (Algorithm 4) as a pipeline
/// pass; the [`ParallelMode`] ablation axis is plain pass configuration.
#[derive(Debug, Clone)]
pub struct ParallelizePass {
    /// Maximum parallel factor granted to any single node.
    pub max_parallel_factor: i64,
    /// Parallelization strategy (IA/CA ablation axis).
    pub mode: ParallelMode,
    /// Target device for resource-constrained factor generation.
    pub device: FpgaDevice,
}

impl Pass for ParallelizePass {
    fn name(&self) -> &str {
        "hida-parallelize"
    }

    fn options(&self) -> Vec<PassOption> {
        vec![
            PassOption::new("max-parallel-factor", self.max_parallel_factor),
            PassOption::new("mode", self.mode.label()),
            PassOption::new("device", &self.device.name),
        ]
    }

    fn preserved_analyses(&self) -> PreservedAnalyses {
        // Parallelization records unroll factors, budgets and partitions as
        // attributes only; neither node bodies nor the schedule's
        // producer/consumer topology change.
        PreservedAnalyses::none()
            .preserve::<ComputeProfile>()
            .preserve::<DataflowGraph>()
    }

    fn run(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let schedule = schedule_from(state, self.name())?;
        parallelize::parallelize_schedule(
            ctx,
            analyses,
            schedule,
            self.max_parallel_factor,
            self.mode,
            &self.device,
        )
    }

    fn parallelizable_roots(
        &self,
        ctx: &Context,
        _root: OpId,
        state: &PipelineState,
        analyses: &mut AnalysisManager,
    ) -> Option<Vec<Vec<OpId>>> {
        let schedule = *state.get::<ScheduleOp>()?;
        // One wave per dependency level of the connection graph: constraints
        // only flow from nodes earlier in the Algorithm 4 processing order, so
        // same-wave nodes are never connected. Warms graph + profiles.
        Some(parallelize::parallel_waves(
            ctx, analyses, schedule, self.mode,
        ))
    }

    fn run_on_root(&self, scope: &mut NodeScope<'_>, snapshot: &AnalysisSnapshot) -> IrResult<()> {
        parallelize::plan_node_parallelization(scope, snapshot, self.max_parallel_factor, self.mode)
    }

    fn finish_parallel(
        &self,
        ctx: &mut Context,
        _root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let schedule = schedule_from(state, self.name())?;
        parallelize::finish_parallelization(ctx, analyses, schedule);
        Ok(())
    }
}

/// A declarative HIDA-OPT pipeline: an ordered pass list executed by the shared
/// [`PassManager`], producing a structural [`ScheduleOp`] plus per-pass statistics.
///
/// Pipelines are constructible three ways, all converging on the same pass set:
/// programmatically ([`Pipeline::add_pass`]), from text
/// ([`Pipeline::parse`], grammar `name{key=value,...},name,...`), and from
/// [`HidaOptions`] ([`Pipeline::from_options`], which renders the options as
/// text and parses them through the registry). Every pipeline remembers its
/// textual form: [`Pipeline::to_text`] prints a string that re-parses to the
/// identical configuration.
pub struct Pipeline {
    manager: PassManager,
    invocations: Vec<PassInvocation>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// An empty pipeline with inter-pass verification enabled.
    pub fn new() -> Self {
        Pipeline {
            manager: PassManager::new(),
            invocations: Vec::new(),
        }
    }

    /// Parses a textual pipeline through a pass registry (normally
    /// [`crate::registry::registry`]).
    ///
    /// The stored invocations are *normalized*: canonical pass names, alias
    /// option names resolved and defaults filled in, so
    /// `Pipeline::parse(&r, &p.to_text())` reconstructs `p` exactly.
    ///
    /// # Example
    ///
    /// ```
    /// use hida_opt::{registry, Pipeline};
    ///
    /// let pipeline = Pipeline::parse(
    ///     &registry(),
    ///     "construct,lower,profile,parallelize{max-factor=8,device=zu3eg}",
    /// )
    /// .expect("a well-formed pipeline");
    /// assert_eq!(pipeline.len(), 4);
    /// // The text round-trips through the normalized invocations...
    /// let reparsed = Pipeline::parse(&registry(), &pipeline.to_text()).unwrap();
    /// assert_eq!(reparsed.to_text(), pipeline.to_text());
    /// // ...and per-node pass work can fan out to worker threads.
    /// let pipeline = pipeline.with_jobs(4);
    /// assert_eq!(pipeline.jobs(), 4);
    /// ```
    ///
    /// # Errors
    /// Returns structured [`PipelineError`]s: parse errors with position and
    /// expected token, unknown pass names, and per-pass option failures.
    pub fn parse(registry: &PassRegistry, text: &str) -> Result<Pipeline, PipelineError> {
        let mut pipeline = Pipeline::new();
        for invocation in parse_pipeline(text)? {
            let (normalized, pass) = registry.create(&invocation)?;
            pipeline.invocations.push(normalized);
            pipeline.manager.add_pass(pass);
        }
        Ok(pipeline)
    }

    /// Prints the pipeline in the textual syntax; the inverse of
    /// [`Pipeline::parse`] for registry-built pipelines. Passes appended through
    /// [`Pipeline::add_pass`] are rendered under their instance name, which the
    /// standard registry also resolves (as an alias).
    pub fn to_text(&self) -> String {
        print_pipeline(&self.invocations)
    }

    /// The recorded pass invocations, in execution order.
    pub fn invocations(&self) -> &[PassInvocation] {
        &self.invocations
    }

    /// Assembles the standard HIDA-OPT pipeline from compilation options.
    ///
    /// The primary construction path is textual: the options are rendered as
    /// pipeline text ([`HidaOptions::pipeline_text`]) and parsed through the
    /// pass registry, so option-built and string-built pipelines can never
    /// drift apart. Boolean options control pipeline membership; scalar options
    /// configure the individual pass instances.
    ///
    /// Options the textual syntax cannot represent — a custom [`FpgaDevice`]
    /// outside the catalog, or knob values the registry factories reject — fall
    /// back to direct pass construction with the exact same flow, preserving
    /// the seed API contract that any `HidaOptions` value compiles. Such a
    /// pipeline's [`Pipeline::to_text`] still prints, but its `device=` option
    /// only re-parses when the device name is in the catalog.
    pub fn from_options(options: &HidaOptions) -> Self {
        Pipeline::parse(&crate::registry::registry(), &options.pipeline_text())
            .unwrap_or_else(|_| Pipeline::from_options_direct(options))
    }

    /// Direct (non-textual) assembly of the standard flow; the fallback for
    /// option values the registry cannot express.
    fn from_options_direct(options: &HidaOptions) -> Self {
        let mut pipeline = Pipeline::new();
        pipeline.add_pass(ConstructPass);
        if options.enable_fusion {
            pipeline.add_pass(FusionPass::new());
        }
        pipeline.add_pass(LowerPass);
        if options.enable_balancing {
            pipeline.add_pass(MultiProducerEliminationPass);
        }
        if let Some(tile_size) = options.tile_size {
            pipeline.add_pass(TilingPass {
                tile_size,
                external_threshold_bytes: options.external_threshold_bytes,
            });
        }
        if options.enable_balancing {
            pipeline.add_pass(BalancePass {
                external_threshold_bytes: options.external_threshold_bytes,
            });
        }
        pipeline.add_pass(ParallelizePass {
            max_parallel_factor: options.max_parallel_factor,
            mode: options.mode,
            device: options.device.clone(),
        });
        pipeline
    }

    /// Appends a pass (builder style, for custom pipelines). The invocation is
    /// recorded under the instance's own name and reported options.
    pub fn add_pass(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.invocations
            .push(PassInvocation::with_options(pass.name(), pass.options()));
        self.manager.add_pass(Box::new(pass));
        self
    }

    /// Enables or disables inter-pass verification.
    pub fn with_verification(mut self, verify_each: bool) -> Self {
        self.manager = std::mem::take(&mut self.manager).with_verification(verify_each);
        self
    }

    /// Sets the worker-thread count for passes that declare per-node work
    /// (tiling, parallelization, profiling). `1` — the default — is the
    /// bitwise-reproducibility escape hatch: everything runs sequentially, and
    /// parallel runs are required to produce the identical IR.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.manager = std::mem::take(&mut self.manager).with_jobs(jobs);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.manager.jobs()
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.manager.len()
    }

    /// True when the pipeline has no passes.
    pub fn is_empty(&self) -> bool {
        self.manager.is_empty()
    }

    /// Names of the registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<String> {
        self.manager.pass_names()
    }

    /// Per-pass statistics of the most recent [`Pipeline::run`].
    pub fn statistics(&self) -> &[PassStatistics] {
        self.manager.statistics()
    }

    /// The analysis cache shared by the pipeline's passes.
    pub fn analyses(&self) -> &AnalysisManager {
        self.manager.analyses()
    }

    /// Mutable access to the analysis cache, so post-run reporting reuses the
    /// profiles the passes left behind instead of recomputing them.
    pub fn analyses_mut(&mut self) -> &mut AnalysisManager {
        self.manager.analyses_mut()
    }

    /// Executes the pipeline on `func` through the [`PassManager`] and returns the
    /// structural schedule extracted from the pipeline state.
    ///
    /// # Errors
    /// Propagates pass failures and inter-pass verification failures, and fails
    /// when the executed passes produced no schedule.
    pub fn run(&mut self, ctx: &mut Context, func: OpId) -> IrResult<ScheduleOp> {
        let state = self.manager.run(ctx, func)?;
        state.get::<ScheduleOp>().copied().ok_or_else(|| {
            IrError::pass_failed(
                "hida-pipeline",
                "pipeline finished without producing a ScheduleOp \
                 (does it include hida-lower-structural?)",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};

    fn twomm_func(ctx: &mut Context) -> (OpId, OpId) {
        let module = ctx.create_module("m");
        let func = build_kernel(ctx, module, PolybenchKernel::TwoMm, 16);
        (module, func)
    }

    #[test]
    fn from_options_membership_follows_toggles() {
        let full = Pipeline::from_options(&HidaOptions::default());
        assert_eq!(
            full.pass_names(),
            vec![
                "hida-construct-dataflow",
                "hida-task-fusion",
                "hida-lower-structural",
                "hida-eliminate-multi-producers",
                "hida-tiling",
                "hida-balance-data-paths",
                "hida-parallelize",
            ]
        );

        let minimal = Pipeline::from_options(&HidaOptions {
            enable_fusion: false,
            enable_balancing: false,
            tile_size: None,
            ..HidaOptions::default()
        });
        assert_eq!(
            minimal.pass_names(),
            vec![
                "hida-construct-dataflow",
                "hida-lower-structural",
                "hida-parallelize",
            ]
        );
    }

    #[test]
    fn parse_builds_the_same_flow_as_from_options() {
        let options = HidaOptions::polybench();
        let from_options = Pipeline::from_options(&options);
        let parsed =
            Pipeline::parse(&crate::registry::registry(), &options.pipeline_text()).unwrap();
        assert_eq!(parsed.pass_names(), from_options.pass_names());
        assert_eq!(parsed.invocations(), from_options.invocations());
    }

    #[test]
    fn to_text_round_trips_through_parse() {
        let registry = crate::registry::registry();
        for options in [
            HidaOptions::default(),
            HidaOptions::polybench(),
            HidaOptions::dnn(),
            HidaOptions {
                enable_fusion: false,
                mode: ParallelMode::Naive,
                ..HidaOptions::default()
            },
        ] {
            let pipeline = Pipeline::from_options(&options);
            let reparsed = Pipeline::parse(&registry, &pipeline.to_text()).unwrap();
            assert_eq!(reparsed.invocations(), pipeline.invocations());
            assert_eq!(reparsed.to_text(), pipeline.to_text());
        }
    }

    #[test]
    fn from_options_accepts_non_catalog_devices_via_the_direct_fallback() {
        let mut device = hida_estimator::device::FpgaDevice::vu9p_slr();
        device.name = "custom-board".to_string();
        device.dsp = 9000;
        let options = HidaOptions {
            device,
            ..HidaOptions::default()
        };
        // The textual path cannot carry a non-catalog device; the fallback must
        // still produce the full flow with the custom device wired through.
        let pipeline = Pipeline::from_options(&options);
        assert_eq!(pipeline.len(), 7);
        assert!(pipeline.to_text().contains("device=custom-board"));

        let mut ctx = Context::new();
        let (module, func) = twomm_func(&mut ctx);
        let mut pipeline = Pipeline::from_options(&options);
        pipeline.run(&mut ctx, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
    }

    #[test]
    fn hand_added_passes_render_under_their_instance_names() {
        let mut pipeline = Pipeline::new();
        pipeline.add_pass(ConstructPass);
        pipeline.add_pass(LowerPass);
        assert_eq!(
            pipeline.to_text(),
            "hida-construct-dataflow,hida-lower-structural"
        );
        // The standard registry resolves instance names as aliases, so even a
        // hand-assembled pipeline's text parses back to an equivalent flow.
        let reparsed = Pipeline::parse(&crate::registry::registry(), &pipeline.to_text()).unwrap();
        assert_eq!(reparsed.pass_names(), pipeline.pass_names());
    }

    #[test]
    fn parsed_pipelines_execute_like_option_built_ones() {
        let mut ctx = Context::new();
        let (module, func) = twomm_func(&mut ctx);
        let mut pipeline = Pipeline::parse(
            &crate::registry::registry(),
            "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,\
             parallelize{max-factor=16,mode=IA+CA,device=zu3eg}",
        )
        .unwrap();
        let schedule = pipeline.run(&mut ctx, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        assert!(!schedule.nodes(&ctx).is_empty());
        assert_eq!(pipeline.statistics().len(), 7);
    }

    #[test]
    fn pipeline_produces_schedule_and_statistics() {
        let mut ctx = Context::new();
        let (module, func) = twomm_func(&mut ctx);
        let mut pipeline = Pipeline::from_options(&HidaOptions::polybench());
        let schedule = pipeline.run(&mut ctx, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        assert_eq!(schedule.nodes(&ctx).len(), 2);
        // One statistics record per executed pass, all verified.
        assert_eq!(pipeline.statistics().len(), pipeline.len());
        for stat in pipeline.statistics() {
            assert!(stat.verified);
        }
        // Construction creates ops; the recorded deltas see it.
        let construct_stat = &pipeline.statistics()[0];
        assert_eq!(construct_stat.pass, "hida-construct-dataflow");
        assert!(construct_stat.op_delta() > 0);
    }

    #[test]
    fn structural_passes_fail_without_lowering() {
        let mut ctx = Context::new();
        let (_module, func) = twomm_func(&mut ctx);
        let mut pipeline = Pipeline::new();
        pipeline.add_pass(ConstructPass);
        pipeline.add_pass(MultiProducerEliminationPass);
        let err = pipeline.run(&mut ctx, func).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("hida-lower-structural"));
        // The manager must not re-wrap the pass's own attribution.
        assert_eq!(message.matches("failed:").count(), 1, "{message}");
    }

    #[test]
    fn pass_options_are_recorded_in_statistics() {
        let mut ctx = Context::new();
        let (_module, func) = twomm_func(&mut ctx);
        let options = HidaOptions {
            tile_size: Some(4),
            ..HidaOptions::polybench()
        };
        let mut pipeline = Pipeline::from_options(&options);
        pipeline.run(&mut ctx, func).unwrap();
        let tiling = pipeline
            .statistics()
            .iter()
            .find(|s| s.pass == "hida-tiling")
            .unwrap();
        assert!(tiling
            .options
            .iter()
            .any(|o| o.name == "tile-size" && o.value == "4"));
        let parallelize = pipeline
            .statistics()
            .iter()
            .find(|s| s.pass == "hida-parallelize")
            .unwrap();
        assert!(parallelize
            .options
            .iter()
            .any(|o| o.name == "mode" && o.value == "IA+CA"));
    }
}
