//! Loop tiling and external-memory spilling for large dataflow designs.
//!
//! ScaleHLS "must keep all intermediate results on-chip due to the lack of external
//! memory access support"; HIDA instead tiles large layers, keeps only tile-sized
//! local buffers on chip, and streams full feature maps through external memory
//! (paper §7.2, Figure 9 and the Figure 10 tile-size ablation). This pass applies
//! that decision to a structural schedule:
//!
//! * every node whose spatial loop dimensions exceed the tile size gets `tile_sizes`
//!   annotations (consumed by the QoR estimator's burst-efficiency model),
//! * every inter-node buffer whose ping-pong footprint exceeds the threshold is
//!   placed in external memory, and a tile-sized local buffer is added to each node
//!   touching it (the "Tile Load / Tile Comp. / Tile Store" structure of Figure 3).

use hida_dataflow_ir::structural::{build_buffer, ScheduleOp};
use hida_dialects::analysis::{ComputeProfile, MemEffect};
use hida_dialects::hls::MemoryKind;
use hida_dialects::transforms;
use hida_ir_core::{
    Analysis, AnalysisManager, AnalysisSnapshot, Context, IrResult, NodeScope, OpBuilder, Type,
};

/// Per-dimension tile sizes for a node: spatial dimensions are clamped to the
/// square tile, reduction dimensions keep their full trip. `None` when the node
/// has no loop structure to tile.
pub fn tile_sizes_for(profile: &ComputeProfile, tile_size: i64) -> Option<Vec<i64>> {
    if profile.loop_dims.is_empty() {
        return None;
    }
    Some(
        profile
            .loop_dims
            .iter()
            .map(|d| {
                if d.reduction {
                    d.trip
                } else {
                    d.trip.min(tile_size)
                }
            })
            .collect(),
    )
}

/// Applies tiling with the given square tile size and external-memory threshold.
/// Node profiles are fetched through `analyses`: tiling only annotates nodes and
/// adds buffers, so cached profiles (warmed during lowering) are reused as-is.
pub fn apply_tiling(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
    tile_size: i64,
    external_threshold_bytes: i64,
) {
    let tile_size = tile_size.max(1);

    // 1. Annotate every node with per-dimension tile sizes.
    for node in schedule.nodes(ctx) {
        let profile = analyses.get::<ComputeProfile>(ctx, node.id());
        if let Some(tiles) = tile_sizes_for(&profile, tile_size) {
            transforms::apply_tile_sizes(ctx, node.id(), &tiles);
        }
    }

    // 2. Spill large inter-node buffers to external memory.
    spill_large_buffers(ctx, schedule, tile_size, external_threshold_bytes);
}

/// The worker-thread half of tiling: computes one node's tile sizes from the
/// frozen profile (falling back to a direct recomputation over the shared
/// read-only context when the snapshot is cold) and records the annotation
/// edits into the scope. Buffer spilling stays on the main thread —
/// [`spill_large_buffers`] — because it creates ops across node boundaries.
///
/// # Errors
/// Propagates scope violations.
pub fn plan_node_tiling(
    scope: &mut NodeScope<'_>,
    snapshot: &AnalysisSnapshot,
    tile_size: i64,
) -> IrResult<()> {
    let node = scope.root();
    let tile_size = tile_size.max(1);
    let profile = match snapshot.get::<ComputeProfile>(node) {
        Some(profile) => profile.clone(),
        None => ComputeProfile::compute(scope.ctx(), node),
    };
    if let Some(tiles) = tile_sizes_for(&profile, tile_size) {
        transforms::plan_tile_sizes(scope, node, &tiles)?;
    }
    Ok(())
}

/// Spills every inter-node buffer whose ping-pong footprint exceeds the
/// threshold to external memory, adding a tile-sized local buffer to each node
/// touching it (the "Tile Load / Tile Comp. / Tile Store" structure of
/// Figure 3). Sequential by design: it inserts buffer ops into the schedule
/// body and rewires node operands.
pub fn spill_large_buffers(
    ctx: &mut Context,
    schedule: ScheduleOp,
    tile_size: i64,
    external_threshold_bytes: i64,
) {
    let tile_size = tile_size.max(1);
    let buffers = schedule.internal_buffers(ctx);
    for buffer in buffers {
        let bytes =
            buffer.num_elements(ctx) * buffer.elem_bits(ctx) as i64 / 8 * buffer.depth(ctx).max(1);
        if bytes <= external_threshold_bytes {
            continue;
        }
        buffer.set_memory_kind(ctx, MemoryKind::External);
        let value = buffer.value(ctx);
        let elem = ctx.value_type(value).elem_type().clone();
        let shape = buffer.shape(ctx);
        let tile_shape: Vec<i64> = shape.iter().map(|&d| d.min(tile_size).max(1)).collect();
        let tile_ty = Type::memref(tile_shape, elem);

        // One local tile buffer per accessing node, declared next to the original.
        let nodes: Vec<_> = schedule
            .nodes(ctx)
            .into_iter()
            .filter(|n| n.operands(ctx).contains(&value))
            .collect();
        for (i, node) in nodes.iter().enumerate() {
            let tile_name = format!("{}_tile{i}", buffer.name(ctx));
            let body = schedule.body(ctx);
            let pos = ctx.block(body).position_of(buffer.id()).unwrap_or(0);
            let local = {
                let mut b = OpBuilder::at_block_index(ctx, body, pos + 1);
                build_buffer(&mut b, tile_ty.clone(), 2, &tile_name).1
            };
            node.add_operand(ctx, local, MemEffect::ReadWrite);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_functional_dataflow;
    use crate::fusion::{default_fusion_patterns, fuse_tasks};
    use crate::lower::lower_to_structural;
    use hida_frontend::nn::{build_model, Model};

    fn lenet_schedule() -> (Context, ScheduleOp) {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_model(&mut ctx, module, Model::LeNet);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        let mut analyses = AnalysisManager::new();
        fuse_tasks(&mut ctx, &mut analyses, func, &default_fusion_patterns()).unwrap();
        let schedule = lower_to_structural(&mut ctx, &mut analyses, func).unwrap();
        (ctx, schedule)
    }

    #[test]
    fn tiling_annotates_nodes_and_spills_large_buffers() {
        let (mut ctx, schedule) = lenet_schedule();
        let before_buffers = schedule.internal_buffers(&ctx).len();
        let mut analyses = AnalysisManager::new();
        apply_tiling(&mut ctx, &mut analyses, schedule, 4, 1024);
        // Every node has tile sizes recorded.
        for node in schedule.nodes(&ctx) {
            let profile = analyses.get::<ComputeProfile>(&ctx, node.id());
            if profile.loop_dims.is_empty() {
                continue;
            }
            let tiles = transforms::tile_sizes_of(&ctx, node.id(), profile.loop_dims.len());
            let tiles = tiles.expect("tile sizes must be recorded");
            for (tile, dim) in tiles.iter().zip(&profile.loop_dims) {
                assert!(*tile <= dim.trip.max(1));
                if !dim.reduction {
                    assert!(*tile <= 4);
                }
            }
        }
        // At least one activation buffer was spilled (LeNet's 6x28x28 feature map is
        // ~4.7 KB > 1 KB threshold) and tile-local buffers were added.
        let external = schedule
            .internal_buffers(&ctx)
            .iter()
            .filter(|b| b.memory_kind(&ctx) == MemoryKind::External)
            .count();
        assert!(external >= 1);
        assert!(schedule.internal_buffers(&ctx).len() > before_buffers);
        hida_ir_core::verifier::verify(&ctx, ctx.ancestors(schedule.id()).pop().unwrap()).unwrap();
    }

    #[test]
    fn small_buffers_stay_on_chip_with_generous_threshold() {
        let (mut ctx, schedule) = lenet_schedule();
        apply_tiling(
            &mut ctx,
            &mut AnalysisManager::new(),
            schedule,
            8,
            10 * 1024 * 1024,
        );
        let external = schedule
            .internal_buffers(&ctx)
            .iter()
            .filter(|b| b.memory_kind(&ctx) == MemoryKind::External)
            .count();
        // Only the input buffer (already external from lowering) remains external.
        assert!(external <= 1);
    }
}
