//! `hida-opt` — run a textual HIDA-OPT pass pipeline over a built-in workload.
//!
//! The CLI counterpart of `Pipeline::parse`: ablations are command-line strings
//! instead of recompiled bench binaries.
//!
//! ```text
//! hida-opt --list-passes
//! hida-opt --list-workloads
//! hida-opt --workload two_mm \
//!     --pipeline "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize"
//! hida-opt --workload lenet --preset dnn
//! ```
//!
//! Prints the normalized pipeline, per-pass `PassStatistics`, the resulting
//! schedule (nodes, unroll factors, buffers) and the estimated QoR.

use hida_dialects::analysis::ComputeProfile;
use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::device::FpgaDevice;
use hida_frontend::nn::{build_model, Model};
use hida_frontend::polybench::{build_kernel, PolybenchKernel};
use hida_ir_core::pass::PassStatistics;
use hida_ir_core::{AnalysisCacheStats, Context, OpId};
use hida_opt::registry::{registry, registry_listing};
use hida_opt::{HidaOptions, Pipeline};
use std::fmt::Write as _;
use std::process::ExitCode;

const USAGE: &str = "\
usage: hida-opt [OPTIONS]

  --workload <name>     workload to compile (see --list-workloads); accepts
                        paper names (2mm, resnet-18) and identifiers (two_mm)
  --pipeline <text>     textual pass pipeline, e.g.
                        \"construct,fusion,lower,tiling{factor=4},parallelize\"
  --preset <name>       pipeline preset when --pipeline is omitted:
                        default | polybench | dnn
  --size <n>            PolyBench problem size (default: the kernel's own)
  --jobs <n>            worker threads for per-node pass work and QoR
                        estimation (default: available parallelism; 1 = fully
                        sequential, bitwise-reproducible execution)
  --device <name>       device for QoR estimation: pynq-z2 | zu3eg | vu9p-slr
                        (default: the pipeline's parallelize device, else
                        vu9p-slr)
  --no-verify           skip inter-pass IR verification
  --stats-json          emit per-pass statistics (timing, op deltas, analysis
                        cache hits/misses) as one JSON object on stdout; the
                        human-readable report moves to stderr
  --list-passes         print the pass registry and exit
  --list-workloads      print the known workloads and exit
  --help                print this help and exit";

/// A workload resolvable from the command line.
enum CliWorkload {
    Polybench(PolybenchKernel),
    Model(Model),
}

/// Lowercased name with separators removed, so `two_mm`, `TwoMm` and `2mm`
/// collapse onto comparable keys.
fn normalize(name: &str) -> String {
    name.to_lowercase()
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .collect()
}

/// Additional spellings accepted for kernels whose paper name starts with a digit.
fn kernel_aliases(kernel: PolybenchKernel) -> &'static [&'static str] {
    match kernel {
        PolybenchKernel::TwoMm => &["twomm"],
        PolybenchKernel::ThreeMm => &["threemm"],
        _ => &[],
    }
}

fn resolve_workload(name: &str) -> Option<CliWorkload> {
    let key = normalize(name);
    for kernel in PolybenchKernel::all() {
        if normalize(kernel.name()) == key || kernel_aliases(kernel).contains(&key.as_str()) {
            return Some(CliWorkload::Polybench(kernel));
        }
    }
    Model::all()
        .into_iter()
        .find(|m| normalize(m.name()) == key)
        .map(CliWorkload::Model)
}

fn workload_listing() -> String {
    let kernels: Vec<&str> = PolybenchKernel::all().iter().map(|k| k.name()).collect();
    let models: Vec<&str> = Model::all().iter().map(|m| m.name()).collect();
    format!(
        "PolyBench kernels: {}\nDNN models:        {}",
        kernels.join(", "),
        models.join(", ")
    )
}

#[derive(Default)]
struct Args {
    workload: Option<String>,
    pipeline: Option<String>,
    preset: Option<String>,
    size: Option<i64>,
    jobs: Option<usize>,
    device: Option<String>,
    no_verify: bool,
    stats_json: bool,
    list_passes: bool,
    list_workloads: bool,
    help: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--workload" => args.workload = Some(value_of("--workload")?),
            "--pipeline" => args.pipeline = Some(value_of("--pipeline")?),
            "--preset" => args.preset = Some(value_of("--preset")?),
            "--size" => {
                let raw = value_of("--size")?;
                let size: i64 = raw
                    .parse()
                    .map_err(|_| format!("--size: '{raw}' is not an integer"))?;
                if size < 4 {
                    return Err(format!("--size: {size} must be >= 4"));
                }
                args.size = Some(size);
            }
            "--jobs" => {
                let raw = value_of("--jobs")?;
                let jobs: usize = raw
                    .parse()
                    .map_err(|_| format!("--jobs: '{raw}' is not an integer"))?;
                if jobs < 1 {
                    return Err("--jobs: must be >= 1".to_string());
                }
                args.jobs = Some(jobs);
            }
            "--device" => args.device = Some(value_of("--device")?),
            "--no-verify" => args.no_verify = true,
            "--stats-json" => args.stats_json = true,
            "--list-passes" => args.list_passes = true,
            "--list-workloads" => args.list_workloads = true,
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn preset_text(preset: &str) -> Result<String, String> {
    let options = match preset {
        "default" => HidaOptions::default(),
        "polybench" => HidaOptions::polybench(),
        "dnn" => HidaOptions::dnn(),
        other => {
            return Err(format!(
                "unknown preset '{other}' (default, polybench, dnn)"
            ))
        }
    };
    Ok(options.pipeline_text())
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn cache_json(cache: &AnalysisCacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"invalidations\":{},\"preserved\":{}}}",
        cache.hits, cache.misses, cache.invalidations, cache.preserved
    )
}

fn parallel_json(parallel: Option<&hida_ir_core::ParallelStats>) -> String {
    match parallel {
        Some(p) => format!(
            "{{\"workers\":{},\"items\":{},\"steals\":{},\"imbalance\":{}}}",
            p.workers,
            p.items,
            p.steals,
            p.imbalance()
        ),
        None => "null".to_string(),
    }
}

/// Renders the per-pass statistics (and their aggregate analysis-cache
/// counters) as one machine-readable JSON object for the CI ablation matrix.
fn stats_json(workload: &str, pipeline_text: &str, statistics: &[PassStatistics]) -> String {
    let totals = PassStatistics::aggregate_cache(statistics);
    let passes: Vec<String> = statistics
        .iter()
        .map(|stat| {
            let options: Vec<String> = stat
                .options
                .iter()
                .map(|o| {
                    format!(
                        "{{\"name\":\"{}\",\"value\":\"{}\"}}",
                        json_escape(&o.name),
                        json_escape(&o.value)
                    )
                })
                .collect();
            format!(
                "{{\"pass\":\"{}\",\"micros\":{},\"live_ops_before\":{},\"live_ops_after\":{},\
                 \"op_delta\":{},\"verified\":{},\"failed\":{},\"cache\":{},\"parallel\":{},\
                 \"options\":[{}]}}",
                json_escape(&stat.pass),
                stat.micros,
                stat.live_ops_before,
                stat.live_ops_after,
                stat.op_delta(),
                stat.verified,
                stat.failed,
                cache_json(&stat.cache),
                parallel_json(stat.parallel.as_ref()),
                options.join(",")
            )
        })
        .collect();
    format!(
        "{{\"workload\":\"{}\",\"pipeline\":\"{}\",\"passes\":[{}],\"analysis_cache_totals\":{}}}",
        json_escape(workload),
        json_escape(pipeline_text),
        passes.join(","),
        cache_json(&totals)
    )
}

fn run(args: Args) -> Result<(), String> {
    // With --stats-json, stdout carries exactly one JSON object; the
    // human-readable report moves to stderr so `hida-opt --stats-json | jq .`
    // works as documented.
    macro_rules! say {
        ($($arg:tt)*) => {
            if args.stats_json {
                eprintln!($($arg)*)
            } else {
                println!($($arg)*)
            }
        };
    }
    let workload_name = args
        .workload
        .as_deref()
        .ok_or("missing --workload (try --list-workloads)")?;
    let workload = resolve_workload(workload_name)
        .ok_or_else(|| format!("unknown workload '{workload_name}'\n{}", workload_listing()))?;
    let pipeline_text = match (&args.pipeline, &args.preset) {
        (Some(_), Some(_)) => return Err("--pipeline and --preset are exclusive".to_string()),
        (Some(text), None) => text.clone(),
        (None, Some(preset)) => preset_text(preset)?,
        (None, None) => preset_text("default")?,
    };
    let mut pipeline = Pipeline::parse(&registry(), &pipeline_text).map_err(|e| e.to_string())?;
    if pipeline.is_empty() {
        return Err("the pipeline is empty".to_string());
    }
    // Estimate QoR against the device the design was actually sized for: the
    // parallelize pass's device option, unless --device overrides it.
    let pipeline_device = pipeline
        .invocations()
        .iter()
        .rev()
        .find(|i| i.name == "parallelize")
        .and_then(|i| i.options.iter().find(|o| o.name == "device"))
        .map(|o| o.value.clone());
    let device_name = args
        .device
        .clone()
        .or(pipeline_device)
        .unwrap_or_else(|| "vu9p-slr".to_string());
    let device = FpgaDevice::by_name(&device_name).ok_or_else(|| {
        let known: Vec<String> = FpgaDevice::catalog().into_iter().map(|d| d.name).collect();
        format!(
            "unknown device '{device_name}' (known: {})",
            known.join(", ")
        )
    })?;
    if args.no_verify {
        pipeline = pipeline.with_verification(false);
    }
    // Per-node pass work (tiling, parallelize, profile) and QoR estimation run
    // on this many workers; --jobs 1 is the reproducibility escape hatch.
    let jobs = args.jobs.unwrap_or_else(hida_ir_core::default_jobs);
    pipeline = pipeline.with_jobs(jobs);

    let mut ctx = Context::new();
    let module = ctx.create_module(workload_name);
    let func: OpId = match workload {
        CliWorkload::Polybench(kernel) => {
            let size = args.size.unwrap_or_else(|| kernel.default_size());
            say!("workload: {} (PolyBench, size {size})", kernel.name());
            build_kernel(&mut ctx, module, kernel, size)
        }
        CliWorkload::Model(model) => {
            say!("workload: {} (DNN model)", model.name());
            build_model(&mut ctx, module, model)
        }
    };
    say!("pipeline: {}", pipeline.to_text());
    say!("jobs: {jobs}");
    let pipeline_text = pipeline.to_text();

    let run_result = pipeline.run(&mut ctx, func);

    say!("\n# Per-pass statistics");
    for stat in pipeline.statistics() {
        say!("{stat}");
    }
    let cache_totals = PassStatistics::aggregate_cache(pipeline.statistics());
    say!("analysis cache totals: {cache_totals}");
    if args.stats_json {
        println!(
            "{}",
            stats_json(workload_name, &pipeline_text, pipeline.statistics())
        );
    }
    // A failing pipeline still reported where (and after how long) it died.
    let schedule = run_result.map_err(|e| e.to_string())?;

    say!("\n# Schedule ({} nodes)", schedule.nodes(&ctx).len());
    for node in schedule.nodes(&ctx) {
        // The parallelize pass preserved the node profiles; these queries are
        // pure cache hits.
        let rank = pipeline
            .analyses_mut()
            .get::<ComputeProfile>(&ctx, node.id())
            .loop_dims
            .len();
        say!(
            "node {:<24} intensity {:<10} parallel factor {:<5} unroll {:?}",
            node.name(&ctx),
            ctx.op(node.id()).attr_int("intensity").unwrap_or(0),
            ctx.op(node.id()).attr_int("parallel_factor").unwrap_or(0),
            hida_dialects::transforms::unroll_factors_of(&ctx, node.id(), rank),
        );
    }
    for buffer in schedule.internal_buffers(&ctx) {
        let partition = buffer.partition(&ctx);
        say!(
            "buffer {:<22} depth {:<3} kind {:<9} partition {:?} ({} banks)",
            buffer.name(&ctx),
            buffer.depth(&ctx),
            format!("{:?}", buffer.memory_kind(&ctx)),
            partition.factors,
            partition.bank_count(),
        );
    }

    let estimator = DataflowEstimator::new(device.clone()).with_jobs(jobs);
    let dataflow = estimator.estimate_schedule(&ctx, schedule, true);
    let sequential = estimator.estimate_schedule(&ctx, schedule, false);
    say!("\n# QoR estimate ({})", device.name);
    say!(
        "throughput: {:.3} samples/s (dataflow) vs {:.3} samples/s (sequential)",
        dataflow.throughput(),
        sequential.throughput()
    );
    say!(
        "resources:  DSP {} / {}, BRAM-18K {} / {}, LUT {} / {}",
        dataflow.resources.dsp,
        device.dsp,
        dataflow.resources.bram_18k,
        device.bram_18k,
        dataflow.resources.lut,
        device.lut
    );
    say!("DSP efficiency: {:.1}%", 100.0 * dataflow.dsp_efficiency());
    say!(
        "estimator cache: {} (dataflow + sequential estimates share node estimates)",
        estimator.cache_stats()
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.list_passes {
        print!("{}", registry_listing());
        return ExitCode::SUCCESS;
    }
    if args.list_workloads {
        println!("{}", workload_listing());
        return ExitCode::SUCCESS;
    }
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
