//! The HIDA-OPT pass registry: every optimizer pass registered by name, with its
//! knobs as named options, so pipelines can be assembled from text
//! (`construct,fusion,lower,...`) instead of compiled-in `add_pass` sequences.
//!
//! Each pass resolves under a short canonical name *and* its long `hida-*`
//! instance name (the one recorded in `PassStatistics`), so a pipeline printed
//! from live pass instances re-parses:
//!
//! | canonical | alias | options |
//! |-----------|-------|---------|
//! | `construct` | `hida-construct-dataflow` | — |
//! | `fusion` | `hida-task-fusion` | `patterns` |
//! | `lower` | `hida-lower-structural` | — |
//! | `profile` | `hida-profile-nodes` | — |
//! | `multi-producer-elim` | `hida-eliminate-multi-producers` | — |
//! | `tiling` | `hida-tiling` | `factor`/`tile-size`, `external-threshold-bytes` |
//! | `balance` | `hida-balance-data-paths` | `external-threshold-bytes` |
//! | `parallelize` | `hida-parallelize` | `max-factor`/`max-parallel-factor`, `mode`, `device` |
//!
//! [`registry`] builds the registry; [`registry_listing`] renders it for the
//! `hida-opt --list-passes` CLI surface.

use crate::fusion::{ConvPoolFusion, ElementwiseFusion, FusionPattern};
use crate::pipeline::{
    BalancePass, ConstructPass, FusionPass, LowerPass, MultiProducerEliminationPass,
    ParallelizePass, ProfilePass, TilingPass,
};
use crate::ParallelMode;
use hida_estimator::device::FpgaDevice;
use hida_ir_core::registry::{PassRegistry, PassSpec};
use hida_ir_core::PassOption;
use std::fmt::Write as _;

/// Default tile size when `tiling` is invoked without a `factor`.
const DEFAULT_TILE_SIZE: i64 = 8;
/// Default external-memory spill threshold in bytes (64 KiB, the
/// `HidaOptions::default()` value).
const DEFAULT_EXTERNAL_THRESHOLD_BYTES: i64 = 64 * 1024;
/// Default per-node parallel factor cap.
const DEFAULT_MAX_PARALLEL_FACTOR: i64 = 32;
/// Default target device name.
const DEFAULT_DEVICE: &str = "vu9p-slr";

/// Typed access to parsed pass options with unknown-name rejection. Each entry
/// of `known` lists the aliases of one logical option; the last occurrence of
/// any alias wins.
struct OptionReader<'a> {
    options: &'a [PassOption],
}

impl<'a> OptionReader<'a> {
    fn new(options: &'a [PassOption], known: &[&[&str]]) -> Result<Self, String> {
        for option in options {
            if !known
                .iter()
                .any(|aliases| aliases.contains(&option.name.as_str()))
            {
                let names: Vec<&str> = known.iter().map(|aliases| aliases[0]).collect();
                return Err(format!(
                    "unknown option '{}' (accepted: {})",
                    option.name,
                    if names.is_empty() {
                        "none".to_string()
                    } else {
                        names.join(", ")
                    }
                ));
            }
        }
        Ok(OptionReader { options })
    }

    /// Raw value of the last occurrence of any alias.
    fn get(&self, aliases: &[&str]) -> Option<&'a str> {
        self.options
            .iter()
            .rev()
            .find(|o| aliases.contains(&o.name.as_str()))
            .map(|o| o.value.as_str())
    }

    /// Integer-valued option with a default.
    fn int(&self, aliases: &[&str], default: i64) -> Result<i64, String> {
        match self.get(aliases) {
            Some(value) => value
                .parse()
                .map_err(|_| format!("option '{}': '{value}' is not an integer", aliases[0])),
            None => Ok(default),
        }
    }

    /// Positive-integer-valued option with a default.
    fn positive_int(&self, aliases: &[&str], default: i64) -> Result<i64, String> {
        let value = self.int(aliases, default)?;
        if value < 1 {
            return Err(format!("option '{}': {value} must be >= 1", aliases[0]));
        }
        Ok(value)
    }
}

/// Resolves one fusion pattern name (as printed by `FusionPass`'s `patterns`
/// option) into a pattern instance.
fn fusion_pattern_by_name(name: &str) -> Option<Box<dyn FusionPattern>> {
    match name {
        "elementwise-fusion" => Some(Box::new(ElementwiseFusion)),
        "conv-pool-fusion" => Some(Box::new(ConvPoolFusion)),
        _ => None,
    }
}

/// Builds the registry holding all eight HIDA-OPT passes.
pub fn registry() -> PassRegistry {
    let mut registry = PassRegistry::new();
    registry.register(
        PassSpec::new(
            "construct",
            "functional dataflow construction: wrap regions into hida.dispatch/hida.task (Algorithm 1)",
            |options| {
                OptionReader::new(options, &[])?;
                Ok(Box::new(ConstructPass))
            },
        )
        .with_alias("hida-construct-dataflow"),
    );
    registry.register(
        PassSpec::new(
            "fusion",
            "pattern- and criticality-driven task fusion (Algorithm 2)",
            |options| {
                let reader = OptionReader::new(options, &[&["patterns"]])?;
                let pass = match reader.get(&["patterns"]) {
                    Some(list) => {
                        let patterns = list
                            .split('+')
                            .map(|name| {
                                fusion_pattern_by_name(name).ok_or_else(|| {
                                    format!(
                                        "option 'patterns': unknown fusion pattern '{name}' \
                                         (known: elementwise-fusion, conv-pool-fusion)"
                                    )
                                })
                            })
                            .collect::<Result<Vec<_>, String>>()?;
                        FusionPass::with_patterns(patterns)
                    }
                    None => FusionPass::new(),
                };
                Ok(Box::new(pass))
            },
        )
        .with_alias("hida-task-fusion")
        .with_option(
            "patterns",
            "'+'-separated fusion pattern names",
            Some("elementwise-fusion+conv-pool-fusion"),
        ),
    );
    registry.register(
        PassSpec::new(
            "lower",
            "structural dataflow construction: lower to hida.schedule/node/buffer (paper \u{a7}6.3)",
            |options| {
                OptionReader::new(options, &[])?;
                Ok(Box::new(LowerPass))
            },
        )
        .with_alias("hida-lower-structural"),
    );
    registry.register(
        PassSpec::new(
            "profile",
            "per-node compute profiling: warm the analysis cache (parallel under --jobs N)",
            |options| {
                OptionReader::new(options, &[])?;
                Ok(Box::new(ProfilePass))
            },
        )
        .with_alias("hida-profile-nodes"),
    );
    registry.register(
        PassSpec::new(
            "multi-producer-elim",
            "multi-producer elimination via buffer duplication / producer fusion (Algorithm 3)",
            |options| {
                OptionReader::new(options, &[])?;
                Ok(Box::new(MultiProducerEliminationPass))
            },
        )
        .with_alias("hida-eliminate-multi-producers"),
    );
    registry.register(
        PassSpec::new(
            "tiling",
            "loop tiling plus external-memory spilling of oversized buffers (paper \u{a7}7.2)",
            |options| {
                let reader = OptionReader::new(
                    options,
                    &[&["factor", "tile-size"], &["external-threshold-bytes"]],
                )?;
                Ok(Box::new(TilingPass {
                    tile_size: reader.positive_int(&["factor", "tile-size"], DEFAULT_TILE_SIZE)?,
                    external_threshold_bytes: reader.positive_int(
                        &["external-threshold-bytes"],
                        DEFAULT_EXTERNAL_THRESHOLD_BYTES,
                    )?,
                }))
            },
        )
        .with_alias("hida-tiling")
        .with_option(
            "factor",
            "square spatial tile size (alias: tile-size)",
            Some("8"),
        )
        .with_option(
            "external-threshold-bytes",
            "buffers above this many bytes spill to external memory",
            Some("65536"),
        ),
    );
    registry.register(
        PassSpec::new(
            "balance",
            "data-path balancing: buffer deepening and soft FIFOs with token flow (paper \u{a7}6.4.2)",
            |options| {
                let reader = OptionReader::new(options, &[&["external-threshold-bytes"]])?;
                Ok(Box::new(BalancePass {
                    external_threshold_bytes: reader.positive_int(
                        &["external-threshold-bytes"],
                        DEFAULT_EXTERNAL_THRESHOLD_BYTES,
                    )?,
                }))
            },
        )
        .with_alias("hida-balance-data-paths")
        .with_option(
            "external-threshold-bytes",
            "deepened buffers above this many bytes become soft FIFOs",
            Some("65536"),
        ),
    );
    registry.register(
        PassSpec::new(
            "parallelize",
            "intensity- and connection-aware parallelization plus array partitioning (Algorithm 4)",
            |options| {
                let reader = OptionReader::new(
                    options,
                    &[
                        &["max-factor", "max-parallel-factor"],
                        &["mode"],
                        &["device"],
                    ],
                )?;
                let mode = match reader.get(&["mode"]) {
                    Some(label) => ParallelMode::from_label(label).ok_or_else(|| {
                        format!(
                            "option 'mode': unknown mode '{label}' \
                             (known: IA+CA, IA, CA, Naive)"
                        )
                    })?,
                    None => ParallelMode::IaCa,
                };
                let device_name = reader.get(&["device"]).unwrap_or(DEFAULT_DEVICE);
                let device = FpgaDevice::by_name(device_name).ok_or_else(|| {
                    let known: Vec<String> =
                        FpgaDevice::catalog().into_iter().map(|d| d.name).collect();
                    format!(
                        "option 'device': unknown device '{device_name}' (known: {})",
                        known.join(", ")
                    )
                })?;
                Ok(Box::new(ParallelizePass {
                    max_parallel_factor: reader.positive_int(
                        &["max-factor", "max-parallel-factor"],
                        DEFAULT_MAX_PARALLEL_FACTOR,
                    )?,
                    mode,
                    device,
                }))
            },
        )
        .with_alias("hida-parallelize")
        .with_option(
            "max-factor",
            "maximum parallel factor per node (alias: max-parallel-factor)",
            Some("32"),
        )
        .with_option(
            "mode",
            "parallelization strategy: IA+CA, IA, CA or Naive",
            Some("IA+CA"),
        )
        .with_option(
            "device",
            "catalog device: pynq-z2, zu3eg or vu9p-slr",
            Some("vu9p-slr"),
        ),
    );
    registry
}

/// Renders the registry for `hida-opt --list-passes`: one block per pass with
/// its canonical name, aliases, description and option table.
pub fn registry_listing() -> String {
    let registry = registry();
    let mut out = String::from("Registered passes:\n");
    for spec in registry.specs() {
        let aliases = if spec.aliases().is_empty() {
            String::new()
        } else {
            format!(" ({})", spec.aliases().join(", "))
        };
        let _ = writeln!(out, "  {}{aliases}", spec.name());
        let _ = writeln!(out, "      {}", spec.description());
        if !spec.options().is_empty() {
            let _ = writeln!(out, "      options:");
            for option in spec.options() {
                let default = option
                    .default
                    .as_ref()
                    .map(|d| format!(" [default: {d}]"))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "        {:<26} {}{default}",
                    option.name, option.description
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_ir_core::PassInvocation;

    fn create_err(text: &str) -> String {
        match registry().build(text) {
            Ok(_) => panic!("expected '{text}' to fail"),
            Err(e) => e.to_string(),
        }
    }

    #[test]
    fn all_eight_passes_are_registered_in_flow_order() {
        assert_eq!(
            registry().pass_names(),
            vec![
                "construct",
                "fusion",
                "lower",
                "profile",
                "multi-producer-elim",
                "tiling",
                "balance",
                "parallelize",
            ]
        );
    }

    #[test]
    fn long_pass_names_resolve_as_aliases() {
        let registry = registry();
        for (long, short) in [
            ("hida-construct-dataflow", "construct"),
            ("hida-task-fusion", "fusion"),
            ("hida-lower-structural", "lower"),
            ("hida-profile-nodes", "profile"),
            ("hida-eliminate-multi-producers", "multi-producer-elim"),
            ("hida-tiling", "tiling"),
            ("hida-balance-data-paths", "balance"),
            ("hida-parallelize", "parallelize"),
        ] {
            assert_eq!(registry.get(long).unwrap().name(), short, "{long}");
        }
    }

    #[test]
    fn created_instances_normalize_aliases_and_fill_defaults() {
        let registry = registry();
        let (normalized, pass) = registry
            .create(&PassInvocation::with_options(
                "hida-tiling",
                vec![PassOption::new("factor", 4)],
            ))
            .unwrap();
        assert_eq!(normalized.name, "tiling");
        assert_eq!(pass.name(), "hida-tiling");
        // The instance reports its canonical option names with defaults applied.
        assert_eq!(
            normalized.options,
            vec![
                PassOption::new("tile-size", 4),
                PassOption::new("external-threshold-bytes", 65536),
            ]
        );
    }

    #[test]
    fn parallelize_options_parse_modes_and_devices() {
        let registry = registry();
        let (normalized, _) = registry
            .create(&PassInvocation::with_options(
                "parallelize",
                vec![
                    PassOption::new("max-factor", 8),
                    PassOption::new("mode", "naive"),
                    PassOption::new("device", "zu3eg"),
                ],
            ))
            .unwrap();
        assert_eq!(
            normalized.options,
            vec![
                PassOption::new("max-parallel-factor", 8),
                PassOption::new("mode", "Naive"),
                PassOption::new("device", "zu3eg"),
            ]
        );
    }

    #[test]
    fn factories_reject_bad_options() {
        assert!(create_err("construct{x=1}").contains("unknown option 'x'"));
        assert!(create_err("tiling{factor=zero}").contains("is not an integer"));
        assert!(create_err("tiling{factor=0}").contains("must be >= 1"));
        assert!(create_err("parallelize{mode=fast}").contains("unknown mode 'fast'"));
        assert!(create_err("parallelize{device=u250}").contains("unknown device 'u250'"));
        assert!(create_err("fusion{patterns=magic}").contains("unknown fusion pattern 'magic'"));
    }

    #[test]
    fn fusion_pattern_subsets_are_constructible() {
        let registry = registry();
        let (normalized, _) = registry
            .create(&PassInvocation::with_options(
                "fusion",
                vec![PassOption::new("patterns", "conv-pool-fusion")],
            ))
            .unwrap();
        assert_eq!(
            normalized.options,
            vec![PassOption::new("patterns", "conv-pool-fusion")]
        );
    }

    #[test]
    fn listing_mentions_every_pass_and_option_default() {
        let listing = registry_listing();
        for name in registry().pass_names() {
            assert!(listing.contains(&name), "listing missing {name}");
        }
        assert!(listing.contains("[default: 8]"));
        assert!(listing.contains("hida-parallelize"));
    }
}
