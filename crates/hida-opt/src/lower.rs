//! Structural dataflow construction (paper §6.3, Figure 6).
//!
//! Lowering from Functional to Structural dataflow performs three jobs:
//!
//! 1. **Buffer generation** — every tensor passed between tasks becomes a ping-pong
//!    `hida.buffer` (memref semantics); every `memref.alloc` shared between loop-nest
//!    tasks becomes a `hida.buffer` as well.
//! 2. **Dispatch→schedule mapping** — the (transparent) dispatch becomes an
//!    (isolated) `hida.schedule` owning the buffers and nodes.
//! 3. **Task→node mapping** — each task becomes a `hida.node` whose operands are the
//!    buffers it touches, grouped by analyzed memory effect; the task body is cloned
//!    into the node with every external value rewired to the matching block argument
//!    and named layers rewritten to destination-passing form.

use hida_dataflow_ir::functional::DispatchOp;
use hida_dataflow_ir::op_names as hida_ops;
use hida_dataflow_ir::structural::{build_buffer, build_node, NodeOp, ScheduleOp};
use hida_dialects::analysis::{ComputeProfile, MemEffect};
use hida_dialects::linalg;
use hida_ir_core::{
    AnalysisManager, Attribute, Context, IrError, IrResult, OpBuilder, OpId, Type, ValueId,
};
use std::collections::HashMap;

/// Lowers the Functional dataflow inside `func` to a Structural `hida.schedule`.
///
/// Works for functions containing a `hida.dispatch` of tasks (multi-task dataflow)
/// as well as functions whose body is a plain set of compute units (which become a
/// schedule with one node per unit).
///
/// # Errors
/// Returns an error if the function has no compute content at all.
pub fn lower_to_structural(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    func: OpId,
) -> IrResult<ScheduleOp> {
    // Collect the "tasks": either the tasks of the dispatch, or the top-level compute
    // units of the function body.
    let dispatch = ctx
        .body_ops(func)
        .into_iter()
        .find(|&o| ctx.op(o).is(hida_ops::DISPATCH))
        .map(DispatchOp);
    let task_groups: Vec<OpId> = match dispatch {
        Some(d) => d.tasks(ctx).into_iter().map(|t| t.id()).collect(),
        None => ctx
            .body_ops(func)
            .into_iter()
            .filter(|&o| crate::construct::is_compute_unit(ctx, o))
            .collect(),
    };
    if task_groups.is_empty() {
        return Err(IrError::pass_failed(
            "hida-lower",
            "function contains no compute operations to lower",
        ));
    }

    // Create the schedule at the end of the function body; nodes and buffers live in
    // its (isolated) body so the schedule has no live-ins.
    let schedule_name = func_name(ctx, func);
    let (schedule, schedule_body) = {
        let mut b = OpBuilder::at_end_of(ctx, func);
        hida_dataflow_ir::structural::build_schedule(&mut b, &schedule_name)
    };

    // Map every communicated value (alloc result, input tensor, task result) to a
    // structural buffer declared inside the schedule.
    let mut buffer_of: HashMap<ValueId, ValueId> = HashMap::new();
    let mut buffer_counter = 0_usize;
    let make_buffer = |ctx: &mut Context, ty: Type, name: &str, counter: &mut usize| -> ValueId {
        let memref_ty = ty.tensor_to_memref();
        let mut b = OpBuilder::at_block_index(ctx, schedule_body, *counter);
        *counter += 1;
        build_buffer(&mut b, memref_ty, 2, name).1
    };

    // (1) memref.alloc results shared between tasks.
    for alloc in ctx.collect_ops(func, hida_dialects::memory::ALLOC) {
        // Only allocs at the function level (shared) become dataflow buffers; allocs
        // nested inside a single task stay local to that task's node.
        if ctx.parent_op(alloc) != Some(func) {
            continue;
        }
        let value = ctx.op(alloc).results[0];
        let name = ctx.op(alloc).attr_str("name").unwrap_or("buf").to_string();
        let ty = ctx.value_type(value).clone();
        let buffer = make_buffer(ctx, ty, &name, &mut buffer_counter);
        buffer_of.insert(value, buffer);
    }
    // (2) Input tensors from the host become external-memory buffers.
    for input in ctx.collect_ops(func, hida_frontend_input_name()) {
        if ctx.op(input).results.is_empty() {
            continue;
        }
        let value = ctx.op(input).results[0];
        let ty = ctx.value_type(value).clone();
        let buffer = make_buffer(ctx, ty, "input", &mut buffer_counter);
        let buffer_op = ctx.value(buffer).defining_op().unwrap();
        hida_dialects::hls::set_memory_kind(
            ctx,
            buffer_op,
            hida_dialects::hls::MemoryKind::External,
        );
        buffer_of.insert(value, buffer);
    }
    // (3) Task results (inter-task tensors).
    for &task in &task_groups {
        for (i, &result) in ctx.op(task).results.clone().iter().enumerate() {
            let ty = ctx.value_type(result).clone();
            if !ty.is_tensor() && !ty.is_memref() {
                continue;
            }
            let name = format!("{}_out{i}", task_name(ctx, task));
            let buffer = make_buffer(ctx, ty, &name, &mut buffer_counter);
            buffer_of.insert(result, buffer);
        }
    }

    // Lower every task group to a node.
    let mut nodes: Vec<NodeOp> = Vec::with_capacity(task_groups.len());
    for &task in &task_groups {
        nodes.push(lower_task_to_node(
            ctx,
            analyses,
            task,
            schedule_body,
            &buffer_of,
        )?);
    }

    // Clean up the functional ops: output markers, the dispatch/tasks, inputs, allocs.
    for output in ctx.collect_ops(func, hida_frontend_output_name()) {
        ctx.erase_op(output);
    }
    if let Some(d) = dispatch {
        ctx.erase_op(d.id());
    } else {
        for &task in &task_groups {
            if ctx.is_alive(task) {
                ctx.erase_op(task);
            }
        }
    }
    for input in ctx.collect_ops(func, hida_frontend_input_name()) {
        if !ctx.has_users(ctx.op(input).results[0]) {
            ctx.erase_op(input);
        }
    }
    for alloc in ctx.collect_ops(func, hida_dialects::memory::ALLOC) {
        if ctx.parent_op(alloc) == Some(func) && !ctx.has_users(ctx.op(alloc).results[0]) {
            ctx.erase_op(alloc);
        }
    }

    // Warm the per-node profile cache after the last mutation of this lowering:
    // every downstream structural pass (tiling, parallelization) starts by
    // querying exactly these profiles, and the entries stamped here are fresh
    // regardless of whether the caller runs inside a pass-manager scope.
    for node in nodes {
        analyses.get::<ComputeProfile>(ctx, node.id());
    }

    Ok(schedule)
}

fn hida_frontend_input_name() -> &'static str {
    "hida.input"
}

fn hida_frontend_output_name() -> &'static str {
    "hida.output"
}

fn func_name(ctx: &Context, func: OpId) -> String {
    ctx.op(func)
        .attr_str("sym_name")
        .map(str::to_string)
        .unwrap_or_else(|| "schedule".to_string())
}

fn task_name(ctx: &Context, task: OpId) -> String {
    ctx.op(task)
        .attr_str("task_name")
        .or_else(|| ctx.op(task).attr_str("loop_name"))
        .map(str::to_string)
        .unwrap_or_else(|| format!("task{}", task.index()))
}

/// Lowers one task group (a `hida.task` or a bare loop nest) into a `hida.node`.
fn lower_task_to_node(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    task: OpId,
    schedule_body: hida_ir_core::BlockId,
    buffer_of: &HashMap<ValueId, ValueId>,
) -> IrResult<NodeOp> {
    let profile = analyses.get::<ComputeProfile>(ctx, task);
    let results: Vec<ValueId> = ctx.op(task).results.clone();
    let yielded = yielded_values(ctx, task);

    // Decide the node operands: every live-in buffer plus one buffer per task result.
    let mut operands: Vec<(ValueId, MemEffect)> = Vec::new();
    let mut operand_source: Vec<ValueId> = Vec::new();
    let push_operand = |value: ValueId,
                        effect: MemEffect,
                        operands: &mut Vec<(ValueId, MemEffect)>,
                        sources: &mut Vec<ValueId>| {
        if let Some(pos) = sources.iter().position(|&v| v == value) {
            operands[pos].1 = operands[pos].1.merge(effect);
        } else {
            sources.push(value);
            operands.push((value, effect));
        }
    };

    // Live-in accesses recorded by the profile.
    for access in &profile.accesses {
        if !ctx.is_live_in(task, access.buffer) {
            continue;
        }
        let mapped = buffer_of
            .get(&access.buffer)
            .copied()
            .unwrap_or(access.buffer);
        push_operand(mapped, access.effect, &mut operands, &mut operand_source);
    }
    // Task results: written by this node.
    for &result in &results {
        if let Some(&buffer) = buffer_of.get(&result) {
            push_operand(buffer, MemEffect::Write, &mut operands, &mut operand_source);
        }
    }
    // Map each operand source (the *functional-level* value) for body rewiring:
    // live-in accesses keep their original value, results map through `yielded`.
    let node_name = task_name(ctx, task);
    // Rebuild operand list keyed by the mapped (buffer) values with original sources.
    let mut original_of: HashMap<ValueId, ValueId> = HashMap::new();
    for access in &profile.accesses {
        if ctx.is_live_in(task, access.buffer) {
            let mapped = buffer_of
                .get(&access.buffer)
                .copied()
                .unwrap_or(access.buffer);
            original_of.entry(mapped).or_insert(access.buffer);
        }
    }

    let (node, args) = build_node(ctx, schedule_body, &node_name, &operands);

    // Value mapping for the body clone: functional value -> node block argument.
    let mut mapping = hida_ir_core::context::ValueMapping::new();
    for (idx, (buffer_value, _)) in operands.iter().enumerate() {
        // The live-in functional value this operand came from (if any).
        if let Some(&orig) = original_of.get(buffer_value) {
            mapping.map(orig, args[idx]);
        }
    }
    // Yielded functional values -> block args of the matching result buffers. The
    // internal values that produced them are redirected to the buffer arguments by
    // the destination-passing rewrite below.
    for result in &results {
        if let Some(&buffer) = buffer_of.get(result) {
            if let Some(pos) = operands.iter().position(|(v, _)| *v == buffer) {
                mapping.map(*result, args[pos]);
            }
        }
    }
    let _ = &yielded;

    // Clone the body ops (skipping the yield) into the node.
    let node_body = node.body(ctx);
    let body_ops: Vec<OpId> = if ctx.op(task).is(hida_ops::TASK) {
        ctx.body_ops(task)
            .into_iter()
            .filter(|&o| !ctx.op(o).is(hida_ops::YIELD))
            .collect()
    } else {
        vec![task]
    };
    for op in body_ops {
        let cloned = ctx.clone_op(op, &mut mapping);
        ctx.append_op(node_body, cloned);
    }
    rewrite_layers_to_destination_passing(ctx, node);
    Ok(node)
}

/// Returns the values yielded by a task (empty for bare loop nests).
fn yielded_values(ctx: &Context, task: OpId) -> Vec<ValueId> {
    ctx.body_ops(task)
        .into_iter()
        .find(|&o| ctx.op(o).is(hida_ops::YIELD))
        .map(|y| ctx.op(y).operands.clone())
        .unwrap_or_default()
}

/// Rewrites named layers inside a node body to destination-passing form: each layer's
/// tensor result is materialised either into the node argument that carries its
/// output buffer (when the result leaves the node) or into an in-place/local buffer
/// (when the result is only consumed inside the node).
fn rewrite_layers_to_destination_passing(ctx: &mut Context, node: NodeOp) {
    let body = node.body(ctx);
    let args = node.body_args(ctx);
    let effects = node.effects(ctx);
    // Node arguments with write effect, in order — destinations for escaping results.
    let write_args: Vec<ValueId> = args
        .iter()
        .zip(&effects)
        .filter(|(_, e)| e.writes())
        .map(|(&a, _)| a)
        .collect();
    let mut next_write_arg = 0_usize;

    let layer_ops: Vec<OpId> = ctx
        .block(body)
        .ops
        .clone()
        .into_iter()
        .filter(|&o| linalg::is_linalg_op_name(ctx.op(o).name.as_str()))
        .collect();
    for op in layer_ops {
        let result = match ctx.op(op).results.first().copied() {
            Some(r) => r,
            None => continue,
        };
        let name = ctx.op(op).name.as_str().to_string();
        let has_internal_users = ctx.has_users(result);
        let dest = if !has_internal_users {
            // Escaping result: write into the next write-effect node argument.
            let dest = write_args.get(next_write_arg).copied();
            next_write_arg += 1;
            dest
        } else if name == linalg::RELU || name == linalg::FLATTEN || name == linalg::ADD {
            // Element-wise: compute in place on the first input.
            ctx.op(op).operands.first().copied()
        } else {
            // Internal intermediate of a fused task: give it a local buffer.
            let ty = ctx.value_type(result).tensor_to_memref();
            let pos = ctx.block(body).position_of(op).unwrap_or(0);
            let mut b = OpBuilder::at_block_index(ctx, body, pos);
            Some(hida_dialects::memory::build_alloc(&mut b, ty, "local"))
        };
        if let Some(dest) = dest {
            // Append the destination as the final operand and mark the op.
            ctx.add_operand(op, dest);
            ctx.op_mut(op)
                .set_attr("dest_passing", Attribute::Bool(true));
            // Internal consumers of the tensor result now read the destination buffer.
            ctx.replace_all_uses(result, dest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_functional_dataflow;
    use crate::fusion::{default_fusion_patterns, fuse_tasks};
    use hida_frontend::nn::{build_model, Model};
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};

    fn lower_kernel(kernel: PolybenchKernel, n: i64) -> (Context, OpId, ScheduleOp) {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, kernel, n);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        let mut analyses = AnalysisManager::new();
        fuse_tasks(&mut ctx, &mut analyses, func, &default_fusion_patterns()).unwrap();
        let schedule = lower_to_structural(&mut ctx, &mut analyses, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        (ctx, func, schedule)
    }

    #[test]
    fn twomm_lowers_to_two_connected_nodes() {
        let (ctx, _func, schedule) = lower_kernel(PolybenchKernel::TwoMm, 16);
        let nodes = schedule.nodes(&ctx);
        assert_eq!(nodes.len(), 2);
        let buffers = schedule.internal_buffers(&ctx);
        assert_eq!(
            buffers.len(),
            5,
            "A, B, C, tmp, D become structural buffers"
        );
        // The tmp buffer is written by node0 and read by node1.
        let graph = hida_dataflow_ir::graph::DataflowGraph::from_schedule(&ctx, schedule);
        assert_eq!(graph.edges.len(), 1);
        assert_eq!(graph.edges[0].producer, nodes[0]);
        assert_eq!(graph.edges[0].consumer, nodes[1]);
        // Node bodies are isolated: loops reference only block arguments.
        for node in nodes {
            assert!(ctx.live_ins(node.id()).is_empty());
            assert!(!ctx
                .collect_ops(node.id(), hida_dialects::loops::FOR)
                .is_empty());
        }
    }

    #[test]
    fn single_nest_kernel_lowers_to_one_node() {
        let (ctx, _func, schedule) = lower_kernel(PolybenchKernel::Gesummv, 16);
        assert_eq!(schedule.nodes(&ctx).len(), 1);
        assert!(!schedule.internal_buffers(&ctx).is_empty());
    }

    #[test]
    fn lenet_lowers_with_external_input_and_chain_of_nodes() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_model(&mut ctx, module, Model::LeNet);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        let mut analyses = AnalysisManager::new();
        fuse_tasks(&mut ctx, &mut analyses, func, &default_fusion_patterns()).unwrap();
        let schedule = lower_to_structural(&mut ctx, &mut analyses, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();

        let nodes = schedule.nodes(&ctx);
        assert!(nodes.len() >= 3);
        // The input buffer is external; inter-layer buffers are on-chip ping-pong.
        let buffers = schedule.internal_buffers(&ctx);
        let external = buffers
            .iter()
            .filter(|b| b.memory_kind(&ctx) == hida_dialects::hls::MemoryKind::External)
            .count();
        assert!(external >= 1);
        let ping_pong = buffers.iter().filter(|b| b.is_ping_pong(&ctx)).count();
        assert!(ping_pong >= nodes.len() - 1);
        // The dataflow forms a chain from the first to the last node.
        let graph = hida_dataflow_ir::graph::DataflowGraph::from_schedule(&ctx, schedule);
        assert!(graph.reaches(nodes[0], *nodes.last().unwrap()));
        // Every layer op inside nodes is in destination-passing form.
        for node in &nodes {
            for op in ctx.collect_ops(node.id(), linalg::CONV2D) {
                assert!(ctx.op(op).has_flag("dest_passing"));
            }
        }
    }

    #[test]
    fn functional_ops_are_cleaned_up_after_lowering() {
        let (ctx, func, _schedule) = lower_kernel(PolybenchKernel::Atax, 16);
        assert!(ctx.collect_ops(func, hida_ops::DISPATCH).is_empty());
        assert!(ctx.collect_ops(func, hida_ops::TASK).is_empty());
        // Function-level allocs were converted to structural buffers.
        let remaining_allocs: Vec<_> = ctx
            .collect_ops(func, hida_dialects::memory::ALLOC)
            .into_iter()
            .filter(|&a| ctx.parent_op(a) == Some(func))
            .collect();
        assert!(remaining_allocs.is_empty());
    }

    #[test]
    fn resnet_block_produces_multi_consumer_buffer() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_model(&mut ctx, module, Model::ResNet18);
        construct_functional_dataflow(&mut ctx, func).unwrap();
        let mut analyses = AnalysisManager::new();
        fuse_tasks(&mut ctx, &mut analyses, func, &default_fusion_patterns()).unwrap();
        let schedule = lower_to_structural(&mut ctx, &mut analyses, func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        // Residual shortcuts: at least one buffer feeds more than one consumer node.
        let graph = hida_dataflow_ir::graph::DataflowGraph::from_schedule(&ctx, schedule);
        let mut consumers_per_buffer: std::collections::HashMap<ValueId, usize> =
            std::collections::HashMap::new();
        for e in &graph.edges {
            *consumers_per_buffer.entry(e.buffer).or_default() += 1;
        }
        assert!(consumers_per_buffer.values().any(|&c| c >= 2));
    }
}
