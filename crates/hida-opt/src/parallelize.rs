//! Intensity- and connection-aware dataflow parallelization (paper §6.5).
//!
//! The parallelizer runs the four steps of the paper:
//!
//! 1. **Intensity and connection analysis** — for every pair of nodes sharing a
//!    buffer, derive the permutation and scaling maps relating their loop nests
//!    (Table 4), and record every node's computational intensity.
//! 2. **Node sorting** — nodes are parallelized in descending order of connection
//!    count, with intensity as tie-breaker.
//! 3. **Parallel factor generation** — each node's parallel budget is proportional to
//!    its intensity (intensity-aware) or equal to the maximum (otherwise).
//! 4. **Node parallelization** (Algorithm 4) — a constrained design-space exploration
//!    picks per-dimension unroll factors that respect the alignment constraints from
//!    already-parallelized neighbours and the node's parallel budget.
//!
//! Finally, array partitions are assigned to every buffer from the unroll factors and
//! access strides of the nodes touching it (Table 6).

use crate::ParallelMode;
use hida_dataflow_ir::graph::{DataflowEdge, DataflowGraph};
use hida_dataflow_ir::structural::{BufferOp, NodeOp, ScheduleOp};
use hida_dialects::analysis::ComputeProfile;
use hida_dialects::hls::{ArrayPartition, PartitionFashion};
use hida_dialects::transforms;
use hida_estimator::device::FpgaDevice;
use hida_ir_core::{
    Analysis, AnalysisManager, AnalysisSnapshot, Context, IrError, IrResult, NodeScope, OpId,
    ValueId,
};
use std::collections::HashMap;

/// A connection between two nodes through a shared buffer, with the loop alignment
/// maps of §6.5 step (1).
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Producing node.
    pub source: NodeOp,
    /// Consuming node.
    pub target: NodeOp,
    /// The shared buffer.
    pub buffer: ValueId,
    /// For each target loop: the aligned source loop, if any (paper's S-to-T map).
    pub s_to_t_perm: Vec<Option<usize>>,
    /// For each source loop: the aligned target loop, if any (paper's T-to-S map).
    pub t_to_s_perm: Vec<Option<usize>>,
    /// For each source loop: `stride_source / stride_target` of the aligned dimension.
    pub s_to_t_scale: Vec<Option<f64>>,
    /// For each target loop: `stride_target / stride_source` of the aligned dimension.
    pub t_to_s_scale: Vec<Option<f64>>,
}

/// Per-node analysis record.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The node.
    pub node: NodeOp,
    /// Its compute profile.
    pub profile: ComputeProfile,
    /// Number of distinct nodes it shares buffers with.
    pub connections: usize,
}

/// Derives the loop alignment maps of one dataflow edge from the two endpoint
/// profiles; shared by the cache-backed [`analyze_connections`] and the
/// snapshot-backed worker path so both compute bit-identical constraints.
fn connection_for_edge(
    ctx: &Context,
    edge: &DataflowEdge,
    source_profile: &ComputeProfile,
    target_profile: &ComputeProfile,
) -> Option<Connection> {
    // The profiles record accesses against the node's block arguments.
    let source_access = edge
        .producer
        .arg_for(ctx, edge.buffer)
        .and_then(|arg| source_profile.access_of(arg))
        .cloned()?;
    let target_access = edge
        .consumer
        .arg_for(ctx, edge.buffer)
        .and_then(|arg| target_profile.access_of(arg))
        .cloned()?;
    let num_source_loops = source_profile.loop_dims.len();
    let num_target_loops = target_profile.loop_dims.len();
    let mut s_to_t_perm = vec![None; num_target_loops];
    let mut t_to_s_perm = vec![None; num_source_loops];
    let mut s_to_t_scale = vec![None; num_source_loops];
    let mut t_to_s_scale = vec![None; num_target_loops];
    for (s_dim, t_dim) in source_access
        .pattern
        .dims
        .iter()
        .zip(target_access.pattern.dims.iter())
    {
        if let (Some((s_loop, s_stride)), Some((t_loop, t_stride))) = (s_dim, t_dim) {
            if *s_loop < num_source_loops && *t_loop < num_target_loops {
                s_to_t_perm[*t_loop] = Some(*s_loop);
                t_to_s_perm[*s_loop] = Some(*t_loop);
                s_to_t_scale[*s_loop] = Some(*s_stride as f64 / *t_stride as f64);
                t_to_s_scale[*t_loop] = Some(*t_stride as f64 / *s_stride as f64);
            }
        }
    }
    Some(Connection {
        source: edge.producer,
        target: edge.consumer,
        buffer: edge.buffer,
        s_to_t_perm,
        t_to_s_perm,
        s_to_t_scale,
        t_to_s_scale,
    })
}

/// Analyzes every producer→consumer connection of a schedule. The dataflow
/// graph and every node profile are fetched through the analysis cache.
pub fn analyze_connections(
    ctx: &Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
) -> Vec<Connection> {
    let graph = analyses.get::<DataflowGraph>(ctx, schedule.id());
    let mut profiles: HashMap<NodeOp, ComputeProfile> = HashMap::new();
    for node in &graph.nodes {
        profiles.insert(*node, analyses.get::<ComputeProfile>(ctx, node.id()));
    }
    graph
        .edges
        .iter()
        .filter_map(|edge| {
            connection_for_edge(
                ctx,
                edge,
                &profiles[&edge.producer],
                &profiles[&edge.consumer],
            )
        })
        .collect()
}

/// The parallelization processing order (step 2), as a comparator over
/// `(connection count, intensity)` keys: connections descending, intensity as
/// descending tie-breaker. The single source of truth shared by the
/// cache-backed [`analyze_nodes`] sort and the per-worker planning path —
/// both apply it as a *stable* sort over the deterministic `schedule.nodes`
/// order, so they always agree.
fn processing_order(a: (usize, i64), b: (usize, i64)) -> std::cmp::Ordering {
    b.0.cmp(&a.0).then(b.1.cmp(&a.1))
}

fn sort_infos(infos: &mut [NodeInfo]) {
    infos.sort_by(|a, b| {
        processing_order(
            (a.connections, a.profile.intensity),
            (b.connections, b.profile.intensity),
        )
    });
}

/// Builds the per-node analysis records and returns them sorted in parallelization
/// order (step 2: connection count descending, intensity as tie-breaker).
pub fn analyze_nodes(
    ctx: &Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
) -> Vec<NodeInfo> {
    let graph = analyses.get::<DataflowGraph>(ctx, schedule.id());
    let mut infos: Vec<NodeInfo> = schedule
        .nodes(ctx)
        .into_iter()
        .map(|node| NodeInfo {
            node,
            profile: analyses.get::<ComputeProfile>(ctx, node.id()),
            connections: graph.connection_count(node),
        })
        .collect();
    sort_infos(&mut infos);
    infos
}

/// Snapshot-backed profile lookup for worker threads: borrows the frozen
/// entry when present, computes over the shared read-only context only when
/// the snapshot is cold. Returning `Cow` keeps the hot path clone-free — on
/// an *n*-node schedule every worker consults up to *n* profiles, and cloning
/// them per work item would make the parallel pass quadratic in schedule
/// size.
fn profile_from_snapshot<'s>(
    ctx: &Context,
    snapshot: &'s AnalysisSnapshot,
    node: NodeOp,
) -> std::borrow::Cow<'s, ComputeProfile> {
    match snapshot.get::<ComputeProfile>(node.id()) {
        Some(profile) => std::borrow::Cow::Borrowed(profile),
        None => std::borrow::Cow::Owned(ComputeProfile::compute(ctx, node.id())),
    }
}

/// The intensity measure used for parallel-factor budgeting: the count of the
/// dominant operation per node (MACs for compute nodes, loop iterations for pure
/// data-movement nodes), matching the per-node "Intensity" column of Table 5.
pub fn budget_intensity(profile: &ComputeProfile) -> i64 {
    profile.macs.max(profile.total_iterations()).max(1)
}

/// The budget formula of step 3 for one node: scale the maximum parallel
/// factor by the node's share of the peak intensity (rounded to a power of
/// two), or grant the maximum uniformly without intensity awareness. The
/// single source of truth shared by [`node_parallel_factors`] and the
/// per-worker planning path.
fn parallel_factor_for(
    budget_intensity: i64,
    max_intensity: i64,
    max_parallel_factor: i64,
    intensity_aware: bool,
) -> i64 {
    if intensity_aware {
        let scaled =
            max_parallel_factor as f64 * budget_intensity as f64 / max_intensity.max(1) as f64;
        round_pow2(scaled).clamp(1, max_parallel_factor)
    } else {
        max_parallel_factor
    }
}

/// Step 3: parallel factor per node, proportional to intensity when intensity-aware.
pub fn node_parallel_factors(
    infos: &[NodeInfo],
    max_parallel_factor: i64,
    intensity_aware: bool,
) -> HashMap<NodeOp, i64> {
    let max_intensity = infos
        .iter()
        .map(|i| budget_intensity(&i.profile))
        .max()
        .unwrap_or(1);
    infos
        .iter()
        .map(|info| {
            let factor = parallel_factor_for(
                budget_intensity(&info.profile),
                max_intensity,
                max_parallel_factor,
                intensity_aware,
            );
            (info.node, factor)
        })
        .collect()
}

fn round_pow2(x: f64) -> i64 {
    if x <= 1.0 {
        return 1;
    }
    let lower = 1_i64 << (x.log2().floor() as u32);
    let upper = lower * 2;
    if (x - lower as f64) < (upper as f64 - x) {
        lower
    } else {
        upper
    }
}

fn next_pow2(x: i64) -> i64 {
    let mut p = 1;
    while p < x {
        p *= 2;
    }
    p
}

/// Step 4 (Algorithm 4): selects unroll factors for one node.
///
/// `constraints_list` holds one constraint vector per already-parallelized connected
/// node: for each loop dimension, the factor the neighbour's parallelization implies
/// (or `None` when the dimension is unconstrained).
pub fn select_unroll_factors(
    profile: &ComputeProfile,
    parallel_factor: i64,
    constraints_list: &[Vec<Option<i64>>],
) -> Vec<i64> {
    let rank = profile.loop_dims.len();
    if rank == 0 {
        return Vec::new();
    }
    // Candidate factors per dimension: powers of two up to min(trip, budget);
    // reduction dimensions are not unrolled.
    let mut candidates: Vec<Vec<i64>> = Vec::with_capacity(rank);
    for dim in &profile.loop_dims {
        if dim.reduction {
            candidates.push(vec![1]);
            continue;
        }
        let cap = next_pow2(dim.trip.max(1)).min(next_pow2(parallel_factor));
        let mut options = Vec::new();
        let mut f = 1;
        while f <= cap {
            options.push(f);
            f *= 2;
        }
        candidates.push(options);
    }

    // Exhaustive enumeration with product pruning (the DSE loop of Algorithm 4).
    let mut best: Option<(Score, Vec<i64>)> = None;
    let mut current = vec![1_i64; rank];
    enumerate(
        &candidates,
        0,
        1,
        parallel_factor,
        &mut current,
        &mut |factors| {
            if !is_valid(factors, parallel_factor, constraints_list) {
                return;
            }
            let score = score_factors(profile, factors, constraints_list);
            if best.as_ref().map(|(b, _)| score < *b).unwrap_or(true) {
                best = Some((score, factors.to_vec()));
            }
        },
    );
    best.map(|(_, f)| f).unwrap_or_else(|| vec![1; rank])
}

fn enumerate(
    candidates: &[Vec<i64>],
    dim: usize,
    product: i64,
    cap: i64,
    current: &mut Vec<i64>,
    visit: &mut dyn FnMut(&[i64]),
) {
    if dim == candidates.len() {
        visit(current);
        return;
    }
    for &f in &candidates[dim] {
        if product * f > cap {
            break;
        }
        current[dim] = f;
        enumerate(candidates, dim + 1, product * f, cap, current, visit);
    }
    current[dim] = 1;
}

/// Validity per Algorithm 4 lines 13-18: every factor must be mutually divisible with
/// its constraint, and the total parallelism must not exceed the parallel factor.
fn is_valid(factors: &[i64], parallel_factor: i64, constraints_list: &[Vec<Option<i64>>]) -> bool {
    let product: i64 = factors.iter().product();
    if product > parallel_factor {
        return false;
    }
    for constraints in constraints_list {
        for (&factor, constraint) in factors.iter().zip(constraints) {
            if let Some(c) = constraint {
                let c = (*c).max(1);
                if c % factor != 0 && factor % c != 0 {
                    return false;
                }
            }
        }
    }
    true
}

/// Ordering key: lower is better.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
struct Score {
    /// Estimated iteration latency (total iterations / parallelism).
    latency: f64,
    /// Number of dimensions whose factor differs from an imposed constraint.
    mismatches: f64,
    /// Largest single-dimension factor (prefer balanced unrolling).
    max_factor: f64,
    /// Negative weight on later dimensions (prefer unrolling inner dimensions).
    inner_preference: f64,
}

fn score_factors(
    profile: &ComputeProfile,
    factors: &[i64],
    constraints_list: &[Vec<Option<i64>>],
) -> Score {
    let total_iterations: f64 = profile
        .loop_dims
        .iter()
        .zip(factors)
        .map(|(d, &f)| ((d.trip.max(1) + f - 1) / f) as f64)
        .product();
    let mut mismatches = 0.0;
    for constraints in constraints_list {
        for (&factor, constraint) in factors.iter().zip(constraints) {
            if let Some(c) = constraint {
                if *c != factor {
                    mismatches += 1.0;
                }
            }
        }
    }
    let max_factor = factors.iter().copied().max().unwrap_or(1) as f64;
    // Prefer placing larger factors on later (inner) dimensions.
    let inner_preference: f64 = factors
        .iter()
        .enumerate()
        .map(|(i, &f)| -((i + 1) as f64) * (f as f64).log2())
        .sum();
    Score {
        latency: total_iterations,
        mismatches,
        max_factor,
        inner_preference,
    }
}

/// Runs the full parallelization (steps 1-4 plus array partitioning) over a schedule.
///
/// # Errors
/// Propagates unroll application failures.
pub fn parallelize_schedule(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
    max_parallel_factor: i64,
    mode: ParallelMode,
    _device: &FpgaDevice,
) -> IrResult<()> {
    let connections = analyze_connections(ctx, analyses, schedule);
    let infos = analyze_nodes(ctx, analyses, schedule);
    let budgets = node_parallel_factors(&infos, max_parallel_factor, mode.intensity_aware());

    let mut chosen: HashMap<NodeOp, Vec<i64>> = HashMap::new();
    for info in &infos {
        let constraints_list = if mode.connection_aware() {
            constraints_for(
                ctx,
                info.node,
                info.profile.loop_dims.len(),
                &connections,
                &chosen,
            )
        } else {
            Vec::new()
        };
        let factors = if mode == ParallelMode::Naive {
            naive_factors(&info.profile, max_parallel_factor)
        } else {
            select_unroll_factors(&info.profile, budgets[&info.node], &constraints_list)
        };
        transforms::apply_unroll_factors(ctx, info.node.id(), &factors)?;
        ctx.op_mut(info.node.id())
            .set_attr("parallel_factor", budgets[&info.node]);
        ctx.op_mut(info.node.id())
            .set_attr("intensity", info.profile.intensity);
        ctx.op_mut(info.node.id())
            .set_attr("connections", info.connections as i64);
        chosen.insert(info.node, factors);
    }

    assign_array_partitions(ctx, analyses, schedule, &chosen);
    Ok(())
}

/// Computes the dependency waves for parallel execution of the parallelizer:
/// wave 0 holds the nodes that depend on nothing, wave *k* the nodes whose
/// constraints come only from connected nodes in waves < *k*. Within the
/// sequential Algorithm 4 order, a node's constraints come exactly from the
/// *connected* nodes processed before it, so two nodes in the same wave are
/// never connected and their per-node DSEs are independent. Warms the dataflow
/// graph and node profiles in `analyses` so the pass snapshot is complete.
///
/// Without connection awareness (IA-only / Naive) every node is independent
/// and a single wave is returned.
pub fn parallel_waves(
    ctx: &Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
    mode: ParallelMode,
) -> Vec<Vec<OpId>> {
    let infos = analyze_nodes(ctx, analyses, schedule);
    if !mode.connection_aware() {
        return vec![infos.into_iter().map(|i| i.node.id()).collect()];
    }
    let connections = analyze_connections(ctx, analyses, schedule);
    let order: HashMap<NodeOp, usize> = infos
        .iter()
        .enumerate()
        .map(|(i, info)| (info.node, i))
        .collect();
    let mut wave_of = vec![0_usize; infos.len()];
    for (i, info) in infos.iter().enumerate() {
        for connection in &connections {
            let peer = if connection.source == info.node {
                connection.target
            } else if connection.target == info.node {
                connection.source
            } else {
                continue;
            };
            if let Some(&j) = order.get(&peer) {
                if j < i {
                    wave_of[i] = wave_of[i].max(wave_of[j] + 1);
                }
            }
        }
    }
    let num_waves = wave_of.iter().copied().max().unwrap_or(0) + 1;
    let mut waves = vec![Vec::new(); num_waves];
    for (i, info) in infos.iter().enumerate() {
        waves[wave_of[i]].push(info.node.id());
    }
    waves
}

/// The worker-thread half of parallelization: reruns steps 1-4 *for one node*
/// over the frozen snapshot. Budgets and the processing order are recomputed
/// from the same frozen inputs every sequential run sees, constraints are read
/// from the unroll factors earlier waves already merged into the shared
/// context, and the chosen factors are recorded as scoped edits.
///
/// # Errors
/// Fails when the scope root is not a node inside a schedule, and propagates
/// scope violations.
pub fn plan_node_parallelization(
    scope: &mut NodeScope<'_>,
    snapshot: &AnalysisSnapshot,
    max_parallel_factor: i64,
    mode: ParallelMode,
) -> IrResult<()> {
    let ctx = scope.ctx();
    let node = NodeOp::try_from_op(ctx, scope.root())
        .ok_or_else(|| IrError::verification(format!("op {} is not a hida.node", scope.root())))?;
    let schedule = ctx
        .parent_op(node.id())
        .and_then(|op| ScheduleOp::try_from_op(ctx, op))
        .ok_or_else(|| {
            IrError::verification(format!("node {} is not inside a hida.schedule", node.id()))
        })?;
    let graph = match snapshot.get::<DataflowGraph>(schedule.id()) {
        Some(graph) => std::borrow::Cow::Borrowed(graph),
        None => std::borrow::Cow::Owned(DataflowGraph::compute(ctx, schedule.id())),
    };

    // Processing order and budgets from scalar keys only — profiles stay
    // borrowed from the snapshot, so this prologue is cheap even though every
    // work item runs it over the whole schedule.
    let mut keyed: Vec<(NodeOp, usize, i64, i64)> = schedule
        .nodes(ctx)
        .into_iter()
        .map(|n| {
            let profile = profile_from_snapshot(ctx, snapshot, n);
            (
                n,
                graph.connection_count(n),
                profile.intensity,
                budget_intensity(&profile),
            )
        })
        .collect();
    keyed.sort_by(|a, b| processing_order((a.1, a.2), (b.1, b.2)));
    let order: HashMap<NodeOp, usize> = keyed.iter().enumerate().map(|(i, k)| (k.0, i)).collect();
    let my_index = *order.get(&node).ok_or_else(|| {
        IrError::verification(format!("node {} is not part of its schedule", node.id()))
    })?;
    let my_connections = keyed[my_index].1;
    let max_intensity = keyed.iter().map(|k| k.3).max().unwrap_or(1);
    let budget = parallel_factor_for(
        keyed[my_index].3,
        max_intensity,
        max_parallel_factor,
        mode.intensity_aware(),
    );
    let my_profile = profile_from_snapshot(ctx, snapshot, node);

    let constraints_list = if mode.connection_aware() {
        // Alignment maps of the edges touching this node, and the factors the
        // *earlier* endpoint of each already had merged into the context.
        let mut connections = Vec::new();
        let mut chosen: HashMap<NodeOp, Vec<i64>> = HashMap::new();
        for edge in graph.edges.iter() {
            let peer = if edge.producer == node {
                edge.consumer
            } else if edge.consumer == node {
                edge.producer
            } else {
                continue;
            };
            if let Some(connection) = connection_for_edge(
                ctx,
                edge,
                &profile_from_snapshot(ctx, snapshot, edge.producer),
                &profile_from_snapshot(ctx, snapshot, edge.consumer),
            ) {
                connections.push(connection);
            }
            if order.get(&peer).map(|&j| j < my_index).unwrap_or(false) {
                let rank = profile_from_snapshot(ctx, snapshot, peer).loop_dims.len();
                chosen
                    .entry(peer)
                    .or_insert_with(|| transforms::unroll_factors_of(ctx, peer.id(), rank));
            }
        }
        constraints_for(ctx, node, my_profile.loop_dims.len(), &connections, &chosen)
    } else {
        Vec::new()
    };

    let factors = if mode == ParallelMode::Naive {
        naive_factors(&my_profile, max_parallel_factor)
    } else {
        select_unroll_factors(&my_profile, budget, &constraints_list)
    };
    transforms::plan_unroll_factors(scope, node.id(), &factors)?;
    scope.set_attr(node.id(), "parallel_factor", budget)?;
    scope.set_attr(node.id(), "intensity", my_profile.intensity)?;
    scope.set_attr(node.id(), "connections", my_connections as i64)?;
    Ok(())
}

/// The main-thread epilogue of parallel parallelization: reconstructs every
/// node's chosen factors from the merged unroll annotations and assigns array
/// partitions exactly like the sequential path.
pub fn finish_parallelization(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
) {
    let mut chosen: HashMap<NodeOp, Vec<i64>> = HashMap::new();
    for node in schedule.nodes(ctx) {
        let rank = analyses
            .get::<ComputeProfile>(ctx, node.id())
            .loop_dims
            .len();
        chosen.insert(node, transforms::unroll_factors_of(ctx, node.id(), rank));
    }
    assign_array_partitions(ctx, analyses, schedule, &chosen);
}

/// The naive strategy of the Figure 11 ablation: apply the maximum parallel factor to
/// every node, spreading it evenly over the non-reduction dimensions without any
/// awareness of constraints or budgets.
pub fn naive_factors(profile: &ComputeProfile, max_parallel_factor: i64) -> Vec<i64> {
    select_unroll_factors(profile, max_parallel_factor, &[])
}

/// Builds the constraint vectors for `info` from the connections to nodes that were
/// already parallelized (Algorithm 4 lines 2-8).
fn constraints_for(
    _ctx: &Context,
    node: NodeOp,
    rank: usize,
    connections: &[Connection],
    chosen: &HashMap<NodeOp, Vec<i64>>,
) -> Vec<Vec<Option<i64>>> {
    let mut list = Vec::new();
    for connection in connections {
        // Peer already parallelized, `node` is the other endpoint.
        if connection.target == node {
            if let Some(peer_factors) = chosen.get(&connection.source) {
                let mut constraints = vec![None; rank];
                for (source_loop, &target_loop) in connection.t_to_s_perm.iter().enumerate() {
                    if let (Some(target_loop), Some(scale)) =
                        (target_loop, connection.s_to_t_scale[source_loop])
                    {
                        if target_loop < rank && source_loop < peer_factors.len() {
                            let value = (peer_factors[source_loop] as f64 * scale).round() as i64;
                            constraints[target_loop] = Some(value.max(1));
                        }
                    }
                }
                list.push(constraints);
            }
        } else if connection.source == node {
            if let Some(peer_factors) = chosen.get(&connection.target) {
                let mut constraints = vec![None; rank];
                for (target_loop, &source_loop) in connection.s_to_t_perm.iter().enumerate() {
                    if let (Some(source_loop), Some(scale)) =
                        (source_loop, connection.t_to_s_scale[target_loop])
                    {
                        if source_loop < rank && target_loop < peer_factors.len() {
                            let value = (peer_factors[target_loop] as f64 * scale).round() as i64;
                            constraints[source_loop] = Some(value.max(1));
                        }
                    }
                }
                list.push(constraints);
            }
        }
    }
    list
}

/// Assigns array partitions to every internal buffer of the schedule from the chosen
/// unroll factors and the access strides of the nodes touching it.
pub fn assign_array_partitions(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
    chosen: &HashMap<NodeOp, Vec<i64>>,
) {
    let buffers = schedule.internal_buffers(ctx);
    for buffer in buffers {
        let value = buffer.value(ctx);
        let rank = buffer.shape(ctx).len();
        if rank == 0 {
            continue;
        }
        let mut factors = vec![1_i64; rank];
        let mut strided = vec![false; rank];
        for node in schedule.nodes(ctx) {
            let unroll = match chosen.get(&node) {
                Some(u) => u.clone(),
                None => continue,
            };
            let profile = analyses.get::<ComputeProfile>(ctx, node.id());
            let access = node
                .arg_for(ctx, value)
                .and_then(|arg| profile.access_of(arg).cloned());
            if let Some(access) = access {
                for (dim, pattern) in access.pattern.dims.iter().enumerate() {
                    if let Some((loop_idx, stride)) = pattern {
                        let u = unroll.get(*loop_idx).copied().unwrap_or(1).max(1);
                        let requirement = next_pow2(u * stride.abs().max(1));
                        if dim < rank {
                            factors[dim] = factors[dim].max(requirement);
                            if stride.abs() > 1 {
                                strided[dim] = true;
                            }
                        }
                    }
                }
            }
        }
        // Clamp to the dimension size and build the partition directive.
        let shape = buffer.shape(ctx);
        let fashions: Vec<PartitionFashion> = factors
            .iter()
            .zip(&strided)
            .map(|(&f, &s)| {
                if f <= 1 {
                    PartitionFashion::None
                } else if s {
                    PartitionFashion::Block
                } else {
                    PartitionFashion::Cyclic
                }
            })
            .collect();
        let factors: Vec<i64> = factors
            .iter()
            .zip(&shape)
            .map(|(&f, &s)| f.clamp(1, s.max(1)))
            .collect();
        buffer.set_partition(&mut *ctx, &ArrayPartition { fashions, factors });
    }
}

/// Returns the partition assigned to a buffer (test/report helper).
pub fn partition_of(ctx: &Context, buffer: BufferOp) -> ArrayPartition {
    buffer.partition(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_functional_dataflow;
    use crate::lower::lower_to_structural;
    use hida_frontend::listing1::build_listing1;

    /// Lowers Listing 1 to a structural schedule and returns its pieces.
    fn listing1_schedule() -> (Context, ScheduleOp, AnalysisManager) {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let l1 = build_listing1(&mut ctx, module);
        construct_functional_dataflow(&mut ctx, l1.func).unwrap();
        let mut analyses = AnalysisManager::new();
        let schedule = lower_to_structural(&mut ctx, &mut analyses, l1.func).unwrap();
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        (ctx, schedule, analyses)
    }

    fn node_by_name(ctx: &Context, schedule: ScheduleOp, name_part: &str) -> NodeOp {
        schedule
            .nodes(ctx)
            .into_iter()
            .find(|n| n.name(ctx).contains(name_part))
            .unwrap_or_else(|| panic!("no node containing '{name_part}'"))
    }

    #[test]
    fn connections_reproduce_table4_maps() {
        let (ctx, schedule, mut analyses) = listing1_schedule();
        let connections = analyze_connections(&ctx, &mut analyses, schedule);
        assert_eq!(connections.len(), 2, "A and B each connect two nodes");

        // The Node0 -> Node2 connection through array A.
        let node2 = node_by_name(&ctx, schedule, "task2");
        let a_conn = connections
            .iter()
            .find(|c| {
                c.target == node2
                    && c.s_to_t_perm.iter().filter(|p| p.is_some()).count() == 2
                    && c.s_to_t_scale.contains(&Some(0.5))
            })
            .expect("connection through A");
        // Permutation maps of Table 4.
        assert_eq!(a_conn.s_to_t_perm, vec![Some(0), None, Some(1)]);
        assert_eq!(a_conn.t_to_s_perm, vec![Some(0), Some(2)]);
        assert_eq!(a_conn.s_to_t_scale, vec![Some(0.5), Some(1.0)]);
        assert_eq!(a_conn.t_to_s_scale, vec![Some(2.0), None, Some(1.0)]);

        // The Node1 -> Node2 connection through array B.
        let b_conn = connections.iter().find(|c| *c != a_conn).unwrap();
        assert_eq!(b_conn.s_to_t_perm, vec![None, Some(1), Some(0)]);
        assert_eq!(b_conn.t_to_s_perm, vec![Some(2), Some(1)]);
        assert_eq!(b_conn.s_to_t_scale, vec![Some(1.0), Some(1.0)]);
        assert_eq!(b_conn.t_to_s_scale, vec![None, Some(1.0), Some(1.0)]);
    }

    #[test]
    fn node_ordering_and_parallel_factors_match_table5() {
        let (ctx, schedule, mut analyses) = listing1_schedule();
        let infos = analyze_nodes(&ctx, &mut analyses, schedule);
        // Node2 (two connections, highest intensity) is parallelized first.
        assert!(infos[0].node.name(&ctx).contains("task2"));
        assert_eq!(infos[0].connections, 2);

        // Intensity-aware parallel factors with a maximum of 32 (Table 5):
        // Node2 -> 32, Node0 -> 4, Node1 -> 2.
        let budgets = node_parallel_factors(&infos, 32, true);
        let node0 = node_by_name(&ctx, schedule, "task0");
        let node1 = node_by_name(&ctx, schedule, "task1");
        let node2 = node_by_name(&ctx, schedule, "task2");
        assert_eq!(budgets[&node2], 32);
        assert!(budgets[&node0] <= 8 && budgets[&node0] >= 2);
        assert!(budgets[&node1] <= budgets[&node0]);
        // Without intensity awareness every node receives the maximum.
        let uniform = node_parallel_factors(&infos, 32, false);
        assert!(uniform.values().all(|&f| f == 32));
    }

    #[test]
    fn ia_ca_unroll_factors_align_with_connections() {
        let (mut ctx, schedule, mut analyses) = listing1_schedule();
        parallelize_schedule(
            &mut ctx,
            &mut analyses,
            schedule,
            32,
            ParallelMode::IaCa,
            &FpgaDevice::pynq_z2(),
        )
        .unwrap();
        let node0 = node_by_name(&ctx, schedule, "task0");
        let node2 = node_by_name(&ctx, schedule, "task2");
        let f0 = transforms::unroll_factors_of(&ctx, node0.id(), 2);
        let f2 = transforms::unroll_factors_of(&ctx, node2.id(), 3);
        // Node2 gets the full budget of 32 spread over its non-reduction dims; the k
        // dimension (reduction) stays 1.
        assert_eq!(f2.iter().product::<i64>(), 32);
        assert_eq!(f2[2], 1);
        // Node0's budget is ~4 and its factors respect the A-array alignment:
        // its i factor must be mutually divisible with 2x Node2's i factor.
        assert!(f0.iter().product::<i64>() <= 8);
        let constraint = 2 * f2[0];
        assert!(constraint % f0[0] == 0 || f0[0] % constraint == 0);
    }

    #[test]
    fn array_partitions_shrink_with_ia_ca_as_in_table6() {
        let total_banks = |mode: ParallelMode| -> i64 {
            let (mut ctx, schedule, mut analyses) = listing1_schedule();
            parallelize_schedule(
                &mut ctx,
                &mut analyses,
                schedule,
                32,
                mode,
                &FpgaDevice::pynq_z2(),
            )
            .unwrap();
            schedule
                .internal_buffers(&ctx)
                .iter()
                .map(|b| b.partition(&ctx).bank_count())
                .sum()
        };
        let ia_ca = total_banks(ParallelMode::IaCa);
        let ia = total_banks(ParallelMode::IaOnly);
        let ca = total_banks(ParallelMode::CaOnly);
        let naive = total_banks(ParallelMode::Naive);
        // Table 6 trend: IA+CA uses the fewest banks, Naive the most.
        assert!(ia_ca <= ia, "IA+CA ({ia_ca}) must not exceed IA ({ia})");
        assert!(ia_ca <= ca, "IA+CA ({ia_ca}) must not exceed CA ({ca})");
        assert!(ia_ca < naive, "IA+CA ({ia_ca}) must beat Naive ({naive})");
        assert!(naive >= ca.max(ia));
    }

    #[test]
    fn select_unroll_factors_respects_constraints_and_budget() {
        use hida_dialects::analysis::ProfileLoopDim;
        let profile = ComputeProfile {
            loop_dims: vec![
                ProfileLoopDim {
                    name: "i".into(),
                    trip: 32,
                    reduction: false,
                },
                ProfileLoopDim {
                    name: "k".into(),
                    trip: 16,
                    reduction: false,
                },
            ],
            ..ComputeProfile::default()
        };
        // Without constraints and a budget of 4 the factors are balanced.
        let balanced = select_unroll_factors(&profile, 4, &[]);
        assert_eq!(balanced.iter().product::<i64>(), 4);
        assert_eq!(balanced, vec![2, 2]);
        // With an [8, 1] constraint (the Table 5 situation) the i dimension absorbs
        // the whole budget.
        let constrained = select_unroll_factors(&profile, 4, &[vec![Some(8), Some(1)]]);
        assert_eq!(constrained, vec![4, 1]);
        // Reduction dimensions are never unrolled.
        let with_reduction = ComputeProfile {
            loop_dims: vec![
                ProfileLoopDim {
                    name: "i".into(),
                    trip: 16,
                    reduction: false,
                },
                ProfileLoopDim {
                    name: "k".into(),
                    trip: 16,
                    reduction: true,
                },
            ],
            ..ComputeProfile::default()
        };
        let factors = select_unroll_factors(&with_reduction, 8, &[]);
        assert_eq!(factors[1], 1);
        assert_eq!(factors[0], 8);
    }

    #[test]
    fn round_pow2_behaviour() {
        assert_eq!(round_pow2(0.5), 1);
        assert_eq!(round_pow2(3.0), 4);
        assert_eq!(round_pow2(4.0), 4);
        assert_eq!(round_pow2(5.9), 4);
        assert_eq!(round_pow2(6.1), 8);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(1), 1);
    }
}
