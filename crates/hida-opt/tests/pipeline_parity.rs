//! The pipeline-driven optimizer must produce the same schedule and QoR as the
//! hand-rolled pass sequence it replaced (the pre-pipeline `HidaOptimizer::run`).
//!
//! The reference below replays that exact sequence by calling the pass-module free
//! functions directly. Two subjects are compared against it: the
//! `Pipeline::from_options` flow (which renders the options as pipeline text and
//! parses it through the pass registry) and an explicitly registry-built pipeline
//! (`Pipeline::parse` of the textual form, round-tripped once through
//! `to_text`). All are compared structurally (nodes, unroll factors, partitions,
//! buffer placement) and on the estimated QoR.

use hida_dataflow_ir::structural::ScheduleOp;
use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::report::DesignEstimate;
use hida_frontend::nn::{build_model, Model};
use hida_frontend::polybench::{build_kernel, PolybenchKernel};
use hida_ir_core::{Context, OpId};
use hida_opt::{construct, fusion, lower, parallelize, structural_opt, tiling};
use hida_opt::{registry, HidaOptimizer, HidaOptions, Pipeline};

/// One comparable snapshot of an optimized schedule.
#[derive(Debug, PartialEq)]
struct ScheduleSnapshot {
    nodes: Vec<NodeSnapshot>,
    buffers: Vec<BufferSnapshot>,
}

#[derive(Debug, PartialEq)]
struct NodeSnapshot {
    name: String,
    unroll: Vec<i64>,
    parallel_factor: i64,
}

#[derive(Debug, PartialEq)]
struct BufferSnapshot {
    name: String,
    depth: i64,
    external: bool,
    partition_factors: Vec<i64>,
}

fn snapshot(ctx: &Context, schedule: ScheduleOp) -> ScheduleSnapshot {
    let mut analyses = hida_ir_core::AnalysisManager::new();
    let nodes = schedule
        .nodes(ctx)
        .into_iter()
        .map(|node| {
            let rank = analyses
                .get::<hida_dialects::analysis::ComputeProfile>(ctx, node.id())
                .loop_dims
                .len();
            NodeSnapshot {
                name: node.name(ctx),
                unroll: hida_dialects::transforms::unroll_factors_of(ctx, node.id(), rank),
                parallel_factor: ctx.op(node.id()).attr_int("parallel_factor").unwrap_or(0),
            }
        })
        .collect();
    let buffers = schedule
        .internal_buffers(ctx)
        .into_iter()
        .map(|buffer| BufferSnapshot {
            name: buffer.name(ctx),
            depth: buffer.depth(ctx),
            external: buffer.memory_kind(ctx) == hida_dialects::hls::MemoryKind::External,
            partition_factors: buffer.partition(ctx).factors,
        })
        .collect();
    ScheduleSnapshot { nodes, buffers }
}

/// Replays the seed's hand-rolled optimizer sequence step by step.
fn run_hand_rolled(ctx: &mut Context, func: OpId, options: &HidaOptions) -> ScheduleOp {
    let mut analyses = hida_ir_core::AnalysisManager::new();
    construct::construct_functional_dataflow(ctx, func).unwrap();
    if options.enable_fusion {
        fusion::fuse_tasks(ctx, &mut analyses, func, &fusion::default_fusion_patterns()).unwrap();
    }
    let schedule = lower::lower_to_structural(ctx, &mut analyses, func).unwrap();
    if options.enable_balancing {
        structural_opt::eliminate_multi_producers(ctx, schedule).unwrap();
    }
    if let Some(tile) = options.tile_size {
        tiling::apply_tiling(
            ctx,
            &mut analyses,
            schedule,
            tile,
            options.external_threshold_bytes,
        );
    }
    if options.enable_balancing {
        structural_opt::balance_data_paths(
            ctx,
            &mut analyses,
            schedule,
            options.external_threshold_bytes,
        )
        .unwrap();
    }
    parallelize::parallelize_schedule(
        ctx,
        &mut analyses,
        schedule,
        options.max_parallel_factor,
        options.mode,
        &options.device,
    )
    .unwrap();
    schedule
}

fn estimate(ctx: &Context, schedule: ScheduleOp, options: &HidaOptions) -> DesignEstimate {
    DataflowEstimator::new(options.device.clone()).estimate_schedule(ctx, schedule, true)
}

enum TestWorkload {
    Polybench(PolybenchKernel, i64),
    Nn(Model),
}

fn build(ctx: &mut Context, workload: &TestWorkload) -> OpId {
    let module = ctx.create_module("m");
    match workload {
        TestWorkload::Polybench(kernel, n) => build_kernel(ctx, module, *kernel, *n),
        TestWorkload::Nn(model) => build_model(ctx, module, *model),
    }
}

fn assert_parity(workload: TestWorkload, options: HidaOptions) {
    // Reference: the seed's hand-rolled call sequence.
    let mut ref_ctx = Context::new();
    let ref_func = build(&mut ref_ctx, &workload);
    let ref_schedule = run_hand_rolled(&mut ref_ctx, ref_func, &options);
    let ref_snapshot = snapshot(&ref_ctx, ref_schedule);
    let ref_estimate = estimate(&ref_ctx, ref_schedule, &options);

    // Subject: the pipeline-driven optimizer.
    let mut ctx = Context::new();
    let func = build(&mut ctx, &workload);
    let (schedule, statistics) = HidaOptimizer::new(options.clone())
        .run_with_statistics(&mut ctx, func)
        .unwrap();
    let pipe_snapshot = snapshot(&ctx, schedule);
    let pipe_estimate = estimate(&ctx, schedule, &options);

    assert_eq!(pipe_snapshot, ref_snapshot, "schedules diverged");
    assert_eq!(
        pipe_estimate.throughput(),
        ref_estimate.throughput(),
        "throughput QoR diverged"
    );
    assert_eq!(
        pipe_estimate.resources, ref_estimate.resources,
        "resource QoR diverged"
    );
    assert!(!statistics.is_empty());

    // Second subject: the registry-built flow, parsed from the textual pipeline
    // and round-tripped once through to_text.
    let text = options.pipeline_text();
    let parsed = Pipeline::parse(&registry(), &text).expect("options text parses");
    let mut parsed = Pipeline::parse(&registry(), &parsed.to_text()).expect("to_text re-parses");
    let mut reg_ctx = Context::new();
    let reg_func = build(&mut reg_ctx, &workload);
    let reg_schedule = parsed.run(&mut reg_ctx, reg_func).unwrap();
    assert_eq!(
        snapshot(&reg_ctx, reg_schedule),
        ref_snapshot,
        "registry-built schedule diverged from the hand-rolled reference"
    );
    let reg_estimate = estimate(&reg_ctx, reg_schedule, &options);
    assert_eq!(reg_estimate.throughput(), ref_estimate.throughput());
    assert_eq!(reg_estimate.resources, ref_estimate.resources);
}

#[test]
fn twomm_pipeline_matches_hand_rolled_sequence() {
    assert_parity(
        TestWorkload::Polybench(PolybenchKernel::TwoMm, 32),
        HidaOptions::polybench(),
    );
}

#[test]
fn lenet_pipeline_matches_hand_rolled_sequence() {
    assert_parity(TestWorkload::Nn(Model::LeNet), HidaOptions::dnn());
}

#[test]
fn parity_holds_with_fusion_and_balancing_disabled() {
    assert_parity(
        TestWorkload::Nn(Model::LeNet),
        HidaOptions {
            enable_fusion: false,
            enable_balancing: false,
            tile_size: None,
            ..HidaOptions::dnn()
        },
    );
}
