//! Parallel pass execution must be invisible in the output: `--jobs 1` (the
//! fully sequential escape hatch) and `--jobs 4` (work-stealing workers over a
//! shared analysis snapshot) have to produce **byte-identical** IR and
//! identical QoR on real workloads. The merge applies scoped edits in declared
//! root order — never completion order — so this holds regardless of thread
//! scheduling; these tests pin that contract on TwoMm and LeNet, and a 50×
//! stress loop checks the recorded worker/steal counters stay internally
//! consistent across repeated parallel runs.

use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::device::FpgaDevice;
use hida_frontend::nn::{build_model, Model};
use hida_frontend::polybench::{build_kernel, PolybenchKernel};
use hida_ir_core::{Context, OpId, ParallelStats, PassStatistics};
use hida_opt::{registry, HidaOptions, Pipeline};

/// Runs the standard pipeline for `options` with the given job count and
/// returns the printed module IR, the dataflow + sequential QoR estimates, and
/// the per-pass statistics.
fn compile(
    build: impl Fn(&mut Context, OpId) -> OpId,
    options: &HidaOptions,
    jobs: usize,
) -> (
    String,
    hida_estimator::report::DesignEstimate,
    hida_estimator::report::DesignEstimate,
    Vec<PassStatistics>,
) {
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let func = build(&mut ctx, module);
    let mut pipeline = Pipeline::from_options(options).with_jobs(jobs);
    let schedule = pipeline.run(&mut ctx, func).unwrap();
    hida_ir_core::verifier::verify(&ctx, module).unwrap();
    let estimator = DataflowEstimator::new(options.device.clone()).with_jobs(jobs);
    let dataflow = estimator.estimate_schedule(&ctx, schedule, true);
    let sequential = estimator.estimate_schedule(&ctx, schedule, false);
    (
        hida_ir_core::printer::print_op(&ctx, module),
        dataflow,
        sequential,
        pipeline.statistics().to_vec(),
    )
}

fn assert_jobs_invariant(build: impl Fn(&mut Context, OpId) -> OpId + Copy, options: &HidaOptions) {
    let (ir_1, df_1, seq_1, stats_1) = compile(build, options, 1);
    let (ir_4, df_4, seq_4, stats_4) = compile(build, options, 4);
    assert_eq!(
        ir_1, ir_4,
        "--jobs 1 and --jobs 4 IR must be byte-identical"
    );
    assert_eq!(df_1, df_4, "dataflow QoR must be identical");
    assert_eq!(seq_1, seq_4, "sequential QoR must be identical");

    // The sequential run records no parallel counters; the parallel run must
    // record them for the per-node passes (tiling, parallelize).
    assert!(stats_1.iter().all(|s| s.parallel.is_none()));
    for pass in ["hida-tiling", "hida-parallelize"] {
        let Some(stat) = stats_4.iter().find(|s| s.pass == pass) else {
            continue; // pass not in this pipeline variant
        };
        let parallel = stat
            .parallel
            .as_ref()
            .unwrap_or_else(|| panic!("{pass} must record parallel stats under --jobs 4"));
        assert!(parallel.items > 0, "{pass} executed no parallel items");
        assert!(parallel.workers >= 1 && parallel.workers <= 4);
    }
}

#[test]
fn twomm_schedule_and_qor_are_identical_across_jobs() {
    assert_jobs_invariant(
        |ctx, module| build_kernel(ctx, module, PolybenchKernel::TwoMm, 16),
        &HidaOptions {
            tile_size: Some(4),
            ..HidaOptions::polybench()
        },
    );
}

#[test]
fn lenet_schedule_and_qor_are_identical_across_jobs() {
    assert_jobs_invariant(
        |ctx, module| build_model(ctx, module, Model::LeNet),
        &HidaOptions::dnn(),
    );
}

#[test]
fn naive_mode_single_wave_is_also_deterministic() {
    // Without connection awareness the parallelizer runs as one wave; the
    // merge order must still pin the result.
    assert_jobs_invariant(
        |ctx, module| build_kernel(ctx, module, PolybenchKernel::ThreeMm, 12),
        &HidaOptions {
            mode: hida_opt::ParallelMode::Naive,
            enable_balancing: false,
            ..HidaOptions::polybench()
        },
    );
}

#[test]
fn profile_pass_parallel_warmup_feeds_later_passes() {
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let func = build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 16);
    let mut pipeline = Pipeline::parse(
        &registry(),
        "construct,lower,profile,parallelize{max-factor=8,device=zu3eg}",
    )
    .unwrap()
    .with_jobs(4);
    pipeline.run(&mut ctx, func).unwrap();
    let stats = pipeline.statistics().to_vec();
    let profile = stats
        .iter()
        .find(|s| s.pass == "hida-profile-nodes")
        .unwrap();
    let parallel = profile.parallel.as_ref().expect("profile ran in parallel");
    assert_eq!(parallel.items, 2, "one work item per TwoMm node");
    // The published profiles must be consumed as cache traffic by the
    // parallelizer's warm-up instead of being recomputed from scratch.
    let parallelize = stats.iter().find(|s| s.pass == "hida-parallelize").unwrap();
    assert!(
        parallelize.cache.hits > 0,
        "parallelize must hit the profiles the profile pass published: {:?}",
        parallelize.cache
    );
}

/// The loom-free stress test: 50 repetitions of the parallel tiling pass over
/// fresh TwoMm schedules. Every iteration must produce the same IR as the
/// first and internally consistent worker/steal counters.
#[test]
fn parallel_tiling_is_stable_over_fifty_runs() {
    let options = HidaOptions {
        tile_size: Some(4),
        ..HidaOptions::polybench()
    };
    let mut reference_ir: Option<String> = None;
    let mut totals = ParallelStats::default();
    for round in 0..50 {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 16);
        let mut pipeline = Pipeline::from_options(&options).with_jobs(4);
        pipeline.run(&mut ctx, func).unwrap();
        let ir = hida_ir_core::printer::print_op(&ctx, module);
        match &reference_ir {
            None => reference_ir = Some(ir),
            Some(reference) => assert_eq!(reference, &ir, "round {round} diverged"),
        }
        let tiling = pipeline
            .statistics()
            .iter()
            .find(|s| s.pass == "hida-tiling")
            .unwrap();
        let parallel = tiling
            .parallel
            .as_ref()
            .unwrap_or_else(|| panic!("round {round}: tiling must record parallel stats"));
        // Stats invariants: every node is exactly one work item, the worker
        // count respects --jobs, and the per-worker extremes bound the total.
        assert_eq!(parallel.items, 2, "round {round}: one item per TwoMm node");
        assert!(
            parallel.workers >= 1 && parallel.workers <= 4,
            "round {round}"
        );
        assert!(
            parallel.max_worker_items >= parallel.min_worker_items,
            "round {round}"
        );
        assert!(parallel.max_worker_items <= parallel.items, "round {round}");
        assert!(
            parallel.steals <= parallel.items,
            "round {round}: cannot steal more items than exist"
        );
        totals.accumulate(parallel);
    }
    assert_eq!(totals.items, 100, "50 rounds x 2 nodes");
}

/// The estimator's parallel per-node half must not change any estimate and
/// must record its batch counters.
#[test]
fn estimator_jobs_do_not_change_estimates() {
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let func = build_model(&mut ctx, module, Model::LeNet);
    let mut pipeline = Pipeline::from_options(&HidaOptions::dnn());
    let schedule = pipeline.run(&mut ctx, func).unwrap();

    let sequential = DataflowEstimator::new(FpgaDevice::vu9p_slr());
    let parallel = DataflowEstimator::new(FpgaDevice::vu9p_slr()).with_jobs(4);
    assert_eq!(parallel.jobs(), 4);
    let df_seq = sequential.estimate_schedule(&ctx, schedule, true);
    let df_par = parallel.estimate_schedule(&ctx, schedule, true);
    assert_eq!(df_seq, df_par);
    let stats = parallel.parallel_stats();
    assert!(stats.items > 0, "LeNet estimation must fan out per node");
    assert_eq!(stats.items, schedule.nodes(&ctx).len() as u64);
    // Sequential estimators never touch the pool.
    assert_eq!(sequential.parallel_stats(), ParallelStats::default());
    // Repeating the parallel estimate is served from the cache: no new batch.
    parallel.estimate_schedule(&ctx, schedule, false);
    assert_eq!(parallel.parallel_stats(), stats);
}
