//! Integration tests for the analysis cache threaded through the HIDA-OPT
//! pipeline: profiles computed once flow from fusion to lowering to tiling to
//! parallelization, invalidation follows IR mutations, and failing pipelines
//! still report per-pass statistics.

use hida_frontend::nn::{build_model, Model};
use hida_frontend::polybench::{build_kernel, PolybenchKernel};
use hida_ir_core::{AnalysisCacheStats, Context, OpId};
use hida_opt::{HidaOptions, Pipeline};

fn run_workload(build: impl FnOnce(&mut Context, OpId) -> OpId, options: &HidaOptions) -> Pipeline {
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let func = build(&mut ctx, module);
    let mut pipeline = Pipeline::from_options(options);
    pipeline.run(&mut ctx, func).unwrap();
    pipeline
}

fn stat_of<'p>(pipeline: &'p Pipeline, pass: &str) -> &'p hida_ir_core::PassStatistics {
    pipeline
        .statistics()
        .iter()
        .find(|s| s.pass == pass)
        .unwrap_or_else(|| panic!("no statistics for {pass}"))
}

#[test]
fn default_pipeline_reuses_profiles_across_passes() {
    let pipeline = run_workload(
        |ctx, module| build_kernel(ctx, module, PolybenchKernel::TwoMm, 32),
        &HidaOptions::default(),
    );

    // Lowering computes the task and node profiles (the first profile work of
    // this pipeline — TwoMm has too few tasks for criticality fusion queries).
    let lower = stat_of(&pipeline, "hida-lower-structural");
    assert!(lower.cache.misses >= 2, "{:?}", lower.cache);

    // Tiling consumes the node profiles lowering warmed — pure hits.
    let tiling = stat_of(&pipeline, "hida-tiling");
    assert!(tiling.cache.hits >= 1, "{:?}", tiling.cache);
    assert_eq!(tiling.cache.misses, 0, "{:?}", tiling.cache);

    // Parallelization queries every node profile three times (connections,
    // sorting, partitioning) and must never recompute one.
    let parallelize = stat_of(&pipeline, "hida-parallelize");
    assert!(parallelize.cache.hits >= 4, "{:?}", parallelize.cache);
    // At most the dataflow graph is computed fresh (and not even that when
    // balancing left the IR untouched); node profiles are never recomputed.
    assert!(parallelize.cache.misses <= 1, "{:?}", parallelize.cache);

    // Every mutating pass that follows the first profile computation reported
    // preserved entries or hits; nothing silently recomputed node profiles.
    for pass in ["hida-tiling", "hida-parallelize"] {
        let stat = stat_of(&pipeline, pass);
        assert!(
            stat.cache.hits >= 1,
            "{pass} should hit the analysis cache: {:?}",
            stat.cache
        );
    }
}

#[test]
fn fusion_hands_its_task_profiles_to_lowering_on_dnns() {
    let pipeline = run_workload(
        |ctx, module| build_model(ctx, module, Model::LeNet),
        &HidaOptions::dnn(),
    );
    // LeNet's criticality-driven fusion queries task intensities repeatedly;
    // re-queries of surviving tasks hit because fusion declares profile
    // preservation (with fine-grained invalidation of rewired consumers).
    let fusion = stat_of(&pipeline, "hida-task-fusion");
    assert!(fusion.cache.hits >= 1, "{:?}", fusion.cache);
    assert!(fusion.cache.misses >= 1, "{:?}", fusion.cache);

    // Lowering re-queries exactly the per-task profiles fusion left behind,
    // and drops them once the tasks are erased.
    let lower = stat_of(&pipeline, "hida-lower-structural");
    assert!(lower.cache.hits >= 1, "{:?}", lower.cache);
    assert!(lower.cache.invalidations >= 1, "{:?}", lower.cache);

    let parallelize = stat_of(&pipeline, "hida-parallelize");
    assert!(parallelize.cache.hits >= 4, "{:?}", parallelize.cache);
}

#[test]
fn pipeline_statistics_expose_aggregate_cache_totals() {
    let pipeline = run_workload(
        |ctx, module| build_kernel(ctx, module, PolybenchKernel::ThreeMm, 16),
        &HidaOptions::default(),
    );
    let mut totals = AnalysisCacheStats::default();
    for stat in pipeline.statistics() {
        totals.accumulate(&stat.cache);
    }
    assert!(totals.hits >= 1);
    assert!(totals.misses >= 1);
    assert!(totals.preserved >= 1);
    assert_eq!(
        totals.total_queries(),
        totals.hits + totals.misses,
        "query accounting must balance"
    );
    // The manager's lifetime totals match the per-pass records.
    assert_eq!(pipeline.analyses().stats().hits, totals.hits);
    assert_eq!(pipeline.analyses().stats().misses, totals.misses);
}

#[test]
fn failing_pipeline_records_the_aborting_pass() {
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let func = build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 16);
    // multi-producer-elim without lowering aborts with a missing-schedule error.
    let mut pipeline =
        Pipeline::parse(&hida_opt::registry(), "construct,multi-producer-elim,lower").unwrap();
    let err = pipeline.run(&mut ctx, func).unwrap_err();
    assert!(err.to_string().contains("hida-lower-structural"));
    // The aborting pass has a (failed) record; the never-run lower pass has none.
    assert_eq!(pipeline.statistics().len(), 2);
    let aborted = &pipeline.statistics()[1];
    assert_eq!(aborted.pass, "hida-eliminate-multi-producers");
    assert!(aborted.failed);
    assert!(aborted.to_string().contains("FAILED"));
    assert!(!pipeline.statistics()[0].failed);
}

#[test]
fn rerunning_a_pipeline_on_fresh_ir_starts_cold_but_stays_consistent() {
    // Two identical runs of one pipeline over two fresh contexts: the second
    // run cannot leak hits from the first context (entries are keyed by
    // context identity), but within each run the hit pattern is identical.
    let first = run_workload(
        |ctx, module| build_kernel(ctx, module, PolybenchKernel::TwoMm, 32),
        &HidaOptions::default(),
    );
    let second = run_workload(
        |ctx, module| build_kernel(ctx, module, PolybenchKernel::TwoMm, 32),
        &HidaOptions::default(),
    );
    let caches = |p: &Pipeline| -> Vec<AnalysisCacheStats> {
        p.statistics().iter().map(|s| s.cache.clone()).collect()
    };
    assert_eq!(caches(&first), caches(&second));
}
