//! Grammar-level tests of the textual pipeline syntax against the real HIDA
//! pass registry: structured parse errors, registry resolution failures, and a
//! property-based `parse(print(p)) == p` round-trip over randomly composed
//! pipelines.

use hida_ir_core::registry::PipelineError;
use hida_ir_core::{parse_pipeline, print_pipeline, PassInvocation, PassOption};
use hida_opt::{registry, Pipeline};
use proptest::prelude::*;

fn parse_err(text: &str) -> PipelineError {
    match Pipeline::parse(&registry(), text) {
        Ok(_) => panic!("expected '{text}' to fail"),
        Err(e) => e,
    }
}

#[test]
fn bad_pass_name_reports_the_registered_passes() {
    let err = parse_err("construct,lowerr");
    match &err {
        PipelineError::UnknownPass { name, known } => {
            assert_eq!(name, "lowerr");
            assert_eq!(known.len(), 8);
            assert!(known.contains(&"lower".to_string()));
        }
        other => panic!("expected UnknownPass, got {other}"),
    }
}

#[test]
fn malformed_option_is_a_positioned_parse_error() {
    let err = parse_err("tiling{factor~4}");
    match err {
        PipelineError::Parse(parse) => {
            assert_eq!(parse.expected, "'='");
            assert_eq!(parse.found, "'~'");
            assert_eq!(parse.position, 13);
        }
        other => panic!("expected Parse, got {other}"),
    }
    let err = parse_err("tiling{factor=}");
    assert!(matches!(err, PipelineError::Parse(_)));
    assert!(err.to_string().contains("expected option value"));
}

#[test]
fn trailing_comma_is_a_positioned_parse_error() {
    let err = parse_err("construct,fusion,");
    match err {
        PipelineError::Parse(parse) => {
            assert_eq!(parse.expected, "pass name");
            assert_eq!(parse.found, "end of input");
            assert_eq!(parse.position, 17);
        }
        other => panic!("expected Parse, got {other}"),
    }
}

#[test]
fn option_rejections_name_the_canonical_pass() {
    let err = parse_err("hida-tiling{factor=-2}");
    match &err {
        PipelineError::InvalidOption { pass, reason } => {
            assert_eq!(pass, "tiling");
            assert!(reason.contains("must be >= 1"), "{reason}");
        }
        other => panic!("expected InvalidOption, got {other}"),
    }
}

#[test]
fn acceptance_pipeline_parses_and_round_trips() {
    let text = "construct,fusion,lower,multi-producer-elim,tiling{factor=4},balance,parallelize";
    let pipeline = Pipeline::parse(&registry(), text).unwrap();
    assert_eq!(pipeline.len(), 7);
    let reparsed = Pipeline::parse(&registry(), &pipeline.to_text()).unwrap();
    assert_eq!(reparsed.invocations(), pipeline.invocations());
    assert_eq!(reparsed.to_text(), pipeline.to_text());
}

const PASS_POOL: [&str; 7] = [
    "construct",
    "fusion",
    "lower",
    "multi-producer-elim",
    "tiling",
    "balance",
    "parallelize",
];

proptest! {
    /// The raw grammar (no registry): printing any invocation list and parsing
    /// it back is the identity.
    #[test]
    fn grammar_round_trip_over_random_invocations(
        names in prop::collection::vec(0_usize..7, 1..6),
        values in prop::collection::vec(1_i64..512, 1..4),
    ) {
        // Compose invocations from the pass pool with synthetic options; the raw
        // grammar does not care whether the options are meaningful.
        let invocations: Vec<PassInvocation> = names
            .iter()
            .enumerate()
            .map(|(i, &idx)| {
                let options: Vec<PassOption> = values
                    .iter()
                    .take(i % (values.len() + 1))
                    .enumerate()
                    .map(|(j, v)| PassOption::new(format!("opt{j}"), v))
                    .collect();
                PassInvocation::with_options(PASS_POOL[idx], options)
            })
            .collect();
        let text = print_pipeline(&invocations);
        prop_assert_eq!(parse_pipeline(&text).unwrap(), invocations);
    }

    /// Registry-normalized pipelines reach a fixpoint after one normalization:
    /// `parse(print(p)) == p` for every parsed pipeline `p`.
    #[test]
    fn registry_round_trip_over_random_pipelines(
        passes in prop::collection::vec(0_usize..7, 1..8),
        tile_factor in 1_i64..64,
        max_factor in 1_i64..256,
        threshold in prop::sample::select(vec![1024_i64, 65536, 524288]),
        mode in prop::sample::select(vec!["IA+CA", "IA", "CA", "Naive"]),
        device in prop::sample::select(vec!["pynq-z2", "zu3eg", "vu9p-slr"]),
        patterns in prop::sample::select(vec![
            "",
            "{patterns=elementwise-fusion}",
            "{patterns=conv-pool-fusion}",
            "{patterns=elementwise-fusion+conv-pool-fusion}",
        ]),
    ) {
        let rendered: Vec<String> = passes
            .iter()
            .map(|&idx| match PASS_POOL[idx] {
                "fusion" => format!("fusion{patterns}"),
                "tiling" => {
                    format!("tiling{{factor={tile_factor},external-threshold-bytes={threshold}}}")
                }
                "balance" => format!("balance{{external-threshold-bytes={threshold}}}"),
                "parallelize" => format!(
                    "parallelize{{max-factor={max_factor},mode={mode},device={device}}}"
                ),
                bare => bare.to_string(),
            })
            .collect();
        let registry = registry();
        let pipeline = Pipeline::parse(&registry, &rendered.join(",")).unwrap();
        let reparsed = Pipeline::parse(&registry, &pipeline.to_text()).unwrap();
        prop_assert_eq!(reparsed.invocations(), pipeline.invocations());
        prop_assert_eq!(reparsed.to_text(), pipeline.to_text());
        prop_assert_eq!(reparsed.pass_names(), pipeline.pass_names());
    }
}
