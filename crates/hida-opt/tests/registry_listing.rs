//! Snapshot test of the `hida-opt --list-passes` output.
//!
//! The listing is produced by `registry_listing()` — the exact function the CLI
//! binary prints — and pinned against `tests/snapshots/registry_listing.snap`.
//! When a pass or option is added or reworded, regenerate the snapshot with
//! `cargo run -p hida --bin hida-opt -- --list-passes > \
//!  crates/hida-opt/tests/snapshots/registry_listing.snap` and review the diff.

use hida_opt::{registry, registry_listing};

const SNAPSHOT: &str = include_str!("snapshots/registry_listing.snap");

#[test]
fn listing_matches_the_snapshot() {
    let listing = registry_listing();
    if listing != SNAPSHOT {
        // A line-by-line diff makes snapshot drift reviewable from the test log.
        for (i, (got, want)) in listing.lines().zip(SNAPSHOT.lines()).enumerate() {
            assert_eq!(got, want, "listing line {} drifted", i + 1);
        }
        assert_eq!(
            listing.lines().count(),
            SNAPSHOT.lines().count(),
            "listing gained or lost lines"
        );
        panic!("listing differs from snapshot in whitespace only");
    }
}

#[test]
fn snapshot_covers_every_registered_pass_and_option() {
    // Guards against a stale snapshot that still matches structurally: every
    // canonical name, alias and option of the live registry must appear.
    for spec in registry().specs().iter() {
        assert!(
            SNAPSHOT.contains(spec.name()),
            "missing pass {}",
            spec.name()
        );
        for alias in spec.aliases() {
            assert!(SNAPSHOT.contains(alias.as_str()), "missing alias {alias}");
        }
        for option in spec.options() {
            assert!(
                SNAPSHOT.contains(option.name.as_str()),
                "missing option {}",
                option.name
            );
        }
    }
}
