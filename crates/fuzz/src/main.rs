//! Differential fuzzing driver.
//!
//! ```text
//! hida-fuzz [--cases N] [--seed S] [--dump-dir DIR] [--chaos]
//! ```
//!
//! Runs `N` differential cases with consecutive seeds starting at `S`
//! (see `hida_fuzz::run_case` for the checks). With `--chaos`, roughly half
//! the seeds additionally arm an injected pass panic and the oracle flips:
//! the armed pipeline must fail with a structured error naming the injected
//! fault, with no panic escaping the pass manager. On failure the offending
//! module is dumped as `DIR/fuzz-<seed>.hir` — replayable with
//! `hida-opt --input` — and the process exits non-zero.

use std::process::ExitCode;

struct Args {
    cases: u64,
    seed: u64,
    dump_dir: String,
    chaos: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 200,
        seed: 20240815,
        dump_dir: "target/fuzz-failures".to_string(),
        chaos: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--dump-dir" => args.dump_dir = value("--dump-dir")?,
            "--chaos" => args.chaos = true,
            "--help" | "-h" => {
                println!("usage: hida-fuzz [--cases N] [--seed S] [--dump-dir DIR] [--chaos]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("hida-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "hida-fuzz: {} cases from seed {}{} (dump dir: {})",
        args.cases,
        args.seed,
        if args.chaos { ", chaos mode" } else { "" },
        args.dump_dir
    );
    let run = if args.chaos {
        hida_fuzz::run_case_chaos
    } else {
        hida_fuzz::run_case
    };
    let mut failures = 0_u64;
    for i in 0..args.cases {
        let seed = args.seed.wrapping_add(i);
        match run(seed) {
            Ok(report) => {
                if i % 50 == 0 {
                    println!(
                        "  case {i} (seed {seed}): ok — {} nodes, pipeline {}",
                        report.nodes, report.pipeline
                    );
                }
            }
            Err(f) => {
                failures += 1;
                eprintln!("FAIL seed {seed}: {}", f.reason);
                eprintln!("  pipeline: {}", f.pipeline);
                if std::fs::create_dir_all(&args.dump_dir).is_ok() {
                    let path = format!("{}/fuzz-{seed}.hir", args.dump_dir);
                    match std::fs::write(&path, &f.module_text) {
                        Ok(()) => eprintln!("  module dumped to {path}"),
                        Err(e) => eprintln!("  could not dump module: {e}"),
                    }
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("hida-fuzz: {failures}/{} cases FAILED", args.cases);
        return ExitCode::FAILURE;
    }
    println!("hida-fuzz: all {} cases passed", args.cases);
    ExitCode::SUCCESS
}
