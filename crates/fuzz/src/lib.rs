//! Seeded differential fuzzing for the HIDA reproduction.
//!
//! Each case derives everything from one `u64` seed:
//!
//! 1. [`gen_workload`] builds a random affine dataflow function — a handful of
//!    `f32` matrices, per-buffer constant-fill init nests, and a chain of
//!    compute nests (matmul / element-wise scale / boundary stencil) wired so
//!    later nests consume earlier results,
//! 2. [`gen_pipeline`] assembles a random but registry-valid optimization
//!    pipeline (`construct,…,lower,…`),
//! 3. [`run_case`] drives the differential checks:
//!    * **round-trip**: `parse(print(module))` matches the original by
//!      structural fingerprint and re-prints byte-identically — both for the
//!      generated function and for the fully optimized design (which exercises
//!      `hida.schedule` / `hida.node` / `hida.buffer` through the parser),
//!    * **semantics oracle**: the functional interpreter produces the same
//!      buffer contents under the baseline `construct,lower` pipeline and the
//!      random optimized pipeline (run on the *parsed* copy of the module, so
//!      textual IR flows through the whole optimizer),
//!    * **interval model**: the timed simulator's steady-state initiation
//!      interval stays within a constant factor of the analytic estimate.
//!
//! The `hida-fuzz` binary runs batches of cases and dumps the offending
//! module as a `.hir` file when a case fails, so failures reproduce with
//! `hida-opt --input`.

use hida_dialects::loops::build_loop_nest;
use hida_dialects::memory::{build_alloc, build_load, build_store};
use hida_dialects::{arith, memory};
use hida_estimator::{DataflowEstimator, FpgaDevice};
use hida_ir_core::printer::print_op;
use hida_ir_core::{parse_module, structural_fingerprint, Context, OpBuilder, OpId, Type, ValueId};
use hida_opt::{registry, Pipeline};
use hida_sim::functional::Memory;
use hida_sim::{interpret_schedule, simulate_pipeline};
use std::collections::BTreeMap;

/// Deterministic splitmix64 generator — no external RNG crates, stable across
/// platforms, and every case is reproducible from its seed alone.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator for one case.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit output (splitmix64 finalizer).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.range(0, 99) < percent
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64 - 1) as usize]
    }
}

/// One generated buffer: its SSA value and its name (used to align memories
/// across independently compiled copies of the same module).
#[derive(Debug, Clone)]
struct Buffer {
    value: ValueId,
    name: String,
}

/// A generated workload: the module, its function, and a short human-readable
/// description of the nest chain (for failure reports).
#[derive(Debug)]
pub struct GeneratedWorkload {
    /// The `builtin.module` root.
    pub module: OpId,
    /// The `func.func` holding the nests.
    pub func: OpId,
    /// E.g. `"n=6 stages=[matmul(A,B->C), stencil(C->D)]"`.
    pub summary: String,
}

/// Builds a random affine dataflow function into a fresh module inside `ctx`.
///
/// Every buffer is written by a constant-fill init nest before any compute
/// nest reads it, so the zero-initialized functional interpreter produces
/// non-trivial values without external memory seeding. Compute nests chain:
/// each reads previously written buffers and writes a fresh one, giving the
/// dataflow constructor real producer/consumer edges to work with.
pub fn gen_workload(ctx: &mut Context, rng: &mut FuzzRng) -> GeneratedWorkload {
    let n = rng.range(4, 8) as i64;
    let module = ctx.create_module("fuzz");
    let func = OpBuilder::at_end_of(ctx, module).create_func("fuzz", vec![], vec![]);
    let body = ctx.body_block(func);

    // Draw the whole plan before emitting any IR: the construct pass keeps
    // allocations in the transparent context surrounding the dispatch, so all
    // allocs must precede the first loop nest (as the hand-written frontends
    // arrange them).
    let num_inputs = rng.range(2, 3) as usize;
    let input_fills: Vec<f64> = (0..num_inputs)
        .map(|k| 0.25 + 0.5 * k as f64 + 0.125 * rng.range(0, 4) as f64)
        .collect();
    let num_stages = rng.range(1, 3) as usize;
    // (kind, src index, second src index, scale) per stage; sources may be any
    // earlier buffer (inputs or prior stage results).
    let plan: Vec<(u64, usize, usize, f64)> = (0..num_stages)
        .map(|s| {
            let avail = (num_inputs + s) as u64;
            (
                rng.range(0, 2),
                rng.range(0, avail - 1) as usize,
                rng.range(0, avail - 1) as usize,
                0.5 + 0.25 * rng.range(0, 3) as f64,
            )
        })
        .collect();

    // Buffer names are single letters: hint digits never collide with the
    // printer's value-numbering suffix, keeping re-prints byte-identical.
    let names = ["A", "B", "C", "D", "E", "F", "G", "H"];
    let buffers: Vec<Buffer> = (0..num_inputs + num_stages)
        .map(|i| {
            let mut b = OpBuilder::at_block_end(ctx, body);
            let value = build_alloc(&mut b, Type::memref(vec![n, n], Type::f32()), names[i]);
            Buffer {
                value,
                name: names[i].to_string(),
            }
        })
        .collect();

    // Init nest: buf[i][j] = c over the full index space.
    let init = |ctx: &mut Context, buf: &Buffer, c: f64, tag: &str| {
        let (_, ivs, inner) = build_loop_nest(
            ctx,
            body,
            &[(0, n, &format!("{tag}_i")), (0, n, &format!("{tag}_j"))],
        );
        let mut b = OpBuilder::at_block_end(ctx, inner);
        let v = b.create_constant_float(c, Type::f32());
        build_store(&mut b, v, buf.value, &[ivs[0], ivs[1]]);
    };

    for (buf, &fill) in buffers.iter().zip(&input_fills) {
        init(ctx, buf, fill, &format!("init{}", buf.name.to_lowercase()));
    }

    let mut stages: Vec<String> = Vec::new();
    for (s, &(kind, src_a, src_b, scale)) in plan.iter().enumerate() {
        let dst = buffers[num_inputs + s].clone();
        let tag = format!("s{s}");
        match kind {
            // matmul: dst[i][j] += lhs[i][k] * rhs[k][j]; dst pre-filled so the
            // accumulation starts from a known constant.
            0 => {
                let lhs = buffers[src_a].clone();
                let rhs = buffers[src_b].clone();
                init(ctx, &dst, 0.0, &format!("init{}", dst.name.to_lowercase()));
                let (_, ivs, inner) = build_loop_nest(
                    ctx,
                    body,
                    &[
                        (0, n, &format!("{tag}_i")),
                        (0, n, &format!("{tag}_j")),
                        (0, n, &format!("{tag}_k")),
                    ],
                );
                let mut b = OpBuilder::at_block_end(ctx, inner);
                let x = build_load(&mut b, lhs.value, &[ivs[0], ivs[2]]);
                let y = build_load(&mut b, rhs.value, &[ivs[2], ivs[1]]);
                let prod = arith::build_binary(&mut b, arith::MULF, x, y);
                let acc = build_load(&mut b, dst.value, &[ivs[0], ivs[1]]);
                let sum = arith::build_binary(&mut b, arith::ADDF, acc, prod);
                build_store(&mut b, sum, dst.value, &[ivs[0], ivs[1]]);
                stages.push(format!("matmul({},{}->{})", lhs.name, rhs.name, dst.name));
            }
            // element-wise scale: dst[i][j] = src[i][j] * c.
            1 => {
                let src = buffers[src_a].clone();
                let (_, ivs, inner) = build_loop_nest(
                    ctx,
                    body,
                    &[(0, n, &format!("{tag}_i")), (0, n, &format!("{tag}_j"))],
                );
                let mut b = OpBuilder::at_block_end(ctx, inner);
                let x = build_load(&mut b, src.value, &[ivs[0], ivs[1]]);
                let c = b.create_constant_float(scale, Type::f32());
                let y = arith::build_binary(&mut b, arith::MULF, x, c);
                build_store(&mut b, y, dst.value, &[ivs[0], ivs[1]]);
                stages.push(format!("scale({}->{})", src.name, dst.name));
            }
            // boundary stencil: the interior of dst accumulates a combination
            // of src with a strided row (via affine.apply); the untouched
            // boundary keeps dst's init fill, making the output
            // index-sensitive. The accumulation load of dst is load-bearing:
            // multi-producer elimination only copies the original buffer into
            // a duplicate when the later producer *reads* it, so a partial
            // writer must be a read-modify-write to stay within that contract.
            _ => {
                let src = buffers[src_a].clone();
                init(
                    ctx,
                    &dst,
                    0.125,
                    &format!("init{}", dst.name.to_lowercase()),
                );
                let (_, ivs, inner) = build_loop_nest(
                    ctx,
                    body,
                    &[
                        (1, n - 1, &format!("{tag}_i")),
                        (1, n - 1, &format!("{tag}_j")),
                    ],
                );
                let mut b = OpBuilder::at_block_end(ctx, inner);
                let shifted = memory::build_apply(&mut b, ivs[0], 1, -1);
                let center = build_load(&mut b, src.value, &[ivs[0], ivs[1]]);
                let up = build_load(&mut b, src.value, &[shifted, ivs[1]]);
                let s = arith::build_binary(&mut b, arith::ADDF, center, up);
                let c = b.create_constant_float(0.2, Type::f32());
                let r = arith::build_binary(&mut b, arith::MULF, s, c);
                let prev = build_load(&mut b, dst.value, &[ivs[0], ivs[1]]);
                let acc = arith::build_binary(&mut b, arith::ADDF, prev, r);
                build_store(&mut b, acc, dst.value, &[ivs[0], ivs[1]]);
                stages.push(format!("stencil({}->{})", src.name, dst.name));
            }
        }
    }

    GeneratedWorkload {
        module,
        func,
        summary: format!("n={n} stages=[{}]", stages.join(", ")),
    }
}

/// Assembles a random registry-valid pipeline string. Always starts with
/// `construct` and passes through `lower`; the optional passes and their
/// options are drawn from the registry's documented surface.
pub fn gen_pipeline(rng: &mut FuzzRng) -> String {
    let mut passes = vec!["construct".to_string()];
    if rng.chance(40) {
        passes.push("fusion".to_string());
    }
    passes.push("lower".to_string());
    if rng.chance(40) {
        passes.push("multi-producer-elim".to_string());
    }
    if rng.chance(50) {
        let factor = *rng.pick(&[2_u64, 4]);
        passes.push(format!("tiling{{factor={factor}}}"));
    }
    if rng.chance(40) {
        passes.push("balance".to_string());
    }
    if rng.chance(60) {
        let max = *rng.pick(&[2_u64, 4, 8]);
        let mode = *rng.pick(&["IA+CA", "IA", "CA", "Naive"]);
        let device = *rng.pick(&["zu3eg", "pynq-z2", "vu9p-slr"]);
        passes.push(format!(
            "parallelize{{max-factor={max},mode={mode},device={device}}}"
        ));
    }
    passes.join(",")
}

/// What a passing case produced — returned so callers can log coverage.
#[derive(Debug)]
pub struct CaseReport {
    /// The randomly chosen pipeline text.
    pub pipeline: String,
    /// The workload summary (`gen_workload`'s description).
    pub workload: String,
    /// Number of dataflow nodes in the optimized design.
    pub nodes: usize,
}

/// A failing case, with everything needed to reproduce it offline.
#[derive(Debug)]
pub struct CaseFailure {
    /// The seed that produced the failure.
    pub seed: u64,
    /// Which check failed and how.
    pub reason: String,
    /// The randomly chosen pipeline text (empty if generation itself failed).
    pub pipeline: String,
    /// Printed textual IR of the generated module — dump as `.hir` and replay
    /// with `hida-opt --input`.
    pub module_text: String,
}

/// Interprets `schedule` on a zero-initialized memory and returns buffer
/// contents keyed by buffer name.
///
/// Multi-producer elimination renames each later producer's target to
/// `<name>_dup` (chaining for further producers), and the final value of the
/// original buffer lives in the most-duplicated copy. Keys are therefore the
/// base name with `_dup` suffixes stripped, keeping the deepest duplicate.
fn interpreted_contents(
    ctx: &Context,
    schedule: hida_dataflow_ir::structural::ScheduleOp,
) -> BTreeMap<String, Vec<f64>> {
    let mut memory = Memory::new();
    interpret_schedule(ctx, schedule, &mut memory);
    let mut out: BTreeMap<String, (usize, Vec<f64>)> = BTreeMap::new();
    for buf in schedule.internal_buffers(ctx) {
        let Some(data) = memory.contents(buf.value(ctx)) else {
            continue;
        };
        let mut base = buf.name(ctx);
        let mut dups = 0;
        while let Some(stripped) = base.strip_suffix("_dup") {
            base = stripped.to_string();
            dups += 1;
        }
        match out.get(&base) {
            Some(&(best, _)) if best >= dups => {}
            _ => {
                out.insert(base, (dups, data.to_vec()));
            }
        }
    }
    out.into_iter().map(|(k, (_, v))| (k, v)).collect()
}

/// Relative-tolerance comparison: optimization may reassociate float
/// accumulations, so exact equality is too strict, but anything beyond a
/// hair's width is a real divergence at these magnitudes.
fn numbers_match(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

/// Runs one differential case end to end. See the module docs for the checks.
pub fn run_case(seed: u64) -> Result<CaseReport, CaseFailure> {
    let mut rng = FuzzRng::new(seed);

    // 1. Generate the workload and pick a pipeline.
    let mut ctx = Context::new();
    let workload = gen_workload(&mut ctx, &mut rng);
    let pipeline_text = gen_pipeline(&mut rng);
    let text = print_op(&ctx, workload.module);
    let fail = |reason: String, pipeline: &str, text: &str| CaseFailure {
        seed,
        reason,
        pipeline: pipeline.to_string(),
        module_text: text.to_string(),
    };

    // 2. Round-trip: parse what we printed, compare fingerprints, re-print.
    let (mut parsed_ctx, parsed_module) = parse_module(&text).map_err(|e| {
        fail(
            format!("round-trip parse failed: {e}"),
            &pipeline_text,
            &text,
        )
    })?;
    let original_fp = structural_fingerprint(&ctx, workload.module);
    let parsed_fp = structural_fingerprint(&parsed_ctx, parsed_module);
    if original_fp != parsed_fp {
        return Err(fail(
            "round-trip fingerprint mismatch on the generated module".to_string(),
            &pipeline_text,
            &text,
        ));
    }
    let reprinted = print_op(&parsed_ctx, parsed_module);
    if reprinted != text {
        return Err(fail(
            "round-trip re-print is not byte-identical".to_string(),
            &pipeline_text,
            &text,
        ));
    }

    // 3. Semantics oracle: baseline construct,lower on the original context…
    let reg = registry();
    let mut baseline = Pipeline::parse(&reg, "construct,lower")
        .map_err(|e| fail(format!("baseline pipeline: {e}"), &pipeline_text, &text))?;
    let baseline_schedule = baseline
        .run(&mut ctx, workload.func)
        .map_err(|e| fail(format!("baseline run failed: {e}"), &pipeline_text, &text))?;
    let expected = interpreted_contents(&ctx, baseline_schedule);

    // …vs the random pipeline on the *parsed* copy, so textual IR flows
    // through the full optimizer exactly like `hida-opt --input` does.
    let parsed_func = parsed_ctx
        .body_ops(parsed_module)
        .into_iter()
        .find(|&op| parsed_ctx.op(op).is(hida_ir_core::op_names::FUNC))
        .ok_or_else(|| {
            fail(
                "parsed module lost its func".to_string(),
                &pipeline_text,
                &text,
            )
        })?;
    let mut optimized = Pipeline::parse(&reg, &pipeline_text)
        .map_err(|e| fail(format!("generated pipeline: {e}"), &pipeline_text, &text))?;
    let schedule = optimized
        .run(&mut parsed_ctx, parsed_func)
        .map_err(|e| fail(format!("optimized run failed: {e}"), &pipeline_text, &text))?;
    let actual = interpreted_contents(&parsed_ctx, schedule);

    let mut compared = 0_usize;
    let mut nonzero = false;
    for (name, expected_data) in &expected {
        let Some(actual_data) = actual.get(name) else {
            continue;
        };
        compared += 1;
        if expected_data.len() != actual_data.len() {
            return Err(fail(
                format!(
                    "oracle: buffer '{name}' size {} vs {} after {pipeline_text}",
                    expected_data.len(),
                    actual_data.len()
                ),
                &pipeline_text,
                &text,
            ));
        }
        for (i, (&e, &a)) in expected_data.iter().zip(actual_data).enumerate() {
            nonzero |= e != 0.0;
            if !numbers_match(e, a) {
                return Err(fail(
                    format!(
                        "oracle: buffer '{name}'[{i}] diverges: baseline {e} vs {a} \
                         after {pipeline_text} ({})",
                        workload.summary
                    ),
                    &pipeline_text,
                    &text,
                ));
            }
        }
    }
    if compared == 0 || !nonzero {
        return Err(fail(
            format!(
                "oracle is vacuous: {compared} comparable buffers, nonzero={nonzero} \
                 ({})",
                workload.summary
            ),
            &pipeline_text,
            &text,
        ));
    }

    // 4. Round-trip the *optimized* design: schedule/node/buffer ops included.
    let opt_text = print_op(&parsed_ctx, parsed_module);
    let (opt_ctx, opt_module) = parse_module(&opt_text).map_err(|e| {
        fail(
            format!("optimized design does not re-parse: {e}"),
            &pipeline_text,
            &opt_text,
        )
    })?;
    if structural_fingerprint(&parsed_ctx, parsed_module)
        != structural_fingerprint(&opt_ctx, opt_module)
    {
        return Err(fail(
            "round-trip fingerprint mismatch on the optimized design".to_string(),
            &pipeline_text,
            &opt_text,
        ));
    }

    // 5. Interval model: timed simulation vs analytic estimate.
    let estimator = DataflowEstimator::new(FpgaDevice::zu3eg());
    let analytic = estimator.estimate_schedule(&parsed_ctx, schedule, true);
    let trace = simulate_pipeline(&parsed_ctx, schedule, &estimator, 8, true);
    if analytic.interval_cycles > 0 && trace.steady_interval > 0 {
        let ratio = trace.steady_interval as f64 / analytic.interval_cycles as f64;
        if !(0.3..=3.0).contains(&ratio) {
            return Err(fail(
                format!(
                    "interval model: simulated steady interval {} vs analytic {} \
                     (ratio {ratio:.3}) after {pipeline_text}",
                    trace.steady_interval, analytic.interval_cycles
                ),
                &pipeline_text,
                &text,
            ));
        }
    }

    Ok(CaseReport {
        pipeline: pipeline_text,
        workload: workload.summary,
        nodes: schedule.nodes(&parsed_ctx).len(),
    })
}

/// Chaos-mode differential case: deterministically (from the seed) decides
/// whether to arm an injected pass panic around the optimized pipeline run.
///
/// * **Armed** (~half the seeds): the pipeline must fail with a *structured*
///   error that names the injected fault — a success is a vacuous oracle
///   (the injection site never fired) and an escaping panic is an isolation
///   hole; both are reported as failures.
/// * **Unarmed**: the case degrades to the plain [`run_case`] differential
///   checks, so a chaos batch still exercises the fault-free oracle.
///
/// The chaos decision comes from a decoupled RNG stream, so the generated
/// workload and pipeline are byte-identical to `run_case(seed)`'s.
pub fn run_case_chaos(seed: u64) -> Result<CaseReport, CaseFailure> {
    hida_ir_core::fault::silence_expected_panics();
    let mut chaos = FuzzRng::new(seed ^ 0x00C4_A05C_4A05_C4A0);
    if !chaos.chance(50) {
        return run_case(seed);
    }

    let mut rng = FuzzRng::new(seed);
    let mut ctx = Context::new();
    let workload = gen_workload(&mut ctx, &mut rng);
    let pipeline_text = gen_pipeline(&mut rng);
    let text = print_op(&ctx, workload.module);
    let fail = |reason: String| CaseFailure {
        seed,
        reason,
        pipeline: pipeline_text.clone(),
        module_text: text.clone(),
    };

    let reg = registry();
    let mut pipeline = Pipeline::parse(&reg, &pipeline_text)
        .map_err(|e| fail(format!("generated pipeline: {e}")))?;
    let outcome = {
        let _guard = hida_ir_core::fault::install_point(
            hida_ir_core::CancelToken::new(),
            Some(hida_ir_core::PointFaults {
                pass_panic: true,
                ..Default::default()
            }),
        );
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.run(&mut ctx, workload.func)
        }))
    };
    match outcome {
        Err(_) => Err(fail(
            "chaos: injected pass panic escaped the pass manager".to_string(),
        )),
        Ok(Ok(_)) => Err(fail(
            "chaos: armed a pass panic but the pipeline succeeded (vacuous injection)".to_string(),
        )),
        Ok(Err(e)) => {
            let message = e.to_string();
            if !message.contains("injected fault") {
                return Err(fail(format!(
                    "chaos: armed a pass panic but the failure does not name it: {message}"
                )));
            }
            Ok(CaseReport {
                pipeline: pipeline_text,
                workload: workload.summary,
                nodes: 0,
            })
        }
    }
}

/// Builds an attention-style kernel (scores = Q·Kᵀ scaled, out = scores·V)
/// into a fresh module. Used for the `examples/attention.hir` golden file and
/// as a fixed non-random workload in the fuzz smoke tests.
pub fn build_attention(ctx: &mut Context, n: i64) -> (OpId, OpId) {
    let module = ctx.create_module("attention");
    let func = OpBuilder::at_end_of(ctx, module).create_func("attention", vec![], vec![]);
    let body = ctx.body_block(func);

    let (q, k, v, scores, out) = {
        let mut b = OpBuilder::at_block_end(ctx, body);
        let ty = || Type::memref(vec![n, n], Type::f32());
        let q = build_alloc(&mut b, ty(), "Q");
        let k = build_alloc(&mut b, ty(), "K");
        let v = build_alloc(&mut b, ty(), "V");
        let scores = build_alloc(&mut b, ty(), "S");
        let out = build_alloc(&mut b, ty(), "O");
        (q, k, v, scores, out)
    };

    // Fill Q, K, V with distinct constants (stand-ins for loaded activations).
    for (buf, fill, tag) in [(q, 0.5, "initq"), (k, 0.25, "initk"), (v, 1.5, "initv")] {
        let (_, ivs, inner) = build_loop_nest(
            ctx,
            body,
            &[(0, n, &format!("{tag}_i")), (0, n, &format!("{tag}_j"))],
        );
        let mut b = OpBuilder::at_block_end(ctx, inner);
        let c = b.create_constant_float(fill, Type::f32());
        build_store(&mut b, c, buf, &[ivs[0], ivs[1]]);
    }

    // scores[i][j] = sum_k Q[i][k] * K[j][k], scaled by 1/n (softmax stand-in).
    {
        let (_, ivs, inner) =
            build_loop_nest(ctx, body, &[(0, n, "qk_i"), (0, n, "qk_j"), (0, n, "qk_k")]);
        let mut b = OpBuilder::at_block_end(ctx, inner);
        let x = build_load(&mut b, q, &[ivs[0], ivs[2]]);
        let y = build_load(&mut b, k, &[ivs[1], ivs[2]]);
        let prod = arith::build_binary(&mut b, arith::MULF, x, y);
        let scale = b.create_constant_float(1.0 / n as f64, Type::f32());
        let scaled = arith::build_binary(&mut b, arith::MULF, prod, scale);
        let acc = build_load(&mut b, scores, &[ivs[0], ivs[1]]);
        let sum = arith::build_binary(&mut b, arith::ADDF, acc, scaled);
        build_store(&mut b, sum, scores, &[ivs[0], ivs[1]]);
    }

    // out[i][j] = sum_k scores[i][k] * V[k][j].
    {
        let (_, ivs, inner) =
            build_loop_nest(ctx, body, &[(0, n, "av_i"), (0, n, "av_j"), (0, n, "av_k")]);
        let mut b = OpBuilder::at_block_end(ctx, inner);
        let s = build_load(&mut b, scores, &[ivs[0], ivs[2]]);
        let x = build_load(&mut b, v, &[ivs[2], ivs[1]]);
        let prod = arith::build_binary(&mut b, arith::MULF, s, x);
        let acc = build_load(&mut b, out, &[ivs[0], ivs[1]]);
        let sum = arith::build_binary(&mut b, arith::ADDF, acc, prod);
        build_store(&mut b, sum, out, &[ivs[0], ivs[1]]);
    }

    (module, func)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut c1 = Context::new();
        let mut c2 = Context::new();
        let w1 = gen_workload(&mut c1, &mut FuzzRng::new(7));
        let w2 = gen_workload(&mut c2, &mut FuzzRng::new(7));
        assert_eq!(w1.summary, w2.summary);
        assert_eq!(print_op(&c1, w1.module), print_op(&c2, w2.module));
        let mut c3 = Context::new();
        let w3 = gen_workload(&mut c3, &mut FuzzRng::new(8));
        assert!(
            w1.summary != w3.summary || print_op(&c1, w1.module) != print_op(&c3, w3.module),
            "different seeds should produce different workloads"
        );
    }

    #[test]
    fn generated_pipelines_are_registry_valid() {
        let reg = registry();
        for seed in 0..64 {
            let mut rng = FuzzRng::new(seed);
            let text = gen_pipeline(&mut rng);
            Pipeline::parse(&reg, &text)
                .unwrap_or_else(|e| panic!("seed {seed}: invalid pipeline '{text}': {e}"));
        }
    }

    #[test]
    fn generated_modules_pass_the_verifier() {
        for seed in 0..8 {
            let mut ctx = Context::new();
            let w = gen_workload(&mut ctx, &mut FuzzRng::new(seed));
            hida_ir_core::verifier::verify(&ctx, w.module)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn differential_smoke_over_fixed_seeds() {
        // Small in-tree smoke; the CI fuzz stage runs 200 cases via the binary.
        for seed in 0..10 {
            if let Err(f) = run_case(seed) {
                panic!("seed {seed} failed: {}\n{}", f.reason, f.module_text);
            }
        }
    }

    #[test]
    fn chaos_smoke_isolates_every_injected_panic() {
        let mut armed = 0;
        for seed in 0..10 {
            if let Err(f) = run_case_chaos(seed) {
                panic!("chaos seed {seed} failed: {}", f.reason);
            }
            let mut chaos = FuzzRng::new(seed ^ 0x00C4_A05C_4A05_C4A0);
            if chaos.chance(50) {
                armed += 1;
            }
        }
        assert!(
            armed > 0,
            "no seed in 0..10 armed a fault — widen the range"
        );
    }

    #[test]
    fn attention_module_compiles_and_round_trips() {
        let mut ctx = Context::new();
        let (module, func) = build_attention(&mut ctx, 8);
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        let text = print_op(&ctx, module);
        let (pctx, pmodule) = parse_module(&text).unwrap();
        assert_eq!(
            structural_fingerprint(&ctx, module),
            structural_fingerprint(&pctx, pmodule)
        );
        assert_eq!(print_op(&pctx, pmodule), text);
        let reg = registry();
        let mut pipeline = Pipeline::parse(&reg, "construct,lower").unwrap();
        let schedule = pipeline.run(&mut ctx, func).unwrap();
        let contents = interpreted_contents(&ctx, schedule);
        // QKᵀ of constant fills: scores = n · 0.5 · 0.25 / n = 0.125, and
        // out = n · 0.125 · 1.5 = 0.1875 n.
        let out = &contents["O"];
        assert!(out.iter().all(|&x| numbers_match(x, 0.1875 * 8.0)));
    }
}
