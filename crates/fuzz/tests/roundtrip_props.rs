//! Round-trip properties over *fuzz-generated* workloads: whatever the
//! generator emits must survive print -> parse -> print (fingerprint and
//! byte identity), complementing the structural generator in
//! `crates/ir/tests/roundtrip_props.rs`.

use hida_fuzz::{gen_workload, FuzzRng};
use hida_ir_core::printer::print_op;
use hida_ir_core::{parse_module, structural_fingerprint, Context};
use proptest::prelude::*;

proptest! {
    #[test]
    fn fuzz_workloads_round_trip(seed in 0u64..1_000_000) {
        let mut ctx = Context::new();
        let w = gen_workload(&mut ctx, &mut FuzzRng::new(seed));
        let text = print_op(&ctx, w.module);
        let (pctx, pmodule) = parse_module(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{text}"));
        prop_assert_eq!(
            structural_fingerprint(&ctx, w.module),
            structural_fingerprint(&pctx, pmodule),
            "seed {}: fingerprint drift\n{}",
            seed,
            text
        );
        prop_assert_eq!(print_op(&pctx, pmodule), text);
    }
}
