//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to a crate registry, so this in-repo shim
//! provides the small subset of criterion's API that the `hida-bench` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark a fixed,
//! small number of iterations and reports the mean wall-clock time per iteration.
//! When the binary is invoked with `--test` (criterion's smoke-test convention)
//! each benchmark runs exactly once. Plain `cargo test` does not execute
//! `harness = false` bench targets at all — CI smoke-tests them with
//! `cargo test --benches -- --test`.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the benchmarked closure and measures it.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing every call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim keeps its own fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim does not enforce a time budget.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut routine);
        self
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (printing nothing extra; provided for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: self.criterion.iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        println!(
            "bench {}/{id}: {:.3} ms/iter ({} iterations)",
            self.name,
            per_iter * 1e3,
            bencher.iterations
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // With `--test` benches run once as a smoke test; normal runs use a few
        // iterations so the printed mean is meaningful without being slow.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iterations: if test_mode { 1 } else { 3 },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut routine = routine;
        let group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_string(),
        };
        group.run(&id.to_string(), &mut routine);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100).sum::<i64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn shim_api_round_trips() {
        let mut criterion = Criterion { iterations: 2 };
        sample_bench(&mut criterion);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("atax").to_string(), "atax");
        assert_eq!(black_box(5), 5);
    }
}
