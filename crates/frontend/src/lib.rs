//! Front-ends of the HIDA reproduction.
//!
//! The original HIDA accepts PyTorch models (through Torch-MLIR) and HLS C++
//! (through Polygeist). This crate plays the same role by constructing the
//! corresponding IR directly:
//!
//! * [`nn`] — a neural-network graph builder plus the model zoo used in the paper's
//!   PyTorch evaluation (LeNet, ResNet-18, MobileNet-V1, ZFNet, VGG-16, Tiny-YOLO,
//!   MLP), lowered to named `linalg`-style layers over tensors,
//! * [`polybench`] — the PolyBench C++ kernels of Table 7 (2mm, 3mm, atax, bicg,
//!   correlation, gesummv, jacobi-2d, mvt, seidel-2d, symm, syr2k), constructed as
//!   explicit affine loop nests over memrefs,
//! * [`listing1`] — the three-node running example of Listing 1, used by Tables 4-6.

pub mod listing1;
pub mod nn;
pub mod polybench;

pub use nn::{build_model, Model};
pub use polybench::{build_kernel, PolybenchKernel};

/// Operation name of the synthetic input source (stands in for the host interface).
pub const INPUT: &str = "hida.input";
/// Operation name of the synthetic output sink (stands in for the host interface).
pub const OUTPUT: &str = "hida.output";
