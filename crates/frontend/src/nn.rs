//! Neural-network front-end and model zoo.
//!
//! Each model is built as a `func.func` whose body is a chain (or DAG, for residual
//! networks) of named linalg-style layers over `i8` tensors — the representation the
//! paper's Torch-MLIR front-end produces after quantization-friendly lowering. The
//! zoo covers every model in Table 8 plus LeNet for the §2 case study.

use crate::{INPUT, OUTPUT};
use hida_dialects::linalg::{build_layer, LinalgOp};
use hida_ir_core::{Attribute, Context, OpBuilder, OpId, Type, ValueId};

/// The neural-network models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// LeNet-5 on 28x28 grayscale images (the §2 case study).
    LeNet,
    /// ResNet-18 on 224x224 RGB images (residual shortcuts).
    ResNet18,
    /// MobileNet-V1 on 224x224 RGB images (depthwise separable convolutions).
    MobileNetV1,
    /// ZFNet on 224x224 RGB images (irregular convolution sizes).
    ZfNet,
    /// VGG-16 on 224x224 RGB images.
    Vgg16,
    /// Tiny-YOLO-v2 on 416x416 RGB images (high-resolution input).
    TinyYolo,
    /// A three-layer fully-connected network on flattened MNIST images.
    Mlp,
}

impl Model {
    /// All models of the Table 8 evaluation plus LeNet.
    pub fn all() -> Vec<Model> {
        vec![
            Model::LeNet,
            Model::ResNet18,
            Model::MobileNetV1,
            Model::ZfNet,
            Model::Vgg16,
            Model::TinyYolo,
            Model::Mlp,
        ]
    }

    /// The models reported in Table 8 (ResNet-18 through MLP).
    pub fn table8() -> Vec<Model> {
        vec![
            Model::ResNet18,
            Model::MobileNetV1,
            Model::ZfNet,
            Model::Vgg16,
            Model::TinyYolo,
            Model::Mlp,
        ]
    }

    /// Canonical lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Model::LeNet => "lenet",
            Model::ResNet18 => "resnet-18",
            Model::MobileNetV1 => "mobilenet",
            Model::ZfNet => "zfnet",
            Model::Vgg16 => "vgg-16",
            Model::TinyYolo => "yolo",
            Model::Mlp => "mlp",
        }
    }

    /// Input tensor shape `[channels, height, width]` (or `[features]` for MLP).
    pub fn input_shape(&self) -> Vec<i64> {
        match self {
            Model::LeNet => vec![1, 28, 28],
            Model::ResNet18 | Model::MobileNetV1 | Model::ZfNet | Model::Vgg16 => {
                vec![3, 224, 224]
            }
            Model::TinyYolo => vec![3, 416, 416],
            Model::Mlp => vec![784],
        }
    }

    /// True when the model graph contains residual shortcut paths.
    pub fn has_shortcuts(&self) -> bool {
        matches!(self, Model::ResNet18)
    }

    /// True when the model uses depthwise convolutions.
    pub fn has_depthwise(&self) -> bool {
        matches!(self, Model::MobileNetV1)
    }
}

/// Incremental builder used by the model definitions below.
struct GraphBuilder<'a> {
    ctx: &'a mut Context,
    func: OpId,
    cur: ValueId,
    layer_index: usize,
}

impl<'a> GraphBuilder<'a> {
    fn new(ctx: &'a mut Context, module: OpId, model: Model) -> Self {
        let func = OpBuilder::at_end_of(ctx, module).create_func(model.name(), vec![], vec![]);
        let input_ty = Type::tensor(model.input_shape(), Type::i8());
        let mut b = OpBuilder::at_end_of(ctx, func);
        let (_, results) = b.create(
            INPUT,
            vec![],
            vec![input_ty],
            vec![("source", Attribute::Str("host".into()))],
        );
        GraphBuilder {
            ctx,
            func,
            cur: results[0],
            layer_index: 0,
        }
    }

    fn apply(&mut self, layer: LinalgOp, inputs: &[ValueId]) -> ValueId {
        self.layer_index += 1;
        let name = format!(
            "{}{}",
            layer.op_name().rsplit('.').next().unwrap(),
            self.layer_index
        );
        let mut b = OpBuilder::at_end_of(self.ctx, self.func);
        build_layer(&mut b, &layer, inputs, &name)
    }

    fn conv(&mut self, out_channels: i64, kernel: i64, stride: i64, padding: i64) -> &mut Self {
        let in_channels = self.cur_shape()[0];
        self.cur = self.apply(
            LinalgOp::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
            },
            &[self.cur],
        );
        self
    }

    fn depthwise(&mut self, kernel: i64, stride: i64, padding: i64) -> &mut Self {
        let channels = self.cur_shape()[0];
        self.cur = self.apply(
            LinalgOp::DepthwiseConv2d {
                channels,
                kernel,
                stride,
                padding,
            },
            &[self.cur],
        );
        self
    }

    fn relu(&mut self) -> &mut Self {
        self.cur = self.apply(LinalgOp::Relu, &[self.cur]);
        self
    }

    fn maxpool(&mut self, kernel: i64, stride: i64) -> &mut Self {
        self.cur = self.apply(LinalgOp::MaxPool2d { kernel, stride }, &[self.cur]);
        self
    }

    fn avgpool(&mut self, kernel: i64, stride: i64) -> &mut Self {
        self.cur = self.apply(LinalgOp::AvgPool2d { kernel, stride }, &[self.cur]);
        self
    }

    fn linear(&mut self, out_features: i64) -> &mut Self {
        let in_features = self.cur_shape().iter().product();
        if self.cur_shape().len() > 1 {
            self.flatten();
        }
        self.cur = self.apply(
            LinalgOp::Linear {
                in_features,
                out_features,
            },
            &[self.cur],
        );
        self
    }

    fn flatten(&mut self) -> &mut Self {
        self.cur = self.apply(LinalgOp::Flatten, &[self.cur]);
        self
    }

    fn add(&mut self, other: ValueId) -> &mut Self {
        self.cur = self.apply(LinalgOp::Add, &[self.cur, other]);
        self
    }

    fn cur_shape(&self) -> Vec<i64> {
        self.ctx
            .value_type(self.cur)
            .shape()
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    fn finish(self) -> OpId {
        let cur = self.cur;
        let mut b = OpBuilder::at_end_of(self.ctx, self.func);
        b.create(OUTPUT, vec![cur], vec![], vec![]);
        self.func
    }
}

/// Builds the given model into `module`, returning the model's `func.func`.
pub fn build_model(ctx: &mut Context, module: OpId, model: Model) -> OpId {
    match model {
        Model::LeNet => build_lenet(ctx, module),
        Model::ResNet18 => build_resnet18(ctx, module),
        Model::MobileNetV1 => build_mobilenet(ctx, module),
        Model::ZfNet => build_zfnet(ctx, module),
        Model::Vgg16 => build_vgg16(ctx, module),
        Model::TinyYolo => build_tiny_yolo(ctx, module),
        Model::Mlp => build_mlp(ctx, module),
    }
}

fn build_lenet(ctx: &mut Context, module: OpId) -> OpId {
    let mut g = GraphBuilder::new(ctx, module, Model::LeNet);
    g.conv(6, 5, 1, 2).relu().maxpool(2, 2);
    g.conv(16, 5, 1, 0).relu().maxpool(2, 2);
    g.conv(120, 5, 1, 0).relu();
    g.linear(84).relu();
    g.linear(10);
    g.finish()
}

fn build_resnet18(ctx: &mut Context, module: OpId) -> OpId {
    let mut g = GraphBuilder::new(ctx, module, Model::ResNet18);
    g.conv(64, 7, 2, 3).relu().maxpool(2, 2);
    // Four stages of two basic blocks each.
    let stage_channels = [64_i64, 128, 256, 512];
    for (stage, &channels) in stage_channels.iter().enumerate() {
        for block in 0..2 {
            let downsample = stage > 0 && block == 0;
            let shortcut = g.cur;
            let stride = if downsample { 2 } else { 1 };
            g.conv(channels, 3, stride, 1).relu();
            g.conv(channels, 3, 1, 1);
            let shortcut = if downsample {
                // Projection shortcut: 1x1 convolution with stride 2.
                let in_channels = g.ctx.value_type(shortcut).shape().unwrap()[0];
                g.apply(
                    LinalgOp::Conv2d {
                        in_channels,
                        out_channels: channels,
                        kernel: 1,
                        stride: 2,
                        padding: 0,
                    },
                    &[shortcut],
                )
            } else {
                shortcut
            };
            g.add(shortcut).relu();
        }
    }
    g.avgpool(7, 7);
    g.linear(1000);
    g.finish()
}

fn build_mobilenet(ctx: &mut Context, module: OpId) -> OpId {
    let mut g = GraphBuilder::new(ctx, module, Model::MobileNetV1);
    g.conv(32, 3, 2, 1).relu();
    // (pointwise output channels, depthwise stride) for the 13 separable blocks.
    let blocks = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for &(out_channels, stride) in &blocks {
        g.depthwise(3, stride, 1).relu();
        g.conv(out_channels, 1, 1, 0).relu();
    }
    g.avgpool(7, 7);
    g.linear(1000);
    g.finish()
}

fn build_zfnet(ctx: &mut Context, module: OpId) -> OpId {
    let mut g = GraphBuilder::new(ctx, module, Model::ZfNet);
    g.conv(96, 7, 2, 1).relu().maxpool(3, 2);
    g.conv(256, 5, 2, 0).relu().maxpool(3, 2);
    g.conv(384, 3, 1, 1).relu();
    g.conv(384, 3, 1, 1).relu();
    g.conv(256, 3, 1, 1).relu().maxpool(3, 2);
    g.linear(4096).relu();
    g.linear(4096).relu();
    g.linear(1000);
    g.finish()
}

fn build_vgg16(ctx: &mut Context, module: OpId) -> OpId {
    let mut g = GraphBuilder::new(ctx, module, Model::Vgg16);
    let stages = [(64_i64, 2_usize), (128, 2), (256, 3), (512, 3), (512, 3)];
    for &(channels, convs) in &stages {
        for _ in 0..convs {
            g.conv(channels, 3, 1, 1).relu();
        }
        g.maxpool(2, 2);
    }
    g.linear(4096).relu();
    g.linear(4096).relu();
    g.linear(1000);
    g.finish()
}

fn build_tiny_yolo(ctx: &mut Context, module: OpId) -> OpId {
    let mut g = GraphBuilder::new(ctx, module, Model::TinyYolo);
    let backbone = [16_i64, 32, 64, 128, 256, 512];
    for (i, &channels) in backbone.iter().enumerate() {
        g.conv(channels, 3, 1, 1).relu();
        // The final pooling layer of tiny-YOLO keeps the spatial size (stride 1).
        let stride = if i == backbone.len() - 1 { 1 } else { 2 };
        g.maxpool(2, stride);
    }
    g.conv(1024, 3, 1, 1).relu();
    g.conv(512, 3, 1, 1).relu();
    g.conv(125, 1, 1, 0);
    g.finish()
}

fn build_mlp(ctx: &mut Context, module: OpId) -> OpId {
    let mut g = GraphBuilder::new(ctx, module, Model::Mlp);
    g.linear(4096).relu();
    g.linear(4096).relu();
    g.linear(1000);
    g.finish()
}

/// Total multiply-accumulate operations per inference of a model (computed from the
/// layer profiles; useful for DSP-efficiency reporting).
pub fn model_macs(ctx: &Context, func: OpId) -> i64 {
    hida_dialects::analysis::profile_body(ctx, func).macs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dialects::linalg;

    fn build(model: Model) -> (Context, OpId) {
        let mut ctx = Context::new();
        let module = ctx.create_module("models");
        let func = build_model(&mut ctx, module, model);
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        (ctx, func)
    }

    #[test]
    fn lenet_structure_matches_the_case_study() {
        let (ctx, func) = build(Model::LeNet);
        let convs = ctx.collect_ops(func, linalg::CONV2D);
        let pools = ctx.collect_ops(func, linalg::MAXPOOL2D);
        let fcs = ctx.collect_ops(func, linalg::LINEAR);
        assert_eq!(convs.len(), 3);
        assert_eq!(pools.len(), 2);
        assert_eq!(fcs.len(), 2);
        // LeNet on 28x28 needs roughly 0.2-0.5 M MACs per image.
        let macs = model_macs(&ctx, func);
        assert!(macs > 100_000 && macs < 5_000_000, "lenet macs = {macs}");
    }

    #[test]
    fn resnet18_has_shortcut_adds_and_correct_mac_scale() {
        let (ctx, func) = build(Model::ResNet18);
        let adds = ctx.collect_ops(func, linalg::ADD);
        assert_eq!(adds.len(), 8, "resnet-18 has 8 residual additions");
        let macs = model_macs(&ctx, func);
        // ResNet-18 is ~1.8 GMACs per 224x224 image.
        assert!(
            macs > 1_500_000_000 && macs < 2_300_000_000,
            "resnet-18 macs = {macs}"
        );
        assert!(Model::ResNet18.has_shortcuts());
    }

    #[test]
    fn mobilenet_uses_depthwise_convolutions() {
        let (ctx, func) = build(Model::MobileNetV1);
        let dw = ctx.collect_ops(func, linalg::DEPTHWISE_CONV2D);
        let pw = ctx.collect_ops(func, linalg::CONV2D);
        assert_eq!(dw.len(), 13);
        assert_eq!(pw.len(), 14); // 13 pointwise + the stem convolution.
        let macs = model_macs(&ctx, func);
        // MobileNet-V1 is ~0.57 GMACs.
        assert!(
            macs > 400_000_000 && macs < 800_000_000,
            "mobilenet macs = {macs}"
        );
        assert!(Model::MobileNetV1.has_depthwise());
    }

    #[test]
    fn vgg16_is_the_heaviest_model() {
        let (ctx_vgg, vgg) = build(Model::Vgg16);
        let vgg_macs = model_macs(&ctx_vgg, vgg);
        // VGG-16 is ~15.5 GMACs.
        assert!(
            vgg_macs > 13_000_000_000 && vgg_macs < 18_000_000_000,
            "vgg macs = {vgg_macs}"
        );
        let (ctx_res, res) = build(Model::ResNet18);
        assert!(vgg_macs > model_macs(&ctx_res, res));
    }

    #[test]
    fn zfnet_and_yolo_and_mlp_build_and_have_expected_layers() {
        let (ctx, zf) = build(Model::ZfNet);
        assert_eq!(ctx.collect_ops(zf, linalg::CONV2D).len(), 5);
        assert_eq!(ctx.collect_ops(zf, linalg::LINEAR).len(), 3);

        let (ctx, yolo) = build(Model::TinyYolo);
        assert_eq!(ctx.collect_ops(yolo, linalg::CONV2D).len(), 9);
        assert_eq!(ctx.collect_ops(yolo, linalg::MAXPOOL2D).len(), 6);

        let (ctx, mlp) = build(Model::Mlp);
        assert_eq!(ctx.collect_ops(mlp, linalg::LINEAR).len(), 3);
        assert!(ctx.collect_ops(mlp, linalg::CONV2D).is_empty());
        let macs = model_macs(&ctx, mlp);
        assert!(macs > 20_000_000 && macs < 30_000_000, "mlp macs = {macs}");
    }

    #[test]
    fn every_model_builds_and_verifies() {
        for model in Model::all() {
            let (ctx, func) = build(model);
            assert!(!ctx.body_ops(func).is_empty(), "{} is empty", model.name());
            assert!(model_macs(&ctx, func) > 0 || model == Model::Mlp);
            assert!(!model.name().is_empty());
            assert!(!model.input_shape().is_empty());
        }
        assert_eq!(Model::table8().len(), 6);
    }
}
