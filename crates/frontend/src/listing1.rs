//! The running example of Listing 1 (paper §6.5).
//!
//! Three loop nests communicate through arrays `A` and `B`:
//!
//! * Node0 writes `A[32][16]` with loops `(i, k)`,
//! * Node1 writes `B[16][16]` with loops `(k, j)`,
//! * Node2 reads `A[i*2][k]` and `B[k][j]` and accumulates into `C[16][16]`
//!   with loops `(i, j, k)`.
//!
//! Tables 4, 5 and 6 of the paper report the connection maps, parallelization and
//! array-partition decisions HIDA makes for this example; the benchmark harness and
//! the hida-opt tests regenerate them from the IR built here.

use hida_dialects::arith;
use hida_dialects::loops::build_loop_nest;
use hida_dialects::memory::{build_alloc, build_apply, build_load, build_store};
use hida_ir_core::{Context, OpBuilder, OpId, Type, ValueId};

/// Handles to the pieces of the Listing 1 function.
#[derive(Debug, Clone)]
pub struct Listing1 {
    /// The containing function.
    pub func: OpId,
    /// Array `A[32][16]`.
    pub a: ValueId,
    /// Array `B[16][16]`.
    pub b: ValueId,
    /// Array `C[16][16]`.
    pub c: ValueId,
    /// The outermost loop of Node0 (writes `A`).
    pub node0: OpId,
    /// The outermost loop of Node1 (writes `B`).
    pub node1: OpId,
    /// The outermost loop of Node2 (computes `C`).
    pub node2: OpId,
}

/// Builds Listing 1 into `module` and returns handles to its components.
pub fn build_listing1(ctx: &mut Context, module: OpId) -> Listing1 {
    let func = OpBuilder::at_end_of(ctx, module).create_func("listing1", vec![], vec![]);
    let body = ctx.body_block(func);

    let (a, b, c) = {
        let mut bld = OpBuilder::at_block_end(ctx, body);
        let a = build_alloc(&mut bld, Type::memref(vec![32, 16], Type::f32()), "A");
        let b = build_alloc(&mut bld, Type::memref(vec![16, 16], Type::f32()), "B");
        let c = build_alloc(&mut bld, Type::memref(vec![16, 16], Type::f32()), "C");
        (a, b, c)
    };

    // Node0: for i in 0..32, k in 0..16: A[i][k] = i + k (a stand-in load).
    let (n0_loops, n0_ivs, n0_inner) = build_loop_nest(ctx, body, &[(0, 32, "i"), (0, 16, "k")]);
    {
        let mut bld = OpBuilder::at_block_end(ctx, n0_inner);
        let value = bld.create_constant_float(1.0, Type::f32());
        build_store(&mut bld, value, a, &[n0_ivs[0], n0_ivs[1]]);
    }

    // Node1: for k in 0..16, j in 0..16: B[k][j] = ...
    let (n1_loops, n1_ivs, n1_inner) = build_loop_nest(ctx, body, &[(0, 16, "k"), (0, 16, "j")]);
    {
        let mut bld = OpBuilder::at_block_end(ctx, n1_inner);
        let value = bld.create_constant_float(2.0, Type::f32());
        build_store(&mut bld, value, b, &[n1_ivs[0], n1_ivs[1]]);
    }

    // Node2: for i, j, k in 0..16: C[i][j] += A[i*2][k] * B[k][j].
    let (n2_loops, n2_ivs, n2_inner) =
        build_loop_nest(ctx, body, &[(0, 16, "i"), (0, 16, "j"), (0, 16, "k")]);
    {
        let mut bld = OpBuilder::at_block_end(ctx, n2_inner);
        let i2 = build_apply(&mut bld, n2_ivs[0], 2, 0);
        let a_val = build_load(&mut bld, a, &[i2, n2_ivs[2]]);
        let b_val = build_load(&mut bld, b, &[n2_ivs[2], n2_ivs[1]]);
        let prod = arith::build_binary(&mut bld, arith::MULF, a_val, b_val);
        let c_val = build_load(&mut bld, c, &[n2_ivs[0], n2_ivs[1]]);
        let sum = arith::build_binary(&mut bld, arith::ADDF, c_val, prod);
        build_store(&mut bld, sum, c, &[n2_ivs[0], n2_ivs[1]]);
    }

    Listing1 {
        func,
        a,
        b,
        c,
        node0: n0_loops[0],
        node1: n1_loops[0],
        node2: n2_loops[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dialects::analysis::profile_body;
    use hida_dialects::loops::ForOp;

    #[test]
    fn listing1_builds_three_top_level_nests() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let l1 = build_listing1(&mut ctx, module);
        hida_ir_core::verifier::verify(&ctx, module).unwrap();
        let top = hida_dialects::loops::top_level_loops(&ctx, l1.func);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].id(), l1.node0);
        assert_eq!(top[2].id(), l1.node2);
        assert_eq!(ForOp(l1.node0).trip_count(&ctx), 32);
    }

    #[test]
    fn listing1_intensities_match_table5() {
        // Table 5: intensity(Node0) = 512, intensity(Node1) = 256, intensity(Node2) = 4096.
        // The paper counts the dominant (MAC/store) operation per innermost iteration.
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let l1 = build_listing1(&mut ctx, module);
        let p0 = profile_body(&ctx, hida_dialects::loops::ForOp(l1.node0).id());
        let p2 = profile_body(&ctx, l1.node2);
        // Node0 iterates 32x16 = 512 times; Node2 16^3 = 4096 MACs.
        let _ = p0;
        assert_eq!(
            hida_dialects::loops::band_trip_count(
                &ctx,
                &hida_dialects::loops::loop_band(&ctx, l1.node0)
            ),
            512
        );
        assert_eq!(
            hida_dialects::loops::band_trip_count(
                &ctx,
                &hida_dialects::loops::loop_band(&ctx, l1.node1)
            ),
            256
        );
        assert_eq!(profile_body(&ctx, l1.node2).macs, 4096);
        let _ = p2;
    }
}
