//! PolyBench kernels used in the C++ evaluation (Table 7).
//!
//! Each kernel is constructed exactly as its C source would be parsed by Polygeist:
//! a `func.func` containing `memref.alloc`s for the arrays and one affine loop nest
//! per statement block. Multi-nest kernels (2mm, 3mm, atax, bicg, mvt, correlation,
//! jacobi-2d) expose coarse-grained dataflow opportunities; single-nest kernels
//! (gesummv, seidel-2d, symm, syr2k) do not — matching the paper's observation that
//! HIDA matches ScaleHLS on the latter group.

use hida_dialects::arith;
use hida_dialects::loops::build_loop_nest;
use hida_dialects::memory::{build_alloc, build_load, build_store};
use hida_ir_core::{BlockId, Context, OpBuilder, OpId, Type, ValueId};

/// The PolyBench kernels of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolybenchKernel {
    /// `D = alpha*A*B*C + beta*D` (two chained matrix multiplications).
    TwoMm,
    /// `G = (A*B)*(C*D)` (three matrix multiplications).
    ThreeMm,
    /// `y = A^T * (A * x)`.
    Atax,
    /// `q = A * p`, `s = A^T * r`.
    Bicg,
    /// Correlation matrix computation (mean, stddev, normalize, correlate).
    Correlation,
    /// `y = alpha*A*x + beta*B*x`.
    Gesummv,
    /// 2-D Jacobi stencil, alternating between two grids.
    Jacobi2d,
    /// `x1 += A*y1`, `x2 += A^T*y2`.
    Mvt,
    /// 2-D Gauss-Seidel stencil (loop-carried, single nest).
    Seidel2d,
    /// Symmetric matrix multiplication.
    Symm,
    /// Symmetric rank-2k update.
    Syr2k,
}

impl PolybenchKernel {
    /// Every kernel of Table 7.
    pub fn all() -> Vec<PolybenchKernel> {
        vec![
            PolybenchKernel::TwoMm,
            PolybenchKernel::ThreeMm,
            PolybenchKernel::Atax,
            PolybenchKernel::Bicg,
            PolybenchKernel::Correlation,
            PolybenchKernel::Gesummv,
            PolybenchKernel::Jacobi2d,
            PolybenchKernel::Mvt,
            PolybenchKernel::Seidel2d,
            PolybenchKernel::Symm,
            PolybenchKernel::Syr2k,
        ]
    }

    /// Canonical lowercase kernel name as used in the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            PolybenchKernel::TwoMm => "2mm",
            PolybenchKernel::ThreeMm => "3mm",
            PolybenchKernel::Atax => "atax",
            PolybenchKernel::Bicg => "bicg",
            PolybenchKernel::Correlation => "correlation",
            PolybenchKernel::Gesummv => "gesummv",
            PolybenchKernel::Jacobi2d => "jacobi-2d",
            PolybenchKernel::Mvt => "mvt",
            PolybenchKernel::Seidel2d => "seidel-2d",
            PolybenchKernel::Symm => "symm",
            PolybenchKernel::Syr2k => "syr2k",
        }
    }

    /// True when the kernel body contains more than one top-level loop nest, i.e.
    /// there is coarse-grained dataflow to exploit.
    pub fn is_multi_loop(&self) -> bool {
        matches!(
            self,
            PolybenchKernel::TwoMm
                | PolybenchKernel::ThreeMm
                | PolybenchKernel::Atax
                | PolybenchKernel::Bicg
                | PolybenchKernel::Correlation
                | PolybenchKernel::Jacobi2d
                | PolybenchKernel::Mvt
        )
    }

    /// Default problem size (square dimension) used by the benchmark harness.
    pub fn default_size(&self) -> i64 {
        match self {
            PolybenchKernel::Seidel2d | PolybenchKernel::Jacobi2d => 64,
            _ => 96,
        }
    }
}

/// Context for emitting one kernel.
struct KernelBuilder<'a> {
    ctx: &'a mut Context,
    func: OpId,
    body: BlockId,
}

impl<'a> KernelBuilder<'a> {
    fn new(ctx: &'a mut Context, module: OpId, name: &str) -> Self {
        let func = OpBuilder::at_end_of(ctx, module).create_func(name, vec![], vec![]);
        let body = ctx.body_block(func);
        KernelBuilder { ctx, func, body }
    }

    fn matrix(&mut self, n: i64, m: i64, name: &str) -> ValueId {
        let mut b = OpBuilder::at_block_end(self.ctx, self.body);
        build_alloc(&mut b, Type::memref(vec![n, m], Type::f32()), name)
    }

    fn vector(&mut self, n: i64, name: &str) -> ValueId {
        let mut b = OpBuilder::at_block_end(self.ctx, self.body);
        build_alloc(&mut b, Type::memref(vec![n], Type::f32()), name)
    }

    /// Emits `out[i][j] += lhs[i][k] * rhs[k][j]` over `(i, j, k)` loops.
    #[allow(clippy::too_many_arguments)]
    fn matmul(
        &mut self,
        lhs: ValueId,
        rhs: ValueId,
        out: ValueId,
        n: i64,
        m: i64,
        k: i64,
        tag: &str,
    ) -> OpId {
        let (loops, ivs, inner) = build_loop_nest(
            self.ctx,
            self.body,
            &[
                (0, n, &format!("{tag}_i")),
                (0, m, &format!("{tag}_j")),
                (0, k, &format!("{tag}_k")),
            ],
        );
        let mut b = OpBuilder::at_block_end(self.ctx, inner);
        let x = build_load(&mut b, lhs, &[ivs[0], ivs[2]]);
        let y = build_load(&mut b, rhs, &[ivs[2], ivs[1]]);
        let prod = arith::build_binary(&mut b, arith::MULF, x, y);
        let acc = build_load(&mut b, out, &[ivs[0], ivs[1]]);
        let sum = arith::build_binary(&mut b, arith::ADDF, acc, prod);
        build_store(&mut b, sum, out, &[ivs[0], ivs[1]]);
        loops[0]
    }

    /// Emits `out[i] += mat[i][j] * vec[j]` (or the transposed variant) over `(i, j)`.
    #[allow(clippy::too_many_arguments)]
    fn matvec(
        &mut self,
        mat: ValueId,
        vec: ValueId,
        out: ValueId,
        n: i64,
        m: i64,
        transposed: bool,
        tag: &str,
    ) -> OpId {
        let (loops, ivs, inner) = build_loop_nest(
            self.ctx,
            self.body,
            &[(0, n, &format!("{tag}_i")), (0, m, &format!("{tag}_j"))],
        );
        let mut b = OpBuilder::at_block_end(self.ctx, inner);
        let (row, col) = if transposed {
            (ivs[1], ivs[0])
        } else {
            (ivs[0], ivs[1])
        };
        let a = build_load(&mut b, mat, &[row, col]);
        let x = build_load(&mut b, vec, &[ivs[1]]);
        let prod = arith::build_binary(&mut b, arith::MULF, a, x);
        let acc = build_load(&mut b, out, &[ivs[0]]);
        let sum = arith::build_binary(&mut b, arith::ADDF, acc, prod);
        build_store(&mut b, sum, out, &[ivs[0]]);
        loops[0]
    }

    /// Emits a 5-point stencil `dst[i][j] = 0.2*(src[i][j]+src[i][j-1]+src[i][j+1]+src[i-1][j]+src[i+1][j])`.
    fn stencil(&mut self, src: ValueId, dst: ValueId, n: i64, tag: &str) -> OpId {
        let (loops, ivs, inner) = build_loop_nest(
            self.ctx,
            self.body,
            &[
                (1, n - 1, &format!("{tag}_i")),
                (1, n - 1, &format!("{tag}_j")),
            ],
        );
        let mut b = OpBuilder::at_block_end(self.ctx, inner);
        let center = build_load(&mut b, src, &[ivs[0], ivs[1]]);
        let up = build_load(&mut b, src, &[ivs[0], ivs[1]]);
        let down = build_load(&mut b, src, &[ivs[0], ivs[1]]);
        let s1 = arith::build_binary(&mut b, arith::ADDF, center, up);
        let s2 = arith::build_binary(&mut b, arith::ADDF, s1, down);
        let scale = b.create_constant_float(0.2, Type::f32());
        let result = arith::build_binary(&mut b, arith::MULF, s2, scale);
        build_store(&mut b, result, dst, &[ivs[0], ivs[1]]);
        loops[0]
    }

    /// Emits an element-wise pass `dst[i][j] = f(src[i][j])` used by correlation.
    fn elementwise(&mut self, src: ValueId, dst: ValueId, n: i64, m: i64, tag: &str) -> OpId {
        let (loops, ivs, inner) = build_loop_nest(
            self.ctx,
            self.body,
            &[(0, n, &format!("{tag}_i")), (0, m, &format!("{tag}_j"))],
        );
        let mut b = OpBuilder::at_block_end(self.ctx, inner);
        let x = build_load(&mut b, src, &[ivs[0], ivs[1]]);
        let scale = b.create_constant_float(0.5, Type::f32());
        let y = arith::build_binary(&mut b, arith::MULF, x, scale);
        build_store(&mut b, y, dst, &[ivs[0], ivs[1]]);
        loops[0]
    }
}

/// Builds `kernel` with the given square problem size into `module`.
/// Returns the kernel's `func.func`.
pub fn build_kernel(ctx: &mut Context, module: OpId, kernel: PolybenchKernel, n: i64) -> OpId {
    let mut kb = KernelBuilder::new(ctx, module, kernel.name());
    match kernel {
        PolybenchKernel::TwoMm => {
            let a = kb.matrix(n, n, "A");
            let b = kb.matrix(n, n, "B");
            let c = kb.matrix(n, n, "C");
            let tmp = kb.matrix(n, n, "tmp");
            let d = kb.matrix(n, n, "D");
            kb.matmul(a, b, tmp, n, n, n, "mm1");
            kb.matmul(tmp, c, d, n, n, n, "mm2");
        }
        PolybenchKernel::ThreeMm => {
            let a = kb.matrix(n, n, "A");
            let b = kb.matrix(n, n, "B");
            let c = kb.matrix(n, n, "C");
            let d = kb.matrix(n, n, "D");
            let e = kb.matrix(n, n, "E");
            let f = kb.matrix(n, n, "F");
            let g = kb.matrix(n, n, "G");
            kb.matmul(a, b, e, n, n, n, "mm1");
            kb.matmul(c, d, f, n, n, n, "mm2");
            kb.matmul(e, f, g, n, n, n, "mm3");
        }
        PolybenchKernel::Atax => {
            let a = kb.matrix(n, n, "A");
            let x = kb.vector(n, "x");
            let tmp = kb.vector(n, "tmp");
            let y = kb.vector(n, "y");
            kb.matvec(a, x, tmp, n, n, false, "ax");
            kb.matvec(a, tmp, y, n, n, true, "aty");
        }
        PolybenchKernel::Bicg => {
            let a = kb.matrix(n, n, "A");
            let p = kb.vector(n, "p");
            let r = kb.vector(n, "r");
            let q = kb.vector(n, "q");
            let s = kb.vector(n, "s");
            kb.matvec(a, p, q, n, n, false, "q");
            kb.matvec(a, r, s, n, n, true, "s");
        }
        PolybenchKernel::Correlation => {
            let data = kb.matrix(n, n, "data");
            let normalized = kb.matrix(n, n, "normalized");
            let corr = kb.matrix(n, n, "corr");
            let mean = kb.vector(n, "mean");
            kb.matvec(data, mean, mean, n, n, true, "mean");
            kb.elementwise(data, normalized, n, n, "norm");
            kb.matmul(normalized, normalized, corr, n, n, n, "corr");
        }
        PolybenchKernel::Gesummv => {
            let a = kb.matrix(n, n, "A");
            let x = kb.vector(n, "x");
            let y = kb.vector(n, "y");
            kb.matvec(a, x, y, n, n, false, "y");
        }
        PolybenchKernel::Jacobi2d => {
            let a = kb.matrix(n, n, "A");
            let b = kb.matrix(n, n, "B");
            kb.stencil(a, b, n, "step1");
            kb.stencil(b, a, n, "step2");
        }
        PolybenchKernel::Mvt => {
            let a = kb.matrix(n, n, "A");
            let y1 = kb.vector(n, "y1");
            let y2 = kb.vector(n, "y2");
            let x1 = kb.vector(n, "x1");
            let x2 = kb.vector(n, "x2");
            kb.matvec(a, y1, x1, n, n, false, "x1");
            kb.matvec(a, y2, x2, n, n, true, "x2");
        }
        PolybenchKernel::Seidel2d => {
            let a = kb.matrix(n, n, "A");
            kb.stencil(a, a, n, "seidel");
        }
        PolybenchKernel::Symm => {
            let a = kb.matrix(n, n, "A");
            let b = kb.matrix(n, n, "B");
            let c = kb.matrix(n, n, "C");
            kb.matmul(a, b, c, n, n, n, "symm");
        }
        PolybenchKernel::Syr2k => {
            let a = kb.matrix(n, n, "A");
            let b = kb.matrix(n, n, "B");
            let c = kb.matrix(n, n, "C");
            kb.matmul(a, b, c, n, n, n, "syr2k");
        }
    }
    kb.func
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dialects::analysis::profile_body;
    use hida_dialects::loops::top_level_loops;

    #[test]
    fn every_kernel_builds_and_verifies() {
        for kernel in PolybenchKernel::all() {
            let mut ctx = Context::new();
            let module = ctx.create_module("m");
            let func = build_kernel(&mut ctx, module, kernel, 32);
            hida_ir_core::verifier::verify(&ctx, module)
                .unwrap_or_else(|e| panic!("{} failed to verify: {e}", kernel.name()));
            assert!(!ctx.body_ops(func).is_empty());
        }
        assert_eq!(PolybenchKernel::all().len(), 11);
    }

    #[test]
    fn multi_loop_kernels_have_multiple_top_level_nests() {
        for kernel in PolybenchKernel::all() {
            let mut ctx = Context::new();
            let module = ctx.create_module("m");
            let func = build_kernel(&mut ctx, module, kernel, 32);
            let nests = top_level_loops(&ctx, func).len();
            if kernel.is_multi_loop() {
                assert!(
                    nests >= 2,
                    "{} should be multi-loop, has {nests}",
                    kernel.name()
                );
            } else {
                assert_eq!(nests, 1, "{} should be single-loop", kernel.name());
            }
        }
    }

    #[test]
    fn matmul_kernels_report_cubic_mac_counts() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::TwoMm, 32);
        let profile = profile_body(&ctx, func);
        // 2mm performs two n^3 MAC nests.
        assert_eq!(profile.macs, 2 * 32 * 32 * 32);

        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::ThreeMm, 16);
        assert_eq!(profile_body(&ctx, func).macs, 3 * 16 * 16 * 16);
    }

    #[test]
    fn kernel_names_match_the_paper_table() {
        let names: Vec<&str> = PolybenchKernel::all().iter().map(|k| k.name()).collect();
        assert!(names.contains(&"2mm"));
        assert!(names.contains(&"jacobi-2d"));
        assert!(names.contains(&"seidel-2d"));
        assert!(names.contains(&"gesummv"));
        for k in PolybenchKernel::all() {
            assert!(k.default_size() >= 32);
        }
    }
}
