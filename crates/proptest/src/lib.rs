//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to a crate registry, so this shim provides
//! the subset of proptest used by the repository's property-based tests: range and
//! tuple strategies, [`collection::vec`], [`sample::select`], and the [`proptest!`],
//! [`prop_assume!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Sampling is driven by a deterministic xorshift generator with a fixed seed, so
//! every run explores the same [`NUM_CASES`] inputs. That trades proptest's
//! shrinking and adaptive exploration for reproducibility, which is the right fit
//! for CI without third-party dependencies.

use std::ops::Range;

/// Number of sampled cases per property.
pub const NUM_CASES: usize = 64;

/// Deterministic xorshift64* generator used to drive sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the default generator with a fixed seed.
    pub fn default_rng() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A source of sampled values for one property argument.
pub trait Strategy {
    /// The sampled value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "strategy range {}..{} is empty",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )+
    };
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.start < self.size.end,
                "vec size range {}..{} is empty",
                self.size.start,
                self.size.end
            );
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Strategy, TestRng};
}

/// Declares property tests: each `fn` is run [`NUM_CASES`] times with freshly
/// sampled arguments. Attributes (including `#[test]`) and doc comments pass
/// through to the generated zero-argument function.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::default_rng();
                for _ in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // The closure gives `prop_assume!` an early-exit scope.
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> () { $body })();
                }
            }
        )+
    };
}

/// Skips the current sampled case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a property over the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality over the sampled inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_stay_in_bounds(x in -8_i64..8, y in 0_u32..5) {
            prop_assert!((-8..8).contains(&x));
            prop_assert!(y < 5);
        }

        /// Tuple, vec and select strategies compose.
        #[test]
        fn composite_strategies_work(
            pair in (0_i64..10, 0_i64..10),
            v in prop::collection::vec(1_i64..4, 1..5),
            choice in prop::sample::select(vec![8_u32, 16, 32]),
        ) {
            prop_assume!(pair.0 != 9);
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
            prop_assert!([8, 16, 32].contains(&choice));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::default_rng();
        let mut b = TestRng::default_rng();
        for _ in 0..10 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
