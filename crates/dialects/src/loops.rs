//! `affine.for` loop nests.
//!
//! Loops are the control IR of both dataflow levels (Figure 5). Each `affine.for`
//! owns a single-block region whose first block argument is the induction variable,
//! and carries its bounds and step as compile-time attributes — exactly the
//! "structured control flow" representation HIDA analyses and transforms.

use hida_ir_core::{Attribute, Context, OpBuilder, OpId, Operation, Type, ValueId};

/// Operation name of the affine loop.
pub const FOR: &str = "affine.for";
/// Operation name of the affine loop terminator.
pub const FOR_YIELD: &str = "affine.yield";

/// Builds an `affine.for` loop `[lower, upper) step step` at the builder's insertion
/// point. Returns the loop op, its induction variable and its body block.
pub fn build_for(
    builder: &mut OpBuilder<'_>,
    lower: i64,
    upper: i64,
    step: i64,
    name: &str,
) -> (OpId, ValueId, hida_ir_core::BlockId) {
    assert!(step > 0, "loop step must be positive");
    let (op, body, _) = builder.create_with_body(
        FOR,
        vec![],
        vec![],
        vec![
            ("lower_bound", Attribute::Int(lower)),
            ("upper_bound", Attribute::Int(upper)),
            ("step", Attribute::Int(step)),
            ("loop_name", Attribute::Str(name.to_string())),
        ],
        false,
    );
    let iv = builder.context().add_block_arg(body, Type::Index);
    builder.context().set_name_hint(iv, name);
    (op, iv, body)
}

/// Builds a perfect loop nest from `(lower, upper, name)` triples with unit steps.
/// Returns the loop ops (outermost first), the induction variables, and the innermost
/// body block.
pub fn build_loop_nest(
    ctx: &mut Context,
    block: hida_ir_core::BlockId,
    bounds: &[(i64, i64, &str)],
) -> (Vec<OpId>, Vec<ValueId>, hida_ir_core::BlockId) {
    assert!(!bounds.is_empty(), "loop nest needs at least one loop");
    let mut loops = Vec::new();
    let mut ivs = Vec::new();
    let mut insert_block = block;
    for &(lower, upper, name) in bounds {
        let mut builder = OpBuilder::at_block_end(ctx, insert_block);
        let (op, iv, body) = build_for(&mut builder, lower, upper, 1, name);
        loops.push(op);
        ivs.push(iv);
        insert_block = body;
    }
    (loops, ivs, insert_block)
}

/// Typed view over an `affine.for` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForOp(pub OpId);

impl ForOp {
    /// Wraps `op` if it is an `affine.for`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<ForOp> {
        if ctx.op(op).is(FOR) {
            Some(ForOp(op))
        } else {
            None
        }
    }

    /// The underlying operation id.
    pub fn id(self) -> OpId {
        self.0
    }

    /// Lower bound (inclusive).
    pub fn lower_bound(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("lower_bound").unwrap_or(0)
    }

    /// Upper bound (exclusive).
    pub fn upper_bound(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("upper_bound").unwrap_or(0)
    }

    /// Loop step.
    pub fn step(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("step").unwrap_or(1).max(1)
    }

    /// Human-readable loop name (defaults to the empty string).
    pub fn name(self, ctx: &Context) -> String {
        ctx.op(self.0)
            .attr_str("loop_name")
            .unwrap_or("")
            .to_string()
    }

    /// Number of iterations executed by the loop.
    pub fn trip_count(self, ctx: &Context) -> i64 {
        let range = self.upper_bound(ctx) - self.lower_bound(ctx);
        if range <= 0 {
            0
        } else {
            (range + self.step(ctx) - 1) / self.step(ctx)
        }
    }

    /// The induction variable (first block argument of the body).
    pub fn induction_var(self, ctx: &Context) -> ValueId {
        let body = ctx.body_block(self.0);
        ctx.block(body).args[0]
    }

    /// The body block of the loop.
    pub fn body(self, ctx: &Context) -> hida_ir_core::BlockId {
        ctx.body_block(self.0)
    }

    /// Directly nested `affine.for` children in the loop body.
    pub fn child_loops(self, ctx: &Context) -> Vec<ForOp> {
        ctx.body_ops(self.0)
            .into_iter()
            .filter(|&o| ctx.op(o).is(FOR))
            .map(ForOp)
            .collect()
    }

    /// Returns true when the body contains no nested `affine.for`.
    pub fn is_innermost(self, ctx: &Context) -> bool {
        self.child_loops(ctx).is_empty()
    }

    /// Unroll factor annotated on the loop (1 when absent).
    pub fn unroll_factor(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("unroll_factor").unwrap_or(1).max(1)
    }

    /// Sets the unroll factor directive on the loop.
    pub fn set_unroll_factor(self, ctx: &mut Context, factor: i64) {
        ctx.op_mut(self.0).set_attr("unroll_factor", factor.max(1));
    }

    /// Returns true when the loop carries a pipeline directive.
    pub fn is_pipelined(self, ctx: &Context) -> bool {
        ctx.op(self.0).has_flag("pipeline")
    }

    /// Annotates the loop with a pipeline directive and target initiation interval.
    pub fn set_pipeline(self, ctx: &mut Context, ii: i64) {
        ctx.op_mut(self.0).set_attr("pipeline", Attribute::Unit);
        ctx.op_mut(self.0).set_attr("pipeline_ii", ii.max(1));
    }

    /// Target initiation interval of a pipelined loop (1 when unset).
    pub fn pipeline_ii(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("pipeline_ii").unwrap_or(1).max(1)
    }
}

/// Returns the maximal perfect loop band rooted at `outer`: `outer` followed by each
/// single nested loop whose parent body contains no other compute operations.
pub fn loop_band(ctx: &Context, outer: OpId) -> Vec<ForOp> {
    let mut band = Vec::new();
    let mut cur = match ForOp::try_from_op(ctx, outer) {
        Some(f) => f,
        None => return band,
    };
    loop {
        band.push(cur);
        let body_ops: Vec<OpId> = ctx
            .body_ops(cur.0)
            .into_iter()
            .filter(|&o| !ctx.op(o).is(FOR_YIELD))
            .collect();
        if body_ops.len() == 1 {
            if let Some(child) = ForOp::try_from_op(ctx, body_ops[0]) {
                cur = child;
                continue;
            }
        }
        break;
    }
    band
}

/// Returns the `affine.for` ops directly nested in the body of `op` (not inside other
/// loops), in program order.
pub fn top_level_loops(ctx: &Context, op: OpId) -> Vec<ForOp> {
    ctx.body_ops(op)
        .into_iter()
        .filter(|&o| ctx.op(o).is(FOR))
        .map(ForOp)
        .collect()
}

/// Returns every `affine.for` nested anywhere below `op` (pre-order).
pub fn all_loops(ctx: &Context, op: OpId) -> Vec<ForOp> {
    ctx.collect_ops(op, FOR).into_iter().map(ForOp).collect()
}

/// Total iteration count of a loop band (product of trip counts).
pub fn band_trip_count(ctx: &Context, band: &[ForOp]) -> i64 {
    band.iter()
        .map(|l| l.trip_count(ctx))
        .product::<i64>()
        .max(1)
}

/// Creates a detached `affine.for` with the given bounds; used by transforms that
/// splice loops into existing structures.
pub fn create_detached_for(
    ctx: &mut Context,
    lower: i64,
    upper: i64,
    step: i64,
    name: &str,
) -> (OpId, ValueId) {
    let mut op = Operation::new(FOR);
    op.set_attr("lower_bound", lower);
    op.set_attr("upper_bound", upper);
    op.set_attr("step", step);
    op.set_attr("loop_name", name);
    let id = ctx.create_op(op);
    let region = ctx.create_region(id);
    let body = ctx.create_block(region);
    let iv = ctx.add_block_arg(body, Type::Index);
    ctx.set_name_hint(iv, name);
    (id, iv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_func(ctx: &mut Context) -> OpId {
        let module = ctx.create_module("m");
        OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![])
    }

    #[test]
    fn build_for_creates_iv_and_bounds() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let body = ctx.body_block(func);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let (op, iv, _) = build_for(&mut b, 0, 16, 1, "i");
        let f = ForOp(op);
        assert_eq!(f.lower_bound(&ctx), 0);
        assert_eq!(f.upper_bound(&ctx), 16);
        assert_eq!(f.step(&ctx), 1);
        assert_eq!(f.trip_count(&ctx), 16);
        assert_eq!(f.induction_var(&ctx), iv);
        assert_eq!(f.name(&ctx), "i");
        assert_eq!(ctx.value_type(iv), &Type::Index);
        assert!(f.is_innermost(&ctx));
    }

    #[test]
    fn trip_count_rounds_up_with_strides() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let body = ctx.body_block(func);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let (op, _, _) = build_for(&mut b, 0, 10, 3, "i");
        assert_eq!(ForOp(op).trip_count(&ctx), 4);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let (empty, _, _) = build_for(&mut b, 5, 5, 1, "j");
        assert_eq!(ForOp(empty).trip_count(&ctx), 0);
    }

    #[test]
    fn loop_nest_and_band_detection() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let body = ctx.body_block(func);
        let (loops, ivs, innermost) =
            build_loop_nest(&mut ctx, body, &[(0, 16, "i"), (0, 16, "j"), (0, 16, "k")]);
        assert_eq!(loops.len(), 3);
        assert_eq!(ivs.len(), 3);
        // Add a payload op in the innermost body so the band ends there.
        OpBuilder::at_block_end(&mut ctx, innermost).create_constant_int(0, Type::i32());

        let band = loop_band(&ctx, loops[0]);
        assert_eq!(band.len(), 3);
        assert_eq!(band_trip_count(&ctx, &band), 16 * 16 * 16);
        assert_eq!(band[0].child_loops(&ctx).len(), 1);
        assert!(band[2].is_innermost(&ctx));

        assert_eq!(top_level_loops(&ctx, func).len(), 1);
        assert_eq!(all_loops(&ctx, func).len(), 3);
    }

    #[test]
    fn band_stops_at_imperfect_nesting() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let body = ctx.body_block(func);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let (outer, _, outer_body) = build_for(&mut b, 0, 8, 1, "i");
        // Two children: a constant and a loop -> the band is only the outer loop.
        OpBuilder::at_block_end(&mut ctx, outer_body).create_constant_int(1, Type::i32());
        let mut b2 = OpBuilder::at_block_end(&mut ctx, outer_body);
        build_for(&mut b2, 0, 8, 1, "j");
        let band = loop_band(&ctx, outer);
        assert_eq!(band.len(), 1);
    }

    #[test]
    fn directives_round_trip() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let body = ctx.body_block(func);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let (op, _, _) = build_for(&mut b, 0, 32, 1, "i");
        let f = ForOp(op);
        assert_eq!(f.unroll_factor(&ctx), 1);
        assert!(!f.is_pipelined(&ctx));
        f.set_unroll_factor(&mut ctx, 4);
        f.set_pipeline(&mut ctx, 2);
        assert_eq!(f.unroll_factor(&ctx), 4);
        assert!(f.is_pipelined(&ctx));
        assert_eq!(f.pipeline_ii(&ctx), 2);
    }

    #[test]
    fn try_from_op_rejects_non_loops() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        assert!(ForOp::try_from_op(&ctx, func).is_none());
    }
}
