//! Compute-profile extraction.
//!
//! HIDA-OPT's structural optimizations need three facts about every dataflow node
//! (paper §6.5): its *computational intensity* (number of operations), the *loop
//! dimensions* it iterates, and the *memory access patterns* through which it touches
//! each buffer. This module extracts a [`ComputeProfile`] from an op's body whether
//! that body is an explicit affine loop nest (C++ front-end) or a named linalg-style
//! layer (PyTorch front-end).

use crate::arith::{classify, OpClass};
use crate::linalg::LinalgOp;
use crate::loops::{self, ForOp};
use crate::memory;
use hida_ir_core::{Context, OpId, ValueId};

/// Memory effect of a node on one buffer (paper §5.2: nodes carry explicit I/O
/// memory effect information).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEffect {
    /// The buffer is only read.
    Read,
    /// The buffer is only written.
    Write,
    /// The buffer is both read and written.
    ReadWrite,
}

impl MemEffect {
    /// Combines two effects on the same buffer.
    pub fn merge(self, other: MemEffect) -> MemEffect {
        if self == other {
            self
        } else {
            MemEffect::ReadWrite
        }
    }

    /// Returns true when the effect includes a write.
    pub fn writes(self) -> bool {
        matches!(self, MemEffect::Write | MemEffect::ReadWrite)
    }

    /// Returns true when the effect includes a read.
    pub fn reads(self) -> bool {
        matches!(self, MemEffect::Read | MemEffect::ReadWrite)
    }
}

/// How each dimension of a buffer is indexed by the node's loop dimensions:
/// `Some((loop_index, stride))` or `None` when no single loop drives the dimension.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPattern {
    /// One entry per buffer dimension.
    pub dims: Vec<Option<(usize, i64)>>,
}

impl AccessPattern {
    /// An access pattern with no analyzable dimensions.
    pub fn unknown(rank: usize) -> Self {
        AccessPattern {
            dims: vec![None; rank],
        }
    }
}

/// A node's aggregate access to one buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferAccess {
    /// The accessed buffer (memref or tensor SSA value).
    pub buffer: ValueId,
    /// Combined memory effect over all accesses.
    pub effect: MemEffect,
    /// Representative access pattern (the write pattern when the node writes the
    /// buffer, otherwise the first read pattern).
    pub pattern: AccessPattern,
}

/// One loop dimension of a node's (virtual) loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileLoopDim {
    /// Dimension name.
    pub name: String,
    /// Trip count.
    pub trip: i64,
    /// Whether the dimension is a reduction dimension.
    pub reduction: bool,
}

/// The complete analysis result for one node/task body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComputeProfile {
    /// Loop dimensions, outermost first.
    pub loop_dims: Vec<ProfileLoopDim>,
    /// Buffer accesses (one entry per distinct buffer).
    pub accesses: Vec<BufferAccess>,
    /// Total scalar operations executed by the node ("intensity", §6.5).
    pub intensity: i64,
    /// Total multiply-accumulate operations.
    pub macs: i64,
    /// Multiplications per innermost iteration.
    pub muls_per_iter: i64,
    /// Additions/comparisons per innermost iteration.
    pub adds_per_iter: i64,
    /// Divisions/square roots per innermost iteration.
    pub divs_per_iter: i64,
    /// Memory operations per innermost iteration.
    pub mem_per_iter: i64,
    /// Weight parameters held by named layers in the body.
    pub weight_params: i64,
}

impl ComputeProfile {
    /// Product of the loop trip counts (total innermost iterations).
    pub fn total_iterations(&self) -> i64 {
        self.loop_dims
            .iter()
            .map(|d| d.trip)
            .product::<i64>()
            .max(1)
    }

    /// Buffers read (but not only written) by the node.
    pub fn read_buffers(&self) -> Vec<ValueId> {
        self.accesses
            .iter()
            .filter(|a| a.effect.reads())
            .map(|a| a.buffer)
            .collect()
    }

    /// Buffers written by the node.
    pub fn written_buffers(&self) -> Vec<ValueId> {
        self.accesses
            .iter()
            .filter(|a| a.effect.writes())
            .map(|a| a.buffer)
            .collect()
    }

    /// Returns the access record for `buffer`, if the node touches it.
    pub fn access_of(&self, buffer: ValueId) -> Option<&BufferAccess> {
        self.accesses.iter().find(|a| a.buffer == buffer)
    }

    fn record_access(&mut self, buffer: ValueId, effect: MemEffect, pattern: AccessPattern) {
        if let Some(existing) = self.accesses.iter_mut().find(|a| a.buffer == buffer) {
            // Writes define the producer-side layout, so prefer a write pattern.
            if effect.writes() && !existing.effect.writes() {
                existing.pattern = pattern;
            }
            existing.effect = existing.effect.merge(effect);
        } else {
            self.accesses.push(BufferAccess {
                buffer,
                effect,
                pattern,
            });
        }
    }
}

/// [`ComputeProfile`] is a cacheable [`Analysis`](hida_ir_core::analysis::Analysis):
/// optimizer passes fetch it through the
/// [`AnalysisManager`](hida_ir_core::analysis::AnalysisManager)
/// (`analyses.get::<ComputeProfile>(ctx, op)`) so the expensive IR walk runs once
/// per (op, IR generation) instead of once per query. [`profile_body`] remains the
/// raw, uncached computation.
impl hida_ir_core::analysis::Analysis for ComputeProfile {
    const NAME: &'static str = "compute-profile";

    fn compute(ctx: &Context, root: OpId) -> Self {
        profile_body(ctx, root)
    }
}

/// Extracts the compute profile of the body of `op` (a task, node, or function).
///
/// Bodies made of named linalg layers and bodies made of explicit affine loop nests
/// are both supported; a body mixing the two uses the dominant named layer for the
/// loop dimensions.
///
/// This is the raw computation behind the cached analysis; pass code should
/// query `analyses.get::<ComputeProfile>(ctx, op)` instead so repeated requests
/// hit the [`AnalysisManager`](hida_ir_core::analysis::AnalysisManager) cache.
pub fn profile_body(ctx: &Context, op: OpId) -> ComputeProfile {
    let mut profile = ComputeProfile::default();

    // Named layers anywhere in the body.
    let mut dominant: Option<(i64, OpId, LinalgOp)> = None;
    for nested in hida_ir_core::walk::collect_preorder(ctx, op) {
        if nested == op {
            continue;
        }
        if let Some(layer) = LinalgOp::from_op(ctx, nested) {
            let input_shape = input_shape_of(ctx, nested);
            let lp = layer.profile(&input_shape);
            let work = 2 * lp.macs + lp.other_ops;
            profile.intensity += work;
            profile.macs += lp.macs;
            profile.weight_params += lp.weight_params;
            if dominant.as_ref().map(|(w, _, _)| work > *w).unwrap_or(true) {
                dominant = Some((work, nested, layer));
            }
        }
    }

    if let Some((_, dominant_op, layer)) = dominant {
        let input_shape = input_shape_of(ctx, dominant_op);
        let lp = layer.profile(&input_shape);
        profile.loop_dims = lp
            .loop_dims
            .iter()
            .map(|d| ProfileLoopDim {
                name: d.name.clone(),
                trip: d.trip,
                reduction: d.reduction,
            })
            .collect();
        profile.muls_per_iter = if lp.macs > 0 { 1 } else { 0 };
        profile.adds_per_iter = 1;
        profile.mem_per_iter = 2;
        // Record accesses for every named layer (patterns only for the dominant one).
        for nested in hida_ir_core::walk::collect_preorder(ctx, op) {
            if nested == op {
                continue;
            }
            if let Some(l) = LinalgOp::from_op(ctx, nested) {
                let shape = input_shape_of(ctx, nested);
                let lp_nested = l.profile(&shape);
                record_linalg_accesses(
                    ctx,
                    nested,
                    &lp_nested,
                    nested == dominant_op,
                    &mut profile,
                );
            }
        }
        return profile;
    }

    // Explicit affine loop nests. When `op` is itself an `affine.for` (e.g. one of
    // the outermost nests of Listing 1), the band starts at `op` and its own trip
    // count multiplies the work performed by the body.
    let (band, base_multiplier): (Vec<ForOp>, i64) = if ctx.op(op).is(loops::FOR) {
        let band = loops::loop_band(ctx, op);
        let mult = ForOp(op).trip_count(ctx).max(1);
        (band, mult)
    } else {
        let top = loops::top_level_loops(ctx, op);
        let band = match top.first() {
            Some(&outer) => loops::loop_band(ctx, outer.id()),
            None => Vec::new(),
        };
        (band, 1)
    };
    profile.loop_dims = band
        .iter()
        .map(|l| ProfileLoopDim {
            name: l.name(ctx),
            trip: l.trip_count(ctx),
            reduction: false,
        })
        .collect();

    // Intensity and per-iteration op counts + accesses.
    accumulate_region(ctx, op, base_multiplier, &band, &mut profile);

    // Reduction detection for explicit loop nests: a loop is a reduction dimension
    // when some read-write buffer (an accumulator) is indexed without it — unrolling
    // such a loop requires a reduction tree, so the parallelizer avoids it.
    let rw_patterns: Vec<Vec<Option<(usize, i64)>>> = profile
        .accesses
        .iter()
        .filter(|a| a.effect == MemEffect::ReadWrite)
        .map(|a| a.pattern.dims.clone())
        .collect();
    if !rw_patterns.is_empty() {
        for (loop_idx, dim) in profile.loop_dims.iter_mut().enumerate() {
            let referenced_everywhere = rw_patterns.iter().all(|dims| {
                dims.iter()
                    .any(|d| matches!(d, Some((l, _)) if *l == loop_idx))
            });
            if !referenced_everywhere {
                dim.reduction = true;
            }
        }
    }
    profile
}

fn input_shape_of(ctx: &Context, op: OpId) -> Vec<i64> {
    ctx.op(op)
        .operands
        .first()
        .and_then(|&v| ctx.value_type(v).shape().map(|s| s.to_vec()))
        .unwrap_or_default()
}

fn record_linalg_accesses(
    ctx: &Context,
    op: OpId,
    lp: &crate::linalg::LayerProfile,
    use_patterns: bool,
    profile: &mut ComputeProfile,
) {
    let operands = ctx.op(op).operands.clone();
    // Inputs: tensor operands that are shaped values. In destination-passing style
    // (structural level), the final operand is the output buffer.
    let has_result = !ctx.op(op).results.is_empty();
    let num_inputs = if has_result {
        operands.len()
    } else {
        operands.len().saturating_sub(1)
    };
    for (i, &operand) in operands.iter().take(num_inputs).enumerate() {
        if ctx.value_type(operand).shape().is_none() {
            continue;
        }
        let rank = ctx
            .value_type(operand)
            .shape()
            .map(|s| s.len())
            .unwrap_or(0);
        let pattern = if use_patterns && i < lp.input_accesses.len() {
            AccessPattern {
                dims: lp.input_accesses[i].clone(),
            }
        } else {
            AccessPattern::unknown(rank)
        };
        profile.record_access(operand, MemEffect::Read, pattern);
    }
    // Output: either the op result (tensor level) or the last operand (memref level).
    let output = if has_result {
        Some(ctx.op(op).results[0])
    } else {
        operands.last().copied()
    };
    if let Some(out) = output {
        let rank = ctx.value_type(out).shape().map(|s| s.len()).unwrap_or(0);
        let pattern = if use_patterns {
            AccessPattern {
                dims: lp.result_access.clone(),
            }
        } else {
            AccessPattern::unknown(rank)
        };
        profile.record_access(out, MemEffect::Write, pattern);
    }
}

fn accumulate_region(
    ctx: &Context,
    op: OpId,
    multiplier: i64,
    band: &[ForOp],
    profile: &mut ComputeProfile,
) {
    for nested in ctx.body_ops(op) {
        let operation = ctx.op(nested);
        if operation.is(loops::FOR) {
            let f = ForOp(nested);
            accumulate_region(
                ctx,
                nested,
                multiplier * f.trip_count(ctx).max(1),
                band,
                profile,
            );
            continue;
        }
        match classify(operation.name.as_str()) {
            OpClass::AddLike => {
                profile.intensity += multiplier;
                if is_innermost_context(ctx, nested, band) {
                    profile.adds_per_iter += 1;
                }
            }
            OpClass::MulLike => {
                profile.intensity += multiplier;
                profile.macs += multiplier;
                if is_innermost_context(ctx, nested, band) {
                    profile.muls_per_iter += 1;
                }
            }
            OpClass::DivLike => {
                profile.intensity += multiplier;
                if is_innermost_context(ctx, nested, band) {
                    profile.divs_per_iter += 1;
                }
            }
            OpClass::Memory => {
                profile.intensity += multiplier;
                if is_innermost_context(ctx, nested, band) {
                    profile.mem_per_iter += 1;
                }
                record_memory_access(ctx, nested, band, profile);
            }
            OpClass::Other => {
                // Regions of non-loop ops (e.g. nothing expected here) still count.
                if !operation.regions.is_empty() {
                    accumulate_region(ctx, nested, multiplier, band, profile);
                }
            }
        }
    }
}

/// Returns true when the op is nested inside the innermost loop of the primary band
/// (or the band is empty, in which case everything counts as innermost).
fn is_innermost_context(ctx: &Context, op: OpId, band: &[ForOp]) -> bool {
    match band.last() {
        Some(inner) => ctx.is_ancestor(inner.id(), op),
        None => true,
    }
}

fn record_memory_access(ctx: &Context, op: OpId, band: &[ForOp], profile: &mut ComputeProfile) {
    let buffer = match memory::accessed_memref(ctx, op) {
        Some(b) => b,
        None => return,
    };
    let effect = if ctx.op(op).is(memory::STORE) {
        MemEffect::Write
    } else {
        MemEffect::Read
    };
    let indices = memory::access_indices(ctx, op);
    let dims: Vec<Option<(usize, i64)>> = indices
        .iter()
        .map(|&idx| match memory::resolve_index(ctx, idx) {
            memory::IndexExpr::Strided {
                loop_op, stride, ..
            } => band
                .iter()
                .position(|l| l.id() == loop_op)
                .map(|pos| (pos, stride)),
            _ => None,
        })
        .collect();
    profile.record_access(buffer, effect, AccessPattern { dims });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use crate::linalg::build_layer;
    use crate::loops::build_loop_nest;
    use crate::memory::{build_alloc, build_apply, build_load, build_store};
    use hida_ir_core::{OpBuilder, Type};

    /// Builds Node2 of Listing 1: C[i][j] += A[i*2][k] * B[k][j] over i,j,k in 0..16.
    fn listing1_node2(ctx: &mut Context) -> (OpId, ValueId, ValueId, ValueId) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("node2", vec![], vec![]);
        let body = ctx.body_block(func);
        let (a, b_buf, c) = {
            let mut b = OpBuilder::at_block_end(ctx, body);
            let a = build_alloc(&mut b, Type::memref(vec![32, 16], Type::f32()), "A");
            let b_buf = build_alloc(&mut b, Type::memref(vec![16, 16], Type::f32()), "B");
            let c = build_alloc(&mut b, Type::memref(vec![16, 16], Type::f32()), "C");
            (a, b_buf, c)
        };
        let (_loops, ivs, inner) =
            build_loop_nest(ctx, body, &[(0, 16, "i"), (0, 16, "j"), (0, 16, "k")]);
        let mut bld = OpBuilder::at_block_end(ctx, inner);
        let i2 = build_apply(&mut bld, ivs[0], 2, 0);
        let a_val = build_load(&mut bld, a, &[i2, ivs[2]]);
        let b_val = build_load(&mut bld, b_buf, &[ivs[2], ivs[1]]);
        let prod = arith::build_binary(&mut bld, arith::MULF, a_val, b_val);
        let c_val = build_load(&mut bld, c, &[ivs[0], ivs[1]]);
        let sum = arith::build_binary(&mut bld, arith::ADDF, c_val, prod);
        build_store(&mut bld, sum, c, &[ivs[0], ivs[1]]);
        (func, a, b_buf, c)
    }

    #[test]
    fn loop_nest_profile_matches_listing1_node2() {
        let mut ctx = Context::new();
        let (func, a, b, c) = listing1_node2(&mut ctx);
        let p = profile_body(&ctx, func);

        assert_eq!(p.loop_dims.len(), 3);
        assert_eq!(p.loop_dims[0].name, "i");
        assert_eq!(p.total_iterations(), 16 * 16 * 16);
        // Intensity of Node2 in Table 5 is 4096 = 16^3 MACs; our intensity counts
        // every scalar op (2 arith + 4 mem per iteration) so it must exceed that.
        assert_eq!(p.macs, 4096);
        assert!(p.intensity >= 4096);
        assert_eq!(p.muls_per_iter, 1);
        assert_eq!(p.adds_per_iter, 1);
        assert_eq!(p.mem_per_iter, 4);

        // Access patterns: A read with [i (stride 2), k], B read with [k, j],
        // C read+written with [i, j].
        let a_access = p.access_of(a).unwrap();
        assert_eq!(a_access.effect, MemEffect::Read);
        assert_eq!(a_access.pattern.dims, vec![Some((0, 2)), Some((2, 1))]);
        let b_access = p.access_of(b).unwrap();
        assert_eq!(b_access.pattern.dims, vec![Some((2, 1)), Some((1, 1))]);
        let c_access = p.access_of(c).unwrap();
        assert_eq!(c_access.effect, MemEffect::ReadWrite);
        assert_eq!(c_access.pattern.dims, vec![Some((0, 1)), Some((1, 1))]);
        assert!(p.written_buffers().contains(&c));
        assert!(p.read_buffers().contains(&a));
        assert!(!p.written_buffers().contains(&a));
    }

    #[test]
    fn linalg_profile_reports_macs_and_patterns() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("layer", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let (_, input) = b.create(
            "test.source",
            vec![],
            vec![Type::tensor(vec![3, 32, 32], Type::i8())],
            vec![],
        );
        let conv = LinalgOp::Conv2d {
            in_channels: 3,
            out_channels: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let out = build_layer(&mut b, &conv, &[input[0]], "conv1");
        let relu_out = build_layer(&mut b, &LinalgOp::Relu, &[out], "relu1");

        let p = profile_body(&ctx, func);
        assert_eq!(p.macs, 16 * 3 * 32 * 32 * 9);
        assert_eq!(p.weight_params, 16 * 3 * 9);
        // Dominant layer is the conv: 6 loop dims.
        assert_eq!(p.loop_dims.len(), 6);
        // The conv input and the relu output are recorded.
        assert!(p.access_of(input[0]).is_some());
        assert!(p.access_of(relu_out).is_some());
        assert!(p.access_of(out).is_some());
        assert_eq!(p.access_of(input[0]).unwrap().effect, MemEffect::Read);
        // `out` is written by the conv and read by the relu.
        assert_eq!(p.access_of(out).unwrap().effect, MemEffect::ReadWrite);
        assert!(p.intensity > 0);
    }

    #[test]
    fn mem_effect_merge_table() {
        assert_eq!(MemEffect::Read.merge(MemEffect::Read), MemEffect::Read);
        assert_eq!(
            MemEffect::Read.merge(MemEffect::Write),
            MemEffect::ReadWrite
        );
        assert_eq!(MemEffect::Write.merge(MemEffect::Write), MemEffect::Write);
        assert!(MemEffect::ReadWrite.reads() && MemEffect::ReadWrite.writes());
        assert!(!MemEffect::Read.writes());
        assert!(!MemEffect::Write.reads());
    }

    #[test]
    fn empty_body_produces_empty_profile() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("empty", vec![], vec![]);
        let p = profile_body(&ctx, func);
        assert_eq!(p.intensity, 0);
        assert_eq!(p.total_iterations(), 1);
        assert!(p.accesses.is_empty());
        assert!(p.loop_dims.is_empty());
    }
}
