//! Affine expressions and maps.
//!
//! The `affine` dialect "provides a powerful abstraction for affine operations in
//! order to make dependence analysis and loop transformations efficient and reliable"
//! (paper §3.2). HIDA additionally converts buffer partition and data-layout
//! attributes into semi-affine maps to drive polyhedral-style analysis (§5.2).
//!
//! We implement the subset needed by the reproduction: single-variable affine
//! expressions over loop induction dimensions with strides, offsets, floordiv and
//! modulo, composed into multi-result [`AffineMap`]s.

use std::fmt;

/// A (semi-)affine expression over dimension variables `d0, d1, ...`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AffineExpr {
    /// A dimension variable (`d{index}`).
    Dim(usize),
    /// An integer constant.
    Const(i64),
    /// Sum of two expressions.
    Add(Box<AffineExpr>, Box<AffineExpr>),
    /// Product of an expression and a constant.
    Mul(Box<AffineExpr>, i64),
    /// Floor division of an expression by a positive constant.
    FloorDiv(Box<AffineExpr>, i64),
    /// Remainder of an expression modulo a positive constant.
    Mod(Box<AffineExpr>, i64),
}

impl AffineExpr {
    /// Shorthand for a dimension variable.
    pub fn dim(index: usize) -> Self {
        AffineExpr::Dim(index)
    }

    /// Shorthand for a constant.
    pub fn constant(value: i64) -> Self {
        AffineExpr::Const(value)
    }

    /// Returns `self * factor`.
    pub fn times(self, factor: i64) -> Self {
        AffineExpr::Mul(Box::new(self), factor)
    }

    /// Returns `self + other`.
    pub fn plus(self, other: AffineExpr) -> Self {
        AffineExpr::Add(Box::new(self), Box::new(other))
    }

    /// Returns `self + constant`.
    pub fn plus_const(self, value: i64) -> Self {
        self.plus(AffineExpr::Const(value))
    }

    /// Returns `self floordiv divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is not positive.
    pub fn floor_div(self, divisor: i64) -> Self {
        assert!(divisor > 0, "floordiv divisor must be positive");
        AffineExpr::FloorDiv(Box::new(self), divisor)
    }

    /// Returns `self mod modulus`.
    ///
    /// # Panics
    /// Panics if `modulus` is not positive.
    pub fn modulo(self, modulus: i64) -> Self {
        assert!(modulus > 0, "modulus must be positive");
        AffineExpr::Mod(Box::new(self), modulus)
    }

    /// Evaluates the expression with the given dimension values.
    ///
    /// # Panics
    /// Panics if a referenced dimension is missing from `dims`.
    pub fn eval(&self, dims: &[i64]) -> i64 {
        match self {
            AffineExpr::Dim(i) => dims[*i],
            AffineExpr::Const(c) => *c,
            AffineExpr::Add(a, b) => a.eval(dims) + b.eval(dims),
            AffineExpr::Mul(a, c) => a.eval(dims) * c,
            AffineExpr::FloorDiv(a, c) => a.eval(dims).div_euclid(*c),
            AffineExpr::Mod(a, c) => a.eval(dims).rem_euclid(*c),
        }
    }

    /// Returns the single `(dimension, stride, offset)` triple if the expression is
    /// of the form `stride * d + offset` (i.e. a strided access along one loop), or
    /// `None` for constants and multi-dimension expressions.
    pub fn as_strided_dim(&self) -> Option<(usize, i64, i64)> {
        fn collect(
            expr: &AffineExpr,
            scale: i64,
            dims: &mut Vec<(usize, i64)>,
            offset: &mut i64,
        ) -> bool {
            match expr {
                AffineExpr::Dim(d) => {
                    dims.push((*d, scale));
                    true
                }
                AffineExpr::Const(c) => {
                    *offset += c * scale;
                    true
                }
                AffineExpr::Add(a, b) => {
                    collect(a, scale, dims, offset) && collect(b, scale, dims, offset)
                }
                AffineExpr::Mul(a, c) => collect(a, scale * c, dims, offset),
                // floordiv/mod are semi-affine; no single strided dimension.
                AffineExpr::FloorDiv(..) | AffineExpr::Mod(..) => false,
            }
        }
        let mut dims = Vec::new();
        let mut offset = 0;
        if !collect(self, 1, &mut dims, &mut offset) {
            return None;
        }
        match dims.as_slice() {
            [(d, stride)] => Some((*d, *stride, offset)),
            _ => None,
        }
    }

    /// Lists the dimension variables referenced by the expression.
    pub fn referenced_dims(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(expr: &AffineExpr, out: &mut Vec<usize>) {
            match expr {
                AffineExpr::Dim(d) => {
                    if !out.contains(d) {
                        out.push(*d);
                    }
                }
                AffineExpr::Const(_) => {}
                AffineExpr::Add(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                AffineExpr::Mul(a, _) | AffineExpr::FloorDiv(a, _) | AffineExpr::Mod(a, _) => {
                    walk(a, out)
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineExpr::Dim(i) => write!(f, "d{i}"),
            AffineExpr::Const(c) => write!(f, "{c}"),
            AffineExpr::Add(a, b) => write!(f, "{a} + {b}"),
            AffineExpr::Mul(a, c) => write!(f, "{a} * {c}"),
            AffineExpr::FloorDiv(a, c) => write!(f, "{a} floordiv {c}"),
            AffineExpr::Mod(a, c) => write!(f, "{a} mod {c}"),
        }
    }
}

/// A multi-result affine map `(d0, ..., dn) -> (e0, ..., em)`.
///
/// Used as memory access functions (one result per memref dimension) and as buffer
/// partition/layout maps (paper §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineMap {
    /// Number of input dimensions.
    pub num_dims: usize,
    /// Result expressions.
    pub results: Vec<AffineExpr>,
}

impl AffineMap {
    /// Creates a map from raw parts.
    pub fn new(num_dims: usize, results: Vec<AffineExpr>) -> Self {
        AffineMap { num_dims, results }
    }

    /// Creates the identity map over `n` dimensions.
    pub fn identity(n: usize) -> Self {
        AffineMap {
            num_dims: n,
            results: (0..n).map(AffineExpr::Dim).collect(),
        }
    }

    /// Evaluates every result with the given dimension values.
    pub fn eval(&self, dims: &[i64]) -> Vec<i64> {
        self.results.iter().map(|e| e.eval(dims)).collect()
    }

    /// The partition map of a cyclically partitioned dimension with `factor` banks:
    /// `d -> (d mod factor, d floordiv factor)` (bank, intra-bank offset).
    pub fn cyclic_partition(factor: i64) -> Self {
        AffineMap {
            num_dims: 1,
            results: vec![
                AffineExpr::dim(0).modulo(factor.max(1)),
                AffineExpr::dim(0).floor_div(factor.max(1)),
            ],
        }
    }

    /// The partition map of a block-partitioned dimension of size `dim_size` with
    /// `factor` banks: `d -> (d floordiv block, d mod block)` where
    /// `block = ceil(dim_size / factor)`.
    pub fn block_partition(dim_size: i64, factor: i64) -> Self {
        let factor = factor.max(1);
        let block = (dim_size + factor - 1) / factor;
        AffineMap {
            num_dims: 1,
            results: vec![
                AffineExpr::dim(0).floor_div(block.max(1)),
                AffineExpr::dim(0).modulo(block.max(1)),
            ],
        }
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for i in 0..self.num_dims {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{i}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_strided_expression() {
        // 2*d0 + 3
        let e = AffineExpr::dim(0).times(2).plus_const(3);
        assert_eq!(e.eval(&[5]), 13);
        assert_eq!(e.as_strided_dim(), Some((0, 2, 3)));
        assert_eq!(e.referenced_dims(), vec![0]);
    }

    #[test]
    fn strided_dim_rejects_multi_dim_and_semi_affine() {
        let multi = AffineExpr::dim(0).plus(AffineExpr::dim(1));
        assert_eq!(multi.as_strided_dim(), None);
        assert_eq!(multi.referenced_dims(), vec![0, 1]);
        let semi = AffineExpr::dim(0).floor_div(4);
        assert_eq!(semi.as_strided_dim(), None);
        let constant = AffineExpr::constant(7);
        assert_eq!(constant.as_strided_dim(), None);
    }

    #[test]
    fn floordiv_and_mod_follow_euclidean_semantics() {
        let div = AffineExpr::dim(0).floor_div(4);
        let rem = AffineExpr::dim(0).modulo(4);
        assert_eq!(div.eval(&[10]), 2);
        assert_eq!(rem.eval(&[10]), 2);
        assert_eq!(div.eval(&[3]), 0);
        assert_eq!(rem.eval(&[3]), 3);
    }

    #[test]
    fn identity_map_and_eval() {
        let m = AffineMap::identity(3);
        assert_eq!(m.eval(&[4, 5, 6]), vec![4, 5, 6]);
        assert_eq!(m.to_string(), "(d0, d1, d2) -> (d0, d1, d2)");
    }

    #[test]
    fn cyclic_partition_distributes_consecutive_elements_across_banks() {
        let m = AffineMap::cyclic_partition(4);
        // Elements 0..8 with 4 banks: banks cycle 0,1,2,3,0,1,2,3.
        let banks: Vec<i64> = (0..8).map(|i| m.eval(&[i])[0]).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let offsets: Vec<i64> = (0..8).map(|i| m.eval(&[i])[1]).collect();
        assert_eq!(offsets, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn block_partition_keeps_contiguous_elements_in_one_bank() {
        let m = AffineMap::block_partition(16, 4);
        let banks: Vec<i64> = (0..16).map(|i| m.eval(&[i])[0]).collect();
        assert_eq!(banks[0..4], [0, 0, 0, 0]);
        assert_eq!(banks[4..8], [1, 1, 1, 1]);
        assert_eq!(banks[12..16], [3, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "floordiv divisor must be positive")]
    fn floordiv_rejects_non_positive_divisor() {
        let _ = AffineExpr::dim(0).floor_div(0);
    }

    #[test]
    fn display_renders_nested_expressions() {
        let e = AffineExpr::dim(1).times(3).plus_const(-2);
        assert_eq!(e.to_string(), "d1 * 3 + -2");
    }
}
