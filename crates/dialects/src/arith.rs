//! Arithmetic payload operations and their hardware cost classification.
//!
//! The QoR estimator needs to know, for every scalar operation in a loop body, how
//! many DSP blocks it consumes and how many pipeline stages it occupies on the target
//! FPGA. This module names the arithmetic ops used by the front-ends and provides the
//! per-op cost classes used by `hida-estimator`.

use hida_ir_core::{Context, OpBuilder, OpId, Type, ValueId};

/// Integer addition.
pub const ADDI: &str = "arith.addi";
/// Integer subtraction.
pub const SUBI: &str = "arith.subi";
/// Integer multiplication.
pub const MULI: &str = "arith.muli";
/// Integer division.
pub const DIVI: &str = "arith.divsi";
/// Float addition.
pub const ADDF: &str = "arith.addf";
/// Float subtraction.
pub const SUBF: &str = "arith.subf";
/// Float multiplication.
pub const MULF: &str = "arith.mulf";
/// Float division.
pub const DIVF: &str = "arith.divf";
/// Maximum (used by ReLU / max-pooling).
pub const MAXF: &str = "arith.maxf";
/// Integer comparison.
pub const CMPI: &str = "arith.cmpi";
/// Float comparison.
pub const CMPF: &str = "arith.cmpf";
/// Square root (used by correlation).
pub const SQRT: &str = "math.sqrt";
/// Fused multiply-accumulate (one MAC).
pub const MAC: &str = "arith.mac";

/// Hardware cost class of a scalar operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Additions, subtractions, comparisons, max — LUT/carry logic.
    AddLike,
    /// Multiplications and MACs — DSP blocks.
    MulLike,
    /// Divisions and square roots — long multi-cycle units.
    DivLike,
    /// Memory accesses.
    Memory,
    /// Everything else (control, casts, constants).
    Other,
}

/// Classifies an operation name into its hardware cost class.
pub fn classify(op_name: &str) -> OpClass {
    match op_name {
        ADDI | SUBI | ADDF | SUBF | MAXF | CMPI | CMPF => OpClass::AddLike,
        MULI | MULF | MAC => OpClass::MulLike,
        DIVI | DIVF | SQRT => OpClass::DivLike,
        crate::memory::LOAD | crate::memory::STORE => OpClass::Memory,
        _ => OpClass::Other,
    }
}

/// Classifies an operation already in the IR.
pub fn classify_op(ctx: &Context, op: OpId) -> OpClass {
    classify(ctx.op(op).name.as_str())
}

/// Builds a binary arithmetic op with the result type of the left operand.
pub fn build_binary(
    builder: &mut OpBuilder<'_>,
    name: &str,
    lhs: ValueId,
    rhs: ValueId,
) -> ValueId {
    let ty = builder.context().value_type(lhs).clone();
    let (_, results) = builder.create(name, vec![lhs, rhs], vec![ty], vec![]);
    results[0]
}

/// Builds a fused multiply-accumulate `acc + a * b`.
pub fn build_mac(builder: &mut OpBuilder<'_>, a: ValueId, b: ValueId, acc: ValueId) -> ValueId {
    let ty = builder.context().value_type(acc).clone();
    let (_, results) = builder.create(MAC, vec![a, b, acc], vec![ty], vec![]);
    results[0]
}

/// Returns the addition op name for the given element type.
pub fn add_for(ty: &Type) -> &'static str {
    if matches!(ty, Type::Float(_)) {
        ADDF
    } else {
        ADDI
    }
}

/// Returns the multiplication op name for the given element type.
pub fn mul_for(ty: &Type) -> &'static str {
    if matches!(ty, Type::Float(_)) {
        MULF
    } else {
        MULI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_ir_core::Context;

    #[test]
    fn classification_buckets_ops_correctly() {
        assert_eq!(classify(ADDI), OpClass::AddLike);
        assert_eq!(classify(SUBF), OpClass::AddLike);
        assert_eq!(classify(MAXF), OpClass::AddLike);
        assert_eq!(classify(MULI), OpClass::MulLike);
        assert_eq!(classify(MAC), OpClass::MulLike);
        assert_eq!(classify(DIVF), OpClass::DivLike);
        assert_eq!(classify(SQRT), OpClass::DivLike);
        assert_eq!(classify(crate::memory::LOAD), OpClass::Memory);
        assert_eq!(classify("hida.node"), OpClass::Other);
    }

    #[test]
    fn binary_builder_propagates_types() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let x = b.create_constant_float(1.0, Type::f32());
        let y = b.create_constant_float(2.0, Type::f32());
        let sum = build_binary(&mut b, ADDF, x, y);
        assert_eq!(ctx.value_type(sum), &Type::f32());
        let mac = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_mac(&mut b, x, y, sum)
        };
        assert_eq!(ctx.value_type(mac), &Type::f32());
        let mac_op = ctx.value(mac).defining_op().unwrap();
        assert_eq!(classify_op(&ctx, mac_op), OpClass::MulLike);
    }

    #[test]
    fn typed_helpers_select_int_or_float_ops() {
        assert_eq!(add_for(&Type::f32()), ADDF);
        assert_eq!(add_for(&Type::i8()), ADDI);
        assert_eq!(mul_for(&Type::f64()), MULF);
        assert_eq!(mul_for(&Type::Index), MULI);
    }
}
