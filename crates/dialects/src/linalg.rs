//! Named tensor compute operations (the `linalg`-style payload of Figure 5).
//!
//! The PyTorch front-end lowers neural-network layers into these named ops. Each op
//! knows its own *virtual loop nest*: the loop dimensions it iterates, how each
//! operand/result dimension is indexed by those loops, and how many MAC operations it
//! performs. HIDA-OPT's intensity and connection analysis (§6.5) consumes exactly
//! this information, whether the op came from a named layer or an explicit affine
//! loop nest.
//!
//! Weights are modelled as op attributes (their storage is accounted by the resource
//! estimator) so that the SSA graph contains only the activation tensors that flow
//! through the dataflow architecture.

use hida_ir_core::{Attribute, Context, OpBuilder, OpId, Type, ValueId};

/// Convolution layer op name.
pub const CONV2D: &str = "linalg.conv2d";
/// Depthwise convolution layer op name.
pub const DEPTHWISE_CONV2D: &str = "linalg.depthwise_conv2d";
/// Fully-connected layer op name.
pub const LINEAR: &str = "linalg.linear";
/// Max-pooling layer op name.
pub const MAXPOOL2D: &str = "linalg.maxpool2d";
/// Average-pooling layer op name.
pub const AVGPOOL2D: &str = "linalg.avgpool2d";
/// Rectified linear activation op name.
pub const RELU: &str = "linalg.relu";
/// Element-wise addition (residual shortcut) op name.
pub const ADD: &str = "linalg.add";
/// Flatten / reshape op name.
pub const FLATTEN: &str = "linalg.flatten";

/// All named linalg-style op names, used by walkers.
pub const ALL_NAMED_OPS: &[&str] = &[
    CONV2D,
    DEPTHWISE_CONV2D,
    LINEAR,
    MAXPOOL2D,
    AVGPOOL2D,
    RELU,
    ADD,
    FLATTEN,
];

/// Returns true if `name` is one of the named linalg-style ops.
pub fn is_linalg_op_name(name: &str) -> bool {
    ALL_NAMED_OPS.contains(&name)
}

/// A structured description of a named compute layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgOp {
    /// Standard 2-D convolution (`out[k][y][x] += in[c][y*s+r][x*s+q] * w[k][c][r][q]`).
    Conv2d {
        /// Input channels.
        in_channels: i64,
        /// Output channels.
        out_channels: i64,
        /// Kernel height/width (square kernels).
        kernel: i64,
        /// Spatial stride.
        stride: i64,
        /// Symmetric zero padding.
        padding: i64,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DepthwiseConv2d {
        /// Channels (input == output).
        channels: i64,
        /// Kernel height/width.
        kernel: i64,
        /// Spatial stride.
        stride: i64,
        /// Symmetric zero padding.
        padding: i64,
    },
    /// Fully-connected layer (`out[o] += in[i] * w[o][i]`).
    Linear {
        /// Input features.
        in_features: i64,
        /// Output features.
        out_features: i64,
    },
    /// Max pooling.
    MaxPool2d {
        /// Window size.
        kernel: i64,
        /// Window stride.
        stride: i64,
    },
    /// Average pooling.
    AvgPool2d {
        /// Window size.
        kernel: i64,
        /// Window stride.
        stride: i64,
    },
    /// Rectified linear unit.
    Relu,
    /// Element-wise addition of two tensors with identical shapes.
    Add,
    /// Collapse all dimensions into one.
    Flatten,
}

/// A loop dimension of a layer's virtual loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDim {
    /// Short dimension name (`k`, `c`, `h`, `w`, `r`, `s`, `o`, `i`, ...).
    pub name: String,
    /// Trip count of the dimension.
    pub trip: i64,
    /// Whether the dimension is a reduction (accumulating) dimension.
    pub reduction: bool,
}

impl LoopDim {
    fn new(name: &str, trip: i64, reduction: bool) -> Self {
        LoopDim {
            name: name.to_string(),
            trip: trip.max(1),
            reduction,
        }
    }
}

/// How one dimension of an operand/result aggregate is indexed: by which virtual loop
/// and with what stride, or `None` when no single loop drives it.
pub type DimAccess = Option<(usize, i64)>;

/// Full virtual-loop-nest profile of a layer for a concrete input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Virtual loop dimensions, outermost first.
    pub loop_dims: Vec<LoopDim>,
    /// Per input operand: how each of its aggregate dimensions is indexed.
    pub input_accesses: Vec<Vec<DimAccess>>,
    /// How each result dimension is indexed.
    pub result_access: Vec<DimAccess>,
    /// Multiply-accumulate operations per output sample.
    pub macs: i64,
    /// Non-MAC scalar operations per output sample (comparisons, adds).
    pub other_ops: i64,
    /// Number of weight parameters held by the layer.
    pub weight_params: i64,
    /// Shape of the result tensor.
    pub output_shape: Vec<i64>,
}

impl LinalgOp {
    /// Fully-qualified op name of this layer kind.
    pub fn op_name(&self) -> &'static str {
        match self {
            LinalgOp::Conv2d { .. } => CONV2D,
            LinalgOp::DepthwiseConv2d { .. } => DEPTHWISE_CONV2D,
            LinalgOp::Linear { .. } => LINEAR,
            LinalgOp::MaxPool2d { .. } => MAXPOOL2D,
            LinalgOp::AvgPool2d { .. } => AVGPOOL2D,
            LinalgOp::Relu => RELU,
            LinalgOp::Add => ADD,
            LinalgOp::Flatten => FLATTEN,
        }
    }

    /// Computes the output shape for the given input shape.
    ///
    /// Convolution/pooling inputs are `[channels, height, width]`; linear inputs are
    /// `[features]`; element-wise ops preserve the input shape.
    ///
    /// # Panics
    /// Panics if the input shape has the wrong rank for the layer kind.
    pub fn output_shape(&self, input_shape: &[i64]) -> Vec<i64> {
        match self {
            LinalgOp::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                ..
            } => {
                assert_eq!(input_shape.len(), 3, "conv2d expects [C, H, W] input");
                let h = (input_shape[1] + 2 * padding - kernel) / stride + 1;
                let w = (input_shape[2] + 2 * padding - kernel) / stride + 1;
                vec![*out_channels, h.max(1), w.max(1)]
            }
            LinalgOp::DepthwiseConv2d {
                channels,
                kernel,
                stride,
                padding,
            } => {
                assert_eq!(
                    input_shape.len(),
                    3,
                    "depthwise conv2d expects [C, H, W] input"
                );
                let h = (input_shape[1] + 2 * padding - kernel) / stride + 1;
                let w = (input_shape[2] + 2 * padding - kernel) / stride + 1;
                vec![*channels, h.max(1), w.max(1)]
            }
            LinalgOp::Linear { out_features, .. } => vec![*out_features],
            LinalgOp::MaxPool2d { kernel, stride } | LinalgOp::AvgPool2d { kernel, stride } => {
                assert_eq!(input_shape.len(), 3, "pooling expects [C, H, W] input");
                let h = (input_shape[1] - kernel) / stride + 1;
                let w = (input_shape[2] - kernel) / stride + 1;
                vec![input_shape[0], h.max(1), w.max(1)]
            }
            LinalgOp::Relu | LinalgOp::Add => input_shape.to_vec(),
            LinalgOp::Flatten => vec![input_shape.iter().product()],
        }
    }

    /// Computes the full virtual-loop-nest profile for the given input shape.
    pub fn profile(&self, input_shape: &[i64]) -> LayerProfile {
        let output_shape = self.output_shape(input_shape);
        match self {
            LinalgOp::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                ..
            } => {
                // Loops: k (out ch), c (in ch, red), h, w, r (red), s (red).
                let loop_dims = vec![
                    LoopDim::new("k", *out_channels, false),
                    LoopDim::new("c", *in_channels, true),
                    LoopDim::new("h", output_shape[1], false),
                    LoopDim::new("w", output_shape[2], false),
                    LoopDim::new("r", *kernel, true),
                    LoopDim::new("s", *kernel, true),
                ];
                LayerProfile {
                    loop_dims,
                    // input[c][h*stride + r][w*stride + s]
                    input_accesses: vec![vec![
                        Some((1, 1)),
                        Some((2, *stride)),
                        Some((3, *stride)),
                    ]],
                    // output[k][h][w]
                    result_access: vec![Some((0, 1)), Some((2, 1)), Some((3, 1))],
                    macs: out_channels
                        * in_channels
                        * output_shape[1]
                        * output_shape[2]
                        * kernel
                        * kernel,
                    other_ops: 0,
                    weight_params: out_channels * in_channels * kernel * kernel,
                    output_shape,
                }
            }
            LinalgOp::DepthwiseConv2d {
                channels,
                kernel,
                stride,
                ..
            } => {
                let loop_dims = vec![
                    LoopDim::new("c", *channels, false),
                    LoopDim::new("h", output_shape[1], false),
                    LoopDim::new("w", output_shape[2], false),
                    LoopDim::new("r", *kernel, true),
                    LoopDim::new("s", *kernel, true),
                ];
                LayerProfile {
                    loop_dims,
                    input_accesses: vec![vec![
                        Some((0, 1)),
                        Some((1, *stride)),
                        Some((2, *stride)),
                    ]],
                    result_access: vec![Some((0, 1)), Some((1, 1)), Some((2, 1))],
                    macs: channels * output_shape[1] * output_shape[2] * kernel * kernel,
                    other_ops: 0,
                    weight_params: channels * kernel * kernel,
                    output_shape,
                }
            }
            LinalgOp::Linear {
                in_features,
                out_features,
            } => {
                let loop_dims = vec![
                    LoopDim::new("o", *out_features, false),
                    LoopDim::new("i", *in_features, true),
                ];
                LayerProfile {
                    loop_dims,
                    input_accesses: vec![vec![Some((1, 1))]],
                    result_access: vec![Some((0, 1))],
                    macs: in_features * out_features,
                    other_ops: 0,
                    weight_params: in_features * out_features,
                    output_shape,
                }
            }
            LinalgOp::MaxPool2d { kernel, stride } | LinalgOp::AvgPool2d { kernel, stride } => {
                let loop_dims = vec![
                    LoopDim::new("c", input_shape[0], false),
                    LoopDim::new("h", output_shape[1], false),
                    LoopDim::new("w", output_shape[2], false),
                    LoopDim::new("r", *kernel, true),
                    LoopDim::new("s", *kernel, true),
                ];
                let window_ops =
                    input_shape[0] * output_shape[1] * output_shape[2] * kernel * kernel;
                LayerProfile {
                    loop_dims,
                    input_accesses: vec![vec![
                        Some((0, 1)),
                        Some((1, *stride)),
                        Some((2, *stride)),
                    ]],
                    result_access: vec![Some((0, 1)), Some((1, 1)), Some((2, 1))],
                    macs: 0,
                    other_ops: window_ops,
                    weight_params: 0,
                    output_shape,
                }
            }
            LinalgOp::Relu => {
                let loop_dims = input_shape
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| LoopDim::new(&format!("d{i}"), d, false))
                    .collect::<Vec<_>>();
                let access: Vec<DimAccess> = (0..input_shape.len()).map(|i| Some((i, 1))).collect();
                LayerProfile {
                    loop_dims,
                    input_accesses: vec![access.clone()],
                    result_access: access,
                    macs: 0,
                    other_ops: input_shape.iter().product(),
                    weight_params: 0,
                    output_shape,
                }
            }
            LinalgOp::Add => {
                let loop_dims = input_shape
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| LoopDim::new(&format!("d{i}"), d, false))
                    .collect::<Vec<_>>();
                let access: Vec<DimAccess> = (0..input_shape.len()).map(|i| Some((i, 1))).collect();
                LayerProfile {
                    loop_dims,
                    input_accesses: vec![access.clone(), access.clone()],
                    result_access: access,
                    macs: 0,
                    other_ops: input_shape.iter().product(),
                    weight_params: 0,
                    output_shape,
                }
            }
            LinalgOp::Flatten => LayerProfile {
                loop_dims: vec![LoopDim::new("n", input_shape.iter().product(), false)],
                input_accesses: vec![vec![None; input_shape.len()]],
                result_access: vec![Some((0, 1))],
                macs: 0,
                other_ops: 0,
                weight_params: 0,
                output_shape,
            },
        }
    }

    /// Serialises the layer parameters to operation attributes.
    pub fn to_attrs(&self) -> Vec<(&'static str, Attribute)> {
        match self {
            LinalgOp::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
            } => vec![
                ("in_channels", Attribute::Int(*in_channels)),
                ("out_channels", Attribute::Int(*out_channels)),
                ("kernel", Attribute::Int(*kernel)),
                ("stride", Attribute::Int(*stride)),
                ("padding", Attribute::Int(*padding)),
            ],
            LinalgOp::DepthwiseConv2d {
                channels,
                kernel,
                stride,
                padding,
            } => vec![
                ("channels", Attribute::Int(*channels)),
                ("kernel", Attribute::Int(*kernel)),
                ("stride", Attribute::Int(*stride)),
                ("padding", Attribute::Int(*padding)),
            ],
            LinalgOp::Linear {
                in_features,
                out_features,
            } => vec![
                ("in_features", Attribute::Int(*in_features)),
                ("out_features", Attribute::Int(*out_features)),
            ],
            LinalgOp::MaxPool2d { kernel, stride } | LinalgOp::AvgPool2d { kernel, stride } => {
                vec![
                    ("kernel", Attribute::Int(*kernel)),
                    ("stride", Attribute::Int(*stride)),
                ]
            }
            LinalgOp::Relu | LinalgOp::Add | LinalgOp::Flatten => vec![],
        }
    }

    /// Reconstructs the layer description from an operation in the IR.
    ///
    /// Returns `None` if the op is not a named linalg-style op.
    pub fn from_op(ctx: &Context, op: OpId) -> Option<LinalgOp> {
        let operation = ctx.op(op);
        let i = |key: &str| operation.attr_int(key).unwrap_or(0);
        match operation.name.as_str() {
            CONV2D => Some(LinalgOp::Conv2d {
                in_channels: i("in_channels"),
                out_channels: i("out_channels"),
                kernel: i("kernel"),
                stride: i("stride").max(1),
                padding: i("padding"),
            }),
            DEPTHWISE_CONV2D => Some(LinalgOp::DepthwiseConv2d {
                channels: i("channels"),
                kernel: i("kernel"),
                stride: i("stride").max(1),
                padding: i("padding"),
            }),
            LINEAR => Some(LinalgOp::Linear {
                in_features: i("in_features"),
                out_features: i("out_features"),
            }),
            MAXPOOL2D => Some(LinalgOp::MaxPool2d {
                kernel: i("kernel"),
                stride: i("stride").max(1),
            }),
            AVGPOOL2D => Some(LinalgOp::AvgPool2d {
                kernel: i("kernel"),
                stride: i("stride").max(1),
            }),
            RELU => Some(LinalgOp::Relu),
            ADD => Some(LinalgOp::Add),
            FLATTEN => Some(LinalgOp::Flatten),
            _ => None,
        }
    }
}

/// Builds a named layer op at the tensor level: `result = op(inputs...)`.
///
/// The result type is computed from the first input's shape and the layer parameters.
/// Returns the result tensor value.
///
/// # Panics
/// Panics if `inputs` is empty or the first input is not a tensor/memref type.
pub fn build_layer(
    builder: &mut OpBuilder<'_>,
    layer: &LinalgOp,
    inputs: &[ValueId],
    name: &str,
) -> ValueId {
    assert!(!inputs.is_empty(), "a layer needs at least one input");
    let input_ty = builder.context().value_type(inputs[0]).clone();
    let input_shape = input_ty
        .shape()
        .expect("layer input must be a shaped type")
        .to_vec();
    let elem = input_ty.elem_type().clone();
    let out_shape = layer.output_shape(&input_shape);
    let result_ty = if input_ty.is_memref() {
        Type::memref(out_shape, elem)
    } else {
        Type::tensor(out_shape, elem)
    };
    let mut attrs = layer.to_attrs();
    attrs.push(("layer_name", Attribute::Str(name.to_string())));
    let (_, results) = builder.create(layer.op_name(), inputs.to_vec(), vec![result_ty], attrs);
    builder.context().set_name_hint(results[0], name);
    results[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_ir_core::Context;

    #[test]
    fn conv2d_output_shape_and_macs() {
        let conv = LinalgOp::Conv2d {
            in_channels: 3,
            out_channels: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let out = conv.output_shape(&[3, 32, 32]);
        assert_eq!(out, vec![16, 32, 32]);
        let p = conv.profile(&[3, 32, 32]);
        assert_eq!(p.macs, 16 * 3 * 32 * 32 * 9);
        assert_eq!(p.weight_params, 16 * 3 * 9);
        assert_eq!(p.loop_dims.len(), 6);
        assert!(p.loop_dims[1].reduction);
        assert!(!p.loop_dims[0].reduction);
    }

    #[test]
    fn strided_conv_halves_spatial_dims() {
        let conv = LinalgOp::Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(conv.output_shape(&[64, 56, 56]), vec![128, 28, 28]);
        // Input spatial dims are accessed with stride 2.
        let p = conv.profile(&[64, 56, 56]);
        assert_eq!(p.input_accesses[0][1], Some((2, 2)));
        assert_eq!(p.input_accesses[0][2], Some((3, 2)));
        assert_eq!(p.result_access[1], Some((2, 1)));
    }

    #[test]
    fn depthwise_conv_macs_are_channelwise() {
        let dw = LinalgOp::DepthwiseConv2d {
            channels: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let p = dw.profile(&[32, 28, 28]);
        assert_eq!(p.output_shape, vec![32, 28, 28]);
        assert_eq!(p.macs, 32 * 28 * 28 * 9);
        assert_eq!(p.weight_params, 32 * 9);
    }

    #[test]
    fn pooling_and_linear_shapes() {
        let pool = LinalgOp::MaxPool2d {
            kernel: 2,
            stride: 2,
        };
        assert_eq!(pool.output_shape(&[16, 32, 32]), vec![16, 16, 16]);
        assert_eq!(pool.profile(&[16, 32, 32]).macs, 0);

        let fc = LinalgOp::Linear {
            in_features: 256,
            out_features: 10,
        };
        assert_eq!(fc.output_shape(&[256]), vec![10]);
        assert_eq!(fc.profile(&[256]).macs, 2560);
        assert_eq!(fc.profile(&[256]).weight_params, 2560);
    }

    #[test]
    fn elementwise_ops_preserve_shape() {
        assert_eq!(LinalgOp::Relu.output_shape(&[8, 4, 4]), vec![8, 4, 4]);
        assert_eq!(LinalgOp::Add.output_shape(&[8, 4, 4]), vec![8, 4, 4]);
        assert_eq!(LinalgOp::Flatten.output_shape(&[8, 4, 4]), vec![128]);
        let add = LinalgOp::Add.profile(&[8, 4, 4]);
        assert_eq!(add.input_accesses.len(), 2);
        assert_eq!(add.other_ops, 128);
    }

    #[test]
    fn attrs_round_trip_through_ir() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let (_, input) = b.create(
            "test.source",
            vec![],
            vec![Type::tensor(vec![3, 32, 32], Type::i8())],
            vec![],
        );
        let conv = LinalgOp::Conv2d {
            in_channels: 3,
            out_channels: 6,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        let out = build_layer(&mut b, &conv, &[input[0]], "conv1");
        assert_eq!(
            ctx.value_type(out),
            &Type::tensor(vec![6, 28, 28], Type::i8())
        );
        let op = ctx.value(out).defining_op().unwrap();
        assert_eq!(LinalgOp::from_op(&ctx, op), Some(conv));
        assert!(is_linalg_op_name(ctx.op(op).name.as_str()));
        assert_eq!(ctx.op(op).attr_str("layer_name"), Some("conv1"));
    }

    #[test]
    fn from_op_rejects_non_linalg_ops() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        assert_eq!(LinalgOp::from_op(&ctx, module), None);
        assert!(!is_linalg_op_name("affine.for"));
    }
}
