//! Dialect layer of the HIDA reproduction: the "existing MLIR dialects" of Figure 5.
//!
//! HIDA reuses MLIR's `affine`, `memref`, `tensor`, `linalg` and `arith` dialects plus
//! ScaleHLS's directive IR to represent the program payload at both dataflow levels.
//! This crate provides the equivalent functionality on top of [`hida_ir_core`]:
//!
//! * [`affine`] — affine expressions and maps (loop bounds, access functions,
//!   partition/layout semi-affine maps),
//! * [`loops`] — `affine.for` loop nests, loop bands, induction variables,
//! * [`memory`] — `memref.alloc`, `affine.load`/`affine.store`, `memref.copy`,
//! * [`arith`] — arithmetic payload ops and their hardware cost classes,
//! * [`linalg`] — named tensor compute ops (convolutions, matmul, pooling, ...)
//!   used by the PyTorch-style front-end,
//! * [`hls`] — HLS directive attributes (pipeline, unroll, array partition, tiling),
//! * [`transforms`] — loop transformations (unroll annotation, tiling, normalization),
//! * [`analysis`] — compute-profile extraction (loop dimensions, memory access
//!   patterns, computational intensity) consumed by HIDA-OPT.

pub mod affine;
pub mod analysis;
pub mod arith;
pub mod hls;
pub mod linalg;
pub mod loops;
pub mod memory;
pub mod transforms;

pub use affine::{AffineExpr, AffineMap};
pub use analysis::{AccessPattern, BufferAccess, ComputeProfile, MemEffect};
pub use linalg::LinalgOp;
