//! Memory dialect: allocation, affine loads/stores, copies, and index arithmetic.
//!
//! At the Functional level HIDA programs manipulate tensors; after lowering, buffers
//! are memrefs accessed through `affine.load`/`affine.store` whose indices are affine
//! functions of loop induction variables. The connection analysis of HIDA-OPT (§6.5,
//! step 1) inspects exactly these access functions to derive permutation and scaling
//! maps, so this module keeps indices analyzable: every index operand is either a
//! loop induction variable, the result of a single-variable `affine.apply`, or a
//! constant.

use crate::loops;
use hida_ir_core::{Attribute, Context, OpBuilder, OpId, Type, ValueId};

/// Operation name for on-chip/off-chip buffer allocation.
pub const ALLOC: &str = "memref.alloc";
/// Operation name for affine memory reads.
pub const LOAD: &str = "affine.load";
/// Operation name for affine memory writes.
pub const STORE: &str = "affine.store";
/// Operation name for whole-buffer copies.
pub const COPY: &str = "memref.copy";
/// Operation name for single-variable affine index arithmetic.
pub const APPLY: &str = "affine.apply";

/// Allocates a memref buffer of the given type. Returns the buffer value.
pub fn build_alloc(builder: &mut OpBuilder<'_>, ty: Type, name: &str) -> ValueId {
    assert!(ty.is_memref(), "memref.alloc requires a memref type");
    let (_, results) = builder.create(
        ALLOC,
        vec![],
        vec![ty],
        vec![("name", Attribute::Str(name.to_string()))],
    );
    let v = results[0];
    builder.context().set_name_hint(v, name);
    v
}

/// Builds `affine.apply` computing `stride * iv + offset`. Returns the index value.
pub fn build_apply(builder: &mut OpBuilder<'_>, iv: ValueId, stride: i64, offset: i64) -> ValueId {
    let (_, results) = builder.create(
        APPLY,
        vec![iv],
        vec![Type::Index],
        vec![
            ("stride", Attribute::Int(stride)),
            ("offset", Attribute::Int(offset)),
        ],
    );
    results[0]
}

/// Builds `affine.load %memref[indices...]`. Returns the loaded element value.
pub fn build_load(builder: &mut OpBuilder<'_>, memref: ValueId, indices: &[ValueId]) -> ValueId {
    let elem = builder.context().value_type(memref).elem_type().clone();
    let mut operands = vec![memref];
    operands.extend_from_slice(indices);
    let (_, results) = builder.create(LOAD, operands, vec![elem], vec![]);
    results[0]
}

/// Builds `affine.store %value, %memref[indices...]`.
pub fn build_store(
    builder: &mut OpBuilder<'_>,
    value: ValueId,
    memref: ValueId,
    indices: &[ValueId],
) -> OpId {
    let mut operands = vec![value, memref];
    operands.extend_from_slice(indices);
    builder.create(STORE, operands, vec![], vec![]).0
}

/// Builds `memref.copy %src, %dst`.
pub fn build_copy(builder: &mut OpBuilder<'_>, src: ValueId, dst: ValueId) -> OpId {
    builder.create(COPY, vec![src, dst], vec![], vec![]).0
}

/// Returns the memref operand of a load or store op, or `None` for other ops.
pub fn accessed_memref(ctx: &Context, op: OpId) -> Option<ValueId> {
    let operation = ctx.op(op);
    if operation.is(LOAD) {
        operation.operands.first().copied()
    } else if operation.is(STORE) {
        operation.operands.get(1).copied()
    } else {
        None
    }
}

/// Returns the index operands of a load or store op.
pub fn access_indices(ctx: &Context, op: OpId) -> Vec<ValueId> {
    let operation = ctx.op(op);
    if operation.is(LOAD) {
        operation.operands[1..].to_vec()
    } else if operation.is(STORE) {
        operation.operands[2..].to_vec()
    } else {
        Vec::new()
    }
}

/// A resolved access index: a strided loop induction variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexExpr {
    /// `stride * iv + offset` for the induction variable of the given loop.
    Strided {
        /// The loop op whose induction variable drives this index.
        loop_op: OpId,
        /// Multiplicative stride.
        stride: i64,
        /// Additive offset.
        offset: i64,
    },
    /// A compile-time constant index.
    Constant(i64),
    /// An index the analysis cannot express as a single strided dimension.
    Unknown,
}

/// Resolves an index operand to an [`IndexExpr`], looking through `affine.apply`.
pub fn resolve_index(ctx: &Context, index: ValueId) -> IndexExpr {
    // Direct induction variable.
    if let Some(block) = ctx.value(index).owner_block() {
        if let Some(region) = ctx.block(block).parent_region {
            if let Some(owner) = ctx.region(region).parent_op {
                if ctx.op(owner).is(loops::FOR) && ctx.block(block).args.first() == Some(&index) {
                    return IndexExpr::Strided {
                        loop_op: owner,
                        stride: 1,
                        offset: 0,
                    };
                }
            }
        }
    }
    // Result of an op.
    if let Some(def) = ctx.value(index).defining_op() {
        let op = ctx.op(def);
        if op.is(APPLY) {
            let stride = op.attr_int("stride").unwrap_or(1);
            let offset = op.attr_int("offset").unwrap_or(0);
            match resolve_index(ctx, op.operands[0]) {
                IndexExpr::Strided {
                    loop_op,
                    stride: s0,
                    offset: o0,
                } => {
                    return IndexExpr::Strided {
                        loop_op,
                        stride: stride * s0,
                        offset: stride * o0 + offset,
                    }
                }
                IndexExpr::Constant(c) => return IndexExpr::Constant(stride * c + offset),
                IndexExpr::Unknown => return IndexExpr::Unknown,
            }
        }
        if op.is(hida_ir_core::op_names::CONSTANT) {
            if let Some(v) = op.attr_int("value") {
                return IndexExpr::Constant(v);
            }
        }
    }
    IndexExpr::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::build_loop_nest;

    fn func_with_body(ctx: &mut Context) -> (OpId, hida_ir_core::BlockId) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let body = ctx.body_block(func);
        (func, body)
    }

    #[test]
    fn alloc_load_store_round_trip() {
        let mut ctx = Context::new();
        let (_, body) = func_with_body(&mut ctx);
        let (loops, ivs, inner) = build_loop_nest(&mut ctx, body, &[(0, 8, "i"), (0, 8, "j")]);
        let buf = {
            let mut b = OpBuilder::at_block_index(&mut ctx, body, 0);
            build_alloc(&mut b, Type::memref(vec![8, 8], Type::f32()), "A")
        };
        let mut b = OpBuilder::at_block_end(&mut ctx, inner);
        let loaded = build_load(&mut b, buf, &[ivs[0], ivs[1]]);
        let store = build_store(&mut b, loaded, buf, &[ivs[0], ivs[1]]);

        assert_eq!(ctx.value_type(loaded), &Type::f32());
        let load_op = ctx.value(loaded).defining_op().unwrap();
        assert_eq!(accessed_memref(&ctx, load_op), Some(buf));
        assert_eq!(accessed_memref(&ctx, store), Some(buf));
        assert_eq!(access_indices(&ctx, load_op), vec![ivs[0], ivs[1]]);
        assert_eq!(access_indices(&ctx, store), vec![ivs[0], ivs[1]]);
        assert_eq!(accessed_memref(&ctx, loops[0]), None);
    }

    #[test]
    fn resolve_index_sees_through_affine_apply() {
        let mut ctx = Context::new();
        let (_, body) = func_with_body(&mut ctx);
        let (loops, ivs, inner) = build_loop_nest(&mut ctx, body, &[(0, 16, "i")]);
        let mut b = OpBuilder::at_block_end(&mut ctx, inner);
        let scaled = build_apply(&mut b, ivs[0], 2, 0);
        let shifted = build_apply(&mut b, scaled, 1, 3);

        assert_eq!(
            resolve_index(&ctx, ivs[0]),
            IndexExpr::Strided {
                loop_op: loops[0],
                stride: 1,
                offset: 0
            }
        );
        assert_eq!(
            resolve_index(&ctx, scaled),
            IndexExpr::Strided {
                loop_op: loops[0],
                stride: 2,
                offset: 0
            }
        );
        assert_eq!(
            resolve_index(&ctx, shifted),
            IndexExpr::Strided {
                loop_op: loops[0],
                stride: 2,
                offset: 3
            }
        );
    }

    #[test]
    fn resolve_index_handles_constants_and_unknowns() {
        let mut ctx = Context::new();
        let (func, _) = func_with_body(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(5, Type::Index);
        let scaled = build_apply(&mut b, c, 4, 1);
        let (_, unknown) = b.create("arith.muli", vec![c, c], vec![Type::Index], vec![]);
        assert_eq!(resolve_index(&ctx, c), IndexExpr::Constant(5));
        assert_eq!(resolve_index(&ctx, scaled), IndexExpr::Constant(21));
        assert_eq!(resolve_index(&ctx, unknown[0]), IndexExpr::Unknown);
    }

    #[test]
    #[should_panic(expected = "memref.alloc requires a memref type")]
    fn alloc_rejects_non_memref_types() {
        let mut ctx = Context::new();
        let (func, _) = func_with_body(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        build_alloc(&mut b, Type::f32(), "bad");
    }

    #[test]
    fn copy_links_source_and_destination() {
        let mut ctx = Context::new();
        let (func, _) = func_with_body(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let a = build_alloc(&mut b, Type::memref(vec![4], Type::i8()), "a");
        let c = build_alloc(&mut b, Type::memref(vec![4], Type::i8()), "c");
        let copy = build_copy(&mut b, a, c);
        assert_eq!(ctx.op(copy).operands, vec![a, c]);
        assert!(ctx.op(copy).is(COPY));
    }
}
