//! HLS directive attributes (the ScaleHLS "Directive IR" HIDA reuses, Figure 5).
//!
//! Directives describe micro-architectural decisions that downstream HLS tools apply
//! when generating RTL: loop pipelining and unrolling (handled on the loop ops in
//! [`crate::loops`]), array partitioning, buffer placement, and tiling. Array
//! partitioning is central to HIDA's connection-aware parallelization — Table 6 of
//! the paper reports the partition factors and bank counts chosen for Listing 1.

use hida_ir_core::{Attribute, Context, OpId};

/// How one dimension of a buffer is split into banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionFashion {
    /// No partitioning: the whole dimension lives in one bank.
    None,
    /// Elements are distributed round-robin across banks (`addr mod factor`).
    Cyclic,
    /// Contiguous blocks of elements go to the same bank (`addr / block`).
    Block,
    /// Every element gets its own bank (complete partitioning / registers).
    Complete,
}

impl PartitionFashion {
    /// Canonical string form used in attributes and the HLS C++ emitter.
    pub fn as_str(self) -> &'static str {
        match self {
            PartitionFashion::None => "none",
            PartitionFashion::Cyclic => "cyclic",
            PartitionFashion::Block => "block",
            PartitionFashion::Complete => "complete",
        }
    }

    /// Parses the canonical string form (unknown strings map to `None`).
    pub fn parse(s: &str) -> PartitionFashion {
        match s {
            "cyclic" => PartitionFashion::Cyclic,
            "block" => PartitionFashion::Block,
            "complete" => PartitionFashion::Complete,
            _ => PartitionFashion::None,
        }
    }
}

/// Where a buffer is physically placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// On-chip block RAM (dual-port).
    Bram,
    /// On-chip UltraRAM.
    Uram,
    /// Distributed LUT RAM / registers.
    Lutram,
    /// External (off-chip) memory reached through AXI.
    External,
}

impl MemoryKind {
    /// Canonical string form.
    pub fn as_str(self) -> &'static str {
        match self {
            MemoryKind::Bram => "bram",
            MemoryKind::Uram => "uram",
            MemoryKind::Lutram => "lutram",
            MemoryKind::External => "external",
        }
    }

    /// Parses the canonical string form (unknown strings map to `Bram`).
    pub fn parse(s: &str) -> MemoryKind {
        match s {
            "uram" => MemoryKind::Uram,
            "lutram" => MemoryKind::Lutram,
            "external" => MemoryKind::External,
            _ => MemoryKind::Bram,
        }
    }
}

/// A complete array-partition directive: one fashion and factor per buffer dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayPartition {
    /// Partition fashion per dimension.
    pub fashions: Vec<PartitionFashion>,
    /// Partition factor per dimension (1 = unpartitioned).
    pub factors: Vec<i64>,
}

impl ArrayPartition {
    /// Creates an unpartitioned directive for a buffer of the given rank.
    pub fn none(rank: usize) -> Self {
        ArrayPartition {
            fashions: vec![PartitionFashion::None; rank],
            factors: vec![1; rank],
        }
    }

    /// Creates a cyclic partition with the given per-dimension factors.
    pub fn cyclic(factors: Vec<i64>) -> Self {
        let fashions = factors
            .iter()
            .map(|&f| {
                if f > 1 {
                    PartitionFashion::Cyclic
                } else {
                    PartitionFashion::None
                }
            })
            .collect();
        ArrayPartition { fashions, factors }
    }

    /// Total number of banks implied by the directive (product of factors).
    pub fn bank_count(&self) -> i64 {
        self.factors.iter().map(|&f| f.max(1)).product()
    }
}

/// Attribute key holding the partition fashions.
pub const ATTR_PARTITION_FASHIONS: &str = "partition_fashions";
/// Attribute key holding the partition factors.
pub const ATTR_PARTITION_FACTORS: &str = "partition_factors";
/// Attribute key holding the tiling factors of a buffer.
pub const ATTR_TILE_FACTORS: &str = "tile_factors";
/// Attribute key holding the vectorization factors of a buffer.
pub const ATTR_VECTOR_FACTORS: &str = "vector_factors";
/// Attribute key holding the memory placement.
pub const ATTR_MEMORY_KIND: &str = "memory_kind";

/// Attaches an array-partition directive to a buffer-producing operation
/// (`memref.alloc` or `hida.buffer`).
pub fn set_array_partition(ctx: &mut Context, buffer_op: OpId, partition: &ArrayPartition) {
    let op = ctx.op_mut(buffer_op);
    op.set_attr(
        ATTR_PARTITION_FASHIONS,
        Attribute::StrArray(
            partition
                .fashions
                .iter()
                .map(|f| f.as_str().to_string())
                .collect(),
        ),
    );
    op.set_attr(
        ATTR_PARTITION_FACTORS,
        Attribute::IntArray(partition.factors.clone()),
    );
}

/// Reads the array-partition directive of a buffer-producing operation, defaulting to
/// an unpartitioned directive of the given rank when absent.
pub fn get_array_partition(ctx: &Context, buffer_op: OpId, rank: usize) -> ArrayPartition {
    let op = ctx.op(buffer_op);
    let fashions = op
        .attributes
        .get(ATTR_PARTITION_FASHIONS)
        .and_then(Attribute::as_str_array)
        .map(|v| v.iter().map(|s| PartitionFashion::parse(s)).collect())
        .unwrap_or_else(|| vec![PartitionFashion::None; rank]);
    let factors = op
        .attr_int_array(ATTR_PARTITION_FACTORS)
        .map(|v| v.to_vec())
        .unwrap_or_else(|| vec![1; rank]);
    ArrayPartition { fashions, factors }
}

/// Sets the memory placement of a buffer-producing operation.
pub fn set_memory_kind(ctx: &mut Context, buffer_op: OpId, kind: MemoryKind) {
    ctx.op_mut(buffer_op)
        .set_attr(ATTR_MEMORY_KIND, kind.as_str());
}

/// Reads the memory placement of a buffer-producing operation (defaults to BRAM).
pub fn get_memory_kind(ctx: &Context, buffer_op: OpId) -> MemoryKind {
    ctx.op(buffer_op)
        .attr_str(ATTR_MEMORY_KIND)
        .map(MemoryKind::parse)
        .unwrap_or(MemoryKind::Bram)
}

/// Sets the tiling factors of a buffer-producing operation.
pub fn set_tile_factors(ctx: &mut Context, buffer_op: OpId, factors: Vec<i64>) {
    ctx.op_mut(buffer_op).set_attr(ATTR_TILE_FACTORS, factors);
}

/// Reads the tiling factors of a buffer-producing operation (defaults to all-1).
pub fn get_tile_factors(ctx: &Context, buffer_op: OpId, rank: usize) -> Vec<i64> {
    ctx.op(buffer_op)
        .attr_int_array(ATTR_TILE_FACTORS)
        .map(|v| v.to_vec())
        .unwrap_or_else(|| vec![1; rank])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_ir_core::{OpBuilder, Type};

    fn buffer_op(ctx: &mut Context) -> OpId {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(ctx, func);
        let buf = crate::memory::build_alloc(&mut b, Type::memref(vec![16, 16], Type::f32()), "A");
        ctx.value(buf).defining_op().unwrap()
    }

    #[test]
    fn partition_fashion_and_memory_kind_round_trip_strings() {
        for f in [
            PartitionFashion::None,
            PartitionFashion::Cyclic,
            PartitionFashion::Block,
            PartitionFashion::Complete,
        ] {
            assert_eq!(PartitionFashion::parse(f.as_str()), f);
        }
        for k in [
            MemoryKind::Bram,
            MemoryKind::Uram,
            MemoryKind::Lutram,
            MemoryKind::External,
        ] {
            assert_eq!(MemoryKind::parse(k.as_str()), k);
        }
        assert_eq!(PartitionFashion::parse("bogus"), PartitionFashion::None);
        assert_eq!(MemoryKind::parse("bogus"), MemoryKind::Bram);
    }

    #[test]
    fn bank_count_is_product_of_factors() {
        let p = ArrayPartition::cyclic(vec![4, 8]);
        assert_eq!(p.bank_count(), 32);
        assert_eq!(p.fashions[0], PartitionFashion::Cyclic);
        let none = ArrayPartition::none(3);
        assert_eq!(none.bank_count(), 1);
        let mixed = ArrayPartition::cyclic(vec![1, 8]);
        assert_eq!(mixed.fashions[0], PartitionFashion::None);
        assert_eq!(mixed.bank_count(), 8);
    }

    #[test]
    fn partition_directive_round_trips_through_attributes() {
        let mut ctx = Context::new();
        let buf = buffer_op(&mut ctx);
        // Default: unpartitioned.
        let def = get_array_partition(&ctx, buf, 2);
        assert_eq!(def, ArrayPartition::none(2));

        let p = ArrayPartition {
            fashions: vec![PartitionFashion::Cyclic, PartitionFashion::Block],
            factors: vec![4, 4],
        };
        set_array_partition(&mut ctx, buf, &p);
        assert_eq!(get_array_partition(&ctx, buf, 2), p);
    }

    #[test]
    fn memory_kind_and_tile_factors_round_trip() {
        let mut ctx = Context::new();
        let buf = buffer_op(&mut ctx);
        assert_eq!(get_memory_kind(&ctx, buf), MemoryKind::Bram);
        set_memory_kind(&mut ctx, buf, MemoryKind::External);
        assert_eq!(get_memory_kind(&ctx, buf), MemoryKind::External);

        assert_eq!(get_tile_factors(&ctx, buf, 2), vec![1, 1]);
        set_tile_factors(&mut ctx, buf, vec![8, 8]);
        assert_eq!(get_tile_factors(&ctx, buf, 2), vec![8, 8]);
    }
}
