//! Loop and layer transformations used by HIDA-OPT.
//!
//! The parallelization step (paper §6.5, Algorithm 4) ultimately applies per-loop
//! unroll factors, pipelining, and tiling annotations to the body of every dataflow
//! node; the array-partition step attaches partition directives to the buffers the
//! node touches. This module provides the mechanics of applying those decisions to
//! either explicit loop bands or named linalg layers.

//! Every mutating entry point has a *planned* twin (`plan_unroll_factors`,
//! `plan_tile_sizes`) that records the identical attribute writes into a
//! [`NodeScope`] instead of mutating the [`Context`] directly. The planned
//! variants are what the parallel pass manager's worker threads call: the
//! recorded edits merge back on the main thread, and because both twins write
//! the same attributes with the same values, `--jobs 1` and `--jobs N` produce
//! byte-identical IR.

use crate::linalg;
use crate::loops::{self, ForOp};
use hida_ir_core::{Attribute, Context, IrError, IrResult, NodeScope, OpId};

/// Attribute key holding per-dimension unroll factors on named layers and nodes.
pub const ATTR_UNROLL_FACTORS: &str = "unroll_factors";
/// Attribute key holding per-dimension tile sizes on named layers and nodes.
pub const ATTR_TILE_SIZES: &str = "tile_sizes";
/// Attribute key marking an op as pipelined.
pub const ATTR_PIPELINE: &str = "pipeline";

/// Applies unroll factors to a perfect loop band (one factor per loop, outermost
/// first). Factors are clamped to each loop's trip count.
///
/// # Errors
/// Returns an error when the number of factors does not match the band length.
pub fn apply_unroll_to_band(ctx: &mut Context, band: &[ForOp], factors: &[i64]) -> IrResult<()> {
    if band.len() != factors.len() {
        return Err(IrError::InvalidAttribute(format!(
            "band has {} loops but {} unroll factors were provided",
            band.len(),
            factors.len()
        )));
    }
    for (loop_op, &factor) in band.iter().zip(factors) {
        let clamped = factor.clamp(1, loop_op.trip_count(ctx).max(1));
        loop_op.set_unroll_factor(ctx, clamped);
    }
    Ok(())
}

/// Marks the innermost loop of a band as pipelined with the given initiation interval.
pub fn pipeline_innermost(ctx: &mut Context, band: &[ForOp], ii: i64) {
    if let Some(inner) = band.last() {
        inner.set_pipeline(ctx, ii);
    }
}

/// Applies unroll factors to the body of `op` (a node, task or function):
/// explicit loop bands get per-loop directives, named layers get an
/// `unroll_factors` attribute, and the op itself records the factors for later
/// inspection by the estimator and the emitter.
///
/// # Errors
/// Returns an error when an explicit band exists and the factor count mismatches.
pub fn apply_unroll_factors(ctx: &mut Context, op: OpId, factors: &[i64]) -> IrResult<()> {
    let top = loops::top_level_loops(ctx, op);
    if let Some(&outer) = top.first() {
        let band = loops::loop_band(ctx, outer.id());
        if band.len() == factors.len() {
            apply_unroll_to_band(ctx, &band, factors)?;
            pipeline_innermost(ctx, &band, 1);
        }
    }
    for nested in hida_ir_core::walk::collect_preorder(ctx, op) {
        if nested != op && linalg::LinalgOp::from_op(ctx, nested).is_some() {
            ctx.op_mut(nested)
                .set_attr(ATTR_UNROLL_FACTORS, factors.to_vec());
        }
    }
    ctx.op_mut(op)
        .set_attr(ATTR_UNROLL_FACTORS, factors.to_vec());
    ctx.op_mut(op).set_attr(ATTR_PIPELINE, Attribute::Unit);
    Ok(())
}

/// The planned twin of [`apply_unroll_factors`]: records the identical
/// attribute writes (per-loop unroll/pipeline directives, layer and op
/// annotations) into `scope` for the main-thread merge of a parallel pass.
///
/// # Errors
/// Propagates scope violations (an edit escaping the worker's node region).
pub fn plan_unroll_factors(scope: &mut NodeScope<'_>, op: OpId, factors: &[i64]) -> IrResult<()> {
    let ctx = scope.ctx();
    let top = loops::top_level_loops(ctx, op);
    if let Some(&outer) = top.first() {
        let band = loops::loop_band(ctx, outer.id());
        if band.len() == factors.len() {
            for (loop_op, &factor) in band.iter().zip(factors) {
                let clamped = factor.clamp(1, loop_op.trip_count(ctx).max(1));
                scope.set_attr(loop_op.id(), "unroll_factor", clamped.max(1))?;
            }
            if let Some(inner) = band.last() {
                scope.set_attr(inner.id(), ATTR_PIPELINE, Attribute::Unit)?;
                scope.set_attr(inner.id(), "pipeline_ii", 1_i64)?;
            }
        }
    }
    for nested in hida_ir_core::walk::collect_preorder(ctx, op) {
        if nested != op && linalg::LinalgOp::from_op(ctx, nested).is_some() {
            scope.set_attr(nested, ATTR_UNROLL_FACTORS, factors.to_vec())?;
        }
    }
    scope.set_attr(op, ATTR_UNROLL_FACTORS, factors.to_vec())?;
    scope.set_attr(op, ATTR_PIPELINE, Attribute::Unit)?;
    Ok(())
}

/// Reads the unroll factors recorded on `op` (node, layer or loop-band owner),
/// defaulting to all-1 factors of the given rank.
pub fn unroll_factors_of(ctx: &Context, op: OpId, rank: usize) -> Vec<i64> {
    if let Some(factors) = ctx.op(op).attr_int_array(ATTR_UNROLL_FACTORS) {
        return factors.to_vec();
    }
    // Fall back to per-loop directives of the primary band.
    let top = loops::top_level_loops(ctx, op);
    if let Some(&outer) = top.first() {
        let band = loops::loop_band(ctx, outer.id());
        if !band.is_empty() {
            return band.iter().map(|l| l.unroll_factor(ctx)).collect();
        }
    }
    vec![1; rank]
}

/// Total parallelism implied by a set of unroll factors (their product).
pub fn total_parallelism(factors: &[i64]) -> i64 {
    factors.iter().map(|&f| f.max(1)).product::<i64>().max(1)
}

/// Records per-dimension tile sizes on `op` and on every named layer in its body.
pub fn apply_tile_sizes(ctx: &mut Context, op: OpId, tile_sizes: &[i64]) {
    ctx.op_mut(op)
        .set_attr(ATTR_TILE_SIZES, tile_sizes.to_vec());
    for nested in hida_ir_core::walk::collect_preorder(ctx, op) {
        if nested != op && linalg::LinalgOp::from_op(ctx, nested).is_some() {
            ctx.op_mut(nested)
                .set_attr(ATTR_TILE_SIZES, tile_sizes.to_vec());
        }
    }
}

/// The planned twin of [`apply_tile_sizes`]: records the identical attribute
/// writes into `scope` for the main-thread merge of a parallel pass.
///
/// # Errors
/// Propagates scope violations (an edit escaping the worker's node region).
pub fn plan_tile_sizes(scope: &mut NodeScope<'_>, op: OpId, tile_sizes: &[i64]) -> IrResult<()> {
    let ctx = scope.ctx();
    scope.set_attr(op, ATTR_TILE_SIZES, tile_sizes.to_vec())?;
    for nested in hida_ir_core::walk::collect_preorder(ctx, op) {
        if nested != op && linalg::LinalgOp::from_op(ctx, nested).is_some() {
            scope.set_attr(nested, ATTR_TILE_SIZES, tile_sizes.to_vec())?;
        }
    }
    Ok(())
}

/// Reads the tile sizes recorded on `op`, defaulting to the full extents
/// (i.e. "one tile covers everything") of the given rank.
pub fn tile_sizes_of(ctx: &Context, op: OpId, _rank: usize) -> Option<Vec<i64>> {
    ctx.op(op)
        .attr_int_array(ATTR_TILE_SIZES)
        .map(|v| v.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{build_layer, LinalgOp};
    use crate::loops::build_loop_nest;
    use hida_ir_core::{OpBuilder, Type};

    fn loop_func(ctx: &mut Context) -> (OpId, Vec<ForOp>) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let body = ctx.body_block(func);
        let (loops, _, inner) = build_loop_nest(ctx, body, &[(0, 16, "i"), (0, 8, "j")]);
        OpBuilder::at_block_end(ctx, inner).create_constant_int(0, Type::i32());
        (func, loops.into_iter().map(ForOp).collect())
    }

    #[test]
    fn unroll_factors_are_applied_and_clamped() {
        let mut ctx = Context::new();
        let (func, band) = loop_func(&mut ctx);
        apply_unroll_to_band(&mut ctx, &band, &[4, 32]).unwrap();
        assert_eq!(band[0].unroll_factor(&ctx), 4);
        // 32 exceeds the trip count of 8 and is clamped.
        assert_eq!(band[1].unroll_factor(&ctx), 8);
        assert_eq!(unroll_factors_of(&ctx, func, 2), vec![4, 8]);
    }

    #[test]
    fn mismatched_factor_count_is_rejected() {
        let mut ctx = Context::new();
        let (_, band) = loop_func(&mut ctx);
        assert!(apply_unroll_to_band(&mut ctx, &band, &[4]).is_err());
    }

    #[test]
    fn apply_unroll_factors_handles_bands_and_records_on_op() {
        let mut ctx = Context::new();
        let (func, band) = loop_func(&mut ctx);
        apply_unroll_factors(&mut ctx, func, &[2, 4]).unwrap();
        assert_eq!(band[0].unroll_factor(&ctx), 2);
        assert_eq!(band[1].unroll_factor(&ctx), 4);
        assert!(band[1].is_pipelined(&ctx));
        assert_eq!(unroll_factors_of(&ctx, func, 2), vec![2, 4]);
        assert!(ctx.op(func).has_flag(ATTR_PIPELINE));
    }

    #[test]
    fn apply_unroll_factors_annotates_named_layers() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("layer", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let (_, input) = b.create(
            "test.source",
            vec![],
            vec![Type::tensor(vec![8, 8, 8], Type::i8())],
            vec![],
        );
        let out = build_layer(
            &mut b,
            &LinalgOp::Conv2d {
                in_channels: 8,
                out_channels: 8,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            &[input[0]],
            "conv",
        );
        let layer_op = ctx.value(out).defining_op().unwrap();
        apply_unroll_factors(&mut ctx, func, &[2, 2, 1, 1, 1, 1]).unwrap();
        assert_eq!(
            ctx.op(layer_op).attr_int_array(ATTR_UNROLL_FACTORS),
            Some(&[2_i64, 2, 1, 1, 1, 1][..])
        );
    }

    /// The planned twins must write exactly what the direct application writes:
    /// this is the parity the parallel pass manager relies on for `--jobs N`
    /// output to match `--jobs 1`.
    #[test]
    fn planned_transforms_match_direct_application() {
        let build = || {
            let mut ctx = Context::new();
            let (func, _) = loop_func(&mut ctx);
            (ctx, func)
        };
        let (mut direct_ctx, direct_func) = build();
        apply_unroll_factors(&mut direct_ctx, direct_func, &[2, 4]).unwrap();
        apply_tile_sizes(&mut direct_ctx, direct_func, &[8, 4]);

        let (mut planned_ctx, planned_func) = build();
        let mut scope = NodeScope::new(&planned_ctx, planned_func);
        plan_unroll_factors(&mut scope, planned_func, &[2, 4]).unwrap();
        plan_tile_sizes(&mut scope, planned_func, &[8, 4]).unwrap();
        let edits = scope.into_edits();
        planned_ctx.apply_attr_edits(edits);

        assert_eq!(
            hida_ir_core::printer::print_op(&direct_ctx, direct_func),
            hida_ir_core::printer::print_op(&planned_ctx, planned_func)
        );
    }

    #[test]
    fn tile_sizes_round_trip_and_parallelism_product() {
        let mut ctx = Context::new();
        let (func, _) = loop_func(&mut ctx);
        assert_eq!(tile_sizes_of(&ctx, func, 2), None);
        apply_tile_sizes(&mut ctx, func, &[8, 4]);
        assert_eq!(
            ctx.op(func).attr_int_array(ATTR_TILE_SIZES),
            Some(&[8_i64, 4][..])
        );
        assert_eq!(total_parallelism(&[4, 8, 1]), 32);
        assert_eq!(total_parallelism(&[]), 1);
    }
}
