//! Vitis-HLS-only baseline ("Vitis designs are solely optimized by Vitis HLS").
//!
//! Out of the box, Vitis HLS pipelines innermost loops but performs no loop
//! unrolling, no array partitioning, no dataflow restructuring and no external-memory
//! tiling. The resulting design executes the kernel as one sequential task.

use hida_dialects::loops;
use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::device::FpgaDevice;
use hida_estimator::report::DesignEstimate;
use hida_ir_core::{Context, OpId};

/// Applies the default Vitis HLS behaviour to `func`: pipeline every innermost loop
/// with no unrolling. Returns the annotated function (unchanged id).
pub fn compile(ctx: &mut Context, func: OpId) -> OpId {
    for loop_op in loops::all_loops(ctx, func) {
        if loop_op.is_innermost(ctx) {
            loop_op.set_pipeline(ctx, 1);
        }
    }
    func
}

/// Compiles and estimates `func` as a sequential Vitis-only design.
pub fn estimate(ctx: &mut Context, func: OpId, device: &FpgaDevice) -> DesignEstimate {
    compile(ctx, func);
    DataflowEstimator::new(device.clone()).estimate_function(ctx, func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};
    use hida_opt::{HidaOptimizer, HidaOptions};

    #[test]
    fn vitis_pipelines_innermost_loops_only() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::Gesummv, 32);
        compile(&mut ctx, func);
        for loop_op in loops::all_loops(&ctx, func) {
            if loop_op.is_innermost(&ctx) {
                assert!(loop_op.is_pipelined(&ctx));
            } else {
                assert!(!loop_op.is_pipelined(&ctx));
            }
            assert_eq!(loop_op.unroll_factor(&ctx), 1);
        }
    }

    #[test]
    fn hida_beats_vitis_by_a_wide_margin() {
        let device = FpgaDevice::zu3eg();
        let mut ctx_v = Context::new();
        let module = ctx_v.create_module("m");
        let func_v = build_kernel(&mut ctx_v, module, PolybenchKernel::TwoMm, 64);
        let vitis = estimate(&mut ctx_v, func_v, &device);

        let mut ctx_h = Context::new();
        let module = ctx_h.create_module("m");
        let func_h = build_kernel(&mut ctx_h, module, PolybenchKernel::TwoMm, 64);
        let schedule = HidaOptimizer::new(HidaOptions::polybench())
            .run(&mut ctx_h, func_h)
            .unwrap();
        let hida = DataflowEstimator::new(device).estimate_schedule(&ctx_h, schedule, true);

        // Table 7 reports 1.2x-195x: HIDA must be at least several times faster.
        assert!(
            hida.speedup_over(&vitis) > 3.0,
            "hida speedup over vitis was only {:.2}x",
            hida.speedup_over(&vitis)
        );
    }
}
