//! SOFF-style baseline.
//!
//! SOFF is an OpenCL HLS framework with static scheduling: it parallelizes work-items
//! uniformly across a kernel but does not build coarse-grained dataflow pipelines or
//! align memory layouts across kernels. We model it as a single sequential task with
//! a fixed, uniform unroll factor on the innermost loop band and matching naive
//! partitioning — the behaviour that produces the mixed results of Table 7 (better
//! than Vitis, usually behind HIDA, occasionally ahead on simple kernels).

use hida_dialects::hls::{set_array_partition, ArrayPartition};
use hida_dialects::loops;
use hida_dialects::transforms;
use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::device::FpgaDevice;
use hida_estimator::report::DesignEstimate;
use hida_ir_core::{Context, OpId};

/// The uniform unroll factor applied by the SOFF-style baseline.
pub const SOFF_UNROLL: i64 = 8;

/// Applies the SOFF-style static schedule to `func`.
pub fn compile(ctx: &mut Context, func: OpId) -> OpId {
    for outer in loops::top_level_loops(ctx, func) {
        let band = loops::loop_band(ctx, outer.id());
        // Unroll the innermost loop of every band by the uniform factor.
        let mut factors = vec![1_i64; band.len()];
        if let Some(last) = factors.last_mut() {
            *last = SOFF_UNROLL;
        }
        let _ = transforms::apply_unroll_to_band(ctx, &band, &factors);
        transforms::pipeline_innermost(ctx, &band, 1);
    }
    // Partition every function-level array cyclically on its last dimension.
    for alloc in ctx.collect_ops(func, hida_dialects::memory::ALLOC) {
        let value = ctx.op(alloc).results[0];
        let rank = ctx.value_type(value).shape().map(|s| s.len()).unwrap_or(0);
        if rank == 0 {
            continue;
        }
        let mut factors = vec![1_i64; rank];
        factors[rank - 1] = SOFF_UNROLL;
        set_array_partition(ctx, alloc, &ArrayPartition::cyclic(factors));
    }
    func
}

/// Compiles and estimates `func` as a SOFF-style sequential design.
pub fn estimate(ctx: &mut Context, func: OpId, device: &FpgaDevice) -> DesignEstimate {
    compile(ctx, func);
    DataflowEstimator::new(device.clone()).estimate_function(ctx, func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vitis;
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};

    #[test]
    fn soff_unrolls_innermost_loops_and_partitions_arrays() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_kernel(&mut ctx, module, PolybenchKernel::Mvt, 64);
        compile(&mut ctx, func);
        let innermost_unrolled = loops::all_loops(&ctx, func)
            .iter()
            .filter(|l| l.is_innermost(&ctx) && l.unroll_factor(&ctx) == SOFF_UNROLL)
            .count();
        assert!(innermost_unrolled >= 2);
    }

    #[test]
    fn soff_is_faster_than_plain_vitis() {
        let device = FpgaDevice::zu3eg();
        let mut ctx_s = Context::new();
        let module = ctx_s.create_module("m");
        let f_s = build_kernel(&mut ctx_s, module, PolybenchKernel::Gesummv, 64);
        let soff = estimate(&mut ctx_s, f_s, &device);

        let mut ctx_v = Context::new();
        let module = ctx_v.create_module("m");
        let f_v = build_kernel(&mut ctx_v, module, PolybenchKernel::Gesummv, 64);
        let vit = vitis::estimate(&mut ctx_v, f_v, &device);
        assert!(soff.throughput() > vit.throughput());
    }
}
