//! DNNBuilder-style analytic model.
//!
//! DNNBuilder is a hand-tuned, RTL-based DNN accelerator generator that pipelines one
//! dedicated IP per layer and reaches very high DSP efficiency (79.7%-96.2% in
//! Table 8). It only supports plain CNN topologies: no residual shortcuts, no
//! depthwise convolutions, and no fully-connected-only networks. Because its IPs are
//! RTL (not produced by an HLS flow we can run), we model it analytically at the
//! efficiency levels the paper reports.

use hida_estimator::device::FpgaDevice;
use hida_estimator::report::DesignEstimate;
use hida_estimator::resource::Resources;
use hida_frontend::nn::Model;

/// DSP efficiency achieved by the hand-tuned RTL pipeline.
pub const DNNBUILDER_DSP_EFFICIENCY: f64 = 0.88;
/// Fraction of the device's DSPs the generator typically instantiates.
pub const DNNBUILDER_DSP_BUDGET: f64 = 0.45;

/// Returns true when DNNBuilder supports the model (Table 8: ResNet-18 and MobileNet
/// are unsupported because of shortcut paths and depthwise convolutions; the MLP has
/// no convolution layers to map onto its CNN pipeline).
pub fn supports(model: Model) -> bool {
    matches!(
        model,
        Model::ZfNet | Model::Vgg16 | Model::TinyYolo | Model::LeNet
    )
}

/// Analytic estimate of a DNNBuilder design for a model with `macs_per_sample`
/// multiply-accumulates per inference on `device`.
///
/// Returns `None` for unsupported models.
pub fn estimate(model: Model, macs_per_sample: i64, device: &FpgaDevice) -> Option<DesignEstimate> {
    if !supports(model) {
        return None;
    }
    let dsp = (device.dsp as f64 * DNNBUILDER_DSP_BUDGET) as i64;
    // Every DSP retires `efficiency` MACs per cycle on average.
    let macs_per_cycle = dsp as f64 * DNNBUILDER_DSP_EFFICIENCY;
    let interval = (macs_per_sample as f64 / macs_per_cycle).ceil().max(1.0) as i64;
    let resources = Resources::new(
        dsp,
        (device.bram_18k as f64 * 0.55) as i64,
        (device.lut as f64 * 0.4) as i64,
        (device.ff as f64 * 0.3) as i64,
    );
    Some(DesignEstimate {
        name: format!("dnnbuilder-{}", model.name()),
        interval_cycles: interval,
        latency_cycles: interval * 2,
        resources,
        macs_per_sample,
        node_estimates: vec![],
        buffer_count: 0,
        clock_mhz: device.clock_mhz,
        utilization: resources.utilization(device),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_matrix_matches_table8() {
        assert!(!supports(Model::ResNet18), "no shortcut support");
        assert!(!supports(Model::MobileNetV1), "no depthwise support");
        assert!(!supports(Model::Mlp));
        assert!(supports(Model::ZfNet));
        assert!(supports(Model::Vgg16));
        assert!(supports(Model::TinyYolo));
    }

    #[test]
    fn estimate_reaches_reported_efficiency() {
        let device = FpgaDevice::vu9p_slr();
        let est = estimate(Model::Vgg16, 15_500_000_000, &device).unwrap();
        // The analytic model is self-consistent: measured efficiency equals the
        // modelled constant within rounding.
        assert!((est.dsp_efficiency() - DNNBUILDER_DSP_EFFICIENCY).abs() < 0.05);
        assert!(est.throughput() > 1.0);
        assert!(estimate(Model::ResNet18, 1_800_000_000, &device).is_none());
    }
}
