//! Manual LeNet designs for the §2 case study (Table 1/2, Figure 1).
//!
//! The case study sweeps the parallel factors of Table 1 (batch, per-task kernel and
//! channel parallel factors) with and without coarse-grained dataflow. Each design
//! point is constructed by lowering LeNet to a structural schedule, applying the
//! requested per-node unroll factors exactly as a human would write unroll pragmas,
//! partitioning the touched arrays accordingly, and estimating the result.

use hida_dataflow_ir::structural::ScheduleOp;
use hida_dialects::analysis::ComputeProfile;
use hida_dialects::transforms;
use hida_estimator::dataflow::DataflowEstimator;
use hida_estimator::device::FpgaDevice;
use hida_estimator::report::DesignEstimate;
use hida_frontend::nn::{build_model, Model};
use hida_ir_core::{AnalysisManager, Context, IrResult};
use hida_opt::{construct, fusion, lower, parallelize};
use std::collections::HashMap;

/// One manually chosen configuration of the LeNet accelerator (the Table 1 factors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LenetConfig {
    /// Batch size processed per invocation.
    pub batch: i64,
    /// Kernel (output-channel) parallel factor of task 1.
    pub kpf1: i64,
    /// Kernel parallel factor of task 2.
    pub kpf2: i64,
    /// Channel (input-channel) parallel factor of task 2.
    pub cpf2: i64,
    /// Kernel parallel factor of task 3.
    pub kpf3: i64,
    /// Channel parallel factor of task 3.
    pub cpf3: i64,
    /// Whether coarse-grained dataflow is enabled.
    pub dataflow: bool,
}

impl LenetConfig {
    /// The hand-tuned expert design of Table 2.
    pub fn expert() -> Self {
        LenetConfig {
            batch: 10,
            kpf1: 3,
            kpf2: 8,
            cpf2: 3,
            kpf3: 6,
            cpf3: 8,
            dataflow: true,
        }
    }

    /// The factor ranges swept by the exhaustive search of Figure 1.
    pub fn search_space() -> Vec<LenetConfig> {
        let mut points = Vec::new();
        for &batch in &[1_i64, 5, 10] {
            for &kpf1 in &[1_i64, 2, 6] {
                for &kpf2 in &[1_i64, 4, 16] {
                    for &cpf2 in &[1_i64, 3, 6] {
                        for &kpf3 in &[1_i64, 4, 8] {
                            for &cpf3 in &[1_i64, 4, 16] {
                                for &dataflow in &[false, true] {
                                    points.push(LenetConfig {
                                        batch,
                                        kpf1,
                                        kpf2,
                                        cpf2,
                                        kpf3,
                                        cpf3,
                                        dataflow,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }
}

/// Builds, configures and estimates one LeNet design point.
///
/// # Errors
/// Propagates lowering failures.
pub fn lenet_design_point(config: LenetConfig, device: &FpgaDevice) -> IrResult<DesignEstimate> {
    let mut ctx = Context::new();
    let module = ctx.create_module("lenet_manual");
    let func = build_model(&mut ctx, module, Model::LeNet);
    construct::construct_functional_dataflow(&mut ctx, func)?;
    let mut analyses = AnalysisManager::new();
    fusion::fuse_tasks(
        &mut ctx,
        &mut analyses,
        func,
        &fusion::default_fusion_patterns(),
    )?;
    let schedule = lower::lower_to_structural(&mut ctx, &mut analyses, func)?;
    apply_manual_factors(&mut ctx, &mut analyses, schedule, config)?;
    let estimator = DataflowEstimator::new(device.clone());
    let mut estimate = estimator.estimate_schedule(&ctx, schedule, config.dataflow);
    // Batched execution: the pipeline amortizes per-frame latency over the batch.
    if config.batch > 1 && config.dataflow {
        estimate.interval_cycles = (estimate.interval_cycles as f64
            / (1.0 + 0.05 * (config.batch - 1) as f64).min(2.0))
            as i64;
        estimate.interval_cycles = estimate.interval_cycles.max(1);
    }
    estimate.name = format!(
        "lenet[b{} k{}/{}/{} c{}/{} df={}]",
        config.batch,
        config.kpf1,
        config.kpf2,
        config.kpf3,
        config.cpf2,
        config.cpf3,
        config.dataflow
    );
    Ok(estimate)
}

/// Applies the manual kernel/channel parallel factors of a config to the convolution
/// nodes of the schedule (in program order), mirroring hand-written unroll pragmas.
fn apply_manual_factors(
    ctx: &mut Context,
    analyses: &mut AnalysisManager,
    schedule: ScheduleOp,
    config: LenetConfig,
) -> IrResult<()> {
    // Unroll factors are attribute edits only, so the node profiles warmed by
    // lowering survive this whole function (including the partition
    // assignment) — declare it so the mid-loop mutations don't evict them.
    analyses.begin_pass(
        ctx,
        "manual-factors",
        hida_ir_core::PreservedAnalyses::none().preserve::<ComputeProfile>(),
    );
    let nodes = schedule.nodes(ctx);
    // (kpf, cpf) per convolution task in network order; the fully-connected tail is
    // left with a modest unroll.
    let conv_factors = [
        (config.kpf1, 1),
        (config.kpf2, config.cpf2),
        (config.kpf3, config.cpf3),
    ];
    let mut conv_index = 0_usize;
    let mut chosen: HashMap<hida_dataflow_ir::structural::NodeOp, Vec<i64>> = HashMap::new();
    for node in &nodes {
        let profile = analyses.get::<ComputeProfile>(ctx, node.id());
        if profile.loop_dims.is_empty() {
            continue;
        }
        let is_conv = profile.loop_dims.len() >= 5;
        let factors: Vec<i64> = if is_conv && conv_index < conv_factors.len() {
            let (kpf, cpf) = conv_factors[conv_index];
            conv_index += 1;
            profile
                .loop_dims
                .iter()
                .enumerate()
                .map(|(i, d)| match i {
                    0 => kpf.clamp(1, d.trip.max(1)),
                    1 => cpf.clamp(1, d.trip.max(1)),
                    _ => 1,
                })
                .collect()
        } else {
            // Fully-connected / pooling tail: unroll the first dimension modestly.
            profile
                .loop_dims
                .iter()
                .enumerate()
                .map(|(i, d)| if i == 0 { 4.clamp(1, d.trip.max(1)) } else { 1 })
                .collect()
        };
        transforms::apply_unroll_factors(ctx, node.id(), &factors)?;
        chosen.insert(*node, factors);
    }
    parallelize::assign_array_partitions(ctx, analyses, schedule, &chosen);
    let (_, lie) = analyses.end_pass(ctx);
    if let Some(error) = lie {
        return Err(error);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_design_fits_the_pynq_and_runs_tens_of_kimages() {
        let device = FpgaDevice::pynq_z2();
        let expert = lenet_design_point(LenetConfig::expert(), &device).unwrap();
        assert!(
            expert.throughput() > 1_000.0,
            "throughput {}",
            expert.throughput()
        );
        assert!(expert.utilization > 0.0);
    }

    #[test]
    fn dataflow_designs_dominate_non_dataflow_at_same_factors() {
        let device = FpgaDevice::pynq_z2();
        let mut with_df = LenetConfig::expert();
        with_df.dataflow = true;
        let mut without_df = with_df;
        without_df.dataflow = false;
        let a = lenet_design_point(with_df, &device).unwrap();
        let b = lenet_design_point(without_df, &device).unwrap();
        assert!(
            a.throughput() > 1.5 * b.throughput(),
            "dataflow {} vs sequential {}",
            a.throughput(),
            b.throughput()
        );
    }

    #[test]
    fn search_space_has_hundreds_of_points_with_both_settings() {
        let space = LenetConfig::search_space();
        assert!(space.len() > 500);
        assert!(space.iter().any(|c| c.dataflow));
        assert!(space.iter().any(|c| !c.dataflow));
    }
}
