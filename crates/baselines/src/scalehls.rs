//! ScaleHLS-style baseline.
//!
//! ScaleHLS (the paper's main comparison point) legalizes a computation graph into a
//! dataflow design and optimizes each task with a QoR-estimator-driven DSE, but —
//! per §6 and §7.2 of the HIDA paper —
//!
//! * it ignores the inter-task design-space coupling (no connection awareness),
//! * it performs no dataflow-oriented balancing (shortcut paths stall),
//! * it has no external-memory access support, so every intermediate result stays in
//!   on-chip memory at full size,
//! * it cannot compile models with irregular convolutions or high-resolution inputs
//!   (ZFNet, YOLO).

use hida_dataflow_ir::structural::ScheduleOp;
use hida_estimator::device::FpgaDevice;
use hida_frontend::nn::Model;
use hida_ir_core::{AnalysisManager, Context, IrResult, OpId};
use hida_opt::{construct, lower, parallelize, ParallelMode};

/// Returns true when the ScaleHLS baseline supports the model (the paper reports no
/// results for ZFNet and YOLO).
pub fn supports(model: Model) -> bool {
    !matches!(model, Model::ZfNet | Model::TinyYolo)
}

/// Compiles `func` with the ScaleHLS-style flow and returns the resulting schedule.
///
/// # Errors
/// Propagates pass failures from the shared pass implementations.
pub fn compile(
    ctx: &mut Context,
    func: OpId,
    device: &FpgaDevice,
    max_parallel_factor: i64,
) -> IrResult<ScheduleOp> {
    construct::construct_functional_dataflow(ctx, func)?;
    // No task fusion, no multi-producer elimination, no balancing, no tiling.
    let mut analyses = AnalysisManager::new();
    let schedule = lower::lower_to_structural(ctx, &mut analyses, func)?;
    // Per-task intensity-aware DSE without connection awareness.
    parallelize::parallelize_schedule(
        ctx,
        &mut analyses,
        schedule,
        max_parallel_factor,
        ParallelMode::IaOnly,
        device,
    )?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_dialects::hls::MemoryKind;
    use hida_estimator::dataflow::DataflowEstimator;
    use hida_frontend::nn::build_model;
    use hida_frontend::polybench::{build_kernel, PolybenchKernel};
    use hida_opt::{HidaOptimizer, HidaOptions};

    #[test]
    fn scalehls_keeps_all_intermediates_on_chip() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = build_model(&mut ctx, module, Model::LeNet);
        let schedule = compile(&mut ctx, func, &FpgaDevice::pynq_z2(), 16).unwrap();
        let external = schedule
            .internal_buffers(&ctx)
            .iter()
            .filter(|b| b.memory_kind(&ctx) == MemoryKind::External)
            // The host input buffer is external in both flows.
            .filter(|b| !b.name(&ctx).contains("input"))
            .count();
        assert_eq!(external, 0, "scalehls has no external memory support");
    }

    #[test]
    fn hida_outperforms_scalehls_on_multi_loop_kernels() {
        let device = FpgaDevice::zu3eg();
        let estimator = DataflowEstimator::new(device.clone());

        let mut ctx_scale = Context::new();
        let module = ctx_scale.create_module("m");
        let func = build_kernel(&mut ctx_scale, module, PolybenchKernel::Mvt, 64);
        let scale_schedule = compile(&mut ctx_scale, func, &device, 16).unwrap();
        let scale = estimator.estimate_schedule(&ctx_scale, scale_schedule, true);

        let mut ctx_hida = Context::new();
        let module = ctx_hida.create_module("m");
        let func = build_kernel(&mut ctx_hida, module, PolybenchKernel::Mvt, 64);
        let hida_schedule = HidaOptimizer::new(HidaOptions::polybench())
            .run(&mut ctx_hida, func)
            .unwrap();
        let hida = estimator.estimate_schedule(&ctx_hida, hida_schedule, true);

        assert!(
            hida.throughput() >= scale.throughput() * 0.99,
            "hida {} vs scalehls {}",
            hida.throughput(),
            scale.throughput()
        );
    }

    #[test]
    fn unsupported_models_are_reported() {
        assert!(!supports(Model::ZfNet));
        assert!(!supports(Model::TinyYolo));
        assert!(supports(Model::ResNet18));
        assert!(supports(Model::Mlp));
    }
}
