//! Baseline flows the paper compares HIDA against.
//!
//! * [`scalehls`] — the ScaleHLS-style flow: dataflow legalization and per-task
//!   optimization, but no inter-task coupling (no connection awareness), no data-path
//!   balancing, and no external-memory tiling (all intermediates stay on chip).
//! * [`vitis`] — the "solely optimized by Vitis HLS" baseline: innermost-loop
//!   pipelining only, no dataflow, no unrolling.
//! * [`soff`] — a SOFF-style statically scheduled design with uniform moderate
//!   parallelization and no dataflow.
//! * [`dnnbuilder`] — an analytic model of the hand-tuned RTL DNN pipeline used as
//!   the dedicated-accelerator comparison in Table 8.
//! * [`manual`] — the LeNet case-study designs of §2: parameterized expert designs
//!   and the exhaustive-search space of Figure 1.

pub mod dnnbuilder;
pub mod manual;
pub mod scalehls;
pub mod soff;
pub mod vitis;
