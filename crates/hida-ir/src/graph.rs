//! Dataflow graph view over a structural schedule.
//!
//! Multi-producer elimination (Algorithm 3) and data-path balancing (§6.4.2) reason
//! about the producer/consumer relationships induced by shared buffers: which node
//! writes a buffer, which nodes read it, how long each data path is, and where paths
//! of different lengths reconverge. [`DataflowGraph`] materialises that view from a
//! [`ScheduleOp`] so the optimizations stay simple graph algorithms.

use crate::structural::{NodeOp, ScheduleOp};
use hida_ir_core::{Context, ValueId};
use std::collections::{HashMap, HashSet, VecDeque};

/// A producer→consumer edge through a shared buffer or stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataflowEdge {
    /// Writing node.
    pub producer: NodeOp,
    /// Reading node.
    pub consumer: NodeOp,
    /// The buffer/stream value connecting them.
    pub buffer: ValueId,
}

/// A dataflow graph derived from a schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataflowGraph {
    /// All nodes in program order.
    pub nodes: Vec<NodeOp>,
    /// All producer→consumer edges.
    pub edges: Vec<DataflowEdge>,
}

/// [`DataflowGraph`] is a cacheable [`Analysis`](hida_ir_core::analysis::Analysis)
/// keyed at the schedule op, so multi-pass flows (balancing, parallelization,
/// estimation) rebuild it only when the schedule actually changed.
impl hida_ir_core::analysis::Analysis for DataflowGraph {
    const NAME: &'static str = "dataflow-graph";

    fn compute(ctx: &Context, root: hida_ir_core::OpId) -> Self {
        DataflowGraph::from_schedule(ctx, ScheduleOp(root))
    }
}

impl DataflowGraph {
    /// Builds the dataflow graph of `schedule`.
    ///
    /// An edge `(p, c, b)` is created when node `p` writes buffer `b`, node `c` reads
    /// it, and `p` appears before `c` in program order (the dataflow direction).
    pub fn from_schedule(ctx: &Context, schedule: ScheduleOp) -> Self {
        let nodes = schedule.nodes(ctx);
        let position: HashMap<NodeOp, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut edges = Vec::new();
        let mut buffers: Vec<ValueId> = Vec::new();
        for node in &nodes {
            for operand in node.operands(ctx) {
                if !buffers.contains(&operand) {
                    buffers.push(operand);
                }
            }
        }
        for buffer in buffers {
            let producers: Vec<NodeOp> = nodes
                .iter()
                .copied()
                .filter(|n| n.writes(ctx, buffer))
                .collect();
            let consumers: Vec<NodeOp> = nodes
                .iter()
                .copied()
                .filter(|n| n.reads(ctx, buffer))
                .collect();
            for &p in &producers {
                for &c in &consumers {
                    if p != c && position[&p] < position[&c] {
                        edges.push(DataflowEdge {
                            producer: p,
                            consumer: c,
                            buffer,
                        });
                    }
                }
            }
        }
        DataflowGraph { nodes, edges }
    }

    /// Nodes with an edge from `node`.
    pub fn successors(&self, node: NodeOp) -> Vec<NodeOp> {
        let mut out: Vec<NodeOp> = self
            .edges
            .iter()
            .filter(|e| e.producer == node)
            .map(|e| e.consumer)
            .collect();
        out.dedup();
        out
    }

    /// Nodes with an edge into `node`.
    pub fn predecessors(&self, node: NodeOp) -> Vec<NodeOp> {
        let mut out: Vec<NodeOp> = self
            .edges
            .iter()
            .filter(|e| e.consumer == node)
            .map(|e| e.producer)
            .collect();
        out.dedup();
        out
    }

    /// Number of distinct nodes `node` is connected to (in either direction) through
    /// shared buffers — the "connections" count of §6.5 step (2).
    pub fn connection_count(&self, node: NodeOp) -> usize {
        let mut peers: HashSet<NodeOp> = HashSet::new();
        for e in &self.edges {
            if e.producer == node {
                peers.insert(e.consumer);
            }
            if e.consumer == node {
                peers.insert(e.producer);
            }
        }
        peers.len()
    }

    /// Nodes with no predecessors (dataflow sources).
    pub fn sources(&self) -> Vec<NodeOp> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| self.predecessors(n).is_empty())
            .collect()
    }

    /// Nodes with no successors (dataflow sinks).
    pub fn sinks(&self) -> Vec<NodeOp> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| self.successors(n).is_empty())
            .collect()
    }

    /// Longest-path depth of each node measured in edges from any source.
    ///
    /// Sources have depth 0; every other node has depth `1 + max(depth of preds)`.
    /// Because edges always point forward in program order the graph is acyclic.
    pub fn path_depths(&self) -> HashMap<NodeOp, usize> {
        let mut depth: HashMap<NodeOp, usize> = HashMap::new();
        // Process in program order: all predecessors precede their consumers.
        for &node in &self.nodes {
            let d = self
                .predecessors(node)
                .iter()
                .filter_map(|p| depth.get(p).map(|&x| x + 1))
                .max()
                .unwrap_or(0);
            depth.insert(node, d);
        }
        depth
    }

    /// Edges whose producer and consumer depths differ by more than one — the "short
    /// paths" that make the producer wait for longer reconverging paths (Figure 8).
    /// Returns `(edge, imbalance)` where `imbalance = depth(consumer) - depth(producer) - 1`.
    pub fn unbalanced_edges(&self) -> Vec<(DataflowEdge, usize)> {
        let depths = self.path_depths();
        self.edges
            .iter()
            .filter_map(|&e| {
                let d_p = depths[&e.producer];
                let d_c = depths[&e.consumer];
                if d_c > d_p + 1 {
                    Some((e, d_c - d_p - 1))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Breadth-first reachability from `from` to `to`.
    pub fn reaches(&self, from: NodeOp, to: NodeOp) -> bool {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            for s in self.successors(n) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structural::{build_buffer, build_node, build_schedule};
    use hida_dialects::analysis::MemEffect;
    use hida_ir_core::{OpBuilder, Type};

    /// Builds the residual-block shape of Figure 8(a):
    /// `Node0 -> (Buf1 -> Node1 -> Buf2 -> Node2)` and `Node0 -> Buf3 -> Node2`.
    fn residual_schedule(ctx: &mut Context) -> (ScheduleOp, Vec<NodeOp>) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let (schedule, body) = {
            let mut b = OpBuilder::at_end_of(ctx, func);
            build_schedule(&mut b, "residual")
        };
        let ty = Type::memref(vec![16], Type::f32());
        let mk_buf = |ctx: &mut Context, name: &str| {
            let mut b = OpBuilder::at_block_end(ctx, body);
            build_buffer(&mut b, ty.clone(), 2, name).1
        };
        let buf0 = mk_buf(ctx, "buf0");
        let buf1 = mk_buf(ctx, "buf1");
        let buf2 = mk_buf(ctx, "buf2");
        let buf3 = mk_buf(ctx, "buf3");
        let (n0, _) = build_node(
            ctx,
            body,
            "node0",
            &[
                (buf0, MemEffect::Read),
                (buf1, MemEffect::Write),
                (buf3, MemEffect::Write),
            ],
        );
        let (n1, _) = build_node(
            ctx,
            body,
            "node1",
            &[(buf1, MemEffect::Read), (buf2, MemEffect::Write)],
        );
        let (n2, _) = build_node(
            ctx,
            body,
            "node2",
            &[(buf2, MemEffect::Read), (buf3, MemEffect::Read)],
        );
        (schedule, vec![n0, n1, n2])
    }

    #[test]
    fn edges_follow_program_order_producers_to_consumers() {
        let mut ctx = Context::new();
        let (schedule, nodes) = residual_schedule(&mut ctx);
        let g = DataflowGraph::from_schedule(&ctx, schedule);
        assert_eq!(g.nodes.len(), 3);
        // Edges: n0->n1 (buf1), n1->n2 (buf2), n0->n2 (buf3).
        assert_eq!(g.edges.len(), 3);
        let mut succ = g.successors(nodes[0]);
        succ.sort();
        assert_eq!(succ, vec![nodes[1], nodes[2]]);
        let mut preds = g.predecessors(nodes[2]);
        preds.sort();
        assert_eq!(preds, vec![nodes[0], nodes[1]]);
        assert_eq!(g.sources(), vec![nodes[0]]);
        assert_eq!(g.sinks(), vec![nodes[2]]);
        assert!(g.reaches(nodes[0], nodes[2]));
        assert!(!g.reaches(nodes[2], nodes[0]));
    }

    #[test]
    fn connection_counts_match_figure8() {
        let mut ctx = Context::new();
        let (schedule, nodes) = residual_schedule(&mut ctx);
        let g = DataflowGraph::from_schedule(&ctx, schedule);
        assert_eq!(g.connection_count(nodes[0]), 2);
        assert_eq!(g.connection_count(nodes[1]), 2);
        assert_eq!(g.connection_count(nodes[2]), 2);
    }

    #[test]
    fn unbalanced_edge_detected_on_shortcut_path() {
        let mut ctx = Context::new();
        let (schedule, nodes) = residual_schedule(&mut ctx);
        let g = DataflowGraph::from_schedule(&ctx, schedule);
        let depths = g.path_depths();
        assert_eq!(depths[&nodes[0]], 0);
        assert_eq!(depths[&nodes[1]], 1);
        assert_eq!(depths[&nodes[2]], 2);
        let unbalanced = g.unbalanced_edges();
        assert_eq!(unbalanced.len(), 1);
        let (edge, imbalance) = unbalanced[0];
        assert_eq!(edge.producer, nodes[0]);
        assert_eq!(edge.consumer, nodes[2]);
        assert_eq!(imbalance, 1);
    }

    #[test]
    fn empty_schedule_produces_empty_graph() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let (schedule, _) = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_schedule(&mut b, "empty")
        };
        let g = DataflowGraph::from_schedule(&ctx, schedule);
        assert!(g.nodes.is_empty());
        assert!(g.edges.is_empty());
        assert!(g.sources().is_empty());
        assert!(g.unbalanced_edges().is_empty());
    }
}
