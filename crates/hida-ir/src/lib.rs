//! HIDA-IR: the hierarchical dataflow dialect (paper §5).
//!
//! HIDA-IR models dataflow at two levels of abstraction:
//!
//! * **Functional dataflow** ([`functional`]) — `hida.dispatch` and `hida.task`
//!   operations with *transparent* regions sharing the global context. Tensors are
//!   immutable values passed between producers and consumers. This level drives
//!   algorithmic optimization and task fusion.
//! * **Structural dataflow** ([`structural`]) — `hida.schedule` and `hida.node`
//!   operations with *isolated* regions and explicit per-argument memory effects,
//!   plus `hida.buffer` (ping-pong, partition and layout attributes) and
//!   `hida.stream` channels. This level drives scheduling and parallelization.
//! * **Module interface** ([`interface`]) — `hida.port`, `hida.bundle`, `hida.pack`
//!   and token values modelling external-memory interfaces and the elastic token
//!   flow of §6.4.2.
//! * **Dataflow graph views** ([`graph`]) — producer/consumer adjacency derived from
//!   shared buffers, used by multi-producer elimination and data-path balancing.

pub mod functional;
pub mod graph;
pub mod interface;
pub mod structural;

pub use functional::{DispatchOp, TaskOp};
pub use graph::DataflowGraph;
pub use structural::{BufferOp, NodeOp, ScheduleOp, StreamOp};

/// Fully-qualified HIDA operation names.
pub mod op_names {
    /// Functional dataflow: launches the tasks in its region.
    pub const DISPATCH: &str = "hida.dispatch";
    /// Functional dataflow: a transparent task region.
    pub const TASK: &str = "hida.task";
    /// Terminator yielding task/dispatch results.
    pub const YIELD: &str = "hida.yield";
    /// Structural dataflow: an isolated region with multiple nodes.
    pub const SCHEDULE: &str = "hida.schedule";
    /// Structural dataflow: an isolated node with explicit I/O memory effects.
    pub const NODE: &str = "hida.node";
    /// Structural dataflow: a multi-stage (ping-pong) on-chip buffer.
    pub const BUFFER: &str = "hida.buffer";
    /// Structural dataflow: a FIFO stream channel.
    pub const STREAM: &str = "hida.stream";
    /// Module interface: a memory or stream port.
    pub const PORT: &str = "hida.port";
    /// Module interface: a named bundle of ports.
    pub const BUNDLE: &str = "hida.bundle";
    /// Module interface: packs an external memory block into a port.
    pub const PACK: &str = "hida.pack";
    /// Elastic execution: produce a synchronization token.
    pub const TOKEN_PUSH: &str = "hida.token_push";
    /// Elastic execution: wait for a synchronization token.
    pub const TOKEN_POP: &str = "hida.token_pop";
}
