//! Module interface operations: `hida.port`, `hida.bundle`, `hida.pack`, and the
//! elastic token flow of §6.4.2.
//!
//! Ports capture the characteristics of memory-mapped or stream interfaces (e.g. AXI
//! latency and burst behaviour) that "can have a considerable impact on the dataflow
//! efficiency" (§5.2). Tokens maintain the execution order between nodes whose
//! dependency became implicit after a buffer was moved to external memory (soft FIFO).

use crate::op_names;
use hida_ir_core::{Attribute, Context, OpBuilder, OpId, Type, ValueId};

/// Kind of an interface port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// Memory-mapped AXI interface.
    MemoryMapped,
    /// AXI-Stream interface.
    Stream,
}

impl PortKind {
    /// Canonical string form stored in attributes.
    pub fn as_str(self) -> &'static str {
        match self {
            PortKind::MemoryMapped => "mm",
            PortKind::Stream => "stream",
        }
    }

    /// Parses the canonical string form (unknown strings map to `MemoryMapped`).
    pub fn parse(s: &str) -> PortKind {
        match s {
            "stream" => PortKind::Stream,
            _ => PortKind::MemoryMapped,
        }
    }
}

/// Typed view over a `hida.port` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortOp(pub OpId);

impl PortOp {
    /// Wraps `op` if it is a `hida.port`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<PortOp> {
        if ctx.op(op).is(op_names::PORT) {
            Some(PortOp(op))
        } else {
            None
        }
    }

    /// The port SSA value (a memref or stream handle).
    pub fn value(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).results[0]
    }

    /// Interface kind of the port.
    pub fn kind(self, ctx: &Context) -> PortKind {
        ctx.op(self.0)
            .attr_str("port_kind")
            .map(PortKind::parse)
            .unwrap_or(PortKind::MemoryMapped)
    }

    /// Read/write latency of the interface in cycles.
    pub fn latency(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("latency").unwrap_or(0).max(0)
    }

    /// Maximum burst length supported by the interface.
    pub fn burst_length(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("burst_length").unwrap_or(1).max(1)
    }
}

/// Creates a `hida.port` with the given handle type, interface kind, access latency
/// and supported burst length.
pub fn build_port(
    builder: &mut OpBuilder<'_>,
    ty: Type,
    kind: PortKind,
    latency: i64,
    burst_length: i64,
    name: &str,
) -> (PortOp, ValueId) {
    let (op, results) = builder.create(
        op_names::PORT,
        vec![],
        vec![ty],
        vec![
            ("port_kind", Attribute::Str(kind.as_str().to_string())),
            ("latency", Attribute::Int(latency.max(0))),
            ("burst_length", Attribute::Int(burst_length.max(1))),
            ("port_name", Attribute::Str(name.to_string())),
        ],
    );
    builder.context().set_name_hint(results[0], name);
    (PortOp(op), results[0])
}

/// Creates a `hida.bundle` grouping the given port values under one name.
pub fn build_bundle(builder: &mut OpBuilder<'_>, ports: &[ValueId], name: &str) -> OpId {
    builder
        .create(
            op_names::BUNDLE,
            ports.to_vec(),
            vec![],
            vec![("bundle_name", Attribute::Str(name.to_string()))],
        )
        .0
}

/// Creates a `hida.pack` op mapping an external-memory block (identified by a byte
/// offset and size) onto a port value. Returns the packed memref handle.
pub fn build_pack(
    builder: &mut OpBuilder<'_>,
    port: ValueId,
    offset_bytes: i64,
    ty: Type,
    name: &str,
) -> ValueId {
    let (_, results) = builder.create(
        op_names::PACK,
        vec![port],
        vec![ty],
        vec![
            ("offset_bytes", Attribute::Int(offset_bytes.max(0))),
            ("pack_name", Attribute::Str(name.to_string())),
        ],
    );
    results[0]
}

/// Creates a `hida.token_push` op that signals completion over the given token
/// stream (producer side of the elastic token flow).
pub fn build_token_push(builder: &mut OpBuilder<'_>, stream: ValueId) -> OpId {
    builder
        .create(op_names::TOKEN_PUSH, vec![stream], vec![], vec![])
        .0
}

/// Creates a `hida.token_pop` op that blocks until a token is available on the given
/// token stream (consumer side of the elastic token flow).
pub fn build_token_pop(builder: &mut OpBuilder<'_>, stream: ValueId) -> OpId {
    builder
        .create(op_names::TOKEN_POP, vec![stream], vec![], vec![])
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structural::build_stream;

    fn fixture(ctx: &mut Context) -> OpId {
        let module = ctx.create_module("m");
        OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![])
    }

    #[test]
    fn port_kind_round_trips() {
        assert_eq!(PortKind::parse(PortKind::Stream.as_str()), PortKind::Stream);
        assert_eq!(
            PortKind::parse(PortKind::MemoryMapped.as_str()),
            PortKind::MemoryMapped
        );
        assert_eq!(PortKind::parse("junk"), PortKind::MemoryMapped);
    }

    #[test]
    fn port_attributes_and_pack() {
        let mut ctx = Context::new();
        let func = fixture(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let (port, handle) = build_port(
            &mut b,
            Type::memref(vec![1 << 20], Type::i8()),
            PortKind::MemoryMapped,
            120,
            256,
            "axi0",
        );
        assert_eq!(port.kind(&ctx), PortKind::MemoryMapped);
        assert_eq!(port.latency(&ctx), 120);
        assert_eq!(port.burst_length(&ctx), 256);
        assert_eq!(port.value(&ctx), handle);

        let packed = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_pack(
                &mut b,
                handle,
                4096,
                Type::memref(vec![64, 64], Type::i8()),
                "blockA",
            )
        };
        let pack_op = ctx.value(packed).defining_op().unwrap();
        assert!(ctx.op(pack_op).is(op_names::PACK));
        assert_eq!(ctx.op(pack_op).attr_int("offset_bytes"), Some(4096));

        let bundle = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_bundle(&mut b, &[handle], "ddr")
        };
        assert_eq!(ctx.op(bundle).operands, vec![handle]);
    }

    #[test]
    fn token_push_and_pop_share_a_stream() {
        let mut ctx = Context::new();
        let func = fixture(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let (_, tok) = build_stream(&mut b, Type::i1(), 3, "token");
        let push = build_token_push(&mut b, tok);
        let pop = build_token_pop(&mut b, tok);
        assert!(ctx.op(push).is(op_names::TOKEN_PUSH));
        assert!(ctx.op(pop).is(op_names::TOKEN_POP));
        assert_eq!(ctx.op(push).operands, ctx.op(pop).operands);
        assert_eq!(ctx.users_of(tok).len(), 2);
    }
}
