//! Structural dataflow operations: `hida.schedule`, `hida.node`, `hida.buffer`,
//! `hida.stream` (paper §5.2, Figure 4).
//!
//! Unlike the Functional level, `schedule` and `node` regions are *isolated from
//! above*: every external value must be passed in as an argument, and `node` carries
//! an explicit memory effect for each argument. This is what lets HIDA-OPT partition
//! the dataflow optimization problem into local intra-node problems plus one global
//! inter-node problem.

use crate::op_names;
use hida_dialects::analysis::MemEffect;
use hida_dialects::hls;
use hida_ir_core::{Attribute, BlockId, Context, OpBuilder, OpId, Type, ValueId};

/// Typed view over a `hida.buffer` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferOp(pub OpId);

/// Typed view over a `hida.stream` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamOp(pub OpId);

/// Typed view over a `hida.node` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeOp(pub OpId);

/// Typed view over a `hida.schedule` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleOp(pub OpId);

fn effect_to_str(effect: MemEffect) -> &'static str {
    match effect {
        MemEffect::Read => "read",
        MemEffect::Write => "write",
        MemEffect::ReadWrite => "readwrite",
    }
}

fn effect_from_str(s: &str) -> MemEffect {
    match s {
        "read" => MemEffect::Read,
        "write" => MemEffect::Write,
        _ => MemEffect::ReadWrite,
    }
}

// ---------------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------------

impl BufferOp {
    /// Wraps `op` if it is a `hida.buffer`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<BufferOp> {
        if ctx.op(op).is(op_names::BUFFER) {
            Some(BufferOp(op))
        } else {
            None
        }
    }

    /// The underlying operation id.
    pub fn id(self) -> OpId {
        self.0
    }

    /// The buffer SSA value.
    pub fn value(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).results[0]
    }

    /// Number of ping-pong stages (depth). A depth of 2 or more enables the automatic
    /// ping-pong buffering semantics of §5.2.
    pub fn depth(self, ctx: &Context) -> i64 {
        ctx.op(self.0).attr_int("depth").unwrap_or(2).max(1)
    }

    /// Sets the number of ping-pong stages.
    pub fn set_depth(self, ctx: &mut Context, depth: i64) {
        ctx.op_mut(self.0).set_attr("depth", depth.max(1));
    }

    /// Returns true when the buffer has ping-pong (>= 2 stage) semantics.
    pub fn is_ping_pong(self, ctx: &Context) -> bool {
        self.depth(ctx) >= 2
    }

    /// Shape of the buffer.
    pub fn shape(self, ctx: &Context) -> Vec<i64> {
        ctx.value_type(self.value(ctx))
            .shape()
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// Total scalar elements per stage.
    pub fn num_elements(self, ctx: &Context) -> i64 {
        ctx.value_type(self.value(ctx)).num_elements().unwrap_or(0)
    }

    /// Element bit width.
    pub fn elem_bits(self, ctx: &Context) -> u32 {
        ctx.value_type(self.value(ctx)).elem_bit_width()
    }

    /// Buffer name for diagnostics.
    pub fn name(self, ctx: &Context) -> String {
        ctx.op(self.0)
            .attr_str("buffer_name")
            .map(str::to_string)
            .unwrap_or_else(|| format!("buf{}", self.0.index()))
    }

    /// Array-partition directive of this buffer.
    pub fn partition(self, ctx: &Context) -> hls::ArrayPartition {
        hls::get_array_partition(ctx, self.0, self.shape(ctx).len())
    }

    /// Sets the array-partition directive of this buffer.
    pub fn set_partition(self, ctx: &mut Context, partition: &hls::ArrayPartition) {
        hls::set_array_partition(ctx, self.0, partition);
    }

    /// Memory placement (BRAM / URAM / LUTRAM / external).
    pub fn memory_kind(self, ctx: &Context) -> hls::MemoryKind {
        hls::get_memory_kind(ctx, self.0)
    }

    /// Sets the memory placement.
    pub fn set_memory_kind(self, ctx: &mut Context, kind: hls::MemoryKind) {
        hls::set_memory_kind(ctx, self.0, kind);
    }
}

/// Creates a `hida.buffer` with the given memref type and ping-pong depth.
pub fn build_buffer(
    builder: &mut OpBuilder<'_>,
    ty: Type,
    depth: i64,
    name: &str,
) -> (BufferOp, ValueId) {
    assert!(ty.is_memref(), "hida.buffer requires a memref type");
    let (op, results) = builder.create(
        op_names::BUFFER,
        vec![],
        vec![ty],
        vec![
            ("depth", Attribute::Int(depth.max(1))),
            ("buffer_name", Attribute::Str(name.to_string())),
        ],
    );
    builder.context().set_name_hint(results[0], name);
    (BufferOp(op), results[0])
}

// ---------------------------------------------------------------------------
// Stream
// ---------------------------------------------------------------------------

impl StreamOp {
    /// Wraps `op` if it is a `hida.stream`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<StreamOp> {
        if ctx.op(op).is(op_names::STREAM) {
            Some(StreamOp(op))
        } else {
            None
        }
    }

    /// The stream SSA value.
    pub fn value(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).results[0]
    }

    /// Number of in-flight entries buffered by the channel.
    pub fn depth(self, ctx: &Context) -> i64 {
        match ctx.value_type(self.value(ctx)) {
            Type::Stream { depth, .. } => *depth,
            _ => 1,
        }
    }
}

/// Creates a `hida.stream` channel holding `depth` elements of type `elem`.
pub fn build_stream(
    builder: &mut OpBuilder<'_>,
    elem: Type,
    depth: i64,
    name: &str,
) -> (StreamOp, ValueId) {
    let ty = Type::stream(elem, depth.max(1));
    let (op, results) = builder.create(
        op_names::STREAM,
        vec![],
        vec![ty],
        vec![("stream_name", Attribute::Str(name.to_string()))],
    );
    builder.context().set_name_hint(results[0], name);
    (StreamOp(op), results[0])
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

impl NodeOp {
    /// Wraps `op` if it is a `hida.node`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<NodeOp> {
        if ctx.op(op).is(op_names::NODE) {
            Some(NodeOp(op))
        } else {
            None
        }
    }

    /// The underlying operation id.
    pub fn id(self) -> OpId {
        self.0
    }

    /// Node name for diagnostics.
    pub fn name(self, ctx: &Context) -> String {
        ctx.op(self.0)
            .attr_str("node_name")
            .map(str::to_string)
            .unwrap_or_else(|| format!("node{}", self.0.index()))
    }

    /// Sets the node name.
    pub fn set_name(self, ctx: &mut Context, name: &str) {
        ctx.op_mut(self.0).set_attr("node_name", name);
    }

    /// The node's body block.
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.body_block(self.0)
    }

    /// Buffer/stream operands of the node.
    pub fn operands(self, ctx: &Context) -> Vec<ValueId> {
        ctx.op(self.0).operands.clone()
    }

    /// Per-operand memory effects.
    pub fn effects(self, ctx: &Context) -> Vec<MemEffect> {
        ctx.op(self.0)
            .attributes
            .get("effects")
            .and_then(Attribute::as_str_array)
            .map(|v| v.iter().map(|s| effect_from_str(s)).collect())
            .unwrap_or_else(|| vec![MemEffect::ReadWrite; ctx.op(self.0).operands.len()])
    }

    /// The memory effect this node has on `value`, if `value` is one of its operands.
    pub fn effect_on(self, ctx: &Context, value: ValueId) -> Option<MemEffect> {
        let idx = ctx.op(self.0).operands.iter().position(|&o| o == value)?;
        self.effects(ctx).get(idx).copied()
    }

    /// Returns true when the node writes to `value`.
    pub fn writes(self, ctx: &Context, value: ValueId) -> bool {
        self.effect_on(ctx, value)
            .map(|e| e.writes())
            .unwrap_or(false)
    }

    /// Returns true when the node reads from `value`.
    pub fn reads(self, ctx: &Context, value: ValueId) -> bool {
        self.effect_on(ctx, value)
            .map(|e| e.reads())
            .unwrap_or(false)
    }

    /// Block arguments of the node body (one per operand).
    pub fn body_args(self, ctx: &Context) -> Vec<ValueId> {
        ctx.block(self.body(ctx)).args.clone()
    }

    /// The body block argument corresponding to operand `value`, if present.
    pub fn arg_for(self, ctx: &Context, value: ValueId) -> Option<ValueId> {
        let idx = ctx.op(self.0).operands.iter().position(|&o| o == value)?;
        ctx.block(self.body(ctx)).args.get(idx).copied()
    }

    /// Appends a new operand with the given effect and returns the matching body arg.
    pub fn add_operand(self, ctx: &mut Context, value: ValueId, effect: MemEffect) -> ValueId {
        ctx.add_operand(self.0, value);
        let mut effects: Vec<String> = ctx
            .op(self.0)
            .attributes
            .get("effects")
            .and_then(Attribute::as_str_array)
            .map(|v| v.to_vec())
            .unwrap_or_default();
        effects.push(effect_to_str(effect).to_string());
        ctx.op_mut(self.0)
            .set_attr("effects", Attribute::StrArray(effects));
        let ty = ctx.value_type(value).clone();
        let body = self.body(ctx);

        ctx.add_block_arg(body, ty)
    }

    /// Overwrites the effect of the operand at `index`.
    pub fn set_effect(self, ctx: &mut Context, index: usize, effect: MemEffect) {
        let mut effects: Vec<String> = self
            .effects(ctx)
            .iter()
            .map(|e| effect_to_str(*e).to_string())
            .collect();
        if index < effects.len() {
            effects[index] = effect_to_str(effect).to_string();
            ctx.op_mut(self.0)
                .set_attr("effects", Attribute::StrArray(effects));
        }
    }

    /// Replaces the operand at `index` with `new_value` (same effect, same body arg).
    pub fn replace_operand(self, ctx: &mut Context, index: usize, new_value: ValueId) {
        ctx.set_operand(self.0, index, new_value);
    }
}

/// Creates a `hida.node` with the given operands and per-operand effects, appended to
/// `block`. The body gets one block argument per operand with the operand's type.
/// Returns the node and its body block arguments.
pub fn build_node(
    ctx: &mut Context,
    block: BlockId,
    name: &str,
    operands: &[(ValueId, MemEffect)],
) -> (NodeOp, Vec<ValueId>) {
    let mut op = hida_ir_core::Operation::new(op_names::NODE);
    op.operands = operands.iter().map(|(v, _)| *v).collect();
    op.isolated = true;
    op.set_attr("node_name", name);
    op.set_attr(
        "effects",
        Attribute::StrArray(
            operands
                .iter()
                .map(|(_, e)| effect_to_str(*e).to_string())
                .collect(),
        ),
    );
    let id = ctx.create_op(op);
    // Register operand uses explicitly (create_op already did) and attach region.
    let region = ctx.create_region(id);
    let body = ctx.create_block(region);
    let mut args = Vec::new();
    for (v, _) in operands {
        let ty = ctx.value_type(*v).clone();
        let arg = ctx.add_block_arg(body, ty);
        args.push(arg);
    }
    ctx.append_op(block, id);
    (NodeOp(id), args)
}

// ---------------------------------------------------------------------------
// Schedule
// ---------------------------------------------------------------------------

impl ScheduleOp {
    /// Wraps `op` if it is a `hida.schedule`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<ScheduleOp> {
        if ctx.op(op).is(op_names::SCHEDULE) {
            Some(ScheduleOp(op))
        } else {
            None
        }
    }

    /// The underlying operation id.
    pub fn id(self) -> OpId {
        self.0
    }

    /// The schedule's body block.
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.body_block(self.0)
    }

    /// Nodes directly nested in this schedule, in program order.
    pub fn nodes(self, ctx: &Context) -> Vec<NodeOp> {
        ctx.body_ops(self.0)
            .into_iter()
            .filter(|&o| ctx.op(o).is(op_names::NODE))
            .map(NodeOp)
            .collect()
    }

    /// Buffers declared directly in this schedule ("internal buffers" of Alg. 3).
    pub fn internal_buffers(self, ctx: &Context) -> Vec<BufferOp> {
        ctx.body_ops(self.0)
            .into_iter()
            .filter(|&o| ctx.op(o).is(op_names::BUFFER))
            .map(BufferOp)
            .collect()
    }

    /// Buffer/stream values used by this schedule's nodes but defined outside the
    /// schedule ("external buffers" of Alg. 3): the schedule's block arguments plus
    /// any live-in values.
    pub fn external_buffers(self, ctx: &Context) -> Vec<ValueId> {
        let mut out: Vec<ValueId> = ctx.block(self.body(ctx)).args.clone();
        for v in ctx.live_ins(self.0) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Nodes writing to `buffer` (the producers of Algorithm 3), in program order.
    pub fn producers_of(self, ctx: &Context, buffer: ValueId) -> Vec<NodeOp> {
        self.nodes(ctx)
            .into_iter()
            .filter(|n| n.writes(ctx, buffer))
            .collect()
    }

    /// Nodes reading from `buffer`, in program order.
    pub fn consumers_of(self, ctx: &Context, buffer: ValueId) -> Vec<NodeOp> {
        self.nodes(ctx)
            .into_iter()
            .filter(|n| n.reads(ctx, buffer))
            .collect()
    }
}

/// Creates an empty `hida.schedule` at the builder's insertion point.
pub fn build_schedule(builder: &mut OpBuilder<'_>, name: &str) -> (ScheduleOp, BlockId) {
    let (op, body, _) = builder.create_with_body(
        op_names::SCHEDULE,
        vec![],
        vec![],
        vec![("schedule_name", Attribute::Str(name.to_string()))],
        true,
    );
    (ScheduleOp(op), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule_fixture(ctx: &mut Context) -> (ScheduleOp, BlockId) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(ctx, func);
        build_schedule(&mut b, "top")
    }

    #[test]
    fn buffer_attributes_and_ping_pong_semantics() {
        let mut ctx = Context::new();
        let (_, body) = schedule_fixture(&mut ctx);
        let (buf, value) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            build_buffer(&mut b, Type::memref(vec![64, 64], Type::i8()), 3, "act0")
        };
        assert_eq!(buf.depth(&ctx), 3);
        assert!(buf.is_ping_pong(&ctx));
        assert_eq!(buf.shape(&ctx), vec![64, 64]);
        assert_eq!(buf.num_elements(&ctx), 4096);
        assert_eq!(buf.elem_bits(&ctx), 8);
        assert_eq!(buf.name(&ctx), "act0");
        assert_eq!(buf.value(&ctx), value);
        buf.set_depth(&mut ctx, 1);
        assert!(!buf.is_ping_pong(&ctx));

        let p = hls::ArrayPartition::cyclic(vec![4, 4]);
        buf.set_partition(&mut ctx, &p);
        assert_eq!(buf.partition(&ctx), p);
        assert_eq!(buf.memory_kind(&ctx), hls::MemoryKind::Bram);
        buf.set_memory_kind(&mut ctx, hls::MemoryKind::External);
        assert_eq!(buf.memory_kind(&ctx), hls::MemoryKind::External);
    }

    #[test]
    fn stream_depth_from_type() {
        let mut ctx = Context::new();
        let (_, body) = schedule_fixture(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let (stream, value) = build_stream(&mut b, Type::i1(), 3, "tok");
        assert_eq!(stream.depth(&ctx), 3);
        assert!(ctx.value_type(value).is_stream());
    }

    #[test]
    fn node_effects_and_args() {
        let mut ctx = Context::new();
        let (schedule, body) = schedule_fixture(&mut ctx);
        let (buf_a, a) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            build_buffer(&mut b, Type::memref(vec![16], Type::f32()), 2, "A")
        };
        let (_buf_b, bval) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            build_buffer(&mut b, Type::memref(vec![16], Type::f32()), 2, "B")
        };
        let (node, args) = build_node(
            &mut ctx,
            body,
            "compute",
            &[(a, MemEffect::Read), (bval, MemEffect::Write)],
        );
        assert_eq!(node.name(&ctx), "compute");
        assert_eq!(args.len(), 2);
        assert_eq!(node.effects(&ctx), vec![MemEffect::Read, MemEffect::Write]);
        assert!(node.reads(&ctx, a));
        assert!(!node.writes(&ctx, a));
        assert!(node.writes(&ctx, bval));
        assert_eq!(node.arg_for(&ctx, a), Some(args[0]));
        assert_eq!(node.effect_on(&ctx, bval), Some(MemEffect::Write));
        assert_eq!(
            ctx.value_type(args[0]),
            &Type::memref(vec![16], Type::f32())
        );

        // Schedule-level queries.
        assert_eq!(schedule.nodes(&ctx).len(), 1);
        assert_eq!(schedule.internal_buffers(&ctx).len(), 2);
        assert_eq!(schedule.producers_of(&ctx, bval), vec![node]);
        assert_eq!(schedule.consumers_of(&ctx, a), vec![node]);
        assert!(schedule.producers_of(&ctx, a).is_empty());
        assert_eq!(buf_a.value(&ctx), a);
    }

    #[test]
    fn node_add_operand_and_set_effect() {
        let mut ctx = Context::new();
        let (_, body) = schedule_fixture(&mut ctx);
        let (_, a) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            build_buffer(&mut b, Type::memref(vec![8], Type::i8()), 2, "A")
        };
        let (_, c) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            build_buffer(&mut b, Type::memref(vec![8], Type::i8()), 2, "C")
        };
        let (node, _) = build_node(&mut ctx, body, "n", &[(a, MemEffect::ReadWrite)]);
        let new_arg = node.add_operand(&mut ctx, c, MemEffect::Write);
        assert_eq!(node.operands(&ctx), vec![a, c]);
        assert_eq!(
            node.effects(&ctx),
            vec![MemEffect::ReadWrite, MemEffect::Write]
        );
        assert_eq!(node.body_args(&ctx).len(), 2);
        assert_eq!(node.arg_for(&ctx, c), Some(new_arg));

        node.set_effect(&mut ctx, 0, MemEffect::Read);
        assert_eq!(node.effect_on(&ctx, a), Some(MemEffect::Read));
    }

    #[test]
    fn external_buffers_include_schedule_args_and_live_ins() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        // A buffer defined at function scope, outside the schedule.
        let ext = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            let (_, v) = build_buffer(&mut b, Type::memref(vec![4], Type::i8()), 2, "ext");
            v
        };
        let (schedule, body) = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_schedule(&mut b, "s")
        };
        build_node(&mut ctx, body, "n", &[(ext, MemEffect::Write)]);
        let externals = schedule.external_buffers(&ctx);
        assert!(externals.contains(&ext));
        assert!(schedule.internal_buffers(&ctx).is_empty());
    }

    #[test]
    #[should_panic(expected = "hida.buffer requires a memref type")]
    fn buffer_rejects_tensor_types() {
        let mut ctx = Context::new();
        let (_, body) = schedule_fixture(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        build_buffer(&mut b, Type::tensor(vec![4], Type::i8()), 2, "bad");
    }
}
