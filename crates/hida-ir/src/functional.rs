//! Functional dataflow operations: `hida.dispatch`, `hida.task`, `hida.yield`.
//!
//! Functional dataflow captures the high-level characteristics and hierarchy of HLS
//! designs (paper §5.1). `dispatch` and `task` are *transparent from above*: buffers
//! and tensors defined in the global context can be accessed by tasks at all
//! hierarchies without indirection, which keeps task fusion and splitting cheap.

use crate::op_names;
use hida_ir_core::{Attribute, BlockId, Context, OpBuilder, OpId, Type, ValueId};

/// Typed view over a `hida.dispatch` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOp(pub OpId);

/// Typed view over a `hida.task` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskOp(pub OpId);

impl DispatchOp {
    /// Wraps `op` if it is a `hida.dispatch`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<DispatchOp> {
        if ctx.op(op).is(op_names::DISPATCH) {
            Some(DispatchOp(op))
        } else {
            None
        }
    }

    /// The underlying operation id.
    pub fn id(self) -> OpId {
        self.0
    }

    /// Tasks directly nested in this dispatch, in program order.
    pub fn tasks(self, ctx: &Context) -> Vec<TaskOp> {
        ctx.body_ops(self.0)
            .into_iter()
            .filter(|&o| ctx.op(o).is(op_names::TASK))
            .map(TaskOp)
            .collect()
    }
}

impl TaskOp {
    /// Wraps `op` if it is a `hida.task`.
    pub fn try_from_op(ctx: &Context, op: OpId) -> Option<TaskOp> {
        if ctx.op(op).is(op_names::TASK) {
            Some(TaskOp(op))
        } else {
            None
        }
    }

    /// The underlying operation id.
    pub fn id(self) -> OpId {
        self.0
    }

    /// Nested dispatches directly inside this task (hierarchical dataflow).
    pub fn dispatches(self, ctx: &Context) -> Vec<DispatchOp> {
        ctx.body_ops(self.0)
            .into_iter()
            .filter(|&o| ctx.op(o).is(op_names::DISPATCH))
            .map(DispatchOp)
            .collect()
    }

    /// Human-readable task name (defaults to `task{id}`).
    pub fn name(self, ctx: &Context) -> String {
        ctx.op(self.0)
            .attr_str("task_name")
            .map(str::to_string)
            .unwrap_or_else(|| format!("task{}", self.0.index()))
    }

    /// Sets the task name.
    pub fn set_name(self, ctx: &mut Context, name: &str) {
        ctx.op_mut(self.0).set_attr("task_name", name);
    }
}

/// Creates an empty `hida.dispatch` at the builder's insertion point. Returns the op
/// and its body block.
pub fn build_dispatch(builder: &mut OpBuilder<'_>) -> (DispatchOp, BlockId) {
    let (op, body, _) = builder.create_with_body(op_names::DISPATCH, vec![], vec![], vec![], false);
    (DispatchOp(op), body)
}

/// Creates an empty `hida.task` with the given result types at the builder's
/// insertion point. Returns the op, its body block and its result values.
pub fn build_task(
    builder: &mut OpBuilder<'_>,
    result_types: Vec<Type>,
    name: &str,
) -> (TaskOp, BlockId, Vec<ValueId>) {
    let (op, body, results) = builder.create_with_body(
        op_names::TASK,
        vec![],
        result_types,
        vec![("task_name", Attribute::Str(name.to_string()))],
        false,
    );
    (TaskOp(op), body, results)
}

/// Appends a `hida.yield` terminator to `block`.
pub fn build_yield(ctx: &mut Context, block: BlockId, operands: Vec<ValueId>) -> OpId {
    let mut b = OpBuilder::at_block_end(ctx, block);
    b.create(op_names::YIELD, operands, vec![], vec![]).0
}

/// Wraps a contiguous range of operations of a block into a new op with one region
/// (the `wrap_ops` primitive of Algorithms 1 and 2).
///
/// The wrapped ops are moved, in order, into the new op's body. Results of wrapped
/// ops that are used outside the wrapped set are yielded from the new op and the
/// external uses are rewired to the wrapper's results. The wrapper is inserted at the
/// position of the first wrapped op.
///
/// # Panics
/// Panics if `ops` is empty or the ops do not all belong to the same block.
pub fn wrap_ops(ctx: &mut Context, ops: &[OpId], wrapper_name: &str, name_attr: &str) -> OpId {
    assert!(!ops.is_empty(), "wrap_ops requires at least one op");
    let block = ctx.op(ops[0]).parent_block.expect("ops must be attached");
    for &op in ops {
        assert_eq!(
            ctx.op(op).parent_block,
            Some(block),
            "all wrapped ops must belong to the same block"
        );
    }
    let insert_pos = ctx.block(block).position_of(ops[0]).unwrap();

    // Collect results escaping the wrapped set.
    let mut escaping: Vec<ValueId> = Vec::new();
    for &op in ops {
        for &res in &ctx.op(op).results.clone() {
            let escapes = ctx
                .users_of(res)
                .iter()
                .any(|&user| !ops.iter().any(|&o| ctx.is_ancestor(o, user)));
            if escapes {
                escaping.push(res);
            }
        }
    }
    let result_types: Vec<Type> = escaping
        .iter()
        .map(|&v| ctx.value_type(v).clone())
        .collect();

    // Create the wrapper op with a body.
    let mut wrapper_op = hida_ir_core::Operation::new(wrapper_name);
    wrapper_op.set_attr("task_name", name_attr);
    let wrapper = ctx.create_op(wrapper_op);
    let wrapper_results: Vec<ValueId> = result_types
        .into_iter()
        .map(|ty| ctx.add_result(wrapper, ty))
        .collect();
    let region = ctx.create_region(wrapper);
    let body = ctx.create_block(region);
    ctx.insert_op(block, insert_pos, wrapper);

    // Move the ops into the body (in their original order).
    for &op in ops {
        ctx.detach_op(op);
        ctx.append_op(body, op);
    }
    // Yield escaping results.
    build_yield(ctx, body, escaping.clone());
    // Rewire external uses.
    for (old, new) in escaping.iter().zip(&wrapper_results) {
        let users = ctx.users_of(*old);
        for user in users {
            let inside =
                ops.iter().any(|&o| ctx.is_ancestor(o, user)) || ctx.is_ancestor(wrapper, user);
            if !inside {
                ctx.replace_uses_in_op(user, *old, *new);
            }
        }
    }
    wrapper
}

/// Unwraps a wrapper op created by [`wrap_ops`]: moves its body ops back into the
/// parent block at the wrapper's position, rewires the wrapper's results to the
/// yielded values, and erases the wrapper. Used by dispatch/task canonicalization
/// ("a task containing only one sub-task should be canonicalized to a single task").
pub fn unwrap_op(ctx: &mut Context, wrapper: OpId) {
    let parent_block = ctx
        .op(wrapper)
        .parent_block
        .expect("wrapper must be attached");
    let pos = ctx.block(parent_block).position_of(wrapper).unwrap();
    let body_ops = ctx.body_ops(wrapper);
    // Find the yield, rewire results.
    let mut yielded: Vec<ValueId> = Vec::new();
    for &op in &body_ops {
        if ctx.op(op).is(op_names::YIELD) {
            yielded = ctx.op(op).operands.clone();
        }
    }
    let results = ctx.op(wrapper).results.clone();
    for (res, y) in results.iter().zip(&yielded) {
        ctx.replace_all_uses(*res, *y);
    }
    // Move non-yield ops out, preserving order.
    let mut insert_at = pos;
    for &op in &body_ops {
        if ctx.op(op).is(op_names::YIELD) {
            ctx.erase_op(op);
            continue;
        }
        ctx.detach_op(op);
        ctx.insert_op(parent_block, insert_at, op);
        insert_at += 1;
    }
    ctx.erase_op(wrapper);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hida_ir_core::verifier::verify;

    fn test_func(ctx: &mut Context) -> OpId {
        let module = ctx.create_module("m");
        OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![])
    }

    #[test]
    fn dispatch_and_task_views() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let (dispatch, dispatch_body) = {
            let mut b = OpBuilder::at_end_of(&mut ctx, func);
            build_dispatch(&mut b)
        };
        let (task, _, results) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, dispatch_body);
            build_task(&mut b, vec![Type::tensor(vec![4], Type::f32())], "t0")
        };
        assert_eq!(dispatch.tasks(&ctx), vec![task]);
        assert_eq!(task.name(&ctx), "t0");
        assert_eq!(results.len(), 1);
        assert!(DispatchOp::try_from_op(&ctx, task.id()).is_none());
        assert!(TaskOp::try_from_op(&ctx, dispatch.id()).is_none());
        task.set_name(&mut ctx, "renamed");
        assert_eq!(task.name(&ctx), "renamed");
        assert!(task.dispatches(&ctx).is_empty());
    }

    #[test]
    fn wrap_ops_moves_ops_and_forwards_results() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c0 = b.create_constant_int(1, Type::i32());
        let (_, sum) = b.create("arith.addi", vec![c0, c0], vec![Type::i32()], vec![]);
        let (_, user) = b.create("arith.muli", vec![sum[0], c0], vec![Type::i32()], vec![]);
        b.create_return(vec![user[0]]);

        // Wrap the constant and the add into a task; the mul stays outside and must
        // now use the task's result.
        let c0_op = ctx.value(c0).defining_op().unwrap();
        let add_op = ctx.value(sum[0]).defining_op().unwrap();
        let task = wrap_ops(&mut ctx, &[c0_op, add_op], op_names::TASK, "t");

        assert!(ctx.op(task).is(op_names::TASK));
        // The task yields both escaping values: c0 (used by the mul) and sum.
        assert_eq!(ctx.op(task).results.len(), 2);
        let mul_op = ctx.value(user[0]).defining_op().unwrap();
        for &operand in &ctx.op(mul_op).operands {
            let def = ctx.value(operand).defining_op().unwrap();
            assert_eq!(def, task, "external user must consume the task results");
        }
        // Inside, the yield returns the original values.
        let body_ops = ctx.body_ops(task);
        assert!(ctx.op(*body_ops.last().unwrap()).is(op_names::YIELD));
        let module = ctx.ancestors(func).pop().unwrap();
        verify(&ctx, module).unwrap();
    }

    #[test]
    fn wrap_then_unwrap_restores_structure() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c0 = b.create_constant_int(7, Type::i32());
        let (_, neg) = b.create("arith.negi", vec![c0], vec![Type::i32()], vec![]);
        b.create_return(vec![neg[0]]);
        let before = ctx.body_ops(func).len();

        let c0_op = ctx.value(c0).defining_op().unwrap();
        let task = wrap_ops(&mut ctx, &[c0_op], op_names::TASK, "t");
        assert_eq!(ctx.body_ops(func).len(), before); // constant replaced by task
        unwrap_op(&mut ctx, task);
        assert_eq!(ctx.body_ops(func).len(), before);
        // The negi uses the original constant again.
        let neg_op = ctx.value(neg[0]).defining_op().unwrap();
        assert_eq!(ctx.op(neg_op).operands, vec![c0]);
        let module = ctx.ancestors(func).pop().unwrap();
        verify(&ctx, module).unwrap();
    }

    #[test]
    fn wrap_ops_without_escaping_results_yields_nothing() {
        let mut ctx = Context::new();
        let func = test_func(&mut ctx);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c0 = b.create_constant_int(1, Type::i32());
        b.create("arith.negi", vec![c0], vec![Type::i32()], vec![]);
        let ops = ctx.body_ops(func);
        let task = wrap_ops(&mut ctx, &ops, op_names::TASK, "all");
        assert!(ctx.op(task).results.is_empty());
        assert_eq!(ctx.body_ops(func), vec![task]);
    }

    #[test]
    #[should_panic(expected = "wrap_ops requires at least one op")]
    fn wrap_ops_rejects_empty_input() {
        let mut ctx = Context::new();
        wrap_ops(&mut ctx, &[], op_names::TASK, "t");
    }
}
