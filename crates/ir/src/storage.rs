//! Dense, id-indexed side-table containers: [`EntityMap`] and [`EntitySet`].
//!
//! Every IR entity id ([`OpId`], [`BlockId`], [`RegionId`], [`ValueId`]) is a
//! small dense index into the owning [`Context`](crate::Context)'s arenas, so
//! auxiliary per-entity state — use lists, value remappings, printer
//! numberings, fingerprint ordinals, liveness flags — never needs the hashing
//! and probing of a `HashMap`: a `Vec` keyed by `id.index()` is smaller,
//! cache-friendly and O(1) without a hash. These two containers package that
//! pattern so side tables stay typed by their id kind (an `EntityMap<OpId, T>`
//! cannot be indexed with a `ValueId`).
//!
//! Both containers auto-grow on insert, so they can be built up while the
//! arena itself is still growing (e.g. the use list during IR construction).

use crate::ids::{BlockId, OpId, RegionId, ValueId};
use std::marker::PhantomData;

/// An entity id that is a dense arena index. Implemented by all four IR id
/// types; the trait is what lets the containers below stay generic without
/// giving up typed indexing.
pub trait EntityId: Copy {
    /// The dense arena index of this id.
    fn index(self) -> usize;
    /// Reconstructs an id from a dense arena index.
    fn from_index(index: usize) -> Self;
}

macro_rules! impl_entity_id {
    ($($ty:ty),+) => {
        $(impl EntityId for $ty {
            #[inline]
            fn index(self) -> usize {
                <$ty>::index(self)
            }
            #[inline]
            fn from_index(index: usize) -> Self {
                <$ty>::from_index(index)
            }
        })+
    };
}

impl_entity_id!(OpId, BlockId, RegionId, ValueId);

/// A dense map from an entity id to `T`, stored as `Vec<Option<T>>` keyed by
/// `id.index()`. Lookups are a bounds check and an indexed load — no hashing.
///
/// ```
/// use hida_ir_core::storage::EntityMap;
/// use hida_ir_core::ValueId;
///
/// let mut map: EntityMap<ValueId, u32> = EntityMap::new();
/// map.insert(ValueId::from_index(5), 42);
/// assert_eq!(map.get(ValueId::from_index(5)), Some(&42));
/// assert_eq!(map.get(ValueId::from_index(4)), None);
/// assert_eq!(map.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EntityMap<I, T> {
    slots: Vec<Option<T>>,
    live: usize,
    _id: PhantomData<I>,
}

impl<I, T> Default for EntityMap<I, T> {
    fn default() -> Self {
        EntityMap {
            slots: Vec::new(),
            live: 0,
            _id: PhantomData,
        }
    }
}

impl<I: EntityId, T> EntityMap<I, T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map with room for `capacity` entities.
    pub fn with_capacity(capacity: usize) -> Self {
        EntityMap {
            slots: Vec::with_capacity(capacity),
            live: 0,
            _id: PhantomData,
        }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entry is present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `value` under `id`, returning the previous entry if present.
    pub fn insert(&mut self, id: I, value: T) -> Option<T> {
        let index = id.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let old = self.slots[index].replace(value);
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    /// Removes and returns the entry under `id`.
    pub fn remove(&mut self, id: I) -> Option<T> {
        let old = self.slots.get_mut(id.index()).and_then(Option::take);
        if old.is_some() {
            self.live -= 1;
        }
        old
    }

    /// Returns the entry under `id`, if present.
    #[inline]
    pub fn get(&self, id: I) -> Option<&T> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Returns the entry under `id` mutably, if present.
    #[inline]
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.slots.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// True when an entry is present under `id`.
    #[inline]
    pub fn contains(&self, id: I) -> bool {
        self.get(id).is_some()
    }

    /// Returns the entry under `id`, inserting `T::default()` first when
    /// absent (the dense analogue of `HashMap::entry(..).or_default()`).
    pub fn get_or_default(&mut self, id: I) -> &mut T
    where
        T: Default,
    {
        let index = id.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        if self.slots[index].is_none() {
            self.slots[index] = Some(T::default());
            self.live += 1;
        }
        self.slots[index].as_mut().expect("slot just filled")
    }

    /// Iterates present entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (I::from_index(i), v)))
    }

    /// Removes every entry, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.live = 0;
    }
}

/// A dense set of entity ids, stored as packed 64-bit bitmap words.
///
/// ```
/// use hida_ir_core::storage::EntitySet;
/// use hida_ir_core::OpId;
///
/// let mut set: EntitySet<OpId> = EntitySet::new();
/// assert!(set.insert(OpId::from_index(70)));
/// assert!(!set.insert(OpId::from_index(70)));
/// assert!(set.contains(OpId::from_index(70)));
/// assert!(!set.contains(OpId::from_index(7)));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EntitySet<I> {
    words: Vec<u64>,
    live: usize,
    _id: PhantomData<I>,
}

impl<I: EntityId> EntitySet<I> {
    /// Creates an empty set.
    pub fn new() -> Self {
        EntitySet {
            words: Vec::new(),
            live: 0,
            _id: PhantomData,
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `id`; returns true when it was not present before.
    pub fn insert(&mut self, id: I) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1_u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.live += fresh as usize;
        fresh
    }

    /// Removes `id`; returns true when it was present.
    pub fn remove(&mut self, id: I) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        let Some(slot) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1_u64 << bit;
        let present = *slot & mask != 0;
        *slot &= !mask;
        self.live -= present as usize;
        present
    }

    /// True when `id` is in the set.
    #[inline]
    pub fn contains(&self, id: I) -> bool {
        self.words
            .get(id.index() / 64)
            .is_some_and(|w| w & (1_u64 << (id.index() % 64)) != 0)
    }

    /// Iterates the ids in the set in index order.
    pub fn iter(&self) -> impl Iterator<Item = I> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64)
                .filter(move |bit| word & (1_u64 << bit) != 0)
                .map(move |bit| I::from_index(wi * 64 + bit))
        })
    }

    /// Removes every id, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_map_insert_get_remove() {
        let mut map: EntityMap<OpId, String> = EntityMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert(OpId::from_index(3), "a".into()), None);
        assert_eq!(
            map.insert(OpId::from_index(3), "b".into()),
            Some("a".to_string())
        );
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(OpId::from_index(3)).map(String::as_str), Some("b"));
        assert!(!map.contains(OpId::from_index(2)));
        assert_eq!(map.remove(OpId::from_index(3)), Some("b".to_string()));
        assert!(map.is_empty());
        assert_eq!(map.remove(OpId::from_index(3)), None);
    }

    #[test]
    fn entity_map_get_or_default_and_iter() {
        let mut map: EntityMap<ValueId, Vec<u32>> = EntityMap::new();
        map.get_or_default(ValueId::from_index(9)).push(1);
        map.get_or_default(ValueId::from_index(9)).push(2);
        map.get_or_default(ValueId::from_index(2)).push(3);
        assert_eq!(map.len(), 2);
        let entries: Vec<(ValueId, Vec<u32>)> = map.iter().map(|(id, v)| (id, v.clone())).collect();
        assert_eq!(
            entries,
            vec![
                (ValueId::from_index(2), vec![3]),
                (ValueId::from_index(9), vec![1, 2]),
            ]
        );
    }

    #[test]
    fn entity_set_across_word_boundaries() {
        let mut set: EntitySet<BlockId> = EntitySet::new();
        for index in [0, 63, 64, 65, 200] {
            assert!(set.insert(BlockId::from_index(index)));
        }
        assert_eq!(set.len(), 5);
        assert!(set.contains(BlockId::from_index(64)));
        assert!(!set.contains(BlockId::from_index(66)));
        assert!(set.remove(BlockId::from_index(64)));
        assert!(!set.remove(BlockId::from_index(64)));
        let ids: Vec<usize> = set.iter().map(|b: BlockId| b.index()).collect();
        assert_eq!(ids, vec![0, 63, 65, 200]);
    }
}
